#!/usr/bin/env python3
"""Quickstart: cap a 128-node cluster's power and measure the cost.

Runs the paper's protocol end to end at a fast, seconds-scale setting:

1. a training period with no power management records the peak power;
2. thresholds are learned (P_H = 93% of peak, P_L = 84%);
3. the same job stream runs twice more — unmanaged (baseline) and
   managed by the MPC policy — and the §V.C metrics are compared.

Expected output: the capped run's peak drops by several percent, its
ΔP×T overspend falls by tens of percent, and Performance(cap) stays
close to 1.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.metrics import compare_runs
from repro.units import fmt_power


def main() -> None:
    config = ExperimentConfig.quick(seed=42)
    print(f"cluster: {config.num_nodes} Tianhe-1A nodes, "
          f"control period {config.control_period_s:g}s")

    print("\n[1/2] baseline (no power management)...")
    baseline = run_experiment(config, None)
    print(f"  training peak : {fmt_power(baseline.training_peak_w)}")
    print(f"  provision P_th: {fmt_power(baseline.provision_w)}")
    print(f"  observed P_max: {fmt_power(baseline.metrics.p_max_w)}")
    print(f"  dPxT overspend: {baseline.metrics.overspend:.4f}")
    print(f"  finished jobs : {baseline.metrics.finished_jobs}")

    print("\n[2/2] capped with the MPC policy (most power-consuming job)...")
    capped = run_experiment(config, "mpc")
    print(f"  observed P_max: {fmt_power(capped.metrics.p_max_w)}")
    print(f"  dPxT overspend: {capped.metrics.overspend:.4f}")
    print(f"  green/yellow/red cycles: "
          f"{capped.state_cycles['green']}/{capped.state_cycles['yellow']}/"
          f"{capped.state_cycles['red']}")

    c = compare_runs(capped.metrics, baseline.metrics)
    print("\ncapped vs baseline:")
    print(f"  peak power      : {c.p_max_ratio:.1%} of baseline "
          f"({1 - c.p_max_ratio:.1%} reduction)")
    print(f"  dPxT            : reduced by {c.overspend_reduction:.1%}")
    print(f"  Performance(cap): {c.performance:.4f} "
          f"({1 - c.performance:.1%} loss; paper reports ~2%)")
    print(f"  lossless jobs   : {capped.metrics.cplj}/{capped.metrics.finished_jobs}")


if __name__ == "__main__":
    main()
