#!/usr/bin/env python3
"""Capacity planning: how small can the power provision be?

The paper's Necessity assumption says provisioning a machine for its
theoretical peak wastes construction cost (63% of data-centre
infrastructure cost is power and cooling, §I.A); its Operability
assumption says the provision must still be "not ridiculously low".
This example quantifies the trade-off: sweep the provision capability
from generous to aggressive and report, for an MPC-capped system,

* how often the capped system still overspends (ΔP×T),
* whether the emergency red state ever fires,
* the performance cost of living under that provision.

The output is the curve a facility planner would use to pick the
smallest provision that keeps ΔP×T and performance loss acceptable.

Run:  python examples/capacity_planning.py
"""

from dataclasses import replace

from repro import ExperimentConfig, run_experiment
from repro.analysis import Table
from repro.metrics import compare_runs
from repro.units import fmt_power


def main() -> None:
    base_config = ExperimentConfig.quick(seed=7)
    fractions = (0.95, 0.90, 0.86, 0.82, 0.78, 0.74)

    print("baseline (unmanaged) run to locate the peak...")
    baseline = run_experiment(base_config, None)
    peak = baseline.training_peak_w
    print(f"training peak: {fmt_power(peak)}; "
          f"theoretical maximum is higher still — Necessity holds.\n")

    table = Table(
        ["provision (frac of peak)", "provision", "dPxT capped",
         "dPxT unmanaged", "perf", "red cycles"]
    )
    for fraction in fractions:
        config = replace(base_config, provision_fraction=fraction)
        uncapped = run_experiment(config, None)
        capped = run_experiment(config, "mpc")
        comparison = compare_runs(capped.metrics, uncapped.metrics)
        table.add_row(
            f"{fraction:.0%}",
            fmt_power(capped.provision_w),
            f"{capped.metrics.overspend:.4f}",
            f"{uncapped.metrics.overspend:.4f}",
            f"{comparison.performance:.4f}",
            capped.state_cycles.get("red", 0),
        )
    print(table.render())
    print(
        "\nreading: as the provision shrinks, the unmanaged system "
        "overspends more and more of its energy above P_th, while the "
        "capped system holds dPxT down at a small performance cost — "
        "until the provision drops below what the workload needs."
    )


if __name__ == "__main__":
    main()
