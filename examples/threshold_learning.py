#!/usr/bin/env python3
"""Watch the §III.A threshold learning machinery at work.

Builds the control stack by hand (no experiment harness) so each moving
part is visible: the cluster fills with jobs, a ThresholdController
learns P_peak during an unmanaged training window, and after the switch
to managed operation the thresholds keep ratcheting with the running
peak every t_p cycles.  Prints the threshold trajectory and an ASCII
power trace with the P_L/P_H bands.

Run:  python examples/threshold_learning.py
"""

import numpy as np

from repro.analysis import ascii_chart
from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.policies import make_policy
from repro.power import PowerModel, SystemPowerMeter
from repro.scheduler import BatchScheduler, KeepQueueFilledFeeder
from repro.sim import RandomSource
from repro.units import fmt_power
from repro.workload import JobExecutor, RandomJobGenerator

TRAINING_S = 600
RUN_S = 1200
T_P = 150  # threshold adjustment period, cycles


def main() -> None:
    rng = RandomSource(seed=5)
    cluster = Cluster.tianhe_1a()
    model = PowerModel(cluster.spec)
    generator = RandomJobGenerator(rng.stream("gen"), runtime_scale=0.02)
    executor = JobExecutor(cluster.state, rng.stream("exec"))
    scheduler = BatchScheduler(cluster, executor, KeepQueueFilledFeeder(generator))

    print(f"[training] {TRAINING_S}s unmanaged, recording the peak...")
    peak = 0.0
    for t in range(1, TRAINING_S + 1):
        scheduler.tick(float(t), 1.0)
        peak = max(peak, model.system_power(cluster.state))
    print(f"  P_peak = {fmt_power(peak)}")

    thresholds = ThresholdController.from_training(peak, adjust_every_cycles=T_P)
    print(f"  learned P_H = {fmt_power(thresholds.p_high)} (93% of peak)")
    print(f"  learned P_L = {fmt_power(thresholds.p_low)} (84% of peak)")

    manager = PowerManager(
        cluster,
        NodeSets(cluster),
        SystemPowerMeter(model, cluster.state),
        thresholds,
        make_policy("mpc"),
    )

    print(f"\n[managed] {RUN_S}s under MPC; thresholds re-checked every "
          f"{T_P} cycles...")
    adjustments = []
    for t in range(TRAINING_S + 1, TRAINING_S + RUN_S + 1):
        scheduler.tick(float(t), 1.0)
        before = thresholds.adjustments
        manager.control_cycle(float(t))
        if thresholds.adjustments != before:
            adjustments.append((t, thresholds.p_low, thresholds.p_high))

    if adjustments:
        print("  threshold adjustments (running peak ratcheted up):")
        for t, p_low, p_high in adjustments:
            print(f"    t={t:5d}s  P_L={fmt_power(p_low)}  P_H={fmt_power(p_high)}")
    else:
        print("  no adjustments — the training peak was never exceeded.")

    times, power = manager.recorder.arrays("power_w")
    _, p_low_series = manager.recorder.arrays("p_low_w")
    _, p_high_series = manager.recorder.arrays("p_high_w")
    stride = max(1, len(times) // 120)
    print()
    print(
        ascii_chart(
            times[::stride],
            {
                "power": power[::stride],
                "P_L": p_low_series[::stride],
                "P_H": p_high_series[::stride],
            },
            title="managed power trajectory vs the learned bands (watts)",
            height=14,
            width=72,
        )
    )
    from repro.core import PowerState

    print(
        f"\ncycles: green {manager.state_count(PowerState.GREEN)}, "
        f"yellow {manager.state_count(PowerState.YELLOW)}, "
        f"red {manager.state_count(PowerState.RED)} "
        f"(the paper's capped system never went red)"
    )


if __name__ == "__main__":
    main()
