#!/usr/bin/env python3
"""Power capping on a heterogeneous cluster.

The paper notes its capping algorithm "is applicable to both
heterogeneous and homogeneous systems as far as the power states of a
node are discrete" (§III.B, property 1).  This example demonstrates it:
a machine mixing 96 Tianhe-1A blades with 32 lower-power blades runs the
same MPC-driven control loop, and the policies' power rankings naturally
account for the types (the same DVFS level means different watts on
different blades).

The stack is wired by hand — cluster, scheduler, manager — to show the
heterogeneous API end to end.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro.cluster import Cluster, DvfsTable, MemorySpec, NicSpec, NodeSpec
from repro.cluster.cpu import ProcessorSpec
from repro.core import NodeSets, PowerManager, PowerState, ThresholdController
from repro.core.policies import make_policy
from repro.power import SystemPowerMeter, make_power_model
from repro.scheduler import BatchScheduler, KeepQueueFilledFeeder
from repro.sim import RandomSource
from repro.units import fmt_power, gib
from repro.workload import JobExecutor, RandomJobGenerator


def low_power_blade() -> NodeSpec:
    """A reduced-TDP blade: same 10-step ladder depth and 12 cores as
    the Tianhe blade (the whole-node allocator requires it), about 60%
    of the power."""
    cpu = ProcessorSpec(
        name="low-power SKU",
        cores=6,
        dvfs=DvfsTable.linear(10, 1.2e9, 2.2e9),
        max_power_w=60.0,
        idle_power_top_w=20.0,
        idle_power_bottom_w=12.0,
    )
    return NodeSpec(
        processor=cpu,
        sockets=2,
        memory=MemorySpec(8, gib(4), 2.5, 1.2),
        nic=NicSpec(10e9, 10.0, 6.0),
        board_power_w=50.0,
    )


def main() -> None:
    cluster = Cluster.heterogeneous(
        [(NodeSpec.tianhe_1a(), 96), (low_power_blade(), 32)],
        name="mixed-fleet",
    )
    print(f"cluster: {cluster.num_nodes} nodes "
          f"(96 Tianhe-1A + 32 low-power), "
          f"P_thy = {fmt_power(cluster.theoretical_max_power())}")

    rng = RandomSource(seed=11)
    model = make_power_model(cluster)
    generator = RandomJobGenerator(rng.stream("gen"), runtime_scale=0.02)
    executor = JobExecutor(cluster.state, rng.stream("exec"))
    scheduler = BatchScheduler(cluster, executor, KeepQueueFilledFeeder(generator))

    print("\n[training] 600 s unmanaged...")
    peak = 0.0
    for t in range(1, 601):
        scheduler.tick(float(t), 1.0)
        peak = max(peak, model.system_power(cluster.state))
    print(f"  peak {fmt_power(peak)}")

    manager = PowerManager(
        cluster,
        NodeSets(cluster),
        SystemPowerMeter(model, cluster.state),
        ThresholdController.from_training(peak),
        make_policy("mpc"),
    )
    print("[managed] 900 s under MPC...")
    for t in range(601, 1501):
        scheduler.tick(float(t), 1.0)
        manager.control_cycle(float(t))

    power = manager.recorder.values("power_w")
    print(f"\ncapped P_max: {fmt_power(power.max())} "
          f"(vs training peak {fmt_power(peak)})")
    print(f"cycles: green {manager.state_count(PowerState.GREEN)}, "
          f"yellow {manager.state_count(PowerState.YELLOW)}, "
          f"red {manager.state_count(PowerState.RED)}")

    # Which node type absorbed the throttling?  MPC ranks jobs by watts,
    # and the hot blades host the power-heavy jobs, so most degradations
    # land there — the type-awareness falls out of Formula (1).
    levels = cluster.state.level
    types = cluster.state.spec_index
    top = cluster.spec.top_level
    for group, label in ((0, "Tianhe-1A"), (1, "low-power")):
        mask = types == group
        degraded = int(np.sum(levels[mask] < top))
        print(f"  {label:10s}: {degraded}/{int(mask.sum())} nodes currently "
              f"below the top level")


if __name__ == "__main__":
    main()
