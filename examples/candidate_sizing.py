#!/usr/bin/env python3
"""Pick the right candidate-set size (the paper's Figures 5 + 6 story).

Monitoring more nodes caps power better (Figure 6) but costs more
central-manager CPU, superlinearly (Figure 5).  This example runs both
sweeps on one machine and prints them side by side, ending with the
trade-off recommendation the paper draws: "a power management solution
should trade-off between cost and effect by choosing a suitable size of
A_candidate" (~48 of 128 nodes in their environment).

Run:  python examples/candidate_sizing.py
"""

import numpy as np

from repro import ExperimentConfig
from repro.analysis import Table, ascii_chart
from repro.experiments import run_fig5, run_fig6

SIZES = (0, 8, 16, 32, 48, 64, 96, 128)


def main() -> None:
    print("sweeping |A_candidate| over", SIZES, "(this runs many protocols)...")
    config = ExperimentConfig.quick(seed=2012)
    fig6 = run_fig6(config, sizes=SIZES, policies=("mpc",))
    fig5 = run_fig5(sizes=SIZES, measure=False)

    sizes, pmax, overspend = fig6.series("mpc")
    table = Table(
        ["|A_candidate|", "Pmax (norm)", "dPxT (norm)", "mgmt CPU (model)"]
    )
    for i, size in enumerate(sizes):
        table.add_row(
            int(size),
            f"{pmax[i]:.3f}",
            f"{overspend[i]:.3f}",
            f"{fig5.modelled_cpu[i]:.1%}",
        )
    print()
    print(table.render())

    print()
    print(
        ascii_chart(
            sizes.astype(float),
            {"dPxT (effect)": overspend, "mgmt CPU (cost)": fig5.modelled_cpu},
            title="effect falls, cost rises: pick the knee",
            height=12,
        )
    )

    knee = fig6.knee_size("mpc", tolerance=0.05)
    cpu_at_knee = float(
        np.asarray(fig5.modelled_cpu)[list(sizes).index(knee)]
        if knee in list(sizes)
        else fig5.modelled_cpu[-1]
    )
    print(
        f"\nrecommendation: |A_candidate| ≈ {knee} nodes — within 0.05 of "
        f"the best dPxT at {cpu_at_knee:.0%} manager CPU "
        f"(paper found ~48 of 128)."
    )


if __name__ == "__main__":
    main()
