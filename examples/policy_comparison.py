#!/usr/bin/env python3
"""Compare every target-set selection policy on the same job stream.

The paper evaluates MPC and HRI and defers the rest (MPC-C, LPC, LPC-C,
BFP, HRI-C, and "other selection policies") to future work; this example
runs the whole zoo through the Figure 7 protocol and prints one table.

Reading the table:

* ``Performance`` — mean T_uncapped/T_capped over finished jobs (1 = no
  loss).  All policies should sit within a few percent of 1.
* ``dPxT reduction`` — how much of the over-provision heat the policy
  removed.  State-based collections (mpc-c) pull back hardest; the
  random baseline should trail the structured policies.
* ``CPLJ`` — jobs finishing exactly on time.  Concentrating policies
  (mpc) spare most jobs; spreading policies (hri, fair) touch many.

Run:  python examples/policy_comparison.py  [--full]
"""

import argparse

from repro import ExperimentConfig
from repro.analysis import format_fig7_table
from repro.experiments.ablations import policy_zoo

POLICIES = (
    "mpc", "mpc-c", "lpc", "lpc-c", "bfp",  # state-based (§IV.A)
    "hri", "hri-c",                          # change-based (§IV.B)
    "random", "fair", "hybrid", "sla",       # extensions (§VI / §I.B)
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the calibrated (slower, more faithful) configuration",
    )
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args()

    config = (
        ExperimentConfig.calibrated(seed=args.seed)
        if args.full
        else ExperimentConfig.quick(seed=args.seed)
    )
    # Three priority classes so the SLA-aware policy has something to
    # protect (the other policies ignore priorities entirely).
    from dataclasses import replace

    config = replace(config, priority_choices=(0, 1, 2))
    n_runs = len(POLICIES) + 1
    print(f"running {n_runs} experiment protocols "
          f"({'calibrated' if args.full else 'quick'} configuration)...")
    result = policy_zoo(config, policies=POLICIES)
    print()
    print(format_fig7_table(result))
    print(
        "\npaper reference (MPC vs HRI): dPxT -73% vs -66%, "
        f"CPLJ gap +1.4%; measured gap {result.cplj_gap('mpc', 'hri'):+.1%}"
    )


if __name__ == "__main__":
    main()
