"""CI lint-budget gate: per-rule violation counts never ratchet up.

Reads the ``--statistics-json`` artifact of a reprolint run and compares
it against the checked-in baseline (``tools/ci/lint_baseline.json``).
Every rule's count must be **monotone non-increasing**: at or below its
baseline entry, with unknown rules implicitly budgeted at zero.  A rule
that improves prints a ratchet hint — lower the baseline in the same PR
so the gain is locked in.

Parse errors in the lint run always fail the gate: a file the analyzer
could not read is a file whose violations were not counted.

Usage::

    python tools/ci/lint_budget.py lint-stats.json
    python tools/ci/lint_budget.py lint-stats.json --baseline other.json
    python tools/ci/lint_budget.py lint-stats.json --write-baseline

Exit code 0 iff every rule is within budget; regressions are listed on
stderr, one line each.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

DEFAULT_BASELINE = Path(__file__).resolve().parent / "lint_baseline.json"


def check_budget(
    stats: dict[str, Any], baseline: dict[str, Any]
) -> tuple[list[str], list[str]]:
    """``(failures, ratchet_hints)`` for one stats/baseline pair."""
    failures: list[str] = []
    hints: list[str] = []

    parse_errors = stats.get("parse_errors", 0)
    if parse_errors:
        failures.append(
            f"{parse_errors} file(s) failed to parse: their violations "
            "were never counted"
        )

    counts = stats.get("rule_counts")
    if not isinstance(counts, dict):
        failures.append("statistics payload has no rule_counts table")
        return failures, hints

    budget = baseline.get("rule_counts", {})
    for rule_id in sorted(counts):
        count = int(counts[rule_id])
        allowed = int(budget.get(rule_id, 0))
        if count > allowed:
            failures.append(
                f"{rule_id}: {count} violation(s), budget is {allowed} — "
                "fix the regression (never raise the baseline)"
            )
        elif count < allowed:
            hints.append(
                f"{rule_id}: {count} < budget {allowed} — ratchet the "
                "baseline down to lock in the improvement"
            )
    return failures, hints


def write_baseline(stats: dict[str, Any], path: Path) -> None:
    """Regenerate the baseline from a statistics artifact."""
    counts = {
        rule_id: int(count)
        for rule_id, count in stats.get("rule_counts", {}).items()
    }
    path.write_text(
        json.dumps({"rule_counts": counts}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("stats", help="reprolint --statistics-json artifact")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="checked-in per-rule budget (default: tools/ci/lint_baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the artifact instead of checking",
    )
    args = parser.parse_args(argv)

    stats = json.loads(Path(args.stats).read_text(encoding="utf-8"))
    if args.write_baseline:
        write_baseline(stats, Path(args.baseline))
        print(f"baseline written: {args.baseline}")
        return 0

    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    failures, hints = check_budget(stats, baseline)
    for hint in hints:
        print(f"note: {hint}")
    if failures:
        for failure in failures:
            print(f"lint budget: {failure}", file=sys.stderr)
        return 1
    print(
        f"lint budget ok: {len(stats.get('rule_counts', {}))} rule(s) "
        "within baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
