"""CI chaos matrices through the deterministic sweep runner.

Replaces the one-preset-per-job chaos matrices: the whole family of
defended chaos runs (``--family corruption``: every sensor-corruption
preset under the integrity defense; ``--family provision``: every
power-delivery preset under the emergency response) becomes one sweep
fanned over ``--jobs`` worker processes, with the content-addressed
result cache underneath so a re-run of an unchanged tree replays from
disk instead of re-simulating.

Each cell's ``--json`` payload is gated through the same invariants
:mod:`tools.ci.chaos_check` always enforced, then the merged payloads
are written to ``--out`` in canonical form — byte-identical for every
worker count and for cold vs warm cache, which CI asserts with ``cmp``.

Usage::

    PYTHONPATH=src python tools/ci/chaos_sweep.py --family corruption \\
        --jobs 2 --cache-dir .chaos-cache --out chaos.json
    PYTHONPATH=src python tools/ci/chaos_sweep.py --family corruption \\
        --jobs 2 --cache-dir .chaos-cache --out warm.json --expect-warm
    cmp chaos.json warm.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Any, Callable

from repro.cli.main import metrics_dict
from repro.errors import ReproError
from repro.experiments import ExperimentConfig, ResultCache, SweepCell, run_sweep
from repro.faults import CorruptionScenario
from repro.provision import ProvisionScenario
from repro.telemetry import IntegrityConfig
from tools.ci.chaos_check import check, check_provision

#: The presets each family sweeps — kept in sync with the defense
#: suites these matrices smoke (see docs/robustness.md).
CORRUPTION_PRESETS = ("stuck-at", "drift", "byzantine-meter")
PROVISION_PRESETS = ("feed-loss", "pdu-failure", "breaker-stress", "cap-order")

#: Every chaos cell runs the bfp policy on this 32-node world.
_SEED = 2012
_NODES = 32
_RUNTIME_SCALE = 0.02
_TRAINING_S = 300.0
_POLICY = "bfp"


def _base_config(run_duration_s: float) -> ExperimentConfig:
    return replace(
        ExperimentConfig.quick(seed=_SEED),
        num_nodes=_NODES,
        runtime_scale=_RUNTIME_SCALE,
        training_duration_s=_TRAINING_S,
        run_duration_s=run_duration_s,
    )


def build_cells(family: str) -> dict[str, SweepCell]:
    """Preset name → sweep cell for one chaos family."""
    if family == "corruption":
        base = _base_config(run_duration_s=600.0)
        return {
            preset: SweepCell(
                replace(
                    base,
                    corruption=CorruptionScenario.preset(preset),
                    integrity=IntegrityConfig(),
                ),
                _POLICY,
            )
            for preset in CORRUPTION_PRESETS
        }
    if family == "provision":
        base = _base_config(run_duration_s=900.0)
        return {
            preset: SweepCell(
                replace(
                    base,
                    provision=ProvisionScenario.preset(preset),
                    attach_provision=True,
                ),
                _POLICY,
            )
            for preset in PROVISION_PRESETS
        }
    raise ReproError(f"unknown chaos family {family!r}")


def run_family(
    family: str,
    *,
    jobs: int,
    cache: ResultCache | None,
    max_overspend: float,
) -> tuple[dict[str, Any], dict[str, int], list[str]]:
    """Run one family; returns (merged payload, stats, gate failures)."""
    cells = build_cells(family)
    report = run_sweep(list(cells.values()), jobs=jobs, cache=cache)
    checker: Callable[[dict[str, Any], float], list[str]] = (
        check if family == "corruption" else check_provision
    )
    failures: list[str] = []
    payloads: dict[str, Any] = {}
    for preset in sorted(cells):
        payload = metrics_dict(report.result_for(cells[preset]))
        payloads[preset] = payload
        failures.extend(
            f"[{preset}] {failure}"
            for failure in checker(payload, max_overspend)
        )
    merged = {"family": family, "cells": payloads}
    return merged, report.stats.as_dict(), failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--family",
        choices=("corruption", "provision"),
        required=True,
        help="which chaos matrix to run",
    )
    parser.add_argument(
        "--jobs", default=None, metavar="N", help="worker processes"
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH", help="result cache"
    )
    parser.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="merged canonical payload output path",
    )
    parser.add_argument(
        "--max-overspend",
        type=float,
        default=0.05,
        help="dPxT ceiling per defended cell (default 0.05)",
    )
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help=(
            "assert every cell replayed from the cache (0 simulated) — "
            "the CI warm-cache step"
        ),
    )
    args = parser.parse_args(argv)

    from repro.experiments.sweep import validate_jobs

    try:
        jobs = validate_jobs(args.jobs)
        cache = (
            ResultCache(args.cache_dir) if args.cache_dir is not None else None
        )
        merged, stats, failures = run_family(
            args.family,
            jobs=jobs,
            cache=cache,
            max_overspend=args.max_overspend,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")

    print(f"chaos-sweep [{args.family}]: {stats}")
    if failures:
        for failure in failures:
            print(f"chaos-sweep: FAIL: {failure}", file=sys.stderr)
        return 1
    if args.expect_warm and stats["computed"] != 0:
        print(
            f"chaos-sweep: FAIL: expected a warm cache but "
            f"{stats['computed']} cell(s) re-simulated",
            file=sys.stderr,
        )
        return 1
    print(f"chaos-sweep [{args.family}]: all safety invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
