"""CI safety gate for chaos (sensor-corruption) smoke runs.

Reads the ``--json`` payload of a defended ``repro run`` executed under
a corruption preset and asserts the safety invariants the telemetry
integrity defense must hold even while its sensors are lying:

* the payload contains no NaN / infinity anywhere — a single poisoned
  float in the metrics pipeline would propagate silently;
* the corruption model actually fired (otherwise the job tests nothing);
* the defense engaged (samples rejected, nodes quarantined, or the
  meter distrusted — any evidence of an active response);
* the cap-violation metric ``overspend`` (the paper's dPxT) stays under
  an explicit bound, i.e. the corrupted run is still a controlled run.

Usage::

    python tools/ci/chaos_check.py chaos.json --max-overspend 0.05

Exit code 0 iff every invariant holds; failures are listed on stderr.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Iterator


def _walk(value: Any, path: str) -> Iterator[tuple[str, Any]]:
    """Yield every (path, leaf) pair of a JSON document."""
    if isinstance(value, dict):
        for key, item in value.items():
            yield from _walk(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _walk(item, f"{path}[{index}]")
    else:
        yield path, value


def check(payload: dict[str, Any], max_overspend: float) -> list[str]:
    failures: list[str] = []

    for path, leaf in _walk(payload, "$"):
        if isinstance(leaf, float) and not math.isfinite(leaf):
            failures.append(f"non-finite value at {path}: {leaf!r}")

    stats = payload.get("fault_stats")
    if not isinstance(stats, dict):
        failures.append("fault_stats missing: run had no fault injector")
        return failures

    injected = stats.get("corrupted_samples", 0) + stats.get(
        "corrupted_meter_readings", 0
    )
    if injected <= 0:
        failures.append("corruption never fired (0 corrupted samples)")

    engaged = (
        stats.get("corrupt_samples_rejected", 0)
        + stats.get("quarantine_entries", 0)
        + stats.get("meter_distrusted_cycles", 0)
    )
    if engaged <= 0:
        failures.append(
            "defense never engaged (no rejections, quarantines or "
            "meter distrust)"
        )

    overspend = payload.get("overspend")
    if not isinstance(overspend, (int, float)) or not math.isfinite(
        float(overspend)
    ):
        failures.append(f"overspend missing or non-finite: {overspend!r}")
    elif float(overspend) > max_overspend:
        failures.append(
            f"overspend {float(overspend):.4f} exceeds the safety bound "
            f"{max_overspend:.4f}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("payload", help="path to the repro run --json output")
    parser.add_argument(
        "--max-overspend",
        type=float,
        default=0.05,
        help="dPxT ceiling for a defended corrupted run (default 0.05)",
    )
    args = parser.parse_args(argv)

    with open(args.payload, "r", encoding="utf-8") as handle:
        payload = json.load(handle)

    failures = check(payload, args.max_overspend)
    if failures:
        for failure in failures:
            print(f"chaos-check: FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos-check: all safety invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
