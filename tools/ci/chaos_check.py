"""CI safety gate for chaos smoke runs (corruption and provision).

Reads the ``--json`` payload of a defended ``repro run`` executed under
a chaos preset and asserts the safety invariants the corresponding
defense must hold while things are failing.

``--mode corruption`` (default, sensor corruption + integrity defense):

* the payload contains no NaN / infinity anywhere — a single poisoned
  float in the metrics pipeline would propagate silently;
* the corruption model actually fired (otherwise the job tests nothing);
* the defense engaged (samples rejected, nodes quarantined, or the
  meter distrusted — any evidence of an active response);
* the cap-violation metric ``overspend`` (the paper's dPxT) stays under
  an explicit bound, i.e. the corrupted run is still a controlled run.

``--mode provision`` (power-delivery faults + emergency response):

* no NaN / infinity anywhere, as above;
* the power-side scenario actually bit (capacity was lost, a branch was
  pressed against its rating, or the ladder fired);
* the defense engaged (envelope renegotiated, emergency red entered,
  branch caps applied or jobs suspended);
* **zero breaker trips** — a defended run must never let a branch
  circuit open;
* ``overspend`` stays under the same explicit bound.

Usage::

    python tools/ci/chaos_check.py chaos.json --max-overspend 0.05
    python tools/ci/chaos_check.py prov.json --mode provision

Exit code 0 iff every invariant holds; failures are listed on stderr.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Iterator


def _walk(value: Any, path: str) -> Iterator[tuple[str, Any]]:
    """Yield every (path, leaf) pair of a JSON document."""
    if isinstance(value, dict):
        for key, item in value.items():
            yield from _walk(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _walk(item, f"{path}[{index}]")
    else:
        yield path, value


def _finite_failures(payload: dict[str, Any]) -> list[str]:
    return [
        f"non-finite value at {path}: {leaf!r}"
        for path, leaf in _walk(payload, "$")
        if isinstance(leaf, float) and not math.isfinite(leaf)
    ]


def _overspend_failures(
    payload: dict[str, Any], max_overspend: float
) -> list[str]:
    overspend = payload.get("overspend")
    if not isinstance(overspend, (int, float)) or not math.isfinite(
        float(overspend)
    ):
        return [f"overspend missing or non-finite: {overspend!r}"]
    if float(overspend) > max_overspend:
        return [
            f"overspend {float(overspend):.4f} exceeds the safety bound "
            f"{max_overspend:.4f}"
        ]
    return []


def check(payload: dict[str, Any], max_overspend: float) -> list[str]:
    failures: list[str] = _finite_failures(payload)

    stats = payload.get("fault_stats")
    if not isinstance(stats, dict):
        failures.append("fault_stats missing: run had no fault injector")
        return failures

    injected = stats.get("corrupted_samples", 0) + stats.get(
        "corrupted_meter_readings", 0
    )
    if injected <= 0:
        failures.append("corruption never fired (0 corrupted samples)")

    engaged = (
        stats.get("corrupt_samples_rejected", 0)
        + stats.get("quarantine_entries", 0)
        + stats.get("meter_distrusted_cycles", 0)
    )
    if engaged <= 0:
        failures.append(
            "defense never engaged (no rejections, quarantines or "
            "meter distrust)"
        )

    failures.extend(_overspend_failures(payload, max_overspend))
    return failures


def check_provision(
    payload: dict[str, Any], max_overspend: float
) -> list[str]:
    failures: list[str] = _finite_failures(payload)

    stats = payload.get("provision_stats")
    if not isinstance(stats, dict):
        failures.append(
            "provision_stats missing: run had no delivery topology"
        )
        return failures

    bit = (
        stats.get("feed_losses", 0)
        + stats.get("pdu_failures", 0)
        + stats.get("cap_orders", 0)
        + stats.get("branch_cap_interventions", 0)
    )
    if bit <= 0 and stats.get("branch_cap_violation_seconds", 0.0) <= 0.0:
        failures.append(
            "provision scenario never bit (no capacity events, no "
            "branch pressure)"
        )

    engaged = (
        stats.get("envelope_renegotiations", 0)
        + stats.get("emergency_red_cycles", 0)
        + stats.get("branch_cap_interventions", 0)
        + stats.get("jobs_suspended", 0)
    )
    # A quiet defense is only acceptable when the surviving capacity
    # never dipped below the threshold the controller was already
    # enforcing (e.g. a shallow cap order above P_H needs no response).
    min_capacity = stats.get("min_capacity_w", float("nan"))
    p_high = payload.get("p_high_w", float("nan"))
    benign = (
        isinstance(min_capacity, (int, float))
        and isinstance(p_high, (int, float))
        and math.isfinite(float(min_capacity))
        and math.isfinite(float(p_high))
        and float(min_capacity) >= float(p_high)
    )
    if engaged <= 0 and not benign:
        failures.append(
            "defense never engaged (no renegotiation, emergency red, "
            "branch caps or suspensions) while capacity sat below P_H"
        )

    trips = stats.get("breaker_trips", 0)
    if not isinstance(trips, int) or trips != 0:
        failures.append(
            f"defended run tripped {trips!r} breaker(s); the emergency "
            "response must keep every branch circuit closed"
        )

    failures.extend(_overspend_failures(payload, max_overspend))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("payload", help="path to the repro run --json output")
    parser.add_argument(
        "--max-overspend",
        type=float,
        default=0.05,
        help="dPxT ceiling for a defended corrupted run (default 0.05)",
    )
    parser.add_argument(
        "--mode",
        choices=("corruption", "provision"),
        default="corruption",
        help="which defense's invariants to assert (default: corruption)",
    )
    args = parser.parse_args(argv)

    with open(args.payload, "r", encoding="utf-8") as handle:
        payload = json.load(handle)

    checker = check if args.mode == "corruption" else check_provision
    failures = checker(payload, args.max_overspend)
    if failures:
        for failure in failures:
            print(f"chaos-check: FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos-check: all safety invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
