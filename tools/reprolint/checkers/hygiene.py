"""General hygiene rules (RL4xx).

Not domain-specific, but each guards a bug class this codebase has to
care about: shared mutable defaults leak state across control cycles,
``__all__`` drift silently changes the public API the docs promise, and
bare ``except:`` swallows the typed error hierarchy in
:mod:`repro.errors` (and ``KeyboardInterrupt`` with it).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.checkers.base import Checker
from tools.reprolint.diagnostics import Diagnostic, Rule, Severity
from tools.reprolint.source import ParsedModule

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


class HygieneChecker(Checker):
    """RL401 mutable defaults, RL402 ``__all__`` drift, RL403 bare except."""

    rules = (
        Rule(
            "RL401",
            "mutable-default",
            Severity.ERROR,
            "mutable default argument",
            "A default list/dict/set is created once and shared by every "
            "call — state leaks across control cycles and test cases.",
        ),
        Rule(
            "RL402",
            "all-drift",
            Severity.WARNING,
            "__all__ out of sync with module definitions",
            "__all__ is the module's public contract; a name listed but "
            "undefined breaks star-imports, a public def not listed is "
            "invisible API.",
        ),
        Rule(
            "RL403",
            "bare-except",
            Severity.ERROR,
            "bare except clause",
            "Swallows KeyboardInterrupt/SystemExit and hides the typed "
            "repro.errors hierarchy; catch a specific exception.",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Diagnostic]:
        yield from self._check_all_drift(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.emit(
                    module,
                    node,
                    "RL403",
                    "bare 'except:'; catch a specific exception type "
                    "(or 'Exception' if you truly mean almost-everything)",
                )

    # -- RL401 ---------------------------------------------------------
    def _check_defaults(
        self,
        module: ParsedModule,
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> Iterator[Diagnostic]:
        name = getattr(node, "name", "<lambda>")
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            if self._is_mutable(default):
                yield self.emit(
                    module,
                    default,
                    "RL401",
                    f"mutable default argument in {name}(); default to "
                    "None and create the container inside the function",
                )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )

    # -- RL402 ---------------------------------------------------------
    def _check_all_drift(self, module: ParsedModule) -> Iterator[Diagnostic]:
        declared = self._declared_all(module.tree)
        if declared is None:
            return
        all_node, names = declared
        top_level = self._top_level_names(module.tree)
        for name in sorted(set(names) - top_level):
            yield self.emit(
                module,
                all_node,
                "RL402",
                f"'{name}' is listed in __all__ but not defined or "
                "imported at module top level",
            )
        public_defs = {
            stmt.name
            for stmt in module.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not stmt.name.startswith("_")
        }
        for name in sorted(public_defs - set(names)):
            yield self.emit(
                module,
                all_node,
                "RL402",
                f"public definition '{name}' is missing from __all__ "
                "(add it, or prefix the name with '_' if it is private)",
            )

    @staticmethod
    def _declared_all(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(value, (ast.List, ast.Tuple)):
                        names = [
                            elt.value
                            for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
                        return stmt, names
        return None

    @staticmethod
    def _top_level_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        names.update(
                            elt.id for elt in target.elts if isinstance(elt, ast.Name)
                        )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                names.update(
                    (alias.asname or alias.name.split(".")[0]) for alias in stmt.names
                )
            elif isinstance(stmt, ast.ImportFrom):
                names.update(
                    (alias.asname or alias.name)
                    for alias in stmt.names
                    if alias.name != "*"
                )
            elif isinstance(stmt, (ast.If, ast.Try)):
                # Conditional definitions (TYPE_CHECKING blocks, fallbacks).
                names.update(HygieneChecker._top_level_names_in(stmt))
        return names

    @staticmethod
    def _top_level_names_in(stmt: ast.stmt) -> set[str]:
        fake = ast.Module(body=list(ast.iter_child_nodes(stmt)), type_ignores=[])
        body = [node for node in fake.body if isinstance(node, ast.stmt)]
        fake.body = body
        return HygieneChecker._top_level_names(fake)
