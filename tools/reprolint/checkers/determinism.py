"""Determinism rules (RL1xx).

The simulator's crash-recovery layer replays runs **bit-identically**
from the state journal, and every experiment is reproducible from one
root seed.  Both properties die the moment any code path draws entropy
outside :class:`repro.sim.random.RandomSource` or observes the host's
wall clock, so these rules ban the APIs that smuggle either in.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.checkers.base import Checker
from tools.reprolint.diagnostics import Diagnostic, Rule, Severity
from tools.reprolint.source import ParsedModule, dotted_name

#: Modules allowed to touch numpy's seeding machinery: the one place
#: substreams are derived from the root seed.
_RNG_EXEMPT_MODULES = ("repro.sim.random",)

#: Qualified callables that create or draw from ambient RNG state.
_UNSEEDED_RNG = {
    "numpy.random.default_rng",
    "numpy.random.seed",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.random",
    "numpy.random.random_sample",
    "numpy.random.randint",
    "numpy.random.choice",
    "numpy.random.permutation",
    "numpy.random.shuffle",
    "numpy.random.uniform",
    "numpy.random.normal",
    "numpy.random.exponential",
    "numpy.random.poisson",
}

#: The stdlib ``random`` module: every public callable is ambient state.
_STDLIB_RANDOM_PREFIX = "random."

#: Wall-clock reads; simulated time comes from the engine, never the host.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: OS / hardware entropy sources.
_OS_ENTROPY_PREFIXES = ("os.urandom", "secrets.", "uuid.uuid1", "uuid.uuid4")

#: Host parallelism topology reads.  Worker count may only ever affect
#: *scheduling*; the moment it reaches a value (grid shape, batch size,
#: seed, anything merged into a result) the same command produces
#: different output on different machines — the exact property the
#: sweep runner's bit-identical-merge contract forbids.
_CPU_TOPOLOGY = {
    "os.cpu_count",
    "os.process_cpu_count",
    "os.sched_getaffinity",
    "multiprocessing.cpu_count",
    "psutil.cpu_count",
}

#: Callables whose first argument is consumed in iteration order.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter"}

#: Set-producing calls whose iteration order is hash-dependent.
_SET_PRODUCERS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Marker declaring a module part of the vectorised per-cycle hot path.
#: It must appear in the module *docstring* (a declaration about the
#: whole module, not a line-level pragma).  Marked modules must not loop
#: over nodes in Python (RL106) — that's exactly the scaling hazard the
#: vector engine exists to remove.
_HOT_PATH_MARKER = "# reprolint: hot-path"

#: Identifier tokens that signal per-node iteration.
_NODE_TOKENS = {"node", "nodes"}


def _mentions_node(expr: ast.AST) -> bool:
    """Whether any identifier in ``expr`` names a node or node container."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name):
            ident = sub.id
        elif isinstance(sub, ast.Attribute):
            ident = sub.attr
        else:
            continue
        if _NODE_TOKENS & set(ident.lower().split("_")):
            return True
    return False


class DeterminismChecker(Checker):
    """RL101 unseeded RNG, RL102 wall clock, RL103 OS entropy,
    RL104 hash-ordered set iteration, RL106 per-node loops on the
    hot path, RL107 host CPU-topology reads."""

    rules = (
        Rule(
            "RL101",
            "unseeded-rng",
            Severity.ERROR,
            "RNG created or drawn outside repro.sim.random",
            "Every stochastic draw must flow from a named RandomSource "
            "substream, or crash replay stops being bit-identical.",
        ),
        Rule(
            "RL102",
            "wall-clock",
            Severity.ERROR,
            "host wall-clock read in simulator code",
            "Simulated time comes from the engine; host time differs "
            "between a run and its journal replay.",
        ),
        Rule(
            "RL103",
            "os-entropy",
            Severity.ERROR,
            "OS entropy source (os.urandom / uuid / secrets)",
            "Hardware entropy cannot be reproduced from the root seed.",
        ),
        Rule(
            "RL104",
            "unordered-iteration",
            Severity.ERROR,
            "iteration over a set in an order-sensitive position",
            "Set iteration order depends on insertion/hash history; when "
            "it reaches results, two identical runs can diverge.  Wrap "
            "the set in sorted().",
        ),
        Rule(
            "RL106",
            "per-node-loop-on-hot-path",
            Severity.ERROR,
            "per-node Python loop in a hot-path-marked module",
            "Modules carrying the '# reprolint: hot-path' marker promise "
            "O(1) Python overhead per cycle regardless of cluster size; "
            "a Python loop over nodes breaks that promise at scale.  "
            "Batch the work through the vector engine, or move the loop "
            "to the object reference engine.",
        ),
        Rule(
            "RL107",
            "cpu-topology-read",
            Severity.ERROR,
            "host CPU topology read (os.cpu_count and friends)",
            "Deterministic code paths must not read the host's CPU "
            "count or affinity: results become machine-dependent and "
            "the sweep runner's parallel-equals-serial contract breaks. "
            "Take an explicit worker count from configuration; worker "
            "count may only affect scheduling, never results.",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Diagnostic]:
        rng_exempt = module.in_package(*_RNG_EXEMPT_MODULES)
        docstring = ast.get_docstring(module.tree, clean=False) or ""
        hot_path = _HOT_PATH_MARKER in docstring
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, rng_exempt)
            if isinstance(node, ast.For):
                yield from self._check_iteration(module, node.iter)
                if hot_path:
                    yield from self._check_node_loop(module, node.target, node.iter)
            if isinstance(node, ast.comprehension):
                yield from self._check_iteration(module, node.iter)
                if hot_path:
                    yield from self._check_node_loop(module, node.target, node.iter)

    # -- RL101/RL102/RL103 --------------------------------------------
    def _check_call(
        self, module: ParsedModule, node: ast.Call, rng_exempt: bool
    ) -> Iterator[Diagnostic]:
        raw = dotted_name(node.func)
        if raw is None:
            return
        qualified = module.imports.qualify(raw)
        # ``np.random`` is the conventional alias for ``numpy.random``.
        qualified = qualified.replace("np.random.", "numpy.random.", 1)
        if not rng_exempt:
            if qualified in _UNSEEDED_RNG or qualified.startswith(
                _STDLIB_RANDOM_PREFIX
            ):
                yield self.emit(
                    module,
                    node,
                    "RL101",
                    f"call to {qualified}(); draw from a "
                    "repro.sim.random.RandomSource substream instead",
                )
                return
        if qualified in _WALL_CLOCK:
            yield self.emit(
                module,
                node,
                "RL102",
                f"call to {qualified}(); use simulated time from the "
                "engine (time.perf_counter is allowed for benchmarks)",
            )
            return
        if qualified.startswith(_OS_ENTROPY_PREFIXES):
            yield self.emit(
                module,
                node,
                "RL103",
                f"call to {qualified}(); OS entropy is not reproducible "
                "from the root seed",
            )
            return
        if qualified in _CPU_TOPOLOGY:
            yield self.emit(
                module,
                node,
                "RL107",
                f"call to {qualified}(); take an explicit worker count "
                "from configuration — host CPU topology must never "
                "influence results",
            )
            return
        # RL104: list(set(...)) and friends materialise hash order.
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_WRAPPERS
            and node.args
        ):
            yield from self._check_iteration(module, node.args[0])

    # -- RL104 ---------------------------------------------------------
    def _check_iteration(
        self, module: ParsedModule, iterable: ast.expr
    ) -> Iterator[Diagnostic]:
        if self._is_set_expression(iterable):
            yield self.emit(
                module,
                iterable,
                "RL104",
                "iterating a set in an order-sensitive position; "
                "wrap it in sorted() so the order is deterministic",
            )

    # -- RL106 ---------------------------------------------------------
    def _check_node_loop(
        self, module: ParsedModule, target: ast.expr, iterable: ast.expr
    ) -> Iterator[Diagnostic]:
        if _mentions_node(iterable) or _mentions_node(target):
            yield self.emit(
                module,
                iterable,
                "RL106",
                "per-node Python loop in a hot-path module; batch this "
                "through the vector engine (or move it to the object "
                "reference engine)",
            )

    @staticmethod
    def _is_set_expression(node: ast.expr) -> bool:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_PRODUCERS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and DeterminismChecker._is_set_expression(func.value)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return DeterminismChecker._is_set_expression(
                node.left
            ) or DeterminismChecker._is_set_expression(node.right)
        return False
