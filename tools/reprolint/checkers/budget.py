"""Budget-custody rules (RL3xx, continued).

The provisioning layer owns the power budget: surviving delivery
capacity lives in :class:`repro.provision.runtime.ProvisionRuntime` and
the only sanctioned way thresholds follow it is
:meth:`repro.core.thresholds.ThresholdController.set_envelope`.  A raw
write to budget state anywhere else — control code poking ``p_high`` or
``capacity_w`` directly — bypasses envelope clamping, renegotiation
accounting and the journaled threshold state, silently splitting the
controller's view of the budget from the delivery path's.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.checkers.base import Checker
from tools.reprolint.diagnostics import Diagnostic, Rule, Severity
from tools.reprolint.source import ParsedModule

#: Where budget/capacity state may legitimately be mutated: the
#: provisioning package (delivery capacity, branch limits, cap orders)
#: and the threshold controller (envelope-clamped re-learning).
BUDGET_WRITER_MODULES = ("repro.provision", "repro.core.thresholds")

#: Everything else under repro.* is control code for this rule.
_CONTROL_PACKAGES = ("repro",)

#: Attribute names that hold budget/capacity state.  Covers the
#: threshold pair in both naming conventions, the delivery capacities
#: and the per-branch ratings.
_BUDGET_ATTRS = {
    "p_high",
    "p_low",
    "p_high_w",
    "p_low_w",
    "capacity_w",
    "design_capacity_w",
    "envelope_w",
    "rated_w",
    "branch_limits_w",
}


class BudgetChecker(Checker):
    """RL303: budget state written outside the provisioning entry points."""

    rules = (
        Rule(
            "RL303",
            "budget-custody",
            Severity.ERROR,
            "budget/capacity state written outside repro.provision",
            "Only the provisioning layer (repro.provision) and the "
            "envelope-clamped ThresholdController may mutate budget or "
            "capacity state; anything else must renegotiate through "
            "set_envelope() so clamping and accounting stay coherent.",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if not module.in_package(*_CONTROL_PACKAGES):
            return
        if module.in_package(*BUDGET_WRITER_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = self._budget_attr(target)
                if attr is not None:
                    yield self.emit(
                        module,
                        node,
                        "RL303",
                        f"direct write to budget state .{attr} outside "
                        "repro.provision; renegotiate through "
                        "ThresholdController.set_envelope() or a "
                        "ProvisionRuntime event instead",
                    )

    @staticmethod
    def _budget_attr(target: ast.expr) -> str | None:
        # ``obj.capacity_w = …`` or ``obj.branch_limits_w[ids] = …``
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr in _BUDGET_ATTRS:
            return target.attr
        return None
