"""Checker registry: every rule family reprolint knows about."""

from __future__ import annotations

from tools.reprolint.checkers.base import Checker
from tools.reprolint.checkers.budget import BudgetChecker
from tools.reprolint.checkers.determinism import DeterminismChecker
from tools.reprolint.checkers.fencing import FencingChecker
from tools.reprolint.checkers.flow import FlowAnalyzer
from tools.reprolint.checkers.hygiene import HygieneChecker
from tools.reprolint.checkers.nansafety import NanSafetyChecker
from tools.reprolint.checkers.units import UnitsChecker
from tools.reprolint.diagnostics import Rule

__all__ = ["Checker", "FlowAnalyzer", "all_checkers", "all_rules"]


def all_checkers() -> tuple[Checker, ...]:
    """One fresh instance of every registered checker."""
    return (
        DeterminismChecker(),
        NanSafetyChecker(),
        UnitsChecker(),
        FencingChecker(),
        BudgetChecker(),
        HygieneChecker(),
    )


def all_rules() -> tuple[Rule, ...]:
    """The full rule catalogue, ordered by rule id.

    Includes the whole-program flow rules (RL5xx), which run on the
    project model rather than per file (:class:`FlowAnalyzer`).
    """
    rules: list[Rule] = []
    for checker in all_checkers():
        rules.extend(checker.rules)
    rules.extend(FlowAnalyzer.rules)
    return tuple(sorted(rules))
