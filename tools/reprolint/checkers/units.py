"""SI-unit discipline rules (RL2xx).

The simulator stores raw floats but keeps them honest through the
:mod:`repro.types` aliases (``Watts``, ``Seconds``, ``Hertz``,
``Joules``) and the :mod:`repro.units` constructors (``ghz``, ``kw``,
``mw``…).  These rules keep that discipline machine-checked where it
matters most: the public control/measurement surface.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.reprolint.checkers.base import Checker
from tools.reprolint.diagnostics import Diagnostic, Rule, Severity
from tools.reprolint.source import ParsedModule

#: Packages whose *public* functions must annotate unit-bearing params
#: with the repro.types aliases (the control/measurement surface).
UNIT_ANNOTATION_PACKAGES = ("repro.power", "repro.core", "repro.metrics")

#: Parameter-name pattern → required repro.types alias.  Names with a
#: ``per`` component (ratios like ``c_per_w``) are exempt — they are not
#: bare quantities of the suffix unit.
_UNIT_NAME_PATTERNS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("Watts", re.compile(r"(?:^|_)(?:watts?)$|(?<!per)_w$|_watts$")),
    (
        "Seconds",
        re.compile(
            r"(?:^|_)(?:seconds?|now|timestamp|duration|dt|age)$"
            r"|(?<!per)_s$|_seconds$"
        ),
    ),
    ("Hertz", re.compile(r"(?:^|_)(?:hertz|freq|frequency)$|(?<!per)_hz$")),
    ("Joules", re.compile(r"(?:^|_)(?:joules?)$|(?<!per)_j$|_joules$")),
)

#: Annotations RL201 rewrites: the bare float spellings.
_BARE_FLOAT_ANNOTATIONS = {"float", "float | None", "Optional[float]"}

#: Module allowed to define magnitude constants with raw exponents.
_LITERAL_EXEMPT_MODULES = ("repro.units",)

#: Scientific-notation exponents covered by a repro.units constructor
#: (kw: e3, mw/mhz: e6, ghz/gb_per_s: e9) or scale constant.
_MAGNITUDE_RE = re.compile(r"^\d+(?:\.\d+)?[eE]\+?(?:3|6|9)$")

_SUGGESTIONS = {
    "3": "units.KILO (or kw())",
    "6": "units.MEGA (or mw()/mhz())",
    "9": "units.GIGA (or ghz()/gb_per_s())",
}


def _unit_alias_for(name: str) -> str | None:
    for alias, pattern in _UNIT_NAME_PATTERNS:
        if pattern.search(name):
            return alias
    return None


class UnitsChecker(Checker):
    """RL201 unit annotations, RL202 float equality on unit values,
    RL203 raw magnitude literals."""

    rules = (
        Rule(
            "RL201",
            "unit-annotation",
            Severity.WARNING,
            "unit-bearing parameter annotated as bare float",
            "Public power/core/metrics functions must carry the "
            "repro.types aliases so reviewers (and mypy users aliasing "
            "them to distinct types) see the unit contract.",
        ),
        Rule(
            "RL202",
            "float-unit-eq",
            Severity.ERROR,
            "exact float equality on a power/time quantity",
            "Watts and seconds are accumulated floats; == compares bit "
            "patterns, not quantities.  Use an explicit tolerance or an "
            "ordering comparison.",
        ),
        Rule(
            "RL203",
            "raw-magnitude-literal",
            Severity.WARNING,
            "raw scientific-notation magnitude literal",
            "Write ghz(2.93), kw(40) or the KILO/MEGA/GIGA constants "
            "instead of bare e3/e6/e9 literals, so the unit is visible.",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Diagnostic]:
        check_annotations = module.in_package(*UNIT_ANNOTATION_PACKAGES)
        literal_exempt = module.in_package(*_LITERAL_EXEMPT_MODULES)
        for node in ast.walk(module.tree):
            if check_annotations and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from self._check_signature(module, node)
            if isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            if not literal_exempt and isinstance(node, ast.Constant):
                yield from self._check_literal(module, node)

    # -- RL201 ---------------------------------------------------------
    def _check_signature(
        self, module: ParsedModule, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        if node.name.startswith("_") and node.name != "__init__":
            return
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            annotation = ast.unparse(arg.annotation)
            if annotation not in _BARE_FLOAT_ANNOTATIONS:
                continue
            alias = _unit_alias_for(arg.arg)
            if alias is None:
                continue
            fixed = annotation.replace("float", alias)
            yield self.emit(
                module,
                arg,
                "RL201",
                f"parameter '{arg.arg}' of {node.name}() is annotated "
                f"'{annotation}'; use the repro.types alias '{fixed}'",
            )

    # -- RL202 ---------------------------------------------------------
    def _check_compare(
        self, module: ParsedModule, node: ast.Compare
    ) -> Iterator[Diagnostic]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                name = self._terminal_name(side)
                if name is None:
                    continue
                alias = _unit_alias_for(name)
                if alias is None:
                    continue
                yield self.emit(
                    module,
                    node,
                    "RL202",
                    f"'{name}' ({alias}) compared with "
                    f"{'==' if isinstance(op, ast.Eq) else '!='}; use a "
                    "tolerance (math.isclose) or an ordering comparison",
                )
                break

    @staticmethod
    def _terminal_name(node: ast.expr) -> str | None:
        # Unwrap value-preserving wrappers so float(x.age) == 0.0 and
        # np.asarray(ages) == 0.0 still reveal the quantity's name.
        while (
            isinstance(node, ast.Call)
            and node.args
            and isinstance(node.func, (ast.Name, ast.Attribute))
            and (
                node.func.id
                if isinstance(node.func, ast.Name)
                else node.func.attr
            )
            in ("float", "abs", "asarray", "array", "round")
        ):
            node = node.args[0]
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    # -- RL203 ---------------------------------------------------------
    def _check_literal(
        self, module: ParsedModule, node: ast.Constant
    ) -> Iterator[Diagnostic]:
        if not isinstance(node.value, (int, float)) or isinstance(node.value, bool):
            return
        segment = ast.get_source_segment(module.source, node)
        if segment is None or not _MAGNITUDE_RE.match(segment):
            return
        exponent = segment.lower().rsplit("e", 1)[1].lstrip("+")
        yield self.emit(
            module,
            node,
            "RL203",
            f"raw magnitude literal {segment}; use "
            f"{_SUGGESTIONS[exponent]} from repro.units",
        )
