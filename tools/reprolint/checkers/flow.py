"""Whole-program flow rules (RL5xx): taint-tracked trust boundaries.

These rules run on the project model, not on a single file.  The
architecture's safety argument rests on values crossing specific
checkpoints — raw telemetry must pass the integrity layer before it can
teach thresholds (RL501), every actuation's outcome must be looked at
(RL502), a named RNG substream belongs to one domain (RL503), and
simulated time never mixes with host time (RL504).  A refactor can break
any of these *across* module boundaries while every individual file
still lints clean; the :class:`FlowAnalyzer` closes that gap by
evaluating the per-file taint summaries against the project's call
graph.

The **policy** below is the single place that says what is a source,
a sanitizer, or a sink; the engine underneath
(:mod:`tools.reprolint.dataflow` / :mod:`tools.reprolint.summaries`) is
rule-agnostic.  ``docs/static-analysis.md`` carries the full tables and
a walkthrough for adding a new flow rule.
"""

from __future__ import annotations

from tools.reprolint.diagnostics import Diagnostic, Rule, Severity
from tools.reprolint.project import ProjectModel
from tools.reprolint.summaries import ModuleIR, SummaryEvaluator, Value

# ----------------------------------------------------------------------
# RL501 policy: untrusted telemetry → threshold learning / budget checks
# ----------------------------------------------------------------------
#: Taint sources: calls that produce raw (possibly byzantine) readings.
_TELEMETRY_SOURCES = {
    "repro.power.meter.SystemPowerMeter.read": "telemetry.meter",
    "repro.telemetry.agent.AgentPool.sample_arrays": "telemetry.raw",
}

#: Sanitizers: the integrity layer launders its outputs, and the
#: collector's sweep is trusted egress (it validates internally and its
#: snapshots carry explicit honesty signals).
_SANITIZER_PREFIXES = ("repro.telemetry.integrity.",)
_SANITIZERS = frozenset(
    {"repro.telemetry.collector.TelemetryCollector.collect"}
)

#: Sinks: (canonical callable → parameter index, 0-based past the
#: receiver) where a raw reading poisons learned state or a budget
#: comparison.
_TELEMETRY_SINKS = {
    "repro.core.thresholds.ThresholdController.observe": 0,
    "repro.core.thresholds.ThresholdController.complete_training": 0,
    "repro.core.states.classify_power_state": 0,
}

_TELEMETRY_KINDS = frozenset({"telemetry.meter", "telemetry.raw"})

# ----------------------------------------------------------------------
# RL502 policy: actuation results that must be looked at
# ----------------------------------------------------------------------
_ACTUATION_CALLS = frozenset(
    {
        "repro.core.actuator.DvfsActuator.apply",
        "repro.core.actuator.DvfsActuator.release",
    }
)

# ----------------------------------------------------------------------
# RL503 policy: RNG substream custody
# ----------------------------------------------------------------------
_STREAM_CALL = "repro.sim.random.RandomSource.stream"

#: Stream-name prefix → packages allowed to consume that substream.
#: Unlisted prefixes default to ``repro.<prefix>``.  Stream names are
#: part of the seeding contract (draws are keyed by name), so the
#: registry grandfathers the existing names rather than renaming them.
_CUSTODY = {
    "faults": ("repro.faults", "repro.provision"),
    "policy": ("repro.core.policies",),
    "candidate": ("repro.core.sets",),
    "meter": ("repro.power",),
}

#: Generator methods that consume randomness (draw sites).
_DRAW_METHODS = frozenset(
    {
        "random",
        "normal",
        "standard_normal",
        "uniform",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "exponential",
        "poisson",
        "lognormal",
        "gamma",
        "beta",
        "binomial",
        "geometric",
    }
)

# ----------------------------------------------------------------------
# RL504 policy: sim time vs host time
# ----------------------------------------------------------------------
_HOST_TIME_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

#: (canonical type, attribute) pairs that read the simulated clock.
_SIM_TIME_ATTRS = frozenset(
    {
        ("repro.sim.engine.SimulationEngine", "now"),
        ("repro.telemetry.collector.TelemetrySnapshot", "time"),
    }
)


def _custody_tokens(prefix: str) -> frozenset:
    """Module-path components compatible with a stream-name prefix."""
    allowed = _CUSTODY.get(prefix, (f"repro.{prefix}",))
    tokens = {prefix}
    for pkg in allowed:
        tokens.add(pkg.rsplit(".", 1)[-1])
    return frozenset(tokens)


def _custody_ok(prefix: str, module_name: str) -> bool:
    components = set(module_name.split(".")) - {"repro"}
    return bool(_custody_tokens(prefix) & components)


class ReproFlowPolicy:
    """The repo's trust-boundary tables, in :class:`FlowPolicy` shape."""

    def __init__(self, project: ProjectModel) -> None:
        self._project = project

    def call_source(self, canonical: str, args: tuple) -> frozenset:
        kind = _TELEMETRY_SOURCES.get(canonical)
        if kind is not None:
            return frozenset({kind})
        if canonical in _HOST_TIME_CALLS:
            return frozenset({"time.host"})
        return frozenset()

    def attr_source(self, type_name: str, attr: str) -> frozenset:
        canonical = self._project.canonical(type_name)
        if (canonical, attr) in _SIM_TIME_ATTRS:
            return frozenset({"time.sim"})
        return frozenset()

    def is_sanitizer(self, canonical: str) -> bool:
        return canonical in _SANITIZERS or canonical.startswith(
            _SANITIZER_PREFIXES
        )

    def propagates(self, canonical: str) -> bool:
        # Unknown callables (builtins, numpy, helper objects we cannot
        # type) conservatively forward their arguments' taint.
        return True


def _stream_names(value: Value, project: ProjectModel) -> set:
    """Stream names minted by ``RandomSource.stream`` atop ``value``.

    Only *top-level* stream atoms count: a stream nested inside another
    call's arguments was consumed by that call (e.g. a generator object
    constructed around it), so the object being passed is no longer the
    substream itself and custody stays with the consumer.
    """
    names: set = set()
    for atom in value:
        if (
            atom[0] == "call"
            and project.canonical(atom[1]) == _STREAM_CALL
            and len(atom[2]) > 1
        ):
            for lit in atom[2][1]:
                if lit[0] == "lit":
                    names.add(lit[1])
    return names


class FlowAnalyzer:
    """RL501–RL504 over a :class:`ProjectModel`.

    :meth:`analyze` returns diagnostics *before* suppression filtering;
    the runner filters them against each module's suppressions so it can
    also account for suppression usage (``--warn-unused-suppressions``).
    """

    rules = (
        Rule(
            "RL501",
            "untrusted-telemetry-flow",
            Severity.ERROR,
            "raw telemetry reaches threshold learning or a budget check",
            "A meter reading or agent sample that skips the integrity "
            "layer can poison learned thresholds for every later cycle; "
            "byzantine inputs must cross repro.telemetry.integrity first.",
        ),
        Rule(
            "RL502",
            "unchecked-actuation-report",
            Severity.ERROR,
            "DvfsActuator.apply/release result is discarded",
            "A dropped ActuationReport (or release write-count) silently "
            "swallows fencing rejections and lost commands; every "
            "actuation outcome must reach a status check or counter.",
        ),
        Rule(
            "RL503",
            "rng-substream-custody",
            Severity.ERROR,
            "RNG substream used outside the domain it was minted for",
            "Substreams are independence domains keyed by name; a "
            "stream drawn from two domains couples their randomness and "
            "breaks composition-insensitive reproducibility.",
        ),
        Rule(
            "RL504",
            "sim-time-purity",
            Severity.ERROR,
            "simulated time mixed with a host-derived quantity",
            "Sim-clock values and host-clock values live on different "
            "timelines; arithmetic across them is meaningless and "
            "breaks bit-identical replay.",
        ),
    )

    def __init__(self) -> None:
        self._by_id = {rule.rule_id: rule for rule in self.rules}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyze(
        self, project: ProjectModel, targets: frozenset | None = None
    ) -> list[Diagnostic]:
        """Every RL5xx finding in ``project``.

        Args:
            project: The whole-program model (may include context
                modules beyond the lint targets).
            targets: Paths to report on; ``None`` reports on every
                module in the project.
        """
        policy = ReproFlowPolicy(project)
        evaluator = SummaryEvaluator(project, policy)
        sink_params = self._sink_param_fixpoint(project, evaluator)
        found: dict[tuple, Diagnostic] = {}
        for ir in project.modules():
            if targets is not None and ir.path not in targets:
                continue
            for diag in self._check_module(ir, project, evaluator, sink_params):
                key = (diag.line, diag.column, diag.rule_id, diag.message)
                found[(ir.path,) + key] = diag
        return sorted(found.values())

    # ------------------------------------------------------------------
    # RL501 sink-parameter fixpoint over the call graph
    # ------------------------------------------------------------------
    def _sink_param_fixpoint(
        self, project: ProjectModel, evaluator: SummaryEvaluator
    ) -> dict:
        """Functions whose parameters flow (transitively) into a sink.

        Starts from the declared sink table and iterates: if function
        ``F`` passes its parameter ``j`` into a known sink parameter,
        then ``F``'s parameter ``j`` is itself a sink parameter for
        ``F``'s callers.  Converges because the map only grows.
        """
        sink_params: dict = {
            canon: {idx} for canon, idx in sorted(_TELEMETRY_SINKS.items())
        }
        for _ in range(len(project.modules()) + 2):
            changed = False
            for ir in project.modules():
                for fname, fir in sorted(ir.functions.items()):
                    if fname == "<module>":
                        continue
                    own = f"{ir.module_name}.{fname}"
                    for call in fir.calls:
                        canon = project.canonical(call.qualname)
                        params = sink_params.get(canon)
                        if not params or canon == own:
                            continue
                        for idx in sorted(params):
                            if idx + 1 >= len(call.args):
                                continue
                            reached = evaluator.param_indices(
                                call.args[idx + 1]
                            )
                            for j in sorted(reached):
                                mine = sink_params.setdefault(own, set())
                                if j not in mine:
                                    mine.add(j)
                                    changed = True
            if not changed:
                break
        return sink_params

    # ------------------------------------------------------------------
    # Per-module rule evaluation
    # ------------------------------------------------------------------
    def _check_module(
        self,
        ir: ModuleIR,
        project: ProjectModel,
        evaluator: SummaryEvaluator,
        sink_params: dict,
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for _, fir in sorted(ir.functions.items()):
            for call in fir.calls:
                canon = project.canonical(call.qualname)
                diagnostics.extend(
                    self._check_telemetry_sink(
                        ir, canon, call, evaluator, sink_params
                    )
                )
                diagnostics.extend(self._check_actuation(ir, canon, call))
                diagnostics.extend(
                    self._check_custody(ir, canon, call, project)
                )
            for mix in fir.mixes:
                diagnostics.extend(self._check_time_mix(ir, mix, evaluator))
        return diagnostics

    def _check_telemetry_sink(
        self, ir, canon, call, evaluator, sink_params
    ) -> list[Diagnostic]:
        params = sink_params.get(canon)
        if not params:
            return []
        out = []
        for idx in sorted(params):
            if idx + 1 >= len(call.args):
                continue
            kinds = evaluator.concrete(call.args[idx + 1])
            bad = kinds & _TELEMETRY_KINDS
            if not bad:
                continue
            origin = (
                "meter reading" if "telemetry.meter" in bad else "agent sample"
            )
            out.append(
                self._emit(
                    ir,
                    call.line,
                    call.col,
                    "RL501",
                    f"raw {origin} reaches {canon} (argument {idx + 1}) "
                    "without passing repro.telemetry.integrity; screen it "
                    "before it can teach thresholds or gate the budget",
                )
            )
        return out

    def _check_actuation(self, ir, canon, call) -> list[Diagnostic]:
        if canon not in _ACTUATION_CALLS or call.result_used:
            return []
        short = canon.rsplit(".", 1)[-1]
        return [
            self._emit(
                ir,
                call.line,
                call.col,
                "RL502",
                f"result of DvfsActuator.{short}() is discarded; a fenced "
                "or lost actuation would vanish silently — check the "
                "report (or written count) or feed the retry ladder",
            )
        ]

    def _check_custody(self, ir, canon, call, project) -> list[Diagnostic]:
        out = []
        # (a) Draw sites: the receiver carries a named substream.
        method = call.qualname.rsplit(".", 1)[-1]
        if method in _DRAW_METHODS and call.args:
            for name in sorted(_stream_names(call.args[0], project)):
                prefix = name.split(".", 1)[0]
                if not _custody_ok(prefix, ir.module_name):
                    out.append(
                        self._emit(
                            ir,
                            call.line,
                            call.col,
                            "RL503",
                            f'substream "{name}" (domain "{prefix}") drawn '
                            f"in {ir.module_name}, outside its custody "
                            "domain; mint a stream named for this domain "
                            "instead",
                        )
                    )
        # (b) Handing a substream to a project callee in a foreign domain.
        callee_mod, _ = project.split_module(canon)
        if callee_mod is not None and callee_mod != ir.module_name:
            for i, arg in enumerate(call.args):
                if i == 0:
                    continue
                for name in sorted(_stream_names(arg, project)):
                    prefix = name.split(".", 1)[0]
                    if not _custody_ok(prefix, callee_mod):
                        out.append(
                            self._emit(
                                ir,
                                call.line,
                                call.col,
                                "RL503",
                                f'substream "{name}" (domain "{prefix}") '
                                f"passed to {canon} in {callee_mod}, "
                                "outside its custody domain",
                            )
                        )
        return out

    def _check_time_mix(self, ir, mix, evaluator) -> list[Diagnostic]:
        left = evaluator.concrete(mix.left)
        right = evaluator.concrete(mix.right)
        crossed = ("time.sim" in left and "time.host" in right) or (
            "time.host" in left and "time.sim" in right
        )
        if not crossed:
            return []
        return [
            self._emit(
                ir,
                mix.line,
                mix.col,
                "RL504",
                "simulated-clock value mixed with a host-clock value in "
                "arithmetic/comparison; the two timelines are not "
                "commensurable",
            )
        ]

    def _emit(
        self, ir: ModuleIR, line: int, col: int, rule_id: str, message: str
    ) -> Diagnostic:
        rule = self._by_id[rule_id]
        return Diagnostic(
            path=ir.path,
            line=line,
            column=col,
            rule_id=rule_id,
            severity=rule.severity,
            message=message,
        )
