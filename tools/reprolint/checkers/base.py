"""Checker base class shared by all rule families."""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.diagnostics import Diagnostic, Rule
from tools.reprolint.source import ParsedModule


class Checker:
    """One family of rules sharing a single AST walk.

    Subclasses set :attr:`rules` and implement :meth:`check`, yielding
    diagnostics via :meth:`emit` (which fills in rule severity from the
    catalogue).  Suppression filtering happens in the runner, not here.
    """

    rules: tuple[Rule, ...] = ()

    def __init__(self) -> None:
        self._by_id = {rule.rule_id: rule for rule in self.rules}

    def check(self, module: ParsedModule) -> Iterator[Diagnostic]:
        """Yield every violation this family finds in ``module``."""
        raise NotImplementedError

    def emit(
        self, module: ParsedModule, node: ast.AST, rule_id: str, message: str
    ) -> Diagnostic:
        """Build a diagnostic for ``rule_id`` anchored at ``node``."""
        rule = self._by_id[rule_id]
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=message,
        )
