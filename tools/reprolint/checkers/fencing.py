"""Actuation-fencing rules (RL3xx).

The HA layer guarantees that a deposed power manager can never touch the
machine: every DVFS command is stamped with a fencing epoch and rejected
by :class:`repro.core.actuator.DvfsActuator` unless the epoch is
current.  That guarantee holds only while the actuator is the *sole*
writer of DVFS state — one direct ``set_level`` call from control code
reopens the split-brain window the fencing tokens closed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.checkers.base import Checker
from tools.reprolint.diagnostics import Diagnostic, Rule, Severity
from tools.reprolint.source import ParsedModule

#: Where DVFS state may legitimately be written: the machine layer
#: itself (``repro.cluster``: the state arrays, node facade, hardware
#: models) and the epoch-checked command path (the actuator).
FENCED_WRITER_MODULES = ("repro.cluster", "repro.core.actuator")

#: Control code is linted everywhere else under repro.*; code outside
#: the simulator package (tools, scripts) is not control code.
_CONTROL_PACKAGES = ("repro",)

_LEVEL_WRITERS = {"set_level", "set_levels"}


class FencingChecker(Checker):
    """RL301: DVFS state written outside the epoch-checked entry points."""

    rules = (
        Rule(
            "RL301",
            "unfenced-actuation",
            Severity.ERROR,
            "direct DVFS write outside the epoch-checked actuator",
            "Only DvfsActuator (and the repro.cluster machine layer it "
            "drives) may write node levels; a direct write bypasses "
            "fencing, readback verification and the never-upgrade-on-"
            "stale clamp.",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if not module.in_package(*_CONTROL_PACKAGES):
            return
        if module.in_package(*FENCED_WRITER_MODULES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _LEVEL_WRITERS:
                    yield self.emit(
                        module,
                        node,
                        "RL301",
                        f"direct call to {func.attr}() outside the "
                        "actuator; route the command through "
                        "DvfsActuator.apply()/release() so it is "
                        "epoch-fenced and readback-verified",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if self._writes_level(target):
                        yield self.emit(
                            module,
                            node,
                            "RL301",
                            "direct assignment to DVFS level state "
                            "outside the actuator; use "
                            "DvfsActuator.apply()/release()",
                        )

    @staticmethod
    def _writes_level(target: ast.expr) -> bool:
        # ``state.level[ids] = …`` or ``node.level = …``
        if isinstance(target, ast.Subscript):
            target = target.value
        return isinstance(target, ast.Attribute) and target.attr == "level"
