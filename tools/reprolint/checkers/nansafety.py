"""NaN-safety rule for telemetry arithmetic (RL105).

Telemetry fields (``cpu_util``, ``mem_frac``, ``nic_frac``, ``age``,
``coverage``) are the one place NaN legitimately enters the simulator:
a corrupted sensor reports garbage, and IEEE-754 makes every ordering
comparison against it silently ``False``.  A bare ``cpu_util > 0.9``
then quietly misclassifies a poisoned node as idle — no exception, no
log line, just a wrong branch.  This rule forces the guard to be
visible: any function in :mod:`repro.telemetry` or :mod:`repro.power`
that compares a telemetry field must also sanitise NaN in that same
function (``isnan`` / ``isfinite`` / ``nan_to_num`` / ``errstate``),
so the reader can see the poisoned-input story locally.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.checkers.base import Checker
from tools.reprolint.diagnostics import Diagnostic, Rule, Severity
from tools.reprolint.source import ParsedModule, dotted_name

#: Packages whose telemetry comparisons must carry a local NaN guard.
_NAN_GUARDED_PACKAGES = ("repro.telemetry", "repro.power")

#: Telemetry fields NaN can reach through a corrupted sensor.
_TELEMETRY_FIELDS = frozenset(
    {"cpu_util", "mem_frac", "nic_frac", "age", "coverage"}
)

#: Qualified callables that count as a NaN guard.
_GUARD_CALLS = frozenset(
    {
        "math.isnan",
        "math.isfinite",
        "numpy.isnan",
        "numpy.isfinite",
        "numpy.nan_to_num",
        "numpy.errstate",
    }
)

_COMPARISON_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: Value-preserving wrappers unwrapped to find the quantity's name.
_TRANSPARENT_CALLS = frozenset({"float", "abs", "asarray", "array", "round"})


class NanSafetyChecker(Checker):
    """RL105 telemetry comparison without a local NaN guard."""

    rules = (
        Rule(
            "RL105",
            "nan-unsafe-compare",
            Severity.ERROR,
            "telemetry field compared without a NaN guard in scope",
            "NaN from a corrupted sensor makes every ordering comparison "
            "False, silently misclassifying the node.  Guard the value "
            "with np.isnan/np.isfinite/np.nan_to_num (or errstate) in "
            "the same function before comparing.",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Diagnostic]:
        if not module.in_package(*_NAN_GUARDED_PACKAGES):
            return
        yield from self._check_scope(module, module.tree)

    def _check_scope(
        self, module: ParsedModule, scope: ast.AST
    ) -> Iterator[Diagnostic]:
        """Check one scope's own statements, recursing into nested ones.

        A guard call protects exactly the innermost function (or module
        body) it appears in: a guard buried in a closure does not
        license comparisons in its enclosing function, and vice versa.
        """
        own_nodes = list(self._walk_scope(scope))
        guarded = any(
            isinstance(node, ast.Call) and self._is_guard(module, node)
            for node in own_nodes
        )
        if not guarded:
            for node in own_nodes:
                if isinstance(node, ast.Compare):
                    yield from self._check_compare(module, node)
        for node in own_nodes:
            if isinstance(node, _SCOPE_NODES):
                yield from self._check_scope(module, node)

    @staticmethod
    def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
        """Yield ``scope``'s nodes without descending into nested scopes
        (the nested scope node itself is yielded, its body is not)."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, _SCOPE_NODES):
                stack.extend(ast.iter_child_nodes(node))

    def _is_guard(self, module: ParsedModule, node: ast.Call) -> bool:
        raw = dotted_name(node.func)
        if raw is None:
            return False
        qualified = module.imports.qualify(raw)
        qualified = qualified.replace("np.", "numpy.", 1)
        return qualified in _GUARD_CALLS

    def _check_compare(
        self, module: ParsedModule, node: ast.Compare
    ) -> Iterator[Diagnostic]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, _COMPARISON_OPS):
                continue
            for side in (left, right):
                name = self._terminal_name(side)
                if name in _TELEMETRY_FIELDS:
                    yield self.emit(
                        module,
                        node,
                        "RL105",
                        f"'{name}' compared without a NaN guard in this "
                        "function; a corrupted sensor's NaN makes the "
                        "comparison silently False — sanitise with "
                        "np.isnan/np.isfinite/np.nan_to_num first",
                    )
                    break

    @staticmethod
    def _terminal_name(node: ast.expr) -> str | None:
        # Unwrap value-preserving wrappers and indexing so
        # float(snap.cpu_util[i]) < 0.5 still reveals the field name.
        while True:
            if (
                isinstance(node, ast.Call)
                and node.args
                and isinstance(node.func, (ast.Name, ast.Attribute))
                and (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else node.func.attr
                )
                in _TRANSPARENT_CALLS
            ):
                node = node.args[0]
            elif isinstance(node, ast.Subscript):
                node = node.value
            else:
                break
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None
