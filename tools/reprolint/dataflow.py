"""File-local taint extraction: AST → symbolic :class:`ModuleIR`.

This is the intraprocedural half of the whole-program engine.  For every
function (and the module body) it runs a small abstract interpreter over
the statement list:

* **Environment** — each local name maps to an abstract :data:`Value`
  (a frozenset of provenance atoms, see :mod:`tools.reprolint.summaries`).
* **Assignment kills**, augmented assignment and subscript stores union
  (weak update), attribute stores on ``self`` feed a per-class
  attribute-taint table that is iterated to a fixpoint across methods.
* **Branches merge** by union (may-analysis); loop bodies run twice so
  loop-carried taint propagates.
* **Calls** become ``("call", qualname, args)`` atoms.  Receivers are
  typed file-locally from parameter annotations, constructor calls and
  ``self`` attribute assignments, so ``self._meter.read()`` resolves to
  ``repro.power.meter.SystemPowerMeter.read`` without ever looking at
  another file — which is what keeps extraction cacheable per file hash.

Nothing here knows which calls are taint sources or sinks; extraction
records provenance mechanically and the flow policy interprets it
(:mod:`tools.reprolint.checkers.flow`).
"""

from __future__ import annotations

import ast

from tools.reprolint.source import ImportMap, ParsedModule, dotted_name
from tools.reprolint.summaries import (
    EMPTY,
    MAX_ATOM_DEPTH,
    CallRecord,
    FunctionIR,
    MixRecord,
    ModuleIR,
    Value,
    atom_depth,
    flatten_atoms,
    interesting,
)

#: How many rounds the per-class attribute-taint fixpoint may take.
_ATTR_ROUNDS = 3

#: How many passes a loop body gets (propagates loop-carried taint once).
_LOOP_PASSES = 2


def _union(*values: Value) -> Value:
    out: frozenset = EMPTY
    for value in values:
        out = out | value
    return out


# ----------------------------------------------------------------------
# File-local type resolution
# ----------------------------------------------------------------------
def _annotation_type(node: ast.expr | None, imports: ImportMap) -> str | None:
    """Qualified class name named by an annotation, if recognisable.

    Handles ``X``, ``mod.X``, ``X | None``, ``Optional[X]`` and string
    annotations; returns ``None`` for anything fancier.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            resolved = _annotation_type(side, imports)
            if resolved is not None:
                return resolved
        return None
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base is not None and base.rsplit(".", 1)[-1] == "Optional":
            return _annotation_type(node.slice, imports)
        return None
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    dotted = dotted_name(node)
    if dotted is None or dotted in ("None",):
        return None
    return imports.qualify(dotted)


def _looks_like_class(qualified: str) -> bool:
    last = qualified.rsplit(".", 1)[-1].lstrip("_")
    return bool(last) and last[0].isupper()


class _ClassInfo:
    """Per-class attribute types and (fixpointed) attribute taint."""

    def __init__(self, qualname: str) -> None:
        self.qualname = qualname
        self.attr_types: dict[str, str] = {}
        self.attr_taint: dict[str, Value] = {}


class _ModuleContext:
    """Shared extraction state for one file."""

    def __init__(self, pm: ParsedModule) -> None:
        self.module = pm.module_name
        self.imports = pm.imports
        self.consts: dict[str, str] = {}
        self.toplevel: set[str] = set()
        self.classes: dict[str, _ClassInfo] = {}
        for node in pm.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.toplevel.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.toplevel.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.toplevel.add(target.id)
                        if isinstance(node.value, ast.Constant) and isinstance(
                            node.value.value, str
                        ):
                            self.consts[target.id] = node.value.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.toplevel.add(node.target.id)
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, str
                ):
                    self.consts[node.target.id] = node.value.value

    def qualify_local(self, name: str) -> str:
        """Qualified name for a bare name used in this module."""
        qualified = self.imports.qualify(name)
        if qualified == name and name in self.toplevel:
            return f"{self.module}.{name}"
        return qualified


# ----------------------------------------------------------------------
# The abstract interpreter
# ----------------------------------------------------------------------
class _Interp:
    """One pass over one function body (or the module body)."""

    def __init__(
        self,
        ctx: _ModuleContext,
        cls: _ClassInfo | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef | None,
    ) -> None:
        self.ctx = ctx
        self.cls = cls
        self.env: dict[str, Value] = {}
        self.types: dict[str, str] = {}
        self.self_name: str | None = None
        self.returns: Value = EMPTY
        self.calls: list[CallRecord] = []
        self.mixes: list[MixRecord] = []
        self.attr_writes: dict[str, Value] = {}
        self.loads: set[str] = set()
        self._deferred_use: list[tuple[int, str]] = []
        if func is not None:
            args = func.args
            ordered = list(args.posonlyargs) + list(args.args)
            start = 0
            if cls is not None and ordered and not _is_static(func):
                self.self_name = ordered[0].arg
                start = 1
            index = 0
            for arg in ordered[start:]:
                self.env[arg.arg] = frozenset({("param", index)})
                hint = _annotation_type(arg.annotation, ctx.imports)
                if hint is not None:
                    self.types[arg.arg] = hint
                index += 1
            for arg in list(args.kwonlyargs):
                self.env[arg.arg] = frozenset({("param", index)})
                hint = _annotation_type(arg.annotation, ctx.imports)
                if hint is not None:
                    self.types[arg.arg] = hint
                index += 1

    # -- finishing ------------------------------------------------------
    def finish(self, name: str) -> FunctionIR:
        if self._deferred_use:
            calls = list(self.calls)
            for idx, var in self._deferred_use:
                if var in self.loads:
                    record = calls[idx]
                    calls[idx] = CallRecord(
                        line=record.line,
                        col=record.col,
                        qualname=record.qualname,
                        args=record.args,
                        result_used=True,
                        recv_type=record.recv_type,
                    )
            self.calls = calls
        return FunctionIR(
            name=name,
            returns=self.returns,
            calls=tuple(self.calls),
            mixes=tuple(self.mixes),
        )

    # -- statements -----------------------------------------------------
    def exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, result_used=False)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, assign_targets=stmt.targets)
            for target in stmt.targets:
                self.assign(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, assign_targets=[stmt.target])
                self.assign(stmt.target, value)
            if isinstance(stmt.target, ast.Name):
                hint = _annotation_type(stmt.annotation, self.ctx.imports)
                if hint is not None:
                    self.types[stmt.target.id] = hint
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prior = self.env.get(stmt.target.id, EMPTY)
                self.env[stmt.target.id] = prior | value
            else:
                self.assign(stmt.target, value, weak=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns = self.returns | self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self._branch([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self.eval(stmt.iter)
            self.assign(stmt.target, iter_value)
            for _ in range(_LOOP_PASSES):
                self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(_LOOP_PASSES):
                self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            branches = [stmt.body + stmt.orelse]
            for handler in stmt.handlers:
                branches.append(handler.body)
            self._branch(branches)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            if stmt.msg is not None:
                self.eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject)
            self._branch([case.body for case in stmt.cases])
        # Nested defs, classes, imports, pass/break/continue: no dataflow.

    def _branch(self, bodies: list[list[ast.stmt]]) -> None:
        base_env = dict(self.env)
        merged: dict[str, Value] = {}
        for body in bodies:
            self.env = dict(base_env)
            self.exec_body(body)
            for name, value in self.env.items():
                merged[name] = merged.get(name, EMPTY) | value
        # A branch may be skipped entirely: keep pre-branch bindings too.
        for name, value in base_env.items():
            merged[name] = merged.get(name, EMPTY) | value
        self.env = merged

    def assign(self, target: ast.expr, value: Value, weak: bool = False) -> None:
        if isinstance(target, ast.Name):
            if weak:
                self.env[target.id] = self.env.get(target.id, EMPTY) | value
            else:
                self.env[target.id] = value
            hint = self._value_type(value)
            if hint is not None:
                self.types[target.id] = hint
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == self.self_name:
                prior = self.attr_writes.get(target.attr, EMPTY)
                self.attr_writes[target.attr] = prior | value
            else:
                self.eval(base)
        elif isinstance(target, ast.Subscript):
            self.eval(target.slice)
            if isinstance(target.value, ast.Name):
                prior = self.env.get(target.value.id, EMPTY)
                self.env[target.value.id] = prior | value
            else:
                self.assign(target.value, value, weak=True)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, value, weak=weak)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value, weak=weak)

    def _value_type(self, value: Value) -> str | None:
        """Type assigned by ``x = ClassName(...)`` (constructor calls)."""
        for atom in value:
            if (
                atom[0] == "call"
                and "." in atom[1]
                and not atom[1].startswith("?")
                and _looks_like_class(atom[1])
            ):
                return atom[1]
        return None

    # -- expressions ----------------------------------------------------
    def eval(
        self,
        node: ast.expr,
        result_used: bool = True,
        assign_targets: list[ast.expr] | None = None,
    ) -> Value:
        if isinstance(node, ast.Call):
            return self._eval_call(node, result_used, assign_targets)
        if isinstance(node, ast.Name):
            self.loads.add(node.id)
            if node.id in self.env:
                return self.env[node.id]
            const = self.ctx.consts.get(node.id)
            if const is not None:
                return frozenset({("lit", const)})
            return EMPTY
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return frozenset({("lit", node.value)})
            return EMPTY
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            value = self.eval(node.value)
            self.eval(node.slice)
            return value
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            if interesting(left) and interesting(right):
                self.mixes.append(
                    MixRecord(node.lineno, node.col_offset + 1, left, right)
                )
            return left | right
        if isinstance(node, ast.Compare):
            left = self.eval(node.left)
            out = left
            for comparator in node.comparators:
                right = self.eval(comparator)
                if interesting(left) and interesting(right):
                    self.mixes.append(
                        MixRecord(node.lineno, node.col_offset + 1, left, right)
                    )
                out = out | right
                left = right
            return out
        if isinstance(node, ast.BoolOp):
            return _union(*[self.eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _union(*[self.eval(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self.eval(k) for k in node.keys if k is not None]
            parts.extend(self.eval(v) for v in node.values)
            return _union(*parts)
        if isinstance(node, ast.JoinedStr):
            return _union(*[self.eval(v) for v in node.values])
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            return EMPTY if node.value is None else self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            self.assign(node.target, value)
            return value
        if isinstance(node, ast.Lambda):
            return self.eval(node.body)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                self.assign(gen.target, self.eval(gen.iter))
                for cond in gen.ifs:
                    self.eval(cond)
            if isinstance(node, ast.DictComp):
                return self.eval(node.key) | self.eval(node.value)
            return self.eval(node.elt)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return EMPTY
        return EMPTY

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        base = node.value
        if isinstance(base, ast.Name) and base.id == self.self_name:
            value = EMPTY if self.cls is None else self.cls.attr_taint.get(
                node.attr, EMPTY
            )
            return value
        base_value = self.eval(base)
        base_type = self._expr_type(base)
        if base_type is not None:
            return base_value | frozenset({("attr", base_type, node.attr)})
        return base_value

    def _expr_type(self, node: ast.expr) -> str | None:
        """File-locally inferred type of an expression, if any."""
        if isinstance(node, ast.Name):
            return self.types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == self.self_name:
                if self.cls is not None:
                    return self.cls.attr_types.get(node.attr)
                return None
            base_type = self._expr_type(base)
            if base_type is not None:
                # One extra hop through a sibling class in this file.
                info = self.ctx.classes.get(base_type)
                if info is not None:
                    return info.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            qualname = self._callee_qualname(node)[0]
            if (
                qualname is not None
                and not qualname.startswith("?")
                and _looks_like_class(qualname)
            ):
                return qualname
        return None

    def _callee_qualname(
        self, node: ast.Call
    ) -> tuple[str | None, str | None]:
        """``(qualname, receiver_type)`` for a call's callee."""
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.env:
                return None, None  # calling a local value: unknown target
            return self.ctx.qualify_local(func.id), None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == self.self_name:
                if self.cls is not None:
                    return f"{self.cls.qualname}.{func.attr}", self.cls.qualname
                return f"?.{func.attr}", None
            recv_type = self._expr_type(base)
            if recv_type is not None:
                return f"{recv_type}.{func.attr}", recv_type
            dotted = dotted_name(func)
            if dotted is not None:
                head = dotted.split(".", 1)[0]
                if head not in self.env:
                    return self.ctx.qualify_local(dotted), None
            return f"?.{func.attr}", None
        return None, None

    def _eval_call(
        self,
        node: ast.Call,
        result_used: bool,
        assign_targets: list[ast.expr] | None,
    ) -> Value:
        qualname, recv_type = self._callee_qualname(node)
        recv_value = EMPTY
        if isinstance(node.func, ast.Attribute):
            recv_value = self.eval(node.func.value)
        arg_values: list[Value] = [recv_value]
        for arg in node.args:
            arg_values.append(self.eval(arg))
        for keyword in node.keywords:
            arg_values.append(self.eval(keyword.value))
        if qualname is None:
            return _union(*arg_values)
        used = result_used
        deferred_name: str | None = None
        if assign_targets is not None:
            used, deferred_name = _targets_use(assign_targets)
        atom = ("call", qualname, tuple(arg_values))
        if atom_depth(atom) > MAX_ATOM_DEPTH:
            capped = tuple(flatten_atoms(v) for v in arg_values)
            atom = ("call", qualname, capped)
        record = CallRecord(
            line=node.lineno,
            col=node.col_offset + 1,
            qualname=qualname,
            args=atom[2],
            result_used=used,
            recv_type=recv_type,
        )
        self.calls.append(record)
        if deferred_name is not None:
            self._deferred_use.append((len(self.calls) - 1, deferred_name))
        return frozenset({atom})


def _targets_use(targets: list[ast.expr]) -> tuple[bool, str | None]:
    """Is a call result assigned to these targets "used"?

    Attribute/subscript/tuple targets store the value somewhere that
    outlives the statement, so they count as used.  A single bare name
    only counts once the name is *read* — the caller patches that in
    after the body walk (deferred-use bookkeeping).
    """
    if len(targets) == 1 and isinstance(targets[0], ast.Name):
        return False, targets[0].id
    return True, None


def _is_static(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in func.decorator_list:
        name = dotted_name(decorator)
        if name is not None and name.rsplit(".", 1)[-1] == "staticmethod":
            return True
    return False


# ----------------------------------------------------------------------
# Per-file driver
# ----------------------------------------------------------------------
def _collect_class_types(
    node: ast.ClassDef, ctx: _ModuleContext
) -> _ClassInfo:
    info = _ClassInfo(f"{ctx.module}.{node.name}")
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(method, ast.AnnAssign) and isinstance(
                method.target, ast.Name
            ):
                hint = _annotation_type(method.annotation, ctx.imports)
                if hint is not None:
                    info.attr_types[method.target.id] = hint
            continue
        param_types: dict[str, str] = {}
        ordered = list(method.args.posonlyargs) + list(method.args.args)
        self_name = ordered[0].arg if ordered and not _is_static(method) else None
        for arg in ordered + list(method.args.kwonlyargs):
            hint = _annotation_type(arg.annotation, ctx.imports)
            if hint is not None:
                param_types[arg.arg] = hint
        for stmt in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != self_name
            ):
                continue
            if target.attr in info.attr_types:
                continue
            hint = _annotation_type(annotation, ctx.imports)
            if hint is None:
                hint = _infer_rhs_type(value, param_types, ctx)
            if hint is not None:
                info.attr_types[target.attr] = hint
    return info


def _infer_rhs_type(
    value: ast.expr | None,
    param_types: dict[str, str],
    ctx: _ModuleContext,
) -> str | None:
    if value is None:
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted is not None:
            qualified = ctx.qualify_local(dotted)
            if _looks_like_class(qualified):
                return qualified
        return None
    if isinstance(value, ast.IfExp):
        for arm in (value.body, value.orelse):
            hint = _infer_rhs_type(arm, param_types, ctx)
            if hint is not None:
                return hint
    return None


def _run_function(
    ctx: _ModuleContext,
    cls: _ClassInfo | None,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    name: str,
) -> tuple[FunctionIR, dict[str, Value]]:
    interp = _Interp(ctx, cls, func)
    interp.exec_body(func.body)
    return interp.finish(name), interp.attr_writes


def extract_module(pm: ParsedModule) -> ModuleIR:
    """Extract the symbolic taint summary for one parsed file."""
    ctx = _ModuleContext(pm)
    for node in pm.tree.body:
        if isinstance(node, ast.ClassDef):
            ctx.classes[f"{ctx.module}.{node.name}"] = _collect_class_types(
                node, ctx
            )

    functions: dict[str, FunctionIR] = {}

    # Module body (imports/constants/wiring) as a pseudo-function.
    module_interp = _Interp(ctx, None, None)
    module_interp.exec_body(
        [
            stmt
            for stmt in pm.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
    )
    functions["<module>"] = module_interp.finish("<module>")

    for node in pm.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fir, _ = _run_function(ctx, None, node, node.name)
            functions[node.name] = fir
        elif isinstance(node, ast.ClassDef):
            info = ctx.classes[f"{ctx.module}.{node.name}"]
            methods = [
                m
                for m in node.body
                if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            # Attribute-taint fixpoint across the class's methods.
            results: dict[str, FunctionIR] = {}
            for _ in range(_ATTR_ROUNDS):
                results = {}
                writes: dict[str, Value] = {}
                for method in methods:
                    key = f"{node.name}.{method.name}"
                    fir, method_writes = _run_function(ctx, info, method, key)
                    results[key] = fir
                    for attr, value in method_writes.items():
                        writes[attr] = writes.get(attr, EMPTY) | value
                changed = False
                for attr, value in writes.items():
                    merged = info.attr_taint.get(attr, EMPTY) | value
                    if merged != info.attr_taint.get(attr, EMPTY):
                        info.attr_taint[attr] = merged
                        changed = True
                if not changed:
                    break
            functions.update(results)

    return ModuleIR(
        module_name=pm.module_name,
        path=pm.path,
        imports=tuple(
            sorted(set(pm.imports.known().values()) | pm.imports.modules())
        ),
        defs=frozenset(ctx.toplevel),
        exports=dict(pm.imports.known()),
        functions=functions,
        line_suppressions={
            line: set(rules) for line, rules in pm.line_suppressions.items()
        },
        file_suppressions=set(pm.file_suppressions),
    )
