"""Parsed-source model: one module, its AST, imports and suppressions."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


def module_name_for_path(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Rooted at the last ``repro`` path component when present (so both
    ``src/repro/power/meter.py`` and fixture trees like
    ``tests/lint/fixtures/repro/power/x.py`` resolve to ``repro.…``),
    else at the component after a ``src`` directory, else the bare stem.
    """
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    for root in ("repro", "tools"):
        if root in stem_parts:
            idx = len(stem_parts) - 1 - stem_parts[::-1].index(root)
            dotted = stem_parts[idx:]
            break
    else:
        if "src" in stem_parts and stem_parts.index("src") + 1 < len(stem_parts):
            dotted = stem_parts[stem_parts.index("src") + 1 :]
        else:
            dotted = [path.stem]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


class ImportMap:
    """Maps local names to the qualified names they were imported as.

    ``import numpy as np`` → ``np: numpy``;
    ``from random import choice`` → ``choice: random.choice``;
    ``from numpy import random as npr`` → ``npr: numpy.random``.
    Relative imports resolve against the module's own package — which is
    the module itself for a package ``__init__``.
    """

    def __init__(
        self, tree: ast.Module, module_name: str, is_package: bool = False
    ) -> None:
        self._names: dict[str, str] = {}
        #: Full dotted module paths named by import statements — a plain
        #: ``import a.b`` binds only ``a`` locally but still creates a
        #: dependency edge on ``a.b``.
        self._modules: set[str] = set()
        if is_package:
            package = module_name
        else:
            package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._names[local] = target
                    self._modules.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = package.split(".") if package else []
                    cut = len(prefix_parts) - (node.level - 1)
                    prefix_parts = prefix_parts[: max(cut, 0)]
                    base = ".".join(prefix_parts + ([base] if base else []))
                if base:
                    self._modules.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{base}.{alias.name}" if base else alias.name

    def qualify(self, dotted: str) -> str:
        """Expand the first component of ``dotted`` through the imports."""
        head, _, rest = dotted.partition(".")
        base = self._names.get(head, head)
        return f"{base}.{rest}" if rest else base

    def known(self) -> dict[str, str]:
        """Local name → qualified origin, for every imported name."""
        return dict(self._names)

    def modules(self) -> frozenset[str]:
        """Full dotted module paths named by import statements."""
        return frozenset(self._modules)


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ParsedModule:
    """Everything checkers need about one source file."""

    path: str
    module_name: str
    source: str
    tree: ast.Module
    imports: ImportMap
    #: line number → rule ids suppressed on that line ({"*"} = all).
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file ({"*"} = all).
    file_suppressions: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, source: str | None = None) -> "ParsedModule":
        """Parse ``path`` (or ``source`` standing in for its contents).

        Raises:
            SyntaxError: if the file does not parse — surfaced to the
                caller so the CLI can report it as a hard error.
        """
        text = path.read_text(encoding="utf-8") if source is None else source
        tree = ast.parse(text, filename=str(path))
        name = module_name_for_path(path)
        mod = cls(
            path=str(path),
            module_name=name,
            source=text,
            tree=tree,
            imports=ImportMap(tree, name, is_package=path.stem == "__init__"),
        )
        mod._collect_suppressions()
        return mod

    def _collect_suppressions(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except tokenize.TokenError:  # pragma: no cover - parse succeeded
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {r.strip().upper() for r in match.group(2).split(",") if r.strip()}
            rules = {"*" if r == "ALL" else r for r in rules}
            if match.group(1) == "disable-file":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(tok.start[0], set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` disabled at ``line`` (or file-wide)?"""
        if {"*", rule_id} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line, ())
        return "*" in on_line or rule_id in on_line

    def in_package(self, *packages: str) -> bool:
        """Does this module live under any of the dotted ``packages``?"""
        return any(
            self.module_name == p or self.module_name.startswith(p + ".")
            for p in packages
        )
