"""reprolint: domain-invariant static analysis for the repro simulator.

The simulator's headline guarantees — bit-identical crash replay,
never-upgrade-on-stale telemetry, epoch-fenced actuation — rest on code
disciplines that no general-purpose linter knows about: all randomness
must flow from :mod:`repro.sim.random`, quantities carry SI units via the
:mod:`repro.types` aliases, and DVFS state is only written through the
epoch-checked actuator entry points.  ``reprolint`` machine-checks those
disciplines with repo-specific AST checkers.

Usage::

    python -m tools.reprolint src/repro            # lint the simulator
    python -m tools.reprolint --list-rules         # rule catalogue
    python -m tools.reprolint p.py --format=github # CI annotations

Suppress a diagnostic with a trailing ``# reprolint: disable=RL101``
comment (comma-separate several rule ids), or a whole file with a
``# reprolint: disable-file=RL101`` comment anywhere in the file.

See ``docs/static-analysis.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from tools.reprolint.diagnostics import Diagnostic, Severity
from tools.reprolint.runner import lint_paths, lint_source

__all__ = ["Diagnostic", "Severity", "lint_paths", "lint_source", "__version__"]

__version__ = "1.0.0"
