"""Project model: file walk, hash-keyed summary cache, name resolution.

The whole-program pass needs three global facts that no single file can
provide: the **import graph** (which project modules depend on which),
the **canonical name** behind a re-export chain (``repro.power.SystemPowerMeter``
→ ``repro.power.meter.SystemPowerMeter`` through the package
``__init__``), and the **summary** of any function a call site resolves
to.  :class:`ProjectModel` supplies all three on top of per-file
:class:`~tools.reprolint.summaries.ModuleIR` extracted by
:mod:`tools.reprolint.dataflow`.

Extraction is file-local, so summaries are cached in one JSON file keyed
by each file's SHA-256.  A warm run re-reads bytes, re-hashes, and skips
extraction for every unchanged file; only resolution (cheap) runs fresh.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from tools.reprolint.dataflow import extract_module
from tools.reprolint.source import ParsedModule
from tools.reprolint.summaries import (
    FunctionIR,
    ModuleIR,
    decode_module,
    encode_module,
)

#: Bump when the IR shape or extraction semantics change: stale caches
#: from older versions are discarded wholesale rather than misread.
CACHE_VERSION = 2


def file_hash(data: bytes) -> str:
    """Content hash used as the summary-cache key."""
    return hashlib.sha256(data).hexdigest()


class ProjectModel:
    """Whole-program view over a set of extracted module summaries."""

    def __init__(self, modules: Iterable[ModuleIR]) -> None:
        self._by_name: dict[str, ModuleIR] = {}
        self._by_path: dict[str, ModuleIR] = {}
        for ir in modules:
            self._by_name[ir.module_name] = ir
            self._by_path[ir.path] = ir
        #: Cache-effectiveness counters, populated by :meth:`build`.
        self.cache_hits = 0
        self.cache_misses = 0
        self._canon_memo: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        files: Iterable[Path],
        cache_path: Path | None = None,
    ) -> tuple["ProjectModel", list[str]]:
        """Extract (or load from cache) summaries for ``files``.

        Returns:
            ``(project, parse_errors)`` — unparseable files are skipped
            and reported as strings, mirroring the per-file runner.
        """
        cached: dict[str, dict] = {}
        if cache_path is not None and cache_path.exists():
            try:
                raw = json.loads(cache_path.read_text(encoding="utf-8"))
                if raw.get("version") == CACHE_VERSION:
                    cached = raw.get("files", {})
            except (json.JSONDecodeError, OSError):
                cached = {}

        modules: list[ModuleIR] = []
        parse_errors: list[str] = []
        hits = 0
        misses = 0
        fresh: dict[str, dict] = {}
        for path in sorted(files):
            try:
                data = path.read_bytes()
            except OSError as exc:
                parse_errors.append(f"{path}:0: {exc}")
                continue
            digest = file_hash(data)
            key = str(path)
            entry = cached.get(key)
            if entry is not None and entry.get("hash") == digest:
                ir = decode_module(entry["ir"], digest)
                hits += 1
                # Reuse the cached encoding verbatim — re-encoding every
                # unchanged summary would cost more than decoding it.
                fresh[key] = entry
            else:
                try:
                    pm = ParsedModule.parse(
                        path, source=data.decode("utf-8")
                    )
                except (SyntaxError, UnicodeDecodeError) as exc:
                    lineno = getattr(exc, "lineno", 0) or 0
                    msg = getattr(exc, "msg", None) or str(exc)
                    parse_errors.append(f"{path}:{lineno}: {msg}")
                    continue
                ir = extract_module(pm)
                ir.file_hash = digest
                misses += 1
                fresh[key] = {"hash": digest, "ir": encode_module(ir)}
            modules.append(ir)

        project = cls(modules)
        project.cache_hits = hits
        project.cache_misses = misses
        # A fully warm run leaves the cache byte-identical: skip the
        # serialize-and-write entirely (it dominates warm wall time).
        unchanged = misses == 0 and set(fresh) == set(cached)
        if cache_path is not None and not unchanged:
            try:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                cache_path.write_text(
                    json.dumps(
                        {"version": CACHE_VERSION, "files": fresh},
                        sort_keys=True,
                    ),
                    encoding="utf-8",
                )
            except OSError:
                pass  # cache is best-effort; analysis already succeeded
        return project, parse_errors

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def modules(self) -> list[ModuleIR]:
        """Every module in the project, sorted by module name."""
        return [
            self._by_name[name] for name in sorted(self._by_name)
        ]

    def module(self, name: str) -> ModuleIR | None:
        """The summary for dotted module ``name``, if in the project."""
        return self._by_name.get(name)

    def module_for_path(self, path: str) -> ModuleIR | None:
        """The summary for the file at ``path``, if in the project."""
        return self._by_path.get(path)

    def split_module(self, qualname: str) -> tuple[str | None, str]:
        """``(module, remainder)`` for the longest known module prefix."""
        parts = qualname.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self._by_name:
                return prefix, ".".join(parts[cut:])
        return None, qualname

    def canonical(self, qualname: str) -> str:
        """Resolve ``qualname`` through ``__init__`` re-export chains.

        ``repro.telemetry.TelemetryCollector.collect`` →
        ``repro.telemetry.collector.TelemetryCollector.collect`` when the
        package ``__init__`` re-exports the class.  Names outside the
        project pass through unchanged.
        """
        memo = self._canon_memo.get(qualname)
        if memo is not None:
            return memo
        seen: set[str] = set()
        current = qualname
        while current not in seen:
            seen.add(current)
            module, rest = self.split_module(current)
            if module is None or not rest:
                break
            ir = self._by_name[module]
            head, _, tail = rest.partition(".")
            if head in ir.defs:
                break
            origin = ir.exports.get(head)
            if origin is None:
                break
            current = f"{origin}.{tail}" if tail else origin
        self._canon_memo[qualname] = current
        return current

    def function_ir(self, canonical: str) -> FunctionIR | None:
        """The summary for a project function/method, if it exists.

        Accepts ``module.func``, ``module.Class.method`` and class
        constructors (``module.Class`` resolves to ``Class.__init__``).
        """
        module, rest = self.split_module(canonical)
        if module is None or not rest:
            return None
        ir = self._by_name[module]
        found = ir.functions.get(rest)
        if found is not None:
            return found
        if "." not in rest:
            return ir.functions.get(f"{rest}.__init__")
        return None

    def import_graph(self) -> dict[str, set[str]]:
        """Project-internal dependency edges: module → imported modules."""
        graph: dict[str, set[str]] = {}
        for ir in self.modules():
            edges: set[str] = set()
            for imported in ir.imports:
                target, _ = self.split_module(imported)
                if target is not None and target != ir.module_name:
                    edges.add(target)
            graph[ir.module_name] = edges
        return graph
