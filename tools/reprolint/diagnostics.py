"""Diagnostic records and severities emitted by reprolint checkers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


def _escape_data(value: str) -> str:
    """Escape a workflow-command data section (the message)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (file, title, ...)."""
    return _escape_data(value).replace(":", "%3A").replace(",", "%2C")


class Severity(enum.IntEnum):
    """How bad a finding is.  Ordering matters: higher is worse."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Rule:
    """Static metadata for one reprolint rule.

    Attributes:
        rule_id: Stable identifier, e.g. ``"RL101"``.  The first digit
            groups rules by family (1xx determinism, 2xx units,
            3xx fencing, 4xx hygiene).
        name: Short kebab-case name, e.g. ``"unseeded-rng"``.
        severity: Default severity of diagnostics for this rule.
        summary: One-line description shown by ``--list-rules``.
        rationale: Which simulator invariant the rule guards.
    """

    rule_id: str
    name: str
    severity: Severity = field(compare=False)
    summary: str = field(compare=False)
    rationale: str = field(compare=False, default="")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violated at a precise source location."""

    path: str
    line: int
    column: int
    rule_id: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)

    def format_text(self) -> str:
        """``path:line:col: severity RLxxx message`` (human/editor)."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity} {self.rule_id} {self.message}"
        )

    def format_github(self) -> str:
        """A GitHub Actions workflow-command annotation line.

        Message and properties are percent-escaped per the workflow-
        command grammar, so diagnostic text containing ``::`` or
        newlines cannot terminate the command early and forge extra
        annotations.
        """
        kind = "error" if self.severity is Severity.ERROR else "warning"
        path = _escape_property(self.path)
        return (
            f"::{kind} file={path},line={self.line},col={self.column},"
            f"title=reprolint {self.rule_id}::{_escape_data(self.message)}"
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (``--format=json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
