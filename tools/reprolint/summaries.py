"""Taint-summary IR and the whole-program evaluator.

The dataflow engine (:mod:`tools.reprolint.dataflow`) extracts one
:class:`ModuleIR` per source file.  Extraction is deliberately
**file-local** — it resolves names only through the file's own imports
and annotations — so a summary depends on nothing but the file's bytes
and can be cached keyed by the file hash (:mod:`tools.reprolint.project`).

A summary is *symbolic*: abstract values are sets of provenance atoms
(``("param", i)``, ``("call", qualname, args)``, ``("attr", type, name)``,
``("lit", s)``, ``("src", kind)``).  Nothing in the IR says what is
tainted; that interpretation belongs to a flow *policy*
(:mod:`tools.reprolint.checkers.flow`).  The :class:`SummaryEvaluator`
here performs the whole-program step: it resolves call atoms through the
project's re-export tables, applies callee summaries (call-site
sensitive, with memoisation, a recursion guard and a depth cap) and
reduces every symbolic value to the set of concrete source kinds that
may flow into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from tools.reprolint.project import ProjectModel

# An atom is a small tuple; a Value is a frozenset of atoms.  Atom kinds:
#   ("param", i)            taint of the i-th parameter (self excluded)
#   ("call", q, args)       result of calling ``q``; args[0] is the
#                           receiver value, args[1:] the argument values
#   ("attr", type, name)    attribute ``name`` read off a ``type`` value
#   ("lit", s)              a string literal (carries stream names)
#   ("src", kind)           a concrete source kind (evaluator output)
Atom = tuple
Value = frozenset

EMPTY: Value = frozenset()

#: Evaluation limits: recursion depth through callee summaries and the
#: structural depth of nested call atoms kept during extraction.
MAX_EVAL_DEPTH = 16
MAX_ATOM_DEPTH = 5


def atom_depth(atom: Atom) -> int:
    """Structural nesting depth of a (possibly nested) call atom."""
    if atom[0] != "call":
        return 1
    inner = 0
    for arg in atom[2]:
        for sub in arg:
            d = atom_depth(sub)
            if d > inner:
                inner = d
    return 1 + inner


def flatten_atoms(value: Value) -> Value:
    """Erase call structure, keeping every leaf atom (conservative)."""
    out: set[Atom] = set()
    stack = list(value)
    while stack:
        atom = stack.pop()
        if atom[0] == "call":
            for arg in atom[2]:
                stack.extend(arg)
        else:
            out.add(atom)
    return frozenset(out)


def interesting(value: Value) -> bool:
    """Whether ``value`` carries any provenance beyond string literals."""
    return any(atom[0] != "lit" for atom in value)


@dataclass(frozen=True)
class CallRecord:
    """One call site inside a function body."""

    line: int
    col: int
    qualname: str
    args: tuple  # tuple[Value, ...]; args[0] = receiver value
    result_used: bool = True
    recv_type: str | None = None


@dataclass(frozen=True)
class MixRecord:
    """One arithmetic/comparison site combining two tracked values."""

    line: int
    col: int
    left: Value = EMPTY
    right: Value = EMPTY


@dataclass
class FunctionIR:
    """Symbolic summary of one function (or the module body)."""

    name: str
    returns: Value = EMPTY
    calls: tuple = ()  # tuple[CallRecord, ...]
    mixes: tuple = ()  # tuple[MixRecord, ...]


@dataclass
class ModuleIR:
    """Everything the whole-program pass needs about one file."""

    module_name: str
    path: str
    file_hash: str = ""
    imports: tuple = ()  # tuple[str, ...] qualified imported names
    defs: frozenset = frozenset()  # top-level names defined in the file
    exports: dict = field(default_factory=dict)  # name -> qualified origin
    functions: dict = field(default_factory=dict)  # qualpath -> FunctionIR
    line_suppressions: dict = field(default_factory=dict)  # line -> {rule}
    file_suppressions: set = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Mirror of :meth:`ParsedModule.is_suppressed` for cached IR."""
        if {"*", rule_id} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line, ())
        return "*" in on_line or rule_id in on_line


class FlowPolicy(Protocol):
    """What the evaluator needs to know about sources and sanitizers."""

    def call_source(self, canonical: str, args: tuple) -> frozenset:
        """Concrete source kinds produced by calling ``canonical``."""

    def attr_source(self, type_name: str, attr: str) -> frozenset:
        """Concrete source kinds produced by reading ``type.attr``."""

    def is_sanitizer(self, canonical: str) -> bool:
        """Whether a call to ``canonical`` launders its result clean."""

    def propagates(self, canonical: str) -> bool:
        """Whether an *unknown* callable forwards argument taint."""


class SummaryEvaluator:
    """Reduces symbolic values to concrete source kinds, whole-program."""

    def __init__(self, project: "ProjectModel", policy: FlowPolicy) -> None:
        self._project = project
        self._policy = policy
        self._memo: dict = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def concrete(self, value: Value) -> frozenset:
        """Source kinds that may flow into ``value`` without caller context.

        ``("param", i)`` atoms contribute nothing: a parameter's taint is
        the caller's to report (see :meth:`concrete_with_args`).
        """
        return self._eval(value, None, 0, frozenset())

    def concrete_with_args(self, value: Value, args: tuple) -> frozenset:
        """Like :meth:`concrete` but with parameters bound to ``args``.

        ``args`` uses call-record indexing (``args[0]`` = receiver), so
        parameter ``i`` reads ``args[i + 1]``.
        """
        return self._eval(value, args, 0, frozenset())

    def param_indices(self, value: Value) -> frozenset:
        """Parameter indices whose taint may reach ``value``.

        Looks through call atoms into callee summaries so a chain like
        ``return helper(p)`` still reports ``p``.
        """
        out: set[int] = set()
        self._params(value, out, 0, frozenset())
        return frozenset(out)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval(self, value: Value, args, depth: int, stack: frozenset) -> frozenset:
        if depth > MAX_EVAL_DEPTH:
            return frozenset()
        key = (value, args)
        if args is None and key in self._memo:
            return self._memo[key]
        out: set = set()
        for atom in value:
            tag = atom[0]
            if tag == "src":
                out.add(atom[1])
            elif tag == "param":
                if args is not None and atom[1] + 1 < len(args):
                    out |= self._eval(args[atom[1] + 1], None, depth + 1, stack)
            elif tag == "attr":
                out |= self._policy.attr_source(atom[1], atom[2])
            elif tag == "call":
                out |= self._eval_call(atom[1], atom[2], depth, stack)
            # "lit" atoms are inert provenance for stream names.
        result = frozenset(out)
        if args is None:
            self._memo[key] = result
        return result

    def _eval_call(self, qualname: str, args: tuple, depth: int, stack) -> frozenset:
        canon = self._project.canonical(qualname)
        policy = self._policy
        if policy.is_sanitizer(canon):
            return frozenset()
        source = policy.call_source(canon, args)
        if source:
            return frozenset(source)
        fir = self._project.function_ir(canon)
        if fir is not None:
            if canon in stack:
                return frozenset()  # recursion: cut the cycle
            return self._eval(
                fir.returns, args, depth + 1, stack | {canon}
            )
        if not policy.propagates(canon):
            return frozenset()
        out: set = set()
        for arg in args:
            out |= self._eval(arg, None, depth + 1, stack)
        return frozenset(out)

    def _params(self, value: Value, out: set, depth: int, stack) -> None:
        if depth > MAX_EVAL_DEPTH:
            return
        for atom in value:
            tag = atom[0]
            if tag == "param":
                out.add(atom[1])
            elif tag == "call":
                canon = self._project.canonical(atom[1])
                if self._policy.is_sanitizer(canon):
                    continue
                fir = self._project.function_ir(canon)
                if fir is not None and canon not in stack:
                    inner: set = set()
                    self._params(fir.returns, inner, depth + 1, stack | {canon})
                    for i in sorted(inner):
                        if i + 1 < len(atom[2]):
                            self._params(atom[2][i + 1], out, depth + 1, stack)
                elif fir is None and self._policy.propagates(canon):
                    for arg in atom[2]:
                        self._params(arg, out, depth + 1, stack)


# ----------------------------------------------------------------------
# JSON serialisation (the summary cache)
# ----------------------------------------------------------------------
def encode_value(value: Value) -> list:
    """JSON-ready encoding of a value (sorted for determinism)."""
    return sorted((encode_atom(a) for a in value), key=repr)


def encode_atom(atom: Atom) -> list:
    if atom[0] == "call":
        return ["call", atom[1], [encode_value(v) for v in atom[2]]]
    return list(atom)


def decode_value(data: Iterable) -> Value:
    return frozenset(decode_atom(a) for a in data)


def decode_atom(data: list) -> Atom:
    if data[0] == "call":
        return ("call", data[1], tuple(decode_value(v) for v in data[2]))
    return tuple(data)


def encode_module(ir: ModuleIR) -> dict:
    """One cache entry for :class:`ModuleIR`."""
    return {
        "module": ir.module_name,
        "path": ir.path,
        "imports": list(ir.imports),
        "defs": sorted(ir.defs),
        "exports": dict(sorted(ir.exports.items())),
        "functions": {
            name: {
                "returns": encode_value(fir.returns),
                "calls": [
                    {
                        "line": c.line,
                        "col": c.col,
                        "qualname": c.qualname,
                        "args": [encode_value(v) for v in c.args],
                        "used": c.result_used,
                        "recv_type": c.recv_type,
                    }
                    for c in fir.calls
                ],
                "mixes": [
                    {
                        "line": m.line,
                        "col": m.col,
                        "left": encode_value(m.left),
                        "right": encode_value(m.right),
                    }
                    for m in fir.mixes
                ],
            }
            for name, fir in sorted(ir.functions.items())
        },
        "line_suppressions": {
            str(line): sorted(rules)
            for line, rules in sorted(ir.line_suppressions.items())
        },
        "file_suppressions": sorted(ir.file_suppressions),
    }


def decode_module(data: dict, file_hash: str) -> ModuleIR:
    functions = {}
    for name, f in data["functions"].items():
        functions[name] = FunctionIR(
            name=name,
            returns=decode_value(f["returns"]),
            calls=tuple(
                CallRecord(
                    line=c["line"],
                    col=c["col"],
                    qualname=c["qualname"],
                    args=tuple(decode_value(v) for v in c["args"]),
                    result_used=c["used"],
                    recv_type=c.get("recv_type"),
                )
                for c in f["calls"]
            ),
            mixes=tuple(
                MixRecord(
                    line=m["line"],
                    col=m["col"],
                    left=decode_value(m["left"]),
                    right=decode_value(m["right"]),
                )
                for m in f["mixes"]
            ),
        )
    return ModuleIR(
        module_name=data["module"],
        path=data["path"],
        file_hash=file_hash,
        imports=tuple(data["imports"]),
        defs=frozenset(data["defs"]),
        exports=dict(data["exports"]),
        functions=functions,
        line_suppressions={
            int(line): set(rules)
            for line, rules in data["line_suppressions"].items()
        },
        file_suppressions=set(data["file_suppressions"]),
    )
