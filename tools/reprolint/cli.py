"""``python -m tools.reprolint`` — the command-line front end."""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from tools.reprolint.checkers import all_rules
from tools.reprolint.diagnostics import Severity
from tools.reprolint.runner import run

#: Exit codes: clean / diagnostics found / usage or parse error.
EXIT_CLEAN = 0
EXIT_DIAGNOSTICS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Domain-invariant static analysis for the repro simulator: "
            "determinism (RL1xx), SI-unit discipline (RL2xx), actuation "
            "fencing (RL3xx), hygiene (RL4xx) and whole-program trust-"
            "boundary flow (RL5xx) rules."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "github", "json"), default="text",
        help="diagnostic output format (github = Actions annotations)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help=(
            "comma-separated rule ids or id prefixes to run "
            "(e.g. RL501 or RL5; default: all)"
        ),
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids or id prefixes to skip",
    )
    parser.add_argument(
        "--fail-on", choices=("warning", "error", "never"), default="warning",
        help="minimum severity that causes a nonzero exit (default: any)",
    )
    parser.add_argument(
        "--no-flow", action="store_true",
        help="skip the whole-program flow pass (per-file rules only)",
    )
    parser.add_argument(
        "--flow-cache", metavar="PATH",
        help=(
            "JSON summary-cache file for the whole-program pass, keyed "
            "by file hash; warm runs skip extraction for unchanged files"
        ),
    )
    parser.add_argument(
        "--warn-unused-suppressions", action="store_true",
        help=(
            "report '# reprolint: disable' comments that suppress "
            "nothing as RL901 warnings"
        ),
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a per-rule violation count after the diagnostics",
    )
    parser.add_argument(
        "--statistics-json", metavar="PATH",
        help=(
            "write per-rule counts and cache statistics as JSON to PATH "
            "(the CI lint-budget artifact)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.rule_id}  {str(rule.severity):<7}  {rule.name}: {rule.summary}")


def _resolve_selection(args: argparse.Namespace) -> list[str] | None:
    known = {rule.rule_id for rule in all_rules()}

    def parse(raw: str, flag: str) -> set[str]:
        ids: set[str] = set()
        for part in raw.split(","):
            token = part.strip().upper()
            if not token:
                continue
            if token in known:
                ids.add(token)
                continue
            # Prefixes select whole families: RL5 → RL501..RL504.
            matches = {r for r in known if r.startswith(token)}
            if not matches:
                raise SystemExit(
                    f"error: unknown rule id(s) in {flag}: {token}"
                )
            ids |= matches
        return ids

    selected = known if args.select is None else parse(args.select, "--select")
    if args.ignore is not None:
        selected = selected - parse(args.ignore, "--ignore")
    return sorted(selected)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN
    try:
        select = _resolve_selection(args)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return EXIT_ERROR

    result = run(
        args.paths,
        select=select,
        flow=not args.no_flow,
        flow_cache=None if args.flow_cache is None else Path(args.flow_cache),
        warn_unused=args.warn_unused_suppressions,
    )
    diagnostics = result.diagnostics
    parse_errors = result.parse_errors

    if args.format == "json":
        print(json.dumps([d.as_dict() for d in diagnostics], indent=2))
    else:
        for diag in diagnostics:
            line = (
                diag.format_github() if args.format == "github" else diag.format_text()
            )
            print(line)
    for err in parse_errors:
        print(f"parse error: {err}", file=sys.stderr)

    counts = Counter(d.rule_id for d in diagnostics)
    if args.statistics and diagnostics:
        print()
        for rule_id, count in sorted(counts.items()):
            print(f"{rule_id}: {count}")
    if args.statistics_json is not None:
        rule_counts = {rule_id: 0 for rule_id in (select or [])}
        rule_counts.update(dict(counts))
        payload = {
            "paths": list(args.paths),
            "files_checked": result.files_checked,
            "parse_errors": len(parse_errors),
            "rule_counts": rule_counts,
            "cache": {
                "hits": result.cache_hits,
                "misses": result.cache_misses,
            },
        }
        Path(args.statistics_json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format != "json" and not diagnostics and not parse_errors:
        print(f"reprolint: clean ({', '.join(args.paths)})", file=sys.stderr)

    if parse_errors:
        return EXIT_ERROR
    if args.fail_on == "never":
        return EXIT_CLEAN
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    if any(d.severity >= threshold for d in diagnostics):
        return EXIT_DIAGNOSTICS
    return EXIT_CLEAN
