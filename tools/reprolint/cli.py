"""``python -m tools.reprolint`` — the command-line front end."""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Sequence

from tools.reprolint.checkers import all_rules
from tools.reprolint.diagnostics import Severity
from tools.reprolint.runner import lint_paths

#: Exit codes: clean / diagnostics found / usage or parse error.
EXIT_CLEAN = 0
EXIT_DIAGNOSTICS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Domain-invariant static analysis for the repro simulator: "
            "determinism (RL1xx), SI-unit discipline (RL2xx), actuation "
            "fencing (RL3xx) and hygiene (RL4xx) rules."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "github", "json"), default="text",
        help="diagnostic output format (github = Actions annotations)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--fail-on", choices=("warning", "error", "never"), default="warning",
        help="minimum severity that causes a nonzero exit (default: any)",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a per-rule violation count after the diagnostics",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.rule_id}  {str(rule.severity):<7}  {rule.name}: {rule.summary}")


def _resolve_selection(args: argparse.Namespace) -> list[str] | None:
    known = {rule.rule_id for rule in all_rules()}

    def parse(raw: str, flag: str) -> set[str]:
        ids = {part.strip().upper() for part in raw.split(",") if part.strip()}
        unknown = ids - known
        if unknown:
            raise SystemExit(
                f"error: unknown rule id(s) in {flag}: {', '.join(sorted(unknown))}"
            )
        return ids

    selected = known if args.select is None else parse(args.select, "--select")
    if args.ignore is not None:
        selected = selected - parse(args.ignore, "--ignore")
    return sorted(selected)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN
    try:
        select = _resolve_selection(args)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return EXIT_ERROR

    diagnostics, parse_errors = lint_paths(args.paths, select=select)

    if args.format == "json":
        print(json.dumps([d.as_dict() for d in diagnostics], indent=2))
    else:
        for diag in diagnostics:
            line = (
                diag.format_github() if args.format == "github" else diag.format_text()
            )
            print(line)
    for err in parse_errors:
        print(f"parse error: {err}", file=sys.stderr)

    if args.statistics and diagnostics:
        counts = Counter(d.rule_id for d in diagnostics)
        print()
        for rule_id, count in sorted(counts.items()):
            print(f"{rule_id}: {count}")
    if args.format != "json" and not diagnostics and not parse_errors:
        print(f"reprolint: clean ({', '.join(args.paths)})", file=sys.stderr)

    if parse_errors:
        return EXIT_ERROR
    if args.fail_on == "never":
        return EXIT_CLEAN
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    if any(d.severity >= threshold for d in diagnostics):
        return EXIT_DIAGNOSTICS
    return EXIT_CLEAN
