"""Walk files, run every checker, filter suppressions.

Two entry points:

* :func:`lint_paths` — the original per-file pass (kept for callers
  that only need single-file rules).
* :func:`run` — the full pipeline: per-file rules, then the
  whole-program flow pass (RL5xx) over the project model, suppression
  filtering with *usage accounting* (``--warn-unused-suppressions``
  reports suppressions that never matched a real finding as RL901),
  and summary-cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from tools.reprolint.checkers import all_checkers
from tools.reprolint.checkers.flow import FlowAnalyzer
from tools.reprolint.diagnostics import Diagnostic, Severity
from tools.reprolint.project import ProjectModel
from tools.reprolint.source import ParsedModule

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}

#: The meta-diagnostic for suppressions that suppress nothing.  Not part
#: of the rule catalogue (it cannot be selected or suppressed itself);
#: emitted only under ``--warn-unused-suppressions``.
USELESS_SUPPRESSION_ID = "RL901"


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def raw_module_diagnostics(
    module: ParsedModule, select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Per-file diagnostics for ``module`` *before* suppression filtering."""
    diagnostics: list[Diagnostic] = []
    for checker in all_checkers():
        # A checker none of whose rules are selected never runs at all —
        # `--select=RL5` pays only for parsing plus the flow pass.
        if select is not None and not any(
            rule.rule_id in select for rule in checker.rules
        ):
            continue
        for diag in checker.check(module):
            if select is not None and diag.rule_id not in select:
                continue
            diagnostics.append(diag)
    return diagnostics


def lint_module(
    module: ParsedModule, select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """All non-suppressed diagnostics for one parsed module."""
    return sorted(
        diag
        for diag in raw_module_diagnostics(module, select=select)
        if not module.is_suppressed(diag.rule_id, diag.line)
    )


def lint_source(
    source: str, path: str | Path = "<string>", select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Lint a source string as if it lived at ``path`` (for tests)."""
    module = ParsedModule.parse(Path(path), source=source)
    return lint_module(module, select=select)


def lint_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> tuple[list[Diagnostic], list[str]]:
    """Lint every Python file reachable from ``paths`` (per-file rules).

    Returns:
        ``(diagnostics, parse_errors)`` — files that fail to parse are
        reported as strings rather than aborting the whole run.
    """
    diagnostics: list[Diagnostic] = []
    parse_errors: list[str] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        try:
            module = ParsedModule.parse(file_path)
        except SyntaxError as exc:
            parse_errors.append(f"{file_path}:{exc.lineno or 0}: {exc.msg}")
            continue
        diagnostics.extend(lint_module(module, select=select))
    return sorted(diagnostics), parse_errors


@dataclass
class LintRun:
    """Everything one full lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)
    files_checked: int = 0
    #: Whole-program summary-cache effectiveness (0/0 when flow is off).
    cache_hits: int = 0
    cache_misses: int = 0


def run(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    flow: bool = True,
    flow_cache: Path | None = None,
    warn_unused: bool = False,
) -> LintRun:
    """The full lint pipeline over ``paths``.

    Args:
        paths: Files or directories to lint.
        select: Rule ids to run (``None`` = all).
        flow: Run the whole-program RL5xx pass over the project model.
        flow_cache: Optional JSON summary-cache path (keyed by file
            hash) so warm whole-program runs skip extraction.
        warn_unused: Emit :data:`USELESS_SUPPRESSION_ID` warnings for
            suppression comments that matched no finding.
    """
    files = iter_python_files(Path(p) for p in paths)
    result = LintRun()
    parsed: dict[str, ParsedModule] = {}
    raw: list[Diagnostic] = []
    for file_path in files:
        try:
            module = ParsedModule.parse(file_path)
        except SyntaxError as exc:
            result.parse_errors.append(
                f"{file_path}:{exc.lineno or 0}: {exc.msg}"
            )
            continue
        parsed[str(file_path)] = module
        raw.extend(raw_module_diagnostics(module, select=select))
    result.files_checked = len(parsed)

    if flow and parsed:
        good = [fp for fp in files if str(fp) in parsed]
        project, _ = ProjectModel.build(good, cache_path=flow_cache)
        result.cache_hits = project.cache_hits
        result.cache_misses = project.cache_misses
        flow_diags = FlowAnalyzer().analyze(
            project, targets=frozenset(parsed)
        )
        if select is not None:
            flow_diags = [d for d in flow_diags if d.rule_id in select]
        raw.extend(flow_diags)

    kept: list[Diagnostic] = []
    for diag in raw:
        module = parsed.get(diag.path)
        if module is not None and module.is_suppressed(diag.rule_id, diag.line):
            continue
        kept.append(diag)
    if warn_unused:
        kept.extend(_unused_suppressions(parsed, raw, select))
    result.diagnostics = sorted(kept)
    return result


def _unused_suppressions(
    parsed: dict[str, ParsedModule],
    raw: Sequence[Diagnostic],
    select: Sequence[str] | None,
) -> list[Diagnostic]:
    """RL901 findings: suppressions that never matched a diagnostic.

    A suppression is judged only when the run could have produced the
    rule it names (``select`` covers it, or it is ``*``) — a narrow
    ``--select`` must not flag suppressions for rules it never ran.
    """
    selected = None if select is None else set(select)

    def judged(rule: str) -> bool:
        return rule == "*" or selected is None or rule in selected

    fired_lines: dict[str, dict[int, set[str]]] = {}
    fired_rules: dict[str, set[str]] = {}
    for diag in raw:
        fired_lines.setdefault(diag.path, {}).setdefault(
            diag.line, set()
        ).add(diag.rule_id)
        fired_rules.setdefault(diag.path, set()).add(diag.rule_id)

    out: list[Diagnostic] = []

    def emit(path: str, line: int, rule: str, where: str) -> None:
        label = "any rule" if rule == "*" else rule
        out.append(
            Diagnostic(
                path=path,
                line=line,
                column=1,
                rule_id=USELESS_SUPPRESSION_ID,
                severity=Severity.WARNING,
                message=(
                    f"useless suppression: {label} never fires {where}; "
                    "remove the stale '# reprolint: disable' comment"
                ),
            )
        )

    for path in sorted(parsed):
        module = parsed[path]
        at_line = fired_lines.get(path, {})
        in_file = fired_rules.get(path, set())
        for line in sorted(module.line_suppressions):
            for rule in sorted(module.line_suppressions[line]):
                if not judged(rule):
                    continue
                hits = at_line.get(line, set())
                used = bool(hits) if rule == "*" else rule in hits
                if not used:
                    emit(path, line, rule, "on this line")
        for rule in sorted(module.file_suppressions):
            if not judged(rule):
                continue
            used = bool(in_file) if rule == "*" else rule in in_file
            if not used:
                emit(path, 1, rule, "in this file")
    return out


def max_severity(diagnostics: Sequence[Diagnostic]) -> Severity | None:
    """Worst severity present, or ``None`` when clean."""
    return max((d.severity for d in diagnostics), default=None)
