"""Walk files, run every checker, filter suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from tools.reprolint.checkers import all_checkers
from tools.reprolint.diagnostics import Diagnostic, Severity
from tools.reprolint.source import ParsedModule

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def lint_module(
    module: ParsedModule, select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """All non-suppressed diagnostics for one parsed module."""
    diagnostics: list[Diagnostic] = []
    for checker in all_checkers():
        for diag in checker.check(module):
            if select is not None and diag.rule_id not in select:
                continue
            if module.is_suppressed(diag.rule_id, diag.line):
                continue
            diagnostics.append(diag)
    return sorted(diagnostics)


def lint_source(
    source: str, path: str | Path = "<string>", select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Lint a source string as if it lived at ``path`` (for tests)."""
    module = ParsedModule.parse(Path(path), source=source)
    return lint_module(module, select=select)


def lint_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> tuple[list[Diagnostic], list[str]]:
    """Lint every Python file reachable from ``paths``.

    Returns:
        ``(diagnostics, parse_errors)`` — files that fail to parse are
        reported as strings rather than aborting the whole run.
    """
    diagnostics: list[Diagnostic] = []
    parse_errors: list[str] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        try:
            module = ParsedModule.parse(file_path)
        except SyntaxError as exc:
            parse_errors.append(f"{file_path}:{exc.lineno or 0}: {exc.msg}")
            continue
        diagnostics.extend(lint_module(module, select=select))
    return sorted(diagnostics), parse_errors


def max_severity(diagnostics: Sequence[Diagnostic]) -> Severity | None:
    """Worst severity present, or ``None`` when clean."""
    return max((d.severity for d in diagnostics), default=None)
