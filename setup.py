"""Setup shim.

The execution environment has setuptools but no ``wheel`` package, so the
PEP 517 editable-install path (which shells out to ``bdist_wheel``) fails.
This shim lets ``pip install -e . --no-use-pep517`` take the legacy
``setup.py develop`` route; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
