"""Ablations — design knobs the paper fixes without exploring.

* ``T_g`` (steady-green patience, paper: 10 cycles) — small T_g restores
  performance fast but risks oscillation; large T_g holds nodes down.
* Threshold margins (paper: 7%/16% from Fan et al.) — tighter margins
  throttle earlier.
* Control period τ — slower control reacts later.

Each sweep runs the Figure 7 protocol per setting on a lighter
configuration (these are 2-D sweeps; the headline Figure 7 bench covers
the calibrated scale).
"""

from __future__ import annotations

import pytest

from repro.analysis import Table
from repro.experiments import ExperimentConfig
from repro.experiments.ablations import (
    sweep_control_period,
    sweep_margins,
    sweep_steady_green,
)

from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def ablation_config():
    """Lighter than calibrated: these benches run many protocol pairs."""
    return ExperimentConfig(
        seed=2012,
        runtime_scale=0.1,
        training_duration_s=2400.0,
        run_duration_s=2400.0,
    )


def _print_rows(title: str, rows) -> None:
    print_banner(title)
    table = Table(
        ["setting", "Performance", "Pmax (norm)", "dPxT reduction", "CPLJ", "red?"]
    )
    for row in rows:
        table.add_row(
            row.label,
            f"{row.performance:.4f}",
            f"{row.p_max_ratio:.3f}",
            f"{row.overspend_reduction:.1%}",
            f"{row.cplj_fraction:.1%}",
            "yes" if row.entered_red else "no",
        )
    print(table.render())


def test_ablation_steady_green(benchmark, ablation_config):
    rows = benchmark.pedantic(
        sweep_steady_green,
        args=(ablation_config,),
        kwargs={"values": (2, 5, 10, 20, 40)},
        rounds=1,
        iterations=1,
    )
    _print_rows("Ablation: T_g (steady-green cycles; paper uses 10)", rows)
    for row in rows:
        assert row.performance > 0.85
        assert row.overspend_reduction > 0.2


def test_ablation_margins(benchmark, ablation_config):
    rows = benchmark.pedantic(
        sweep_margins, args=(ablation_config,), rounds=1, iterations=1
    )
    _print_rows("Ablation: threshold margins (paper: 7%/16%)", rows)
    # Wider margins throttle earlier and cut more overspend: the sweep's
    # reduction must grow from the tightest to the widest setting, and
    # the paper's 7%/16% pair must deliver a substantial cut.  (The
    # tightest margins barely engage, so their reduction may be ~0 or
    # even slightly negative from run-to-run noise.)
    assert rows[-1].overspend_reduction > rows[0].overspend_reduction
    paper_row = next(r for r in rows if "7%" in r.label)
    assert paper_row.overspend_reduction > 0.3


def test_ablation_scheduler(benchmark, ablation_config):
    """FCFS (the paper's launcher) vs EASY backfill under MPC capping.

    Backfill keeps the machine fuller (fewer drain troughs), which
    raises average power but should not break the capping guarantees.
    """
    from dataclasses import replace

    from repro.experiments import run_experiment
    from repro.metrics import compare_runs

    def run_pair(config):
        rows = []
        for flavour in ("fcfs", "backfill"):
            cfg = replace(config, scheduler=flavour)
            baseline = run_experiment(cfg, None)
            capped = run_experiment(cfg, "mpc")
            rows.append((flavour, baseline, capped))
        return rows

    rows = benchmark.pedantic(
        run_pair, args=(ablation_config,), rounds=1, iterations=1
    )
    print_banner("Ablation: FCFS vs EASY backfill (workload substrate)")
    table = Table(
        ["scheduler", "jobs finished", "avg power (uncapped)",
         "Performance", "dPxT reduction", "red?"]
    )
    for flavour, baseline, capped in rows:
        c = compare_runs(capped.metrics, baseline.metrics)
        table.add_row(
            flavour,
            baseline.metrics.finished_jobs,
            f"{baseline.metrics.avg_power_w / 1e3:.2f} kW",
            f"{c.performance:.4f}",
            f"{c.overspend_reduction:.1%}",
            "yes" if capped.entered_red else "no",
        )
    print(table.render())
    # Capping works under either scheduler.
    for flavour, baseline, capped in rows:
        c = compare_runs(capped.metrics, baseline.metrics)
        assert c.overspend_reduction > 0.3, flavour
        assert c.performance > 0.85, flavour
    # Backfill throughput is at least FCFS's (same stream, fuller machine).
    assert rows[1][1].metrics.finished_jobs >= rows[0][1].metrics.finished_jobs - 5


def test_ablation_control_period(benchmark, ablation_config):
    rows = benchmark.pedantic(
        sweep_control_period,
        args=(ablation_config,),
        kwargs={"periods_s": (0.5, 1.0, 2.0, 5.0)},
        rounds=1,
        iterations=1,
    )
    _print_rows("Ablation: control period tau", rows)
    # Faster control (smaller tau) should cap the overspend at least as
    # well as the slowest setting.
    assert rows[0].overspend_reduction >= rows[-1].overspend_reduction - 0.15
