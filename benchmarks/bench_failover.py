"""Controller crash-recovery — failover sweep and the fencing invariant.

Two questions, answered across a full crash-timing sweep:

1. **Does fencing reject every pre-crash in-flight command?**  A
   deterministic world where every first command issue fails and is
   retried guarantees commands are in flight on (almost) every cycle;
   crashing the controller at *each* cycle of the window in turn must
   leave ``epoch_conflicts == 0`` (no cycle acted on by two manager
   epochs — i.e. zero double-applies) and must fence exactly the
   commands that were in flight at the crash, no more, no fewer.

2. **What does a crash cost at experiment scale?**  ``run_failover``
   pairs each crashed run with its uncrashed twin and reports downtime,
   failover counts and the worst post-recovery power divergence, for
   warm-standby and cold-restart deployments.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import Table
from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.actuator import DvfsActuator
from repro.core.policies import make_policy
from repro.experiments import ExperimentConfig, run_failover
from repro.faults import FaultScenario
from repro.ha import HaConfig, HaController, StateJournal
from repro.power import PowerModel, SystemPowerMeter

from benchmarks.conftest import print_banner


# ----------------------------------------------------------------------
# Part 1: the fencing invariant, exhaustively over crash timing
# ----------------------------------------------------------------------
class _RetryInjector:
    """Every node's *first* command issue is lost and retried next cycle.

    This keeps the actuator's in-flight queue non-empty after every
    acting cycle, so a crash at any point has commands to strand.
    """

    def __init__(self, num_nodes: int) -> None:
        self._failed_once: set[int] = set()
        self.command_delay_cycles = 2
        self.scenario = FaultScenario.none()
        self.meter_outages = 0
        self.meter_outage_cycles = 0
        self.node_crashes = 0
        self.offline_node_cycles = 0
        self._num_nodes = num_nodes

    def begin_cycle(self, now: float) -> None:
        pass

    def meter_available(self) -> bool:
        return True

    def perturb_meter(self, reading_w: float) -> float:
        return reading_w

    def telemetry_drop_mask(self, node_ids):
        return np.zeros(len(node_ids), dtype=bool)

    def command_outcomes(self, node_ids):
        lost = np.asarray(
            [int(i) not in self._failed_once for i in node_ids], dtype=bool
        )
        self._failed_once.update(int(i) for i in node_ids)
        return lost, np.zeros(len(node_ids), dtype=bool)


def _make_fencing_world():
    cluster = Cluster.tianhe_1a(num_nodes=16)
    state = cluster.state
    state.assign_job(np.arange(0, 4), 0)
    state.set_load(np.arange(0, 4), cpu_util=0.3, mem_frac=0.2, nic_frac=0.1)
    state.assign_job(np.arange(4, 10), 1)
    state.set_load(np.arange(4, 10), cpu_util=0.9, mem_frac=0.5, nic_frac=0.3)
    state.assign_job(np.arange(10, 14), 2)
    state.set_load(np.arange(10, 14), cpu_util=0.6, mem_frac=0.4, nic_frac=0.2)
    return cluster


def _drive_load(state, rng):
    busy = np.flatnonzero(state.job_id >= 0)
    u = np.clip(state.cpu_util[busy] + rng.normal(0, 0.1, len(busy)), 0.05, 1.0)
    state.set_load(
        busy,
        cpu_util=u,
        mem_frac=state.mem_frac[busy],
        nic_frac=state.nic_frac[busy],
    )


def _fencing_run(crash_at: int, total: int = 60) -> dict:
    """One scripted-crash run; returns the fencing ledger."""
    cluster = _make_fencing_world()
    model = PowerModel(cluster.spec)
    p0 = model.system_power(cluster.state)
    injector = _RetryInjector(16)
    journal = StateJournal(compact_every=8)
    actuator = DvfsActuator(cluster.state, injector)

    def make_manager() -> PowerManager:
        return PowerManager(
            cluster,
            NodeSets(cluster),
            SystemPowerMeter(model, cluster.state),
            ThresholdController.fixed(p_low=p0 * 0.93, p_high=p0 * 0.99),
            make_policy("mpc"),
            steady_green_cycles=3,
            fault_injector=injector,
            actuator=actuator,
            journal=journal,
        )

    primary = make_manager()
    ha = HaController(
        primary,
        make_manager,
        journal,
        HaConfig.warm(lease_timeout_cycles=2, crash_at_cycles=(crash_at,)),
    )
    rng = np.random.default_rng(7)
    inflight_at_crash = 0
    for k in range(1, total + 1):
        pending_before = actuator.pending_commands
        _drive_load(cluster.state, rng)
        ha.control_cycle(float(k))
        if k == crash_at:
            # The crash struck before the cycle acted: what was pending
            # after cycle k-1 is exactly the stranded in-flight set.
            inflight_at_crash = pending_before
    stats = ha.stats()
    return {
        "crash_at": crash_at,
        "inflight": inflight_at_crash,
        "fenced": stats.fenced_commands,
        "stale_pending": actuator.stale_pending_commands,
        "epoch_conflicts": stats.epoch_conflicts,
        "failovers": stats.failovers,
        "final_epoch": stats.final_epoch,
    }


def test_fencing_rejects_every_precrash_inflight_command(benchmark):
    crash_cycles = list(range(2, 42))

    def sweep():
        return [_fencing_run(c) for c in crash_cycles]

    ledgers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_banner("Fencing: pre-crash in-flight commands across crash timing")
    table = Table(
        ["crash cycle", "in-flight", "fenced", "stale pending", "epoch conflicts"]
    )
    for led in ledgers:
        table.add_row(
            led["crash_at"],
            led["inflight"],
            led["fenced"],
            led["stale_pending"],
            led["epoch_conflicts"],
        )
    print(table.render())

    # The sweep must actually exercise the hazard: some crash timings
    # strand in-flight commands.
    assert sum(led["inflight"] for led in ledgers) > 0
    for led in ledgers:
        # Zero double-applies: no cycle is ever acted on by two epochs.
        assert led["epoch_conflicts"] == 0
        assert led["failovers"] == 1 and led["final_epoch"] == 1
        # Every pre-crash in-flight command was rejected at the fence
        # (and nothing else was): by the end of the run all stranded
        # commands have come due and bounced.
        assert led["stale_pending"] == 0
        assert led["fenced"] == led["inflight"], led


# ----------------------------------------------------------------------
# Part 2: crash cost at experiment scale, warm vs cold
# ----------------------------------------------------------------------
def _failover_grid():
    base = ExperimentConfig.quick(
        num_nodes=32,
        training_duration_s=120.0,
        run_duration_s=300.0,
        faults=FaultScenario.light(),
    )
    rows = []
    for crash_at in (30, 100, 200):
        for mode in ("warm", "cold"):
            ha = (
                HaConfig.warm(crash_at_cycles=(crash_at,))
                if mode == "warm"
                else HaConfig.restart_only(crash_at_cycles=(crash_at,))
            )
            result = run_failover(replace(base, ha=ha), "mpc")
            rows.append((crash_at, mode, result))
    return rows


def test_failover_cost_sweep(benchmark):
    rows = benchmark.pedantic(_failover_grid, rounds=1, iterations=1)
    print_banner("Failover: crash cost vs timing and deployment mode")
    table = Table(
        [
            "crash cycle",
            "mode",
            "downtime (s)",
            "failovers",
            "fenced",
            "epoch conflicts",
            "divergence (W)",
        ]
    )
    for crash_at, mode, res in rows:
        table.add_row(
            crash_at,
            mode,
            f"{res.downtime_seconds:.0f}",
            res.failovers,
            res.ha_stats.fenced_commands,
            res.ha_stats.epoch_conflicts,
            f"{res.divergence_w:.0f}",
        )
    print(table.render())

    for crash_at, mode, res in rows:
        expected = (
            res.crashed.config.ha.lease_timeout_cycles
            if mode == "warm"
            else res.crashed.config.ha.restart_cycles
        ) * res.crashed.config.control_period_s
        assert res.downtime_seconds == pytest.approx(expected)
        assert res.failovers == 1
        assert res.ha_stats.epoch_conflicts == 0
        # Warm standby strictly dominates cold restart on downtime.
        assert res.crashed.ha_stats.crashes == 1
    warm = {c: r for c, m, r in rows if m == "warm"}
    cold = {c: r for c, m, r in rows if m == "cold"}
    for c in warm:
        assert warm[c].downtime_seconds < cold[c].downtime_seconds
