"""Baseline comparison — the paper's architecture vs §I.B prior art.

The paper argues its job-granular, subset-monitored design beats the
related work qualitatively; this bench measures it: Algorithm 1 + MPC
against a Wang-style proportional MIMO feedback controller and a
Femal-style two-level budget partitioner, all on the identical job
stream and protocol.

Expected shape: all three cap the peak, but the paper's design keeps
more jobs performance-lossless per watt shed (it concentrates throttling
on one job at a time, exploiting the bulk-synchronous bottleneck
argument of §IV.A), while the budget partitioner issues an order of
magnitude more DVFS commands (it re-clamps every node every cycle).
"""

from __future__ import annotations

import pytest

from repro.analysis import Table
from repro.core.baselines import BudgetPartitionManager, MimoFeedbackManager
from repro.experiments import run_experiment
from repro.metrics import compare_runs

from benchmarks.conftest import print_banner


def _run_all(config):
    baseline = run_experiment(config, None)
    rows = [
        ("algorithm1+mpc", run_experiment(config, "mpc")),
        (
            "mimo-feedback",
            run_experiment(
                config, "mpc", label="mimo", manager_factory=MimoFeedbackManager
            ),
        ),
        (
            "budget-partition",
            run_experiment(
                config, "mpc", label="budget", manager_factory=BudgetPartitionManager
            ),
        ),
    ]
    return baseline, rows


def test_baseline_comparison(benchmark, bench_config):
    baseline, rows = benchmark.pedantic(
        _run_all, args=(bench_config,), rounds=1, iterations=1
    )
    print_banner("Baselines: Algorithm 1 vs MIMO feedback vs budget partitioning")
    table = Table(
        ["controller", "Performance", "CPLJ", "Pmax (norm)",
         "dPxT reduction", "DVFS commands"]
    )
    comparisons = {}
    for name, result in rows:
        c = compare_runs(result.metrics, baseline.metrics)
        comparisons[name] = (c, result)
        table.add_row(
            name,
            f"{c.performance:.4f}",
            f"{c.cplj_fraction:.1%}",
            f"{c.p_max_ratio:.3f}",
            f"{c.overspend_reduction:.1%}",
            result.commands_sent,
        )
    print(table.render())

    paper_c, paper_r = comparisons["algorithm1+mpc"]
    mimo_c, mimo_r = comparisons["mimo-feedback"]
    budget_c, budget_r = comparisons["budget-partition"]

    # Every controller achieves real capping.
    for c, _ in comparisons.values():
        assert c.p_max_ratio < 1.0
        assert c.overspend_reduction > 0.3
    # The paper's job-granular design preserves more lossless jobs than
    # the node-granular baselines.
    assert paper_c.cplj_fraction > mimo_c.cplj_fraction
    assert paper_c.cplj_fraction > budget_c.cplj_fraction
    # Budget partitioning churns far more actuation.
    assert budget_r.commands_sent > 2 * paper_r.commands_sent
