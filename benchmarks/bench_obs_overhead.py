"""Observability overhead guard (the obs cost budget).

Replicates ``bench_micro``'s 128-node manager control cycle and measures
it under every observability configuration:

* **disabled** — ``Observability.disabled()`` (and the ``obs=None``
  default): must be *unmeasurable* against the un-instrumented baseline;
* **production** — ``ObsConfig(metrics=True)``, the always-on
  configuration: metric series are either collected at export time (zero
  hot-path cost) or one inline ``observe()``/store per cycle.  Budget:
  **≤5%** on the bench_micro cycle time;
* **flight** — ``ObsConfig(metrics=True, flight_recorder_cycles=64)``:
  adds per-cycle span trees feeding the flight-recorder ring.  A
  diagnostic mode — per-stage attribute capture alone costs more than
  the 5% always-on budget allows — held to a documented **≤30%**
  ceiling;
* **debug** — ``ObsConfig.full()``: whole-run trace retention on top.
  Postmortem/debugging mode, documented **≤50%** ceiling.

Span-tree cost is O(1) per cycle (independent of node count), so the
relative cost of the diagnostic modes shrinks on larger clusters; the
ceilings here are for the paper-scale 128-node hot loop.

Methodology: wall clocks on shared CI boxes are far too noisy to resolve
a 5% budget, so the budget test measures **CPU time** with a paired,
order-alternating, min-of-reps protocol and calibrates its own noise
floor from an A/A (baseline vs baseline) split.  Every bound is the max
of the relative budget and the measured noise — on a quiet machine the
budget binds, on a loud one the test degrades gracefully instead of
flaking.

Run with ``pytest benchmarks/bench_obs_overhead.py -s``.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.policies import make_policy
from repro.obs import Observability, ObsConfig
from repro.power import PowerModel, SystemPowerMeter

# Paired-measurement protocol: each timing runs CYCLES control cycles on
# a freshly built manager; each comparison alternates measurement order
# over REPS repetitions and keeps the per-variant minimum.
CYCLES = 600
REPS = 10

#: Budgets, as fractions of the baseline cycle time.
PRODUCTION_BUDGET = 0.05
FLIGHT_CEILING = 0.30
DEBUG_CEILING = 0.50


def build_manager(obs: Observability | None) -> PowerManager:
    """The bench_micro manager: 128 loaded Tianhe-1A nodes, MPC policy."""
    cluster = Cluster.tianhe_1a(num_nodes=128)
    rng = np.random.default_rng(0)
    state = cluster.state
    state.level[:] = rng.integers(0, cluster.spec.num_levels, 128)
    state.cpu_util[:] = rng.random(128)
    state.mem_frac[:] = rng.random(128)
    state.nic_frac[:] = rng.random(128)
    for start in range(0, 128, 8):
        state.job_id[start : start + 8] = start // 8
    sets = NodeSets(cluster)
    model = PowerModel(cluster.spec)
    meter = SystemPowerMeter(model, cluster.state)
    thresholds = ThresholdController.from_training(meter.true_power() * 1.05)
    return PowerManager(
        cluster, sets, meter, thresholds, make_policy("mpc"), obs=obs
    )


def _baseline() -> PowerManager:
    return build_manager(None)


def _disabled() -> PowerManager:
    return build_manager(Observability.disabled())


def _production() -> PowerManager:
    return build_manager(Observability(ObsConfig(metrics=True)))


def _flight() -> PowerManager:
    return build_manager(
        Observability(ObsConfig(metrics=True, flight_recorder_cycles=64))
    )


def _debug() -> PowerManager:
    return build_manager(Observability(ObsConfig.full()))


def _timed(factory: Callable[[], PowerManager]) -> float:
    """CPU seconds per control cycle on a fresh manager."""
    manager = factory()
    t = 0.0
    start = time.process_time()
    for _ in range(CYCLES):
        t += 1.0
        manager.control_cycle(t)
    return (time.process_time() - start) / CYCLES


def _paired(
    fa: Callable[[], PowerManager], fb: Callable[[], PowerManager]
) -> tuple[float, float]:
    """Min-of-REPS cycle times for two variants, order-alternated."""
    a = b = float("inf")
    for rep in range(REPS):
        if rep % 2 == 0:
            a = min(a, _timed(fa))
            b = min(b, _timed(fb))
        else:
            b = min(b, _timed(fb))
            a = min(a, _timed(fa))
    return a, b


def test_obs_overhead_budget() -> None:
    """Enforce the obs cost budget against a self-calibrated noise floor."""
    n1, n2 = _paired(_baseline, _baseline)
    noise = abs(n1 - n2)

    base_d, dis = _paired(_baseline, _disabled)
    base_p, prod = _paired(_baseline, _production)
    base_f, fl = _paired(_baseline, _flight)
    base_g, dbg = _paired(_baseline, _debug)

    def report(label: str, base: float, variant: float, bound: float) -> str:
        delta = variant - base
        return (
            f"{label}: {variant * 1e6:.1f}us vs baseline {base * 1e6:.1f}us "
            f"(delta {delta * 1e6:+.1f}us, bound {bound * 1e6:.1f}us, "
            f"noise {noise * 1e6:.1f}us)"
        )

    # Disabled obs must be unmeasurable: within noise / low single-digit
    # microseconds of the un-instrumented default.
    dis_bound = max(0.02 * base_d, 4.0 * noise, 2.0e-6)
    line = report("disabled", base_d, dis, dis_bound)
    print(line)
    assert dis - base_d <= dis_bound, line

    # Production (metrics on): the ≤5% budget.
    prod_bound = max(PRODUCTION_BUDGET * base_p, 4.0 * noise, 2.0e-6)
    line = report("production(metrics)", base_p, prod, prod_bound)
    print(line)
    assert prod - base_p <= prod_bound, line

    # Diagnostic modes: documented ceilings, not the always-on budget.
    fl_bound = max(FLIGHT_CEILING * base_f, 4.0 * noise, 2.0e-6)
    line = report("flight(ring=64)", base_f, fl, fl_bound)
    print(line)
    assert fl - base_f <= fl_bound, line

    dbg_bound = max(DEBUG_CEILING * base_g, 4.0 * noise, 2.0e-6)
    line = report("debug(full trace)", base_g, dbg, dbg_bound)
    print(line)
    assert dbg - base_g <= dbg_bound, line


# ----------------------------------------------------------------------
# pytest-benchmark visibility rows (no assertions): per-config absolute
# cycle times alongside bench_micro's numbers.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "label,factory",
    [
        ("baseline", _baseline),
        ("disabled", _disabled),
        ("production", _production),
        ("flight64", _flight),
        ("debug", _debug),
    ],
)
def test_cycle_time_by_obs_config(benchmark, label, factory) -> None:
    """One control cycle under each observability configuration."""
    manager = factory()
    clock = [0.0]

    def cycle() -> None:
        clock[0] += 1.0
        manager.control_cycle(clock[0])

    benchmark(cycle)
