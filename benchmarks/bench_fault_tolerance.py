"""Fault tolerance — the capping loop under monitoring-plane failures.

The paper's evaluation assumes perfect sensing; its own motivation
(§I.A) is that large systems fail constantly.  This bench sweeps the
fault scenarios (none / light / heavy) across two representative
policies (MPC, HRI) on the calibrated protocol and reports, per run:

* the fraction of control cycles the aggregate stayed under ``P_H``
  (the acceptance bar: ≥ 99% for MPC under the light scenario —
  10% telemetry dropout + 1% command loss);
* total cap-violation seconds and the worst-case time-to-cap-restoration
  (how long the controller needed to recover the cap after losing it);
* the fault accounting (samples dropped, commands lost/retried,
  meter-outage and forced-red cycles).

Identical seeds give identical job streams across scenarios, so every
difference is attributable to the injected faults and the degraded-mode
ladder's response.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import Table
from repro.experiments import run_experiment
from repro.faults import FaultScenario
from repro.metrics import cap_violation_seconds, time_to_cap_restoration

from benchmarks.conftest import print_banner

_SCENARIOS = (
    ("none", FaultScenario.none()),
    ("light", FaultScenario.light()),
    ("heavy", FaultScenario.heavy()),
)
_POLICIES = ("mpc", "hri")


def _run_grid(config):
    results = {}
    for scenario_name, scenario in _SCENARIOS:
        faulted = replace(config, faults=scenario)
        for policy in _POLICIES:
            results[(scenario_name, policy)] = run_experiment(faulted, policy)
    return results


def _under_cap_fraction(result) -> float:
    """Fraction of recorded cycles with aggregate power <= P_H."""
    return float(np.mean(result.power_w <= result.p_high_w))


def test_fault_tolerance_sweep(benchmark, bench_config):
    results = benchmark.pedantic(
        _run_grid, args=(bench_config,), rounds=1, iterations=1
    )
    print_banner("Fault tolerance: capping under injected monitoring faults")
    table = Table(
        [
            "scenario",
            "policy",
            "under-P_H",
            "cap violation (s)",
            "recovery (s)",
            "lost/retried cmds",
            "dropped samples",
            "est/forced-red cycles",
        ]
    )
    for (scenario_name, policy), result in results.items():
        under = _under_cap_fraction(result)
        violation = cap_violation_seconds(
            result.times, result.power_w, result.p_high_w
        )
        recovery = time_to_cap_restoration(
            result.times, result.power_w, result.p_high_w
        )
        fs = result.fault_stats
        table.add_row(
            scenario_name,
            policy,
            f"{under:.4f}",
            f"{violation:.0f}",
            f"{recovery:.0f}",
            "-" if fs is None else f"{fs.commands_lost}/{fs.commands_retried}",
            "-" if fs is None else fs.dropped_samples,
            "-"
            if fs is None
            else f"{fs.estimated_power_cycles}/{fs.forced_red_cycles}",
        )
    print(table.render())

    # Acceptance: under the light scenario (10% telemetry dropout + 1%
    # command loss) MPC must keep the aggregate under P_H for >= 99% of
    # control cycles.
    light_mpc = results[("light", "mpc")]
    assert _under_cap_fraction(light_mpc) >= 0.99

    # Faults must not silently disable the controller: every faulted run
    # still actuates, and the fault accounting is non-trivial.
    for (scenario_name, _), result in results.items():
        if scenario_name == "none":
            assert result.fault_stats is None
        else:
            assert result.fault_stats is not None
            assert result.fault_stats.dropped_samples > 0
            assert result.commands_sent > 0
