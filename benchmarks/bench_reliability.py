"""Reliability — the §I.A thermal motivation, quantified.

The paper motivates capping with heat: failure rate doubles per 10°C
(Feng), and ΔP×T is read as "accumulative thermal impact".  This bench
runs the calibrated protocol with the RC thermal model enabled and
reports peak node temperature and integrated expected failures, capped
vs uncapped — the number a reliability engineer would actually budget.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import Table
from repro.experiments import run_experiment
from repro.metrics import cap_violation_seconds

from benchmarks.conftest import print_banner


def _run_pair(config):
    thermal_config = replace(config, track_thermal=True)
    return (
        run_experiment(thermal_config, None),
        run_experiment(thermal_config, "mpc"),
    )


def test_reliability_impact(benchmark, bench_config):
    baseline, capped = benchmark.pedantic(
        _run_pair, args=(bench_config,), rounds=1, iterations=1
    )
    print_banner("Reliability: thermal impact of capping (Feng's 2x/10C law)")
    table = Table(
        ["run", "peak node temp (C)", "expected failures (window)", "cap violation (s)"]
    )
    table.add_row(
        "uncapped",
        f"{baseline.peak_temperature_c:.1f}",
        f"{baseline.expected_failures:.2e}",
        f"{cap_violation_seconds(baseline.times, baseline.power_w, baseline.p_high_w):.0f}",
    )
    table.add_row(
        "mpc-capped",
        f"{capped.peak_temperature_c:.1f}",
        f"{capped.expected_failures:.2e}",
        f"{cap_violation_seconds(capped.times, capped.power_w, capped.p_high_w):.0f}",
    )
    print(table.render())
    saved = 1.0 - capped.expected_failures / baseline.expected_failures
    print(f"\nexpected failures reduced by {saved:.1%} over the window")

    # Capping bounds the *aggregate* power; an individual node can still
    # run flat-out briefly, so the hottest single node is only weakly
    # affected — the integrated failure expectation is the meaningful
    # quantity, and it must drop.
    assert capped.expected_failures < baseline.expected_failures
    assert capped.peak_temperature_c < baseline.peak_temperature_c + 2.0
