"""Power-delivery faults — capping against a budget that shrinks.

The paper's Algorithm 1 derives `P_H`/`P_L` once and treats the
provisioned budget as a constant of nature.  This bench drops a
redundant utility feed mid-run (the `feed-loss` preset) and compares,
on identical seeds:

* **undefended** — the controller keeps capping against the stale
  full-capacity thresholds while the delivery system can no longer
  carry them; and
* **defended** — the emergency response renegotiates the envelope,
  forces emergency red while the draw sits above surviving capacity,
  and walks the degradation ladder if that is not enough.

Both arms are graded with ΔP×T computed against the *reduced* budget
(the minimum surviving capacity), because after the loss that — not the
training-time peak — is what the breakers upstream can actually carry.
The clean baseline is graded against its own provisioned threshold: the
normal cost of capping when the budget holds.

Acceptance: the undefended overspend against the reduced budget exceeds
3× the clean baseline, the defended arm stays below 1.5×, and the
defended run records **zero breaker trips**.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import Table
from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import accumulated_overspend
from repro.provision import ProvisionScenario

from benchmarks.conftest import print_banner

_POLICY = "bfp"
#: The feed drops after training settles, while the machine is loaded.
_LOSS_CYCLE = 60


def _quick() -> ExperimentConfig:
    return ExperimentConfig.quick(seed=2012, attach_provision=True)


def _run_arms(config: ExperimentConfig):
    clean = run_experiment(config, _POLICY)
    loss = ProvisionScenario.preset("feed-loss", feed_loss_at_cycle=_LOSS_CYCLE)
    undefended = replace(
        config,
        provision=replace(loss, defend=False, branch_caps=False),
    )
    defended = replace(config, provision=loss)
    return clean, run_experiment(undefended, _POLICY), run_experiment(defended, _POLICY)


def test_provision_emergency_ladder(benchmark):
    config = _quick()
    clean, undefended, defended = benchmark.pedantic(
        _run_arms, args=(config,), rounds=1, iterations=1
    )

    # Grade every arm against the budget that survived the loss.
    stats_d = defended.provision_stats
    stats_u = undefended.provision_stats
    assert stats_d is not None and stats_u is not None
    reduced_w = stats_d.min_capacity_w
    assert stats_u.min_capacity_w == reduced_w  # same topology, same loss

    def _vs_reduced(result):
        return accumulated_overspend(result.times, result.power_w, reduced_w)

    # The clean arm pays the normal cost of capping against the budget
    # it was provisioned for; the fault arms are judged against what the
    # delivery system could still carry.
    base = clean.metrics.overspend
    ratio_u = _vs_reduced(undefended) / base
    ratio_d = _vs_reduced(defended) / base

    print_banner("Power-delivery emergency: ΔP×T vs the reduced budget")
    table = Table(
        [
            "arm",
            "ΔP×T(reduced)",
            "×clean",
            "breaker trips",
            "renegotiations",
            "emergency red",
            "suspended",
        ]
    )
    table.add_row("clean (nominal)", f"{base:.4f}", "1.00", "-", "-", "-", "-")
    for name, result, stats, ratio in (
        ("undefended", undefended, stats_u, ratio_u),
        ("defended", defended, stats_d, ratio_d),
    ):
        table.add_row(
            name,
            f"{_vs_reduced(result):.4f}",
            f"{ratio:.2f}",
            stats.breaker_trips,
            stats.envelope_renegotiations,
            stats.emergency_red_cycles,
            stats.jobs_suspended,
        )
    print(table.render())

    # Both arms really lost the feed.
    assert stats_u.feed_losses >= 1 and stats_d.feed_losses >= 1
    assert reduced_w < stats_d.design_capacity_w

    # Acceptance: the ladder bounds the overspend against the shrunken
    # budget; ignoring the loss blows straight through it.
    assert ratio_u > 3.0, f"undefended only {ratio_u:.2f}x of clean"
    assert ratio_d < 1.5, f"defended still {ratio_d:.2f}x of clean"
    assert stats_d.breaker_trips == 0
    # The undefended arm never renegotiated (it has no defense to do so).
    assert stats_u.envelope_renegotiations == 0
