"""Ablation — the full policy zoo (§VI future work).

The paper evaluates MPC and HRI and names MPC-C, LPC, LPC-C and BFP
without measuring them; §VI promises experiments with more policies.
This bench runs the Figure 7 protocol across every policy in the
library, including the extension policies, and prints one comparison
table — the experiment the paper's future-work section asks for.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_fig7_table
from repro.experiments.ablations import policy_zoo

from benchmarks.conftest import print_banner

POLICIES = ("mpc", "mpc-c", "lpc", "lpc-c", "bfp", "hri", "hri-c", "random", "fair", "hybrid")


def test_policy_zoo(benchmark, bench_config):
    """Figure 7 protocol across all ten policies."""
    result = benchmark.pedantic(
        policy_zoo,
        args=(bench_config,),
        kwargs={"policies": POLICIES},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation: the full target-selection policy zoo")
    print(format_fig7_table(result))

    by_name = {o.policy: o for o in result.outcomes}
    # Every policy keeps the lights on: bounded performance loss, some
    # overspend reduction, no red state (collections may act strongest).
    for name, outcome in by_name.items():
        assert outcome.performance > 0.85, name
        assert outcome.overspend_reduction > 0.2, name
    # Collection policies pull back at least as hard as their single-job
    # counterparts on the overspend metric.
    assert (
        by_name["mpc-c"].overspend_reduction
        >= by_name["mpc"].overspend_reduction - 0.1
    )
    # The structured headline policies beat the random baseline on ΔP×T.
    assert by_name["mpc"].overspend_reduction > by_name["random"].overspend_reduction - 0.05
