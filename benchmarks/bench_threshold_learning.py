"""§III.A — threshold setting and adjustment.

Not a numbered figure, but a described mechanism with concrete
parameters (93%/84% of P_peak, 24 h training, adjustment every t_p
cycles).  The bench measures the controller's per-observation cost and
prints the learned-threshold trajectory from a calibrated training run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Table
from repro.core import ThresholdController
from repro.experiments import run_experiment

from benchmarks.conftest import print_banner


def test_threshold_observation_cost(benchmark):
    """Per-cycle cost of ThresholdController.observe (hot-path budget)."""
    controller = ThresholdController(initial_peak_w=40_000.0, adjust_every_cycles=600)
    rng = np.random.default_rng(0)
    readings = (38_000.0 + 2_000.0 * rng.random(1024)).tolist()
    index = [0]

    def observe():
        controller.observe(readings[index[0] & 1023])
        index[0] += 1

    benchmark(observe)


def test_threshold_learning_report(bench_config):
    """Run the §III.A protocol and print the learned thresholds."""
    result = run_experiment(bench_config, "mpc")
    print_banner("III.A: threshold learning (93% / 84% of P_peak)")
    table = Table(["quantity", "watts", "fraction of training peak"])
    peak = result.training_peak_w
    table.add_row("training peak (P_peak)", f"{peak:,.0f}", "100.0%")
    table.add_row("P_H (= 93% peak)", f"{result.p_high_w:,.0f}", f"{result.p_high_w / peak:.1%}")
    table.add_row("P_L (= 84% peak)", f"{result.p_low_w:,.0f}", f"{result.p_low_w / peak:.1%}")
    table.add_row("provision P_th", f"{result.provision_w:,.0f}", f"{result.provision_w / peak:.1%}")
    table.add_row("capped P_max", f"{result.metrics.p_max_w:,.0f}", f"{result.metrics.p_max_w / peak:.1%}")
    print(table.render())

    # The paper's margin formulas hold exactly (running peak may ratchet
    # the absolute values upward together).
    assert result.p_high_w >= 0.93 * peak - 1e-6
    assert result.p_low_w / result.p_high_w == pytest.approx(0.84 / 0.93, rel=1e-9)
    # Capping kept the system at/below P_H (the no-red claim).
    assert result.metrics.p_max_w <= result.p_high_w * 1.001
