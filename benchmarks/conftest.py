"""Shared configuration for the benchmark suite.

Every ``bench_fig*.py`` module regenerates one of the paper's figures at
the *calibrated* scale (see ``ExperimentConfig.calibrated``) and prints
the same rows/series the paper reports, so ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction report.  EXPERIMENTS.md
records one such run against the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The calibrated reproduction configuration (shared by all benches)."""
    return ExperimentConfig.calibrated(seed=2012)


def print_banner(title: str) -> None:
    """Uniform section banner in benchmark output."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
