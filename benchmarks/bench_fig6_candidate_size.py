"""Figure 6 — power capping effect at different sizes of A_candidate.

Paper: normalised P_max and ΔP×T vs |A_candidate| for MPC and HRI —
monotone improvement with candidate count, trend curves of the two
policies similar, and diminishing returns once the set is "large enough"
(48 of 128 nodes in the paper's environment).

The sweep runs 1 baseline + |sizes|×|policies| full protocols, so it is
the most expensive bench; it executes once under pytest-benchmark and
prints the normalised table plus an ASCII rendition of the figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ascii_chart, format_fig6_table
from repro.experiments import run_fig6

from benchmarks.conftest import print_banner

SIZES = (0, 8, 16, 32, 48, 64, 96, 128)


def test_fig6_sweep(benchmark, bench_config):
    """The full Figure 6 sweep (both policies, 8 sizes)."""
    result = benchmark.pedantic(
        run_fig6,
        args=(bench_config,),
        kwargs={"sizes": SIZES, "policies": ("mpc", "hri")},
        rounds=1,
        iterations=1,
    )

    print_banner("Figure 6: power capping effect vs |A_candidate|")
    print(format_fig6_table(result))
    sizes_mpc, pmax_mpc, over_mpc = result.series("mpc")
    sizes_hri, pmax_hri, over_hri = result.series("hri")
    print()
    print(
        ascii_chart(
            sizes_mpc.astype(float),
            {
                "dPxT mpc": over_mpc,
                "dPxT hri": over_hri,
                "Pmax mpc": pmax_mpc,
            },
            title="normalised metrics vs candidate-set size (1.0 = unmanaged)",
            height=12,
        )
    )
    knee_mpc = result.knee_size("mpc", tolerance=0.05)
    print(
        f"\nknee (dPxT within 0.05 of best): mpc at {knee_mpc} nodes "
        f"(paper: ~48 of 128)"
    )

    # --- shape assertions -------------------------------------------------
    # Full management strictly better than none on both metrics.
    assert over_mpc[-1] < 1.0 and over_hri[-1] < 1.0
    assert pmax_mpc[-1] < 1.0 and pmax_hri[-1] < 1.0
    # Broad monotone trend: the best improvement sits at large sizes and
    # the small-size end is clearly worse (sampling noise allows local
    # wiggles, so compare ends rather than every step).
    assert over_mpc[-1] < over_mpc[1]
    assert over_hri[-1] < over_hri[1]
    # Diminishing returns: the second half of the sweep improves ΔP×T by
    # less than the first half does.
    mid = len(sizes_mpc) // 2
    first_half_gain = over_mpc[0] - over_mpc[mid]
    second_half_gain = over_mpc[mid] - over_mpc[-1]
    assert first_half_gain > second_half_gain
    # The knee falls well inside the machine (paper: ~48 of 128).
    assert knee_mpc <= 96
