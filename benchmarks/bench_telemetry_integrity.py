"""Telemetry integrity — capping under sensor corruption, with and
without the defense.

The paper's controller trusts every sensor; a stuck utilization ADC or
a drifting wattmeter silently under-reports power and lets the real cap
be breached without a single dropped sample to warn anyone.  This bench
sweeps the corruption presets (stuck-at / drift / byzantine-meter) on
the quick protocol under one policy (BFP) and, per preset, compares:

* **undefended** — corruption injected, no validation pipeline; and
* **defended** — the same corrupted run with the integrity defense
  (validator + quarantine + meter cross-check) armed.

Both are graded against the simulator's ground-truth power series, so a
lying meter cannot grade its own lie as a perfect run.  Identical seeds
give identical job streams, so every difference in ΔP×T is attributable
to the corruption and the defense's response.

Acceptance: under the stuck-at and drift presets the defended ΔP×T
stays within 2× of the clean baseline while the undefended run exceeds
5× — the defense buys back nearly all of the corruption-induced
overspend.  With corruption disabled the defended run is bit-identical
to the seed run (the pipeline observes, but touches nothing).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis import Table
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import CorruptionScenario
from repro.telemetry import IntegrityConfig

from benchmarks.conftest import print_banner

_POLICY = "bfp"
#: Corruption begins mid-run, after thresholds have settled on honest
#: data — the paper's implicit assumption holding, then breaking.
_ONSET_CYCLE = 60
_PRESETS = ("stuck-at", "drift", "byzantine-meter")


def _quick() -> ExperimentConfig:
    return ExperimentConfig.quick(seed=2012)


def _run_grid(config: ExperimentConfig):
    results = {"clean": run_experiment(config, _POLICY)}
    for preset in _PRESETS:
        corruption = CorruptionScenario.preset(preset, onset_cycle=_ONSET_CYCLE)
        undefended = replace(config, corruption=corruption)
        defended = replace(undefended, integrity=IntegrityConfig())
        results[(preset, "undefended")] = run_experiment(undefended, _POLICY)
        results[(preset, "defended")] = run_experiment(defended, _POLICY)
    return results


def test_telemetry_integrity_sweep(benchmark):
    config = _quick()
    results = benchmark.pedantic(
        _run_grid, args=(config,), rounds=1, iterations=1
    )
    clean = results["clean"]
    base = clean.metrics.overspend

    print_banner("Telemetry integrity: ΔP×T under sensor corruption")
    table = Table(
        [
            "preset",
            "defense",
            "ΔP×T",
            "×clean",
            "rejected",
            "quarantine entries",
            "meter distrust cycles",
        ]
    )
    table.add_row("clean", "-", f"{base:.4f}", "1.00", "-", "-", "-")
    ratios = {}
    for preset in _PRESETS:
        for defense in ("undefended", "defended"):
            result = results[(preset, defense)]
            overspend = result.metrics.overspend
            ratios[(preset, defense)] = overspend / base
            fs = result.fault_stats
            table.add_row(
                preset,
                defense,
                f"{overspend:.4f}",
                f"{overspend / base:.2f}",
                "-" if fs is None else fs.corrupt_samples_rejected,
                "-" if fs is None else fs.quarantine_entries,
                "-" if fs is None else fs.meter_distrusted_cycles,
            )
    print(table.render())

    # Acceptance: the defense recovers the corrupted runs to within 2x
    # of the clean baseline; undefended stuck-at/drift blow past 5x.
    for preset in _PRESETS:
        assert ratios[(preset, "defended")] <= 2.0, (
            f"{preset}: defended overspend {ratios[(preset, 'defended')]:.2f}x"
        )
    for preset in ("stuck-at", "drift"):
        assert ratios[(preset, "undefended")] >= 5.0, (
            f"{preset}: undefended overspend only "
            f"{ratios[(preset, 'undefended')]:.2f}x of clean"
        )

    # Every corrupted run actually exercised the corruption model, and
    # every defended run is graded against ground truth.
    for preset in _PRESETS:
        for defense in ("undefended", "defended"):
            result = results[(preset, defense)]
            fs = result.fault_stats
            assert fs is not None
            assert fs.corrupted_samples > 0 or fs.corrupted_meter_readings > 0
            assert result.true_power_w is not None


def test_defense_is_bit_identical_without_corruption(benchmark):
    """Armed but idle: the defended clean run must equal the seed run."""
    config = _quick()

    def _pair():
        baseline = run_experiment(config, _POLICY)
        defended = run_experiment(
            replace(config, integrity=IntegrityConfig()), _POLICY
        )
        return baseline, defended

    baseline, defended = benchmark.pedantic(_pair, rounds=1, iterations=1)
    np.testing.assert_array_equal(baseline.power_w, defended.power_w)
    assert baseline.metrics.overspend == defended.metrics.overspend
    assert baseline.p_low_w == defended.p_low_w
    assert baseline.p_high_w == defended.p_high_w
    fs = defended.fault_stats
    if fs is not None:
        assert fs.corrupt_samples_rejected == 0
        assert fs.quarantine_entries == 0
