"""Whole-program lint cost: cold extraction vs warm summary cache.

The RL5xx pass builds a project model — per-file symbolic summaries
(AST parse plus abstract interpretation) — then resolves the trust-
boundary policies over it.  Extraction is file-local and cacheable;
resolution is cheap and always runs.  Summaries are cached in one JSON
file keyed by each file's SHA-256, so a warm run only re-reads bytes,
re-hashes, and decodes the stored summaries.  This bench pins the
contract that makes the flow pass usable as a pre-commit/CI stage: a
warm whole-program pass over the full simulator must be at least 3x
faster than a cold one.

Run with ``pytest benchmarks/bench_reprolint.py -s`` for the timings.
"""

from __future__ import annotations

import time
from pathlib import Path

from benchmarks.conftest import print_banner
from tools.reprolint.checkers.flow import FlowAnalyzer
from tools.reprolint.project import ProjectModel
from tools.reprolint.runner import iter_python_files

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _timed_pass(files: list[Path], cache: Path) -> tuple[float, ProjectModel]:
    """One whole-program pass: build (or load) summaries, run RL5xx."""
    start = time.perf_counter()
    project, errors = ProjectModel.build(files, cache_path=cache)
    diagnostics = FlowAnalyzer().analyze(project)
    elapsed = time.perf_counter() - start
    assert errors == []
    assert diagnostics == [], [d.format_text() for d in diagnostics]
    return elapsed, project


def test_warm_cache_is_at_least_3x_faster(tmp_path: Path) -> None:
    files = iter_python_files([SRC_REPRO])
    cache = tmp_path / "summaries.json"

    cold_s, cold = _timed_pass(files, cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(files)

    warm_s, warm = _timed_pass(files, cache)
    assert warm.cache_hits == len(files)
    assert warm.cache_misses == 0

    print_banner("reprolint whole-program pass: cold vs warm summary cache")
    print(f"files checked : {len(files)}")
    print(f"cold (extract): {cold_s * 1e3:8.1f} ms")
    print(f"warm (cached) : {warm_s * 1e3:8.1f} ms")
    print(f"speedup       : {cold_s / warm_s:8.1f}x")

    assert warm_s * 3 <= cold_s, (
        f"warm cache run ({warm_s:.3f}s) is not >=3x faster than cold "
        f"({cold_s:.3f}s); the summary cache has stopped paying for itself"
    )
