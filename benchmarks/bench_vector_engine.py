"""Cycle-throughput gate: vector engine vs the object-per-node reference.

Runs the complete per-cycle hot path — job stepping, telemetry sweep,
Formula (1) estimation and policy ranking — on both engines over the
same busy world and gates the structure-of-arrays speedup:

* full mode (default): 1024 nodes, vector must be >= 10x the object
  engine's cycle throughput;
* ``--quick``: 256 nodes and a >= 3x gate — the CI smoke configuration.

Usage::

    PYTHONPATH=src python benchmarks/bench_vector_engine.py [--quick]
    PYTHONPATH=src python benchmarks/bench_vector_engine.py --nodes 4096

The module is also collectable by pytest (``test_quick_gate``) so the
gate runs inside the benchmark suite too.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from repro.cluster import Cluster
from repro.core import NodeSets, PowerThresholds
from repro.core.policies import PolicyContext, make_policy
from repro.power import NodePowerEstimator, PowerModel
from repro.sim import RandomSource
from repro.telemetry import TelemetryCollector
from repro.workload import Job, JobExecutor, get_application

#: Nodes per job in the synthetic busy world.
_BLOCK = 8


@dataclass(frozen=True)
class EngineTiming:
    """Measured steady-state cost of one management cycle."""

    engine: str
    num_nodes: int
    cycles: int
    seconds_per_cycle: float

    @property
    def cycles_per_second(self) -> float:
        return 1.0 / self.seconds_per_cycle


def _build_world(engine: str, num_nodes: int):
    """A fully-busy cluster: one running job per 8-node block."""
    cluster = Cluster.tianhe_1a(num_nodes=num_nodes, engine=engine)
    rng = RandomSource(seed=42)
    executor = JobExecutor(
        cluster.state, rng.stream("exec"), engine=cluster.engine
    )
    app = get_application("EP")
    jobs = []
    for start in range(0, num_nodes, _BLOCK):
        ids = np.arange(start, min(start + _BLOCK, num_nodes))
        jid = start // _BLOCK
        job = Job(job_id=jid, app=app, nprocs=64, submit_time=0.0)
        cluster.state.assign_job(ids, jid)
        job.start(0.0, ids)
        jobs.append(job)
    sets = NodeSets(cluster)
    collector = TelemetryCollector(
        cluster.state, sets.candidates, engine=cluster.engine
    )
    estimator = NodePowerEstimator(PowerModel(cluster.spec), engine=cluster.engine)
    policy = make_policy("mpc")
    thresholds = PowerThresholds(p_low=1.0, p_high=2.0)

    def one_cycle(t: float) -> None:
        executor.advance(jobs, t, 1.0)
        snapshot = collector.collect(t)
        ctx = PolicyContext(
            snapshot, collector.previous, estimator, 10.0, thresholds
        )
        policy.select(ctx)

    return one_cycle


def measure_engine(
    engine: str, num_nodes: int, cycles: int, warmup: int = 2
) -> EngineTiming:
    """Steady-state seconds per management cycle on ``engine``."""
    one_cycle = _build_world(engine, num_nodes)
    t = 1.0
    for _ in range(warmup):
        one_cycle(t)
        t += 1.0
    start = time.perf_counter()
    for _ in range(cycles):
        one_cycle(t)
        t += 1.0
    elapsed = time.perf_counter() - start
    return EngineTiming(engine, num_nodes, cycles, elapsed / cycles)


def run_gate(
    num_nodes: int, min_speedup: float, vector_cycles: int, object_cycles: int
) -> float:
    """Measure both engines, print the table, and enforce the gate."""
    vector = measure_engine("vector", num_nodes, vector_cycles)
    obj = measure_engine("object", num_nodes, object_cycles)
    speedup = obj.seconds_per_cycle / vector.seconds_per_cycle
    print(f"\nvector-engine gate @ {num_nodes} nodes")
    print(f"{'engine':<8} {'ms/cycle':>10} {'cycles/s':>10}")
    for timing in (vector, obj):
        print(
            f"{timing.engine:<8} {timing.seconds_per_cycle * 1e3:>10.3f} "
            f"{timing.cycles_per_second:>10.1f}"
        )
    print(f"speedup: {speedup:.1f}x (gate: >= {min_speedup:.0f}x)")
    if speedup < min_speedup:
        raise SystemExit(
            f"GATE FAILED: vector engine is only {speedup:.1f}x the object "
            f"engine at {num_nodes} nodes (required >= {min_speedup:.0f}x)"
        )
    return speedup


def test_quick_gate() -> None:
    """The CI smoke gate, collectable by pytest."""
    assert run_gate(
        num_nodes=256, min_speedup=3.0, vector_cycles=20, object_cycles=5
    ) >= 3.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="256 nodes, 3x gate (CI smoke) instead of 1024 nodes, 10x",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="override the cluster size (keeps the mode's gate)",
    )
    args = parser.parse_args()
    if args.quick:
        nodes = args.nodes or 256
        run_gate(nodes, min_speedup=3.0, vector_cycles=20, object_cycles=5)
    else:
        nodes = args.nodes or 1024
        run_gate(nodes, min_speedup=10.0, vector_cycles=30, object_cycles=5)


if __name__ == "__main__":
    main()
