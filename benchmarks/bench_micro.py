"""Microbenchmarks of the simulator's hot paths.

Not paper figures — these guard the engineering budget that makes the
reproduction runs cheap: the vectorised Formula (1) evaluation, a full
manager control cycle, and a full scheduler tick at paper scale
(128 nodes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.policies import make_policy
from repro.power import PowerModel, SystemPowerMeter
from repro.scheduler import BatchScheduler, KeepQueueFilledFeeder
from repro.sim import RandomSource
from repro.workload import JobExecutor, RandomJobGenerator


@pytest.fixture
def loaded_cluster():
    cluster = Cluster.tianhe_1a(num_nodes=128)
    rng = np.random.default_rng(0)
    state = cluster.state
    state.level[:] = rng.integers(0, cluster.spec.num_levels, 128)
    state.cpu_util[:] = rng.random(128)
    state.mem_frac[:] = rng.random(128)
    state.nic_frac[:] = rng.random(128)
    for start in range(0, 128, 8):
        state.job_id[start : start + 8] = start // 8
    return cluster


def test_power_model_full_cluster(benchmark, loaded_cluster):
    """Formula (1) over all 128 nodes (the per-cycle ground truth)."""
    model = PowerModel(loaded_cluster.spec)
    benchmark(model.system_power, loaded_cluster.state)


def test_power_model_scaling_1024_nodes(benchmark):
    """Formula (1) over a 1024-node machine (8x the paper's scale)."""
    cluster = Cluster.tianhe_1a(num_nodes=1024)
    rng = np.random.default_rng(0)
    cluster.state.cpu_util[:] = rng.random(1024)
    model = PowerModel(cluster.spec)
    benchmark(model.system_power, cluster.state)


def test_manager_control_cycle(benchmark, loaded_cluster):
    """One complete sense→classify→select→actuate cycle."""
    sets = NodeSets(loaded_cluster)
    model = PowerModel(loaded_cluster.spec)
    meter = SystemPowerMeter(model, loaded_cluster.state)
    thresholds = ThresholdController.from_training(meter.true_power() * 1.05)
    manager = PowerManager(
        loaded_cluster, sets, meter, thresholds, make_policy("mpc")
    )
    clock = [0.0]

    def cycle():
        clock[0] += 1.0
        manager.control_cycle(clock[0])

    benchmark(cycle)


def test_scheduler_tick(benchmark):
    """One scheduler tick with a live 128-node mix."""
    rng = RandomSource(seed=1)
    cluster = Cluster.tianhe_1a(num_nodes=128)
    generator = RandomJobGenerator(rng.stream("gen"), runtime_scale=0.25)
    executor = JobExecutor(cluster.state, rng.stream("exec"))
    scheduler = BatchScheduler(cluster, executor, KeepQueueFilledFeeder(generator))
    for t in range(1, 200):  # warm the machine up
        scheduler.tick(float(t), 1.0)
    clock = [200.0]

    def tick():
        clock[0] += 1.0
        scheduler.tick(clock[0], 1.0)

    benchmark(tick)
