"""Gates for the deterministic parallel sweep runner and result cache.

Three contracts, measured on a fig7-style grid (shared unmanaged
baseline + policies × seeds, >= 12 managed cells):

* **(a) parallel speedup** — 4 workers must finish the grid >= 3x
  faster than serial.  The gate needs >= 4 usable CPUs; on smaller
  hosts it prints SKIP (the other gates still run — correctness never
  depends on the machine).
* **(b) warm cache** — re-running the identical sweep against a
  populated cache must be >= 10x faster than the cold run that filled
  it: a cache hit is a disk read, not a simulation.
* **(c) bit-identity** — the merged canonical JSON must be
  byte-identical for ``jobs`` in {1, 2, 4}, cold or warm.  This is the
  contract that makes (a) safe to use at all.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py [--quick]

``--quick`` shrinks the per-cell simulation (CI smoke); the full mode
uses cells heavy enough that pool startup is noise.  The module is
also collectable by pytest (``test_quick_gate``).
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from repro.experiments import ExperimentConfig, ResultCache
from repro.experiments.sweep import SweepCell, baseline_cell, run_sweep

#: Gate thresholds from the issue: 3x at 4 workers, 10x warm-vs-cold.
MIN_PARALLEL_SPEEDUP = 3.0
MIN_WARM_SPEEDUP = 10.0
_POLICIES = ("mpc", "hri", "bfp", "lpc")
_SEEDS = (2012, 2013, 2014)


def build_grid(quick: bool) -> list[SweepCell]:
    """Shared baseline + |policies| x |seeds| managed cells (13 total)."""
    if quick:
        shape = dict(
            num_nodes=32,
            runtime_scale=0.02,
            training_duration_s=120.0,
            run_duration_s=240.0,
            adjust_every_cycles=60,
        )
    else:
        shape = dict(
            num_nodes=128,
            runtime_scale=0.02,
            training_duration_s=600.0,
            run_duration_s=1200.0,
        )
    cells = [baseline_cell(ExperimentConfig(seed=_SEEDS[0], **shape))]
    for seed in _SEEDS:
        config = ExperimentConfig(seed=seed, **shape)
        cells.extend(SweepCell(config, policy) for policy in _POLICIES)
    return cells


def measure(
    cells: list[SweepCell], jobs: int, cache: ResultCache | None = None
) -> tuple[float, str]:
    """``(wall seconds, merged canonical JSON)`` for one sweep run."""
    start = time.perf_counter()
    report = run_sweep(cells, jobs=jobs, cache=cache)
    return time.perf_counter() - start, report.merged_json()


def run_gates(quick: bool) -> None:
    """Measure all three gates; raise SystemExit on any failure."""
    cells = build_grid(quick)
    managed = sum(1 for c in cells if c.policy is not None)
    print(
        f"\nparallel-sweep gates ({'quick' if quick else 'full'} mode, "
        f"{len(cells)} cells / {managed} managed)"
    )

    serial_s, serial_json = measure(cells, jobs=1)
    print(f"serial (jobs=1):      {serial_s:8.2f}s")

    # (c) bit-identity across worker counts, before anything else: the
    # speedup gates are meaningless if parallel output ever differed.
    for jobs in (2, 4):
        par_s, par_json = measure(cells, jobs=jobs)
        print(f"parallel (jobs={jobs}):    {par_s:8.2f}s")
        if par_json != serial_json:
            raise SystemExit(
                f"GATE FAILED: jobs={jobs} merged output differs from "
                "serial — the bit-identity contract is broken"
            )
        if jobs == 4:
            four_worker_s = par_s
    print("bit-identity:          jobs in {1, 2, 4} byte-identical")

    # (a) parallel speedup — only meaningful with >= 4 usable CPUs.
    cpus = os.cpu_count() or 1
    if cpus < 4:
        print(
            f"parallel speedup:      SKIP (host has {cpus} CPU(s); the "
            f">= {MIN_PARALLEL_SPEEDUP:.0f}x @ 4-worker gate needs >= 4)"
        )
    else:
        speedup = serial_s / four_worker_s
        print(
            f"parallel speedup:      {speedup:.1f}x "
            f"(gate: >= {MIN_PARALLEL_SPEEDUP:.0f}x)"
        )
        if speedup < MIN_PARALLEL_SPEEDUP:
            raise SystemExit(
                f"GATE FAILED: 4 workers are only {speedup:.1f}x serial "
                f"(required >= {MIN_PARALLEL_SPEEDUP:.0f}x)"
            )

    # (b) warm cache >= 10x cold.
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cold_s, cold_json = measure(cells, jobs=1, cache=cache)
        warm_s, warm_json = measure(cells, jobs=1, cache=cache)
        warm_speedup = cold_s / warm_s
        print(
            f"cold -> warm cache:   {cold_s:8.2f}s -> {warm_s:.2f}s "
            f"({warm_speedup:.0f}x; gate: >= {MIN_WARM_SPEEDUP:.0f}x)"
        )
        if cold_json != serial_json or warm_json != serial_json:
            raise SystemExit(
                "GATE FAILED: cached replay differs from the live run"
            )
        if warm_speedup < MIN_WARM_SPEEDUP:
            raise SystemExit(
                f"GATE FAILED: warm cache is only {warm_speedup:.1f}x the "
                f"cold run (required >= {MIN_WARM_SPEEDUP:.0f}x)"
            )
    print("all gates passed")


def test_quick_gate() -> None:
    """The CI smoke gates, collectable by pytest."""
    run_gates(quick=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small per-cell simulations (CI smoke) instead of full size",
    )
    args = parser.parse_args()
    run_gates(quick=args.quick)


if __name__ == "__main__":
    main()
