"""Figure 7 — power capping results of different policies.

Paper (§V.D, 128 candidates): performance loss ≈ 2%, P_max reduced ≈
10%, ΔP×T reduced 73% (MPC) / 66% (HRI), CPLJ(MPC) > CPLJ(HRI), and the
capped system never enters the red state.

The bench runs the full calibrated protocol (uncapped baseline + MPC +
HRI over the identical job stream) once under pytest-benchmark, prints
the Figure 7 table with the paper's reference values, and asserts the
shape: direction of every effect and generous quantitative bands.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_fig7_table
from repro.experiments import run_fig7

from benchmarks.conftest import print_banner


def _run(config):
    return run_fig7(config, policies=("mpc", "hri"))


def test_fig7_run(benchmark, bench_config):
    """One full Figure 7 protocol (baseline + MPC + HRI runs)."""
    result = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)

    print_banner("Figure 7: power capping results of different policies")
    print(format_fig7_table(result))
    mpc = result.outcome("mpc")
    hri = result.outcome("hri")
    print(
        "\npaper reference: perf loss ~2% (both), Pmax -10%, "
        "dPxT -73% (MPC) / -66% (HRI), CPLJ(MPC) > CPLJ(HRI), no red state"
    )
    print(
        f"measured:        perf loss {mpc.performance_loss:.1%} (MPC) / "
        f"{hri.performance_loss:.1%} (HRI), Pmax {1 - mpc.p_max_ratio:.1%} / "
        f"{1 - hri.p_max_ratio:.1%}, dPxT -{mpc.overspend_reduction:.0%} / "
        f"-{hri.overspend_reduction:.0%}, CPLJ gap "
        f"{result.cplj_gap():+.1%}"
    )

    # --- shape assertions -------------------------------------------------
    # Performance loss small for both policies (paper: ~2%).
    assert mpc.performance > 0.90
    assert hri.performance > 0.90
    # Peak power visibly reduced (paper: ~10%).
    assert mpc.p_max_ratio < 0.97
    assert hri.p_max_ratio < 0.97
    # ΔP×T reduced by tens of percent, MPC more than HRI (paper: 73/66).
    assert mpc.overspend_reduction > 0.5
    assert hri.overspend_reduction > 0.4
    assert mpc.overspend_reduction > hri.overspend_reduction
    # CPLJ: MPC keeps more jobs lossless than HRI.
    assert result.cplj_gap("mpc", "hri") > 0
    # Red state never (or at most a stray compressed-scale cycle).
    assert not mpc.entered_red
    assert not hri.entered_red
