"""Figure 5 — scalability of the global manager.

Paper: the CPU utilisation of the central management node "increases
non-linearly with the sizes of A_candidate".

This bench produces both views:

* pytest-benchmark measures *this implementation's* collection +
  estimation + ranking cycle at |A_candidate| ∈ {8, 32, 128, 1024, 4096}
  (the two large sizes run on matching 1024/4096-node clusters — far
  past the paper's 128, feasible because the vector engine keeps the
  cycle loop-free);
* the printed table shows the calibrated cost model's curve (the
  figure's y-axis) across the full sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Table
from repro.core.policies import PolicyContext, make_policy
from repro.core.sets import NodeSets
from repro.core.thresholds import PowerThresholds
from repro.experiments.fig5_scalability import (
    DEFAULT_SIZES,
    _busy_cluster,
    run_fig5,
)
from repro.power import NodePowerEstimator, PowerModel
from repro.telemetry import TelemetryCollector

from benchmarks.conftest import print_banner


def _cycle_runner(size: int):
    cluster = _busy_cluster(max(128, size))
    sets = NodeSets.select(cluster, size)
    collector = TelemetryCollector(cluster.state, sets.candidates)
    estimator = NodePowerEstimator(PowerModel(cluster.spec))
    policy = make_policy("mpc")
    thresholds = PowerThresholds(p_low=1.0, p_high=2.0)

    def one_cycle():
        snapshot = collector.collect(0.0)
        ctx = PolicyContext(snapshot, collector.previous, estimator, 10.0, thresholds)
        policy.select(ctx)

    return one_cycle


@pytest.mark.parametrize("size", [8, 32, 128, 1024, 4096])
def test_fig5_measured_cycle_cost(benchmark, size):
    """Measured management-cycle wall time at |A_candidate| = size."""
    benchmark(_cycle_runner(size))


def test_fig5_report():
    """Print the Figure 5 curve (modelled + measured)."""
    result = run_fig5(sizes=DEFAULT_SIZES, measure=True)
    print_banner("Figure 5: scalability of the global power manager")
    table = Table(
        ["|A_candidate|", "modelled mgmt CPU", "measured cycle (µs)", "per-node (µs)"]
    )
    for i, size in enumerate(result.sizes):
        measured = result.measured_cycle_s[i]
        per_node = measured / size * 1e6 if size else 0.0
        table.add_row(
            int(size),
            f"{result.modelled_cpu[i]:.1%}",
            f"{measured * 1e6:.1f}",
            f"{per_node:.2f}",
        )
    print(table.render())
    print(
        f"\nnonlinearity (per-node cost at 128 / at 8): "
        f"{result.nonlinearity():.2f}x  (paper: clearly superlinear)"
    )
    # Shape assertions: monotone increase, superlinear growth.
    assert np.all(np.diff(result.modelled_cpu) > 0)
    assert result.nonlinearity() > 1.5


def test_fig5_large_scale_completes():
    """The sweep extends to a 4096-node machine (32x the paper's 128).

    The vector engine keeps one full collection + estimation + ranking
    cycle loop-free, so candidate sets far beyond the paper's scale stay
    measurable; the modelled curve shows why the paper still restricts
    |A_candidate| — the management node saturates long before 4096.
    """
    sizes = (128, 1024, 4096)
    result = run_fig5(sizes=sizes, measure=True, num_nodes=4096)
    print_banner("Figure 5 extension: 1024/4096-node sweep")
    for i, size in enumerate(sizes):
        measured = result.measured_cycle_s[i]
        print(
            f"|A|={int(size):>5}: modelled {result.modelled_cpu[i]:>6.1%}  "
            f"measured {measured * 1e3:.2f} ms/cycle"
        )
    # The modelled utilisation clamps at 1.0 (the y-axis is a fraction
    # of one management node), so past saturation the curve is flat.
    assert np.all(np.diff(result.modelled_cpu) >= 0)
    assert result.modelled_cpu[-1] == 1.0  # saturated well before 4096
    assert all(s is not None and s > 0 for s in result.measured_cycle_s)
