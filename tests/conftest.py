"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.cluster import Cluster, NodeSpec
from repro.power import NodePowerEstimator, PowerModel
from repro.sim import RandomSource, SimulationEngine

# Property-based tests must behave identically on every CI run: the
# "deterministic" profile derandomises example generation (same examples
# every run, no flaky shrink timeouts).  Local runs keep Hypothesis'
# default randomised exploration unless HYPOTHESIS_PROFILE says
# otherwise; CI exports HYPOTHESIS_PROFILE=deterministic.
settings.register_profile("deterministic", derandomize=True, deadline=None)
settings.register_profile("default", settings.default)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh simulation engine at t=0."""
    return SimulationEngine()


@pytest.fixture
def rng_source() -> RandomSource:
    """A seeded random source."""
    return RandomSource(seed=123)


@pytest.fixture
def node_spec() -> NodeSpec:
    """The Tianhe-1A node specification."""
    return NodeSpec.tianhe_1a()


@pytest.fixture
def small_cluster() -> Cluster:
    """A 16-node Tianhe-1A cluster (fast for unit tests)."""
    return Cluster.tianhe_1a(num_nodes=16)


@pytest.fixture
def cluster128() -> Cluster:
    """The paper-sized 128-node cluster."""
    return Cluster.tianhe_1a(num_nodes=128)


@pytest.fixture
def power_model(node_spec: NodeSpec) -> PowerModel:
    """Formula (1) model for the Tianhe-1A node."""
    return PowerModel(node_spec)


@pytest.fixture
def estimator(power_model: PowerModel) -> NodePowerEstimator:
    """Estimator over the Tianhe-1A model."""
    return NodePowerEstimator(power_model)


@pytest.fixture
def busy_cluster(small_cluster: Cluster) -> Cluster:
    """16 nodes: jobs 0..2 on nodes [0..3], [4..9], [10..13]; 14-15 idle.

    Loads are distinct per job so per-job power rankings are stable:
    job 1 (6 nodes, high util) > job 2 (4 nodes, mid util) >
    job 0 (4 nodes, low util).
    """
    state = small_cluster.state
    state.assign_job(np.arange(0, 4), 0)
    state.set_load(np.arange(0, 4), cpu_util=0.3, mem_frac=0.2, nic_frac=0.1)
    state.assign_job(np.arange(4, 10), 1)
    state.set_load(np.arange(4, 10), cpu_util=0.9, mem_frac=0.5, nic_frac=0.3)
    state.assign_job(np.arange(10, 14), 2)
    state.set_load(np.arange(10, 14), cpu_util=0.6, mem_frac=0.4, nic_frac=0.2)
    return small_cluster
