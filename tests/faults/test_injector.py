"""Tests for the per-run fault injector."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import FaultInjector, FaultScenario
from repro.sim import RandomSource


def _injector(scenario=None, seed=99, num_nodes=16):
    scenario = scenario if scenario is not None else FaultScenario.heavy()
    return FaultInjector(scenario, RandomSource(seed=seed), num_nodes=num_nodes)


def test_query_before_begin_cycle_rejected():
    inj = _injector()
    with pytest.raises(FaultInjectionError):
        inj.meter_available()
    with pytest.raises(FaultInjectionError):
        inj.telemetry_drop_mask(np.arange(4))
    with pytest.raises(FaultInjectionError):
        inj.command_outcomes(np.arange(4))


def test_cycle_counter_advances():
    inj = _injector()
    assert inj.cycle == -1
    inj.begin_cycle(0.0)
    assert inj.cycle == 0
    inj.begin_cycle(1.0)
    assert inj.cycle == 1


def test_none_scenario_injects_nothing():
    inj = _injector(FaultScenario.none())
    ids = np.arange(16)
    for t in range(50):
        inj.begin_cycle(float(t))
        assert inj.meter_available()
        assert inj.perturb_meter(500.0) == 500.0
        assert not inj.telemetry_drop_mask(ids).any()
        lost, delayed = inj.command_outcomes(ids)
        assert not lost.any() and not delayed.any()
        assert inj.node_online(ids).all()


def test_schedule_reproducible_from_root_seed():
    a = _injector(seed=1234)
    b = _injector(seed=1234)
    ids = np.arange(16)
    for t in range(100):
        a.begin_cycle(float(t))
        b.begin_cycle(float(t))
        assert a.meter_available() == b.meter_available()
        np.testing.assert_array_equal(
            a.telemetry_drop_mask(ids), b.telemetry_drop_mask(ids)
        )
        la, da = a.command_outcomes(ids)
        lb, db = b.command_outcomes(ids)
        np.testing.assert_array_equal(la, lb)
        np.testing.assert_array_equal(da, db)


def test_fault_streams_do_not_perturb_other_streams():
    """Creating/driving an injector must not shift workload randomness."""
    src_plain = RandomSource(seed=7)
    baseline = src_plain.stream("workload.generator").random(100)

    src_faulted = RandomSource(seed=7)
    inj = FaultInjector(FaultScenario.heavy(), src_faulted, num_nodes=16)
    for t in range(20):
        inj.begin_cycle(float(t))
        inj.telemetry_drop_mask(np.arange(16))
        inj.command_outcomes(np.arange(8))
    faulted = src_faulted.stream("workload.generator").random(100)
    np.testing.assert_array_equal(baseline, faulted)


def test_offline_node_samples_always_dropped():
    # Crash rate 1.0 with slow recovery: every node goes down on cycle 0.
    scenario = FaultScenario(node_crash_rate=1.0, node_recovery_rate=0.01)
    inj = _injector(scenario)
    inj.begin_cycle(0.0)
    ids = np.arange(16)
    online = inj.node_online(ids)
    dropped = inj.telemetry_drop_mask(ids)
    assert dropped[~online].all()


def test_offline_node_commands_always_lost_never_delayed():
    scenario = FaultScenario(
        node_crash_rate=1.0,
        node_recovery_rate=0.01,
        command_delay=1.0,
        command_delay_cycles=2,
    )
    inj = _injector(scenario)
    inj.begin_cycle(0.0)
    ids = np.arange(16)
    offline = ~inj.node_online(ids)
    lost, delayed = inj.command_outcomes(ids)
    assert lost[offline].all()
    assert not delayed[offline].any()


def test_command_delay_cycles_exposed():
    scenario = FaultScenario(command_delay=0.5, command_delay_cycles=4)
    inj = _injector(scenario)
    assert inj.command_delay_cycles == 4


def test_accounting_properties_accumulate():
    inj = _injector(FaultScenario.heavy(), seed=5)
    ids = np.arange(16)
    for t in range(300):
        inj.begin_cycle(float(t))
        inj.telemetry_drop_mask(ids)
        inj.command_outcomes(ids)
    assert inj.dropped_samples > 0
    assert inj.meter_outage_cycles > 0
    assert inj.meter_outages > 0
    assert inj.node_crashes >= 0
    assert inj.offline_node_cycles >= inj.node_crashes
