"""Tests for fault-scenario validation and presets."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import FaultScenario


def test_none_is_disabled_default():
    scenario = FaultScenario.none()
    assert not scenario.enabled
    assert scenario == FaultScenario()


def test_light_preset_matches_acceptance_rates():
    scenario = FaultScenario.light()
    assert scenario.enabled
    assert scenario.telemetry_dropout == pytest.approx(0.10)
    assert scenario.command_loss == pytest.approx(0.01)
    assert scenario.meter_outage_rate == 0.0


def test_heavy_preset_enables_every_process():
    scenario = FaultScenario.heavy()
    assert scenario.telemetry_dropout > 0
    assert scenario.meter_outage_rate > 0
    assert scenario.meter_noise_fraction > 0
    assert scenario.command_loss > 0
    assert scenario.command_delay > 0
    assert scenario.node_crash_rate > 0


def test_preset_overrides_apply():
    scenario = FaultScenario.light(telemetry_dropout=0.5)
    assert scenario.telemetry_dropout == pytest.approx(0.5)
    assert scenario.command_loss == pytest.approx(0.01)


@pytest.mark.parametrize(
    "field",
    [
        "telemetry_dropout",
        "meter_outage_rate",
        "meter_recovery_rate",
        "command_loss",
        "command_delay",
        "node_crash_rate",
        "node_recovery_rate",
    ],
)
def test_probabilities_validated(field):
    with pytest.raises(FaultInjectionError):
        FaultScenario(**{field: 1.5})
    with pytest.raises(FaultInjectionError):
        FaultScenario(**{field: -0.1})


def test_negative_noise_rejected():
    with pytest.raises(FaultInjectionError):
        FaultScenario(meter_noise_fraction=-0.01)


def test_delay_cycles_validated():
    with pytest.raises(FaultInjectionError):
        FaultScenario(command_delay_cycles=0)


def test_never_recovering_meter_rejected():
    with pytest.raises(FaultInjectionError):
        FaultScenario(meter_outage_rate=0.1, meter_recovery_rate=0.0)


def test_never_recovering_nodes_rejected():
    with pytest.raises(FaultInjectionError):
        FaultScenario(node_crash_rate=0.1, node_recovery_rate=0.0)


def test_fault_injection_error_is_configuration_error():
    """Scenario mistakes must be catchable like any other config error."""
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        FaultScenario(telemetry_dropout=2.0)
