"""Tests for sensor-corruption scenarios and the runtime model."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import CorruptionScenario, SensorCorruptionModel
from repro.sim import RandomSource


def _model(scenario, seed=7, num_nodes=32):
    rng = RandomSource(seed=seed).stream("faults.corruption")
    return SensorCorruptionModel(scenario, rng, num_nodes)


def _sweep(model, num_nodes=32, cpu=0.5, mem=0.3, nic=0.1):
    """Advance one cycle and corrupt a uniform sweep; return the arrays."""
    model.begin_cycle()
    ids = np.arange(num_nodes, dtype=np.int64)
    cpu_util = np.full(num_nodes, cpu)
    mem_frac = np.full(num_nodes, mem)
    nic_frac = np.full(num_nodes, nic)
    touched = model.corrupt_arrays(ids, cpu_util, mem_frac, nic_frac)
    return touched, cpu_util, mem_frac, nic_frac


# ----------------------------------------------------------------------
# Scenario validation and presets
# ----------------------------------------------------------------------
def test_none_is_disabled_default():
    scenario = CorruptionScenario.none()
    assert not scenario.enabled
    assert scenario == CorruptionScenario()


@pytest.mark.parametrize(
    "name", [n for n in CorruptionScenario.preset_names() if n != "none"]
)
def test_every_named_preset_is_enabled(name):
    assert CorruptionScenario.preset(name).enabled


def test_unknown_preset_lists_the_catalogue():
    with pytest.raises(FaultInjectionError, match="stuck-at"):
        CorruptionScenario.preset("stuckat")


def test_preset_overrides_apply():
    scenario = CorruptionScenario.preset("drift", onset_cycle=60)
    assert scenario.onset_cycle == 60
    assert scenario.drift_fraction == pytest.approx(0.20)


@pytest.mark.parametrize(
    "field",
    [
        "stuck_fraction",
        "drift_fraction",
        "gain_fraction",
        "spike_fraction",
        "spike_rate",
        "garbage_fraction",
        "garbage_rate",
    ],
)
def test_fractions_validated(field):
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(**{field: 1.5})
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(**{field: -0.1})


def test_nonsense_rejected():
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(stuck_mode="sideways")
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(gain=-0.5)
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(meter_gain=float("nan"))
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(meter_drift_per_cycle=float("inf"))
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(onset_cycle=-1)
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(spike_fraction=0.1, spike_rate=0.0)
    with pytest.raises(FaultInjectionError):
        CorruptionScenario(garbage_fraction=0.1, garbage_rate=0.0)


def test_meter_only_scenarios_count_as_enabled():
    assert CorruptionScenario(meter_stuck=True).enabled
    assert CorruptionScenario(meter_drift_per_cycle=-0.001).enabled
    assert CorruptionScenario(meter_bias_w=-50.0).enabled


# ----------------------------------------------------------------------
# Membership determinism
# ----------------------------------------------------------------------
def test_affected_subsets_are_seed_deterministic():
    scenario = CorruptionScenario.gain_error()
    a = _model(scenario, seed=11)
    b = _model(scenario, seed=11)
    c = _model(scenario, seed=12)
    np.testing.assert_array_equal(a._gain_nodes, b._gain_nodes)
    assert a._gain_nodes.sum() == c._gain_nodes.sum()  # size fixed by fraction


def test_small_fraction_still_afflicts_one_node():
    model = _model(CorruptionScenario(gain_fraction=0.01, gain=0.5), num_nodes=8)
    assert model._gain_nodes.sum() == 1


# ----------------------------------------------------------------------
# Onset gating
# ----------------------------------------------------------------------
def test_everything_honest_before_onset():
    scenario = CorruptionScenario.gain_error(onset_cycle=3)
    model = _model(scenario)
    for _ in range(3):  # cycles 0..2: honest
        touched, cpu, _, _ = _sweep(model)
        assert not touched.any()
        np.testing.assert_array_equal(cpu, np.full(32, 0.5))
    touched, cpu, _, _ = _sweep(model)  # cycle 3: corruption begins
    assert touched.any()
    assert model.corrupted_samples == int(touched.sum())


# ----------------------------------------------------------------------
# Per-family behaviour
# ----------------------------------------------------------------------
def test_gain_error_scales_affected_rows():
    model = _model(CorruptionScenario(gain_fraction=0.25, gain=0.6))
    touched, cpu, mem, nic = _sweep(model)
    np.testing.assert_allclose(cpu[touched], 0.5 * 0.6)
    np.testing.assert_allclose(mem[touched], 0.3 * 0.6)
    np.testing.assert_allclose(cpu[~touched], 0.5)


def test_drift_accumulates_per_cycle():
    model = _model(CorruptionScenario(drift_fraction=0.25, drift_per_cycle=-0.01))
    _sweep(model)
    touched, cpu, _, _ = _sweep(model)
    np.testing.assert_allclose(cpu[touched], 0.5 - 0.02)


def test_stuck_constant_pins_affected_rows():
    model = _model(
        CorruptionScenario(
            stuck_fraction=0.25, stuck_mode="constant", stuck_constant=0.0
        )
    )
    touched, cpu, mem, nic = _sweep(model)
    for values in (cpu, mem, nic):
        np.testing.assert_allclose(values[touched], 0.0)


def test_stuck_at_last_latches_the_onset_value():
    model = _model(CorruptionScenario(stuck_fraction=0.25, stuck_mode="last"))
    touched, cpu, _, _ = _sweep(model, cpu=0.7)
    np.testing.assert_allclose(cpu[touched], 0.7)
    # The machine moves on; the stuck sensors do not.
    touched, cpu, _, _ = _sweep(model, cpu=0.2)
    np.testing.assert_allclose(cpu[touched], 0.7)
    np.testing.assert_allclose(cpu[~touched], 0.2)


def test_garbage_emits_nan_and_negative_values():
    model = _model(
        CorruptionScenario(garbage_fraction=0.5, garbage_rate=1.0), num_nodes=64
    )
    _, cpu_a, _, _ = _sweep(model, num_nodes=64)
    _, cpu_b, _, _ = _sweep(model, num_nodes=64)
    junk = np.concatenate([cpu_a, cpu_b])
    assert np.isnan(junk).any()
    assert (junk[~np.isnan(junk)] < 0.0).any()


def test_spikes_are_occasional_and_signed():
    model = _model(
        CorruptionScenario(
            spike_fraction=1.0, spike_rate=0.5, spike_magnitude=0.8
        ),
        num_nodes=64,
    )
    touched, cpu, _, _ = _sweep(model, num_nodes=64)
    assert 0 < touched.sum() < 64
    deltas = cpu[touched] - 0.5
    np.testing.assert_allclose(np.abs(deltas), 0.8)


# ----------------------------------------------------------------------
# Meter corruption
# ----------------------------------------------------------------------
def test_byzantine_meter_applies_gain_and_bias():
    model = _model(CorruptionScenario(meter_gain=0.75, meter_bias_w=-10.0))
    model.begin_cycle()
    assert model.corrupt_meter(1000.0) == pytest.approx(740.0)
    assert model.corrupted_meter_readings == 1


def test_meter_corruption_clamps_at_zero():
    model = _model(CorruptionScenario(meter_gain=0.1, meter_bias_w=-500.0))
    model.begin_cycle()
    assert model.corrupt_meter(100.0) == 0.0


def test_stuck_meter_latches_first_post_onset_reading():
    model = _model(CorruptionScenario(meter_stuck=True, onset_cycle=1))
    model.begin_cycle()
    assert model.corrupt_meter(900.0) == 900.0  # honest before onset
    model.begin_cycle()
    assert model.corrupt_meter(1000.0) == 1000.0  # latches here
    model.begin_cycle()
    assert model.corrupt_meter(1500.0) == 1000.0
    assert model.corrupt_meter(200.0) == 1000.0


def test_drifting_meter_decays_gain_each_cycle():
    model = _model(CorruptionScenario(meter_drift_per_cycle=-0.01))
    model.begin_cycle()
    assert model.corrupt_meter(1000.0) == pytest.approx(1000.0)
    model.begin_cycle()
    assert model.corrupt_meter(1000.0) == pytest.approx(990.0)
    model.begin_cycle()
    assert model.corrupt_meter(1000.0) == pytest.approx(980.0)


def test_corruption_error_is_configuration_error():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        CorruptionScenario(stuck_fraction=2.0)
