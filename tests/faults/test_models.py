"""Tests for the seeded stochastic fault models."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    ActuationFaultModel,
    MeterFaultModel,
    NodeCrashModel,
    TelemetryFaultModel,
)


def _rng(seed=42):
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# TelemetryFaultModel
# ----------------------------------------------------------------------
def test_telemetry_zero_dropout_drops_nothing():
    model = TelemetryFaultModel(_rng(), 0.0)
    mask = model.dropped_mask(64)
    assert not mask.any()
    assert model.dropped_samples == 0


def test_telemetry_full_dropout_drops_everything():
    model = TelemetryFaultModel(_rng(), 1.0)
    assert model.dropped_mask(64).all()
    assert model.dropped_samples == 64


def test_telemetry_dropout_rate_statistics():
    model = TelemetryFaultModel(_rng(), 0.2)
    total = sum(int(model.dropped_mask(100).sum()) for _ in range(200))
    assert total == pytest.approx(0.2 * 100 * 200, rel=0.1)


def test_telemetry_deterministic_across_seeds():
    a = TelemetryFaultModel(_rng(7), 0.3)
    b = TelemetryFaultModel(_rng(7), 0.3)
    for _ in range(10):
        np.testing.assert_array_equal(a.dropped_mask(32), b.dropped_mask(32))


def test_telemetry_validation():
    with pytest.raises(FaultInjectionError):
        TelemetryFaultModel(_rng(), 1.5)


# ----------------------------------------------------------------------
# MeterFaultModel
# ----------------------------------------------------------------------
def test_meter_never_fails_with_zero_rate():
    model = MeterFaultModel(_rng(), 0.0, 0.5, 0.0)
    assert all(model.step() for _ in range(100))
    assert model.outages == 0
    assert model.outage_cycles == 0


def test_meter_outage_bursts_and_accounting():
    model = MeterFaultModel(_rng(3), 0.2, 0.3, 0.0)
    ups = [model.step() for _ in range(500)]
    assert model.outages > 0
    assert model.outage_cycles == sum(1 for u in ups if not u)
    assert any(ups) and not all(ups)


def test_meter_mean_burst_length_is_geometric():
    # recovery_rate r => mean burst 1/r cycles.
    model = MeterFaultModel(_rng(11), 0.05, 0.25, 0.0)
    for _ in range(20_000):
        model.step()
    assert model.outage_cycles / model.outages == pytest.approx(4.0, rel=0.25)


def test_meter_noise_is_additive_and_clamped():
    model = MeterFaultModel(_rng(5), 0.0, 0.5, 0.10)
    readings = [model.perturb(1000.0) for _ in range(500)]
    assert min(readings) >= 0.0
    assert np.std(readings) == pytest.approx(100.0, rel=0.2)
    assert np.mean(readings) == pytest.approx(1000.0, rel=0.02)


def test_meter_zero_noise_identity():
    model = MeterFaultModel(_rng(), 0.0, 0.5, 0.0)
    assert model.perturb(123.4) == 123.4


# ----------------------------------------------------------------------
# ActuationFaultModel
# ----------------------------------------------------------------------
def test_actuation_perfect_when_rates_zero():
    model = ActuationFaultModel(_rng(), 0.0, 0.0, 2)
    lost, delayed = model.classify(16)
    assert not lost.any() and not delayed.any()


def test_actuation_loss_takes_precedence_over_delay():
    model = ActuationFaultModel(_rng(9), 0.3, 0.3, 2)
    for _ in range(50):
        lost, delayed = model.classify(64)
        assert not (lost & delayed).any()


def test_actuation_rates_statistics():
    model = ActuationFaultModel(_rng(13), 0.1, 0.2, 2)
    n_lost = n_delayed = 0
    for _ in range(300):
        lost, delayed = model.classify(100)
        n_lost += int(lost.sum())
        n_delayed += int(delayed.sum())
    assert n_lost == pytest.approx(0.1 * 300 * 100, rel=0.1)
    assert n_delayed == pytest.approx(0.2 * 300 * 100, rel=0.1)


def test_actuation_empty_batch():
    model = ActuationFaultModel(_rng(), 0.5, 0.2, 2)
    lost, delayed = model.classify(0)
    assert lost.size == 0 and delayed.size == 0


# ----------------------------------------------------------------------
# NodeCrashModel
# ----------------------------------------------------------------------
def test_crash_all_online_with_zero_rate():
    model = NodeCrashModel(_rng(), 32, 0.0, 0.5)
    for _ in range(50):
        assert model.step().all()
    assert model.crashes == 0
    assert model.offline_node_cycles == 0


def test_crash_and_recovery_cycle():
    model = NodeCrashModel(_rng(21), 16, 0.05, 0.2)
    offline_seen = online_again = False
    crashed_once = np.zeros(16, dtype=bool)
    for _ in range(2000):
        online = model.step()
        down = ~online
        offline_seen = offline_seen or down.any()
        online_again = online_again or (crashed_once & online).any()
        crashed_once |= down
    assert offline_seen and online_again
    assert model.crashes > 0
    assert model.offline_node_cycles > 0


def test_crash_model_deterministic():
    a = NodeCrashModel(_rng(4), 8, 0.1, 0.3)
    b = NodeCrashModel(_rng(4), 8, 0.1, 0.3)
    for _ in range(100):
        np.testing.assert_array_equal(a.step(), b.step())
