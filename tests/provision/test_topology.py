"""Unit tests for the rated power-delivery topology."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.provision import PowerTopology


def _topology(**overrides):
    kwargs = dict(
        feed_capacities_w=(600.0, 400.0),
        branch_rated_w=300.0,
        nodes_per_rack=4,
        num_nodes=10,
    )
    kwargs.update(overrides)
    return PowerTopology(**kwargs)


# ----------------------------------------------------------------------
# Shape
# ----------------------------------------------------------------------
def test_rack_count_rounds_up():
    assert _topology(num_nodes=10, nodes_per_rack=4).num_racks == 3
    assert _topology(num_nodes=8, nodes_per_rack=4).num_racks == 2


def test_rack_nodes_are_contiguous_blocks_last_rack_short():
    topo = _topology(num_nodes=10, nodes_per_rack=4)
    np.testing.assert_array_equal(topo.rack_nodes(0), [0, 1, 2, 3])
    np.testing.assert_array_equal(topo.rack_nodes(1), [4, 5, 6, 7])
    np.testing.assert_array_equal(topo.rack_nodes(2), [8, 9])


def test_rack_index_matches_rack_nodes():
    topo = _topology()
    idx = topo.rack_index()
    for rack in range(topo.num_racks):
        np.testing.assert_array_equal(
            np.flatnonzero(idx == rack), topo.rack_nodes(rack)
        )


def test_rack_nodes_out_of_range():
    with pytest.raises(ConfigurationError):
        _topology().rack_nodes(3)


# ----------------------------------------------------------------------
# Capacities
# ----------------------------------------------------------------------
def test_design_capacity_is_feed_sum():
    assert _topology().design_capacity_w == 1000.0


def test_ups_ceiling_caps_the_feeds():
    assert _topology(ups_capacity_w=750.0).design_capacity_w == 750.0


def test_surviving_capacity_follows_live_mask():
    topo = _topology()
    assert topo.surviving_capacity_w(np.array([True, True])) == 1000.0
    assert topo.surviving_capacity_w(np.array([False, True])) == 400.0
    assert topo.surviving_capacity_w(np.array([False, False])) == 0.0


def test_surviving_capacity_rejects_bad_mask():
    with pytest.raises(ConfigurationError):
        _topology().surviving_capacity_w(np.array([True]))


def test_branch_ratings_uniform():
    np.testing.assert_array_equal(
        _topology().branch_ratings_w(), [300.0, 300.0, 300.0]
    )


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "overrides",
    [
        {"feed_capacities_w": ()},
        {"feed_capacities_w": (600.0, -1.0)},
        {"branch_rated_w": 0.0},
        {"nodes_per_rack": 0},
        {"num_nodes": 0},
        {"ups_capacity_w": -5.0},
    ],
)
def test_invalid_topology_rejected(overrides):
    with pytest.raises(ConfigurationError):
        _topology(**overrides)


# ----------------------------------------------------------------------
# Sizing against a cluster
# ----------------------------------------------------------------------
def test_for_cluster_sizes_feeds_from_headroom(small_cluster):
    topo = PowerTopology.for_cluster(
        small_cluster, nodes_per_rack=4, feeds=2, feed_headroom=0.2
    )
    p_thy = small_cluster.state.theoretical_max_power()
    assert topo.num_feeds == 2
    assert topo.total_feed_capacity_w == pytest.approx(1.2 * p_thy)
    # Losing one of two feeds leaves 60% of P_thy.
    assert topo.surviving_capacity_w(
        np.array([False, True])
    ) == pytest.approx(0.6 * p_thy)


def test_for_cluster_negative_rack_headroom_underprovisions(small_cluster):
    healthy = PowerTopology.for_cluster(small_cluster, rack_headroom=0.25)
    stressed = PowerTopology.for_cluster(small_cluster, rack_headroom=-0.15)
    assert stressed.branch_rated_w < healthy.branch_rated_w


def test_check_assumptions_passes_on_sane_headroom(small_cluster):
    topo = PowerTopology.for_cluster(small_cluster, nodes_per_rack=4)
    topo.check_assumptions(small_cluster)  # must not raise


def test_check_assumptions_rejects_uncontrollable_branch(small_cluster):
    # A branch rated below the rack's fully-throttled floor can never be
    # protected by capping: the topology must refuse it up front.
    topo = PowerTopology.for_cluster(
        small_cluster, nodes_per_rack=4, rack_headroom=-0.99
    )
    with pytest.raises(ConfigurationError, match="branch controllability"):
        topo.check_assumptions(small_cluster)


def test_branch_floor_matches_cluster_size_only(small_cluster):
    topo = _topology(num_nodes=10)
    with pytest.raises(ConfigurationError):
        topo.branch_floor_w(small_cluster)
