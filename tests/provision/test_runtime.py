"""Unit tests for the live power-delivery runtime."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.provision import PowerTopology, ProvisionRuntime, ProvisionScenario
from repro.sim import RandomSource

NUM_NODES = 8


def _topology(**overrides):
    kwargs = dict(
        feed_capacities_w=(600.0, 400.0),
        branch_rated_w=300.0,
        nodes_per_rack=4,
        num_nodes=NUM_NODES,
    )
    kwargs.update(overrides)
    return PowerTopology(**kwargs)


def _runtime(scenario, topology=None, rng=None):
    return ProvisionRuntime(topology or _topology(), scenario, rng=rng)


def _drive(runtime, cycles, period=10.0):
    for cycle in range(cycles):
        runtime.begin_cycle(cycle * period)


# ----------------------------------------------------------------------
# Scheduled events
# ----------------------------------------------------------------------
def test_healthy_scenario_never_changes_capacity():
    rt = _runtime(ProvisionScenario.none())
    _drive(rt, 20)
    assert rt.capacity_w == 1000.0
    assert rt.min_capacity_w == 1000.0
    assert not rt.stats().feed_losses


def test_scheduled_feed_loss_shrinks_capacity():
    rt = _runtime(ProvisionScenario(feed_loss_at_cycle=2))
    _drive(rt, 2)
    assert rt.capacity_w == 1000.0
    events = rt.begin_cycle(20.0)  # cycle 2
    assert events.feed_losses == 1
    assert rt.capacity_w == 400.0  # feed 0 (600 W) gone
    assert rt.stats().feed_losses == 1
    assert rt.min_capacity_w == 400.0


def test_scheduled_feed_restore_returns_capacity():
    rt = _runtime(
        ProvisionScenario(feed_loss_at_cycle=1, feed_restore_after_cycles=2)
    )
    _drive(rt, 3)  # cycles 0..2: loss fired at 1
    assert rt.capacity_w == 400.0
    events = rt.begin_cycle(30.0)  # cycle 3 = 1 + 2
    assert events.feed_restores == 1
    assert rt.capacity_w == 1000.0
    assert rt.stats().feed_restores == 1


def test_begin_cycle_idempotent_per_instant():
    rt = _runtime(ProvisionScenario(feed_loss_at_cycle=0))
    first = rt.begin_cycle(0.0)
    again = rt.begin_cycle(0.0)
    assert first.feed_losses == 1
    assert again is first
    assert rt.stats().feed_losses == 1  # not double-counted


def test_pdu_failure_derates_one_branch():
    rt = _runtime(
        ProvisionScenario(
            pdu_failure_at_cycle=1, pdu_failure_rack=1, pdu_derate_fraction=0.5
        )
    )
    _drive(rt, 2)
    np.testing.assert_allclose(rt.branch_limits_w, [300.0, 150.0])
    # Global capacity is untouched: it is a branch-local failure.
    assert rt.capacity_w == 1000.0
    assert rt.stats().pdu_failures == 1


def test_pdu_failure_rack_must_exist():
    with pytest.raises(ConfigurationError, match="pdu_failure_rack"):
        _runtime(ProvisionScenario(pdu_failure_at_cycle=0, pdu_failure_rack=9))


def test_cap_order_onset_and_expiry():
    rt = _runtime(
        ProvisionScenario(
            cap_order_at_cycle=1,
            cap_order_fraction=0.5,
            cap_order_duration_cycles=2,
        )
    )
    rt.begin_cycle(0.0)
    events = rt.begin_cycle(10.0)
    assert events.cap_order_started
    assert rt.capacity_w == 500.0
    rt.begin_cycle(20.0)
    assert rt.capacity_w == 500.0
    events = rt.begin_cycle(30.0)  # cycle 3 >= 1 + 2: order expires
    assert events.cap_order_ended
    assert rt.capacity_w == 1000.0
    assert rt.stats().cap_orders == 1


def test_stochastic_scenario_requires_rng():
    with pytest.raises(ConfigurationError, match="RandomSource"):
        _runtime(ProvisionScenario.preset("grid-storm"))


def test_stochastic_events_deterministic_from_seed():
    def capacities(seed):
        rt = _runtime(
            ProvisionScenario.preset("grid-storm"),
            rng=RandomSource(seed=seed),
        )
        out = []
        for cycle in range(200):
            rt.begin_cycle(cycle * 10.0)
            out.append(rt.capacity_w)
        return out

    assert capacities(7) == capacities(7)


def test_provision_stream_does_not_perturb_other_streams():
    seed = 11
    untouched = RandomSource(seed=seed)
    used = RandomSource(seed=seed)
    rt = _runtime(ProvisionScenario.preset("grid-storm"), rng=used)
    _drive(rt, 100)
    assert (
        untouched.stream("workload").random()
        == used.stream("workload").random()
    )


# ----------------------------------------------------------------------
# Settle: breaker physics and exposure accounting
# ----------------------------------------------------------------------
def test_settle_zero_dt_is_a_noop():
    rt = _runtime(ProvisionScenario.none())
    tripped = rt.settle(0.0, 0.0, np.full(NUM_NODES, 100.0))
    assert len(tripped) == 0


def test_settle_accumulates_capacity_loss_exposure():
    rt = _runtime(ProvisionScenario(feed_loss_at_cycle=0))
    rt.begin_cycle(0.0)  # capacity now 400, design 1000
    rt.settle(10.0, 10.0, np.full(NUM_NODES, 10.0))
    assert rt.capacity_lost_w_seconds == pytest.approx(600.0 * 10.0)


def test_settle_accounts_branch_violation_seconds():
    rt = _runtime(ProvisionScenario.none())
    rt.begin_cycle(0.0)
    # Rack 0 draws 320 W against a 300 W limit.
    power = np.concatenate([np.full(4, 80.0), np.full(4, 10.0)])
    rt.settle(10.0, 10.0, power)
    assert rt.branch_cap_violation_seconds == pytest.approx(10.0)
    assert rt.last_branch_over_w == pytest.approx(20.0)


def test_sustained_overload_trips_the_breaker_and_blacks_out_the_rack():
    rt = _runtime(ProvisionScenario(breaker_trip_time_s=30.0))
    rt.begin_cycle(0.0)
    # Rack 0 at 2x rating: trips once the integral accumulates 30 s.
    power = np.concatenate([np.full(4, 150.0), np.full(4, 10.0)])
    tripped = rt.settle(10.0, 10.0, power)
    assert len(tripped) == 0
    tripped = rt.settle(20.0, 10.0, power)
    assert len(tripped) == 0
    tripped = rt.settle(30.0, 10.0, power)
    np.testing.assert_array_equal(tripped, [0])
    assert rt.breaker_trips == 1
    np.testing.assert_array_equal(rt.tripped_racks, [0])
    np.testing.assert_array_equal(rt.dark_nodes, [0, 1, 2, 3])


def test_derated_pdu_heats_breaker_at_previously_safe_load():
    rt = _runtime(
        ProvisionScenario(
            pdu_failure_at_cycle=0,
            pdu_failure_rack=0,
            pdu_derate_fraction=0.5,
            breaker_trip_time_s=30.0,
        )
    )
    rt.begin_cycle(0.0)
    # 300 W on a branch derated to 150 W deliverable = 2x overload.
    power = np.concatenate([np.full(4, 75.0), np.full(4, 10.0)])
    for step in range(1, 4):
        tripped = rt.settle(step * 10.0, 10.0, power)
    np.testing.assert_array_equal(tripped, [0])


def test_branch_overloads_reports_hot_racks_only():
    rt = _runtime(ProvisionScenario.none())
    power = np.concatenate([np.full(4, 70.0), np.full(4, 10.0)])
    np.testing.assert_array_equal(rt.branch_overloads(power, 0.9), [0])
    np.testing.assert_array_equal(
        rt.branch_overloads(np.full(NUM_NODES, 10.0), 0.9), []
    )


def test_headroom_sign():
    rt = _runtime(ProvisionScenario.none())
    assert rt.headroom_w(900.0) == pytest.approx(100.0)
    assert rt.headroom_w(1100.0) == pytest.approx(-100.0)
