"""Unit tests for the capacity-emergency response ladder."""

import numpy as np
import pytest

from repro.provision import (
    EmergencyResponse,
    PowerTopology,
    ProvisionRuntime,
    ProvisionScenario,
)
from repro.provision.emergency import (
    RUNG_CAP,
    RUNG_NORMAL,
    RUNG_SHED,
    RUNG_SUSPEND,
)
from repro.scheduler import BatchScheduler, ListFeeder
from repro.sim import RandomSource
from repro.workload import Job, JobExecutor, JobState, get_application

#: Procs per Tianhe-1A node (two hexacore Xeons).
PROCS_PER_NODE = 12


def _job(job_id, nodes=1, priority=0):
    return Job(
        job_id=job_id,
        app=get_application("EP"),
        nprocs=nodes * PROCS_PER_NODE,
        submit_time=0.0,
        priority=priority,
    )


def _scheduler(cluster, jobs):
    executor = JobExecutor(
        cluster.state,
        RandomSource(seed=3).stream("exec"),
        util_jitter_std=0.0,
        node_noise_std=0.0,
        modulation_std=0.0,
    )
    sched = BatchScheduler(cluster, executor, ListFeeder(jobs))
    sched.tick(1.0, 1.0)
    return sched


def _scenario(**overrides):
    kwargs = dict(
        escalate_after_cycles=2,
        recover_after_cycles=2,
        recover_fraction=0.9,
        max_suspend_fraction=0.5,
    )
    kwargs.update(overrides)
    return ProvisionScenario(**kwargs)


def _response(cluster, sched=None, scenario=None, candidate_mask=None):
    topo = PowerTopology(
        feed_capacities_w=(600.0, 400.0),
        branch_rated_w=300.0,
        nodes_per_rack=4,
        num_nodes=cluster.state.num_nodes,
    )
    runtime = ProvisionRuntime(topo, scenario or _scenario())
    return EmergencyResponse(runtime, sched, candidate_mask), runtime


# ----------------------------------------------------------------------
# Forcing red
# ----------------------------------------------------------------------
def test_undefended_response_never_forces_red(small_cluster):
    emr, _ = _response(small_cluster, scenario=_scenario(defend=False))
    assert not emr.defended
    assert emr.update(0.0, 5000.0) is False
    assert emr.emergency_red_cycles == 0


def test_over_capacity_forces_red(small_cluster):
    emr, _ = _response(small_cluster)
    assert emr.update(0.0, 1500.0) is True  # capacity is 1000 W
    assert emr.emergency_red_cycles == 1
    assert emr.rung == RUNG_CAP


def test_within_capacity_does_not_force_red(small_cluster):
    emr, _ = _response(small_cluster)
    assert emr.update(0.0, 800.0) is False
    assert emr.rung == RUNG_NORMAL


def test_envelope_none_on_total_blackout(small_cluster):
    emr, runtime = _response(
        small_cluster,
        scenario=_scenario(feed_loss_at_cycle=0, feed_loss_count=2),
    )
    assert emr.envelope_w() == 1000.0
    runtime.begin_cycle(0.0)
    assert emr.envelope_w() is None


# ----------------------------------------------------------------------
# The ladder
# ----------------------------------------------------------------------
def test_escalation_suspends_lowest_priority_latest_job(small_cluster):
    jobs = [_job(0, priority=1), _job(1, priority=0), _job(2, priority=0)]
    sched = _scheduler(small_cluster, jobs)
    emr, _ = _response(small_cluster, sched)
    emr.update(10.0, 1500.0)
    assert emr.jobs_suspended == 0  # streak 1 < escalate_after 2
    emr.update(20.0, 1500.0)
    assert emr.jobs_suspended == 1
    # Lowest priority wins; among equals the latest-started (highest id).
    assert sched.running_job(2).state is JobState.SUSPENDED
    assert sched.running_job(0).state is JobState.RUNNING
    assert emr.rung == RUNG_SUSPEND


def test_suspend_budget_bounds_the_ladder(small_cluster):
    jobs = [_job(0), _job(1), _job(2)]
    sched = _scheduler(small_cluster, jobs)
    emr, _ = _response(small_cluster, sched)
    for cycle in range(2, 6):
        emr.update(cycle * 10.0, 1500.0)
    # max_suspend_fraction 0.5 of 3 active jobs floors to 1.
    assert emr.jobs_suspended == 1


def test_shedding_takes_idle_candidates_offline(small_cluster):
    sched = _scheduler(small_cluster, [_job(0)])
    emr, _ = _response(small_cluster, sched)
    # Budget: int(0.5 * 1) = 0 suspensions, so past 2x escalate_after the
    # ladder sheds one rack's worth of idle candidate nodes per over
    # cycle; four cycles reach exactly the first batch.
    for cycle in range(4):
        emr.update(cycle * 10.0, 1500.0)
    assert emr.jobs_suspended == 0
    assert emr.nodes_shed == 4  # one nodes_per_rack batch
    assert emr.rung == RUNG_SHED
    assert sched.offline_mask.sum() == 4
    # The occupied node (job 0) was never shed.
    assert not sched.offline_mask[sched.running_job(0).nodes].any()


def test_recovery_descends_one_rung_per_cycle(small_cluster):
    jobs = [_job(0), _job(1), _job(2)]
    sched = _scheduler(small_cluster, jobs)
    emr, _ = _response(small_cluster, sched)
    for cycle in range(4):  # deep escalation: suspend, then one shed batch
        emr.update(cycle * 10.0, 1500.0)
    assert emr.jobs_suspended == 1
    assert emr.nodes_shed == 4
    assert emr.rung == RUNG_SHED
    # Comfortably inside capacity: recover_after 2, then one undo/cycle.
    emr.update(80.0, 500.0)
    assert emr.nodes_readmitted == 0
    emr.update(90.0, 500.0)
    assert emr.nodes_readmitted == emr.nodes_shed  # shed batch first
    assert emr.rung == RUNG_SUSPEND
    emr.update(100.0, 500.0)
    assert emr.jobs_resumed == 1
    assert sched.running_job(2).state is JobState.RUNNING
    assert emr.rung == RUNG_NORMAL


def test_middling_draw_holds_position(small_cluster):
    sched = _scheduler(small_cluster, [_job(0), _job(1), _job(2)])
    emr, _ = _response(small_cluster, sched)
    emr.update(0.0, 1500.0)
    emr.update(10.0, 1500.0)
    assert emr.rung == RUNG_SUSPEND
    # Inside capacity but above the recovery band: nothing moves.
    for cycle in range(10):
        emr.update(100.0 + cycle * 10.0, 950.0)
    assert emr.jobs_resumed == 0
    assert emr.rung == RUNG_SUSPEND


# ----------------------------------------------------------------------
# Branch capping
# ----------------------------------------------------------------------
def test_branch_targets_step_hot_rack_candidates_down(small_cluster):
    emr, _ = _response(small_cluster)
    levels = np.full(16, 3, dtype=np.int64)
    levels[1] = 0  # already at the floor: not a target
    power = np.concatenate([np.full(4, 80.0), np.full(12, 10.0)])
    ids, new_levels = emr.branch_targets(levels, power)
    np.testing.assert_array_equal(ids, [0, 2, 3])
    np.testing.assert_array_equal(new_levels, [2, 2, 2])
    assert emr.branch_cap_interventions == 1


def test_branch_targets_respect_candidate_mask(small_cluster):
    mask = np.ones(16, dtype=bool)
    mask[:4] = False  # the hot rack is privileged
    emr, _ = _response(small_cluster, candidate_mask=mask)
    levels = np.full(16, 3, dtype=np.int64)
    power = np.concatenate([np.full(4, 80.0), np.full(12, 10.0)])
    ids, _ = emr.branch_targets(levels, power)
    assert len(ids) == 0
    assert emr.branch_cap_interventions == 0


def test_branch_targets_quiet_when_cool(small_cluster):
    emr, _ = _response(small_cluster)
    ids, new_levels = emr.branch_targets(
        np.full(16, 3, dtype=np.int64), np.full(16, 10.0)
    )
    assert len(ids) == 0 and len(new_levels) == 0


# ----------------------------------------------------------------------
# Blackout handling
# ----------------------------------------------------------------------
def test_handle_trips_kills_jobs_and_offlines_the_rack(small_cluster):
    sched = _scheduler(small_cluster, [_job(0, nodes=2), _job(1)])
    emr, _ = _response(small_cluster, sched)
    # Job 0 occupies nodes 0-1 on rack 0; job 1 node 2.
    dark = emr.handle_trips(np.array([0]), 50.0)
    np.testing.assert_array_equal(dark, [0, 1, 2, 3])
    assert emr.jobs_killed == 2
    assert [j.job_id for j in sched.killed_jobs] == [0, 1]
    assert sched.offline_mask[:4].all()


def test_handle_trips_empty_is_noop(small_cluster):
    sched = _scheduler(small_cluster, [_job(0)])
    emr, _ = _response(small_cluster, sched)
    dark = emr.handle_trips(np.empty(0, dtype=np.int64), 50.0)
    assert len(dark) == 0
    assert emr.jobs_killed == 0
