"""Unit tests for the provision scenario configuration and presets."""

import pytest

from repro.errors import FaultInjectionError
from repro.provision import ProvisionScenario
from repro.provision.scenario import PRESET_HINT


def test_none_is_disabled_and_deterministic():
    scenario = ProvisionScenario.none()
    assert not scenario.enabled
    assert not scenario.stochastic


@pytest.mark.parametrize(
    "name", ["feed-loss", "pdu-failure", "breaker-stress", "cap-order", "grid-storm"]
)
def test_fault_presets_are_enabled(name):
    assert ProvisionScenario.preset(name).enabled


def test_grid_storm_is_stochastic_others_not():
    assert ProvisionScenario.preset("grid-storm").stochastic
    assert not ProvisionScenario.preset("feed-loss").stochastic


def test_preset_names_sorted_and_complete():
    names = ProvisionScenario.preset_names()
    assert names == tuple(sorted(names))
    assert "none" in names and "feed-loss" in names


def test_unknown_preset_lists_catalogue_and_hint():
    with pytest.raises(FaultInjectionError) as err:
        ProvisionScenario.preset("feedloss")
    message = str(err.value)
    assert "feed-loss" in message
    assert PRESET_HINT in message


def test_preset_accepts_overrides():
    scenario = ProvisionScenario.preset("feed-loss", feed_loss_at_cycle=5)
    assert scenario.feed_loss_at_cycle == 5


@pytest.mark.parametrize(
    "overrides",
    [
        {"nodes_per_rack": 0},
        {"feeds": 0},
        {"feed_headroom": -1.0},
        {"feed_loss_at_cycle": -1},
        {"feed_loss_count": 3},  # only 2 feeds
        {"feed_restore_after_cycles": 0},
        {"pdu_derate_fraction": 0.0},
        {"cap_order_fraction": 1.5},
        {"cap_order_duration_cycles": 0},
        {"feed_loss_rate": 1.5},
        {"breaker_trip_time_s": 0.0},
        {"breaker_cooldown_fraction": 0.0},
        {"alarm_fraction": 1.2},
        {"escalate_after_cycles": 0},
        {"recover_after_cycles": 0},
        {"recover_fraction": 0.0},
        {"max_suspend_fraction": 1.5},
    ],
)
def test_invalid_scenarios_rejected(overrides):
    with pytest.raises(FaultInjectionError):
        ProvisionScenario(**overrides)


def test_stochastic_loss_without_recovery_rejected():
    # Lost feeds that can never return would drain capacity to zero and
    # stay there; the scenario refuses the one-way configuration.
    with pytest.raises(FaultInjectionError, match="never come back"):
        ProvisionScenario(feed_loss_rate=0.1, feed_recovery_rate=0.0)
