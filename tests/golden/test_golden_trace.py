"""Golden-trace regression tests.

Two guarantees stand here:

1. **Bit-stable exporters** — the same seed and config produce
   byte-identical trace and flight-recorder JSONL files across two
   independent runs (the simulator is deterministic and the exporters
   add no nondeterminism of their own);
2. **Stable span taxonomy** — the cycle span tree's structure (span
   names, nesting, attribute keys) matches the checked-in golden file
   ``tests/golden/trace_structure.json``.  Adding, removing or renaming
   a span or attribute is a deliberate, reviewed change: regenerate the
   golden file and update ``docs/observability.md`` alongside it.
"""

import json
from pathlib import Path

import pytest

from repro import ExperimentConfig, ObsConfig, run_experiment

GOLDEN_PATH = Path(__file__).resolve().parent / "trace_structure.json"

#: The exact configuration the golden file was generated with.
SEED = 2012
TRAINING_S = 60.0
RUN_S = 120.0
POLICY = "mpc"


def _run(tmp_path: Path, tag: str):
    cfg = ExperimentConfig.quick(
        seed=SEED,
        training_duration_s=TRAINING_S,
        run_duration_s=RUN_S,
        obs=ObsConfig(
            trace=True,
            metrics=True,
            flight_recorder_cycles=8,
            trace_path=str(tmp_path / f"trace-{tag}.jsonl"),
            metrics_path=str(tmp_path / f"metrics-{tag}.prom"),
            flight_path=str(tmp_path / f"flight-{tag}.jsonl"),
        ),
    )
    return run_experiment(cfg, POLICY)


def _structure(span: dict) -> dict:
    return {
        "name": span["name"],
        "attrs": sorted(span.get("attrs", {})),
        "children": [_structure(c) for c in span.get("children", [])],
    }


@pytest.fixture(scope="module")
def twin_runs(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("golden")
    return tmp_path, _run(tmp_path, "a"), _run(tmp_path, "b")


class TestByteIdenticalReplay:
    def test_flight_jsonl_is_bit_identical(self, twin_runs):
        tmp_path, _, _ = twin_runs
        a = (tmp_path / "flight-a.jsonl").read_bytes()
        b = (tmp_path / "flight-b.jsonl").read_bytes()
        assert a == b
        assert a  # the run-end trip guarantees at least one dump

    def test_trace_jsonl_is_bit_identical(self, twin_runs):
        tmp_path, _, _ = twin_runs
        a = (tmp_path / "trace-a.jsonl").read_bytes()
        b = (tmp_path / "trace-b.jsonl").read_bytes()
        assert a == b
        assert a.count(b"\n") == len(a.splitlines())

    def test_metrics_exposition_is_bit_identical(self, twin_runs):
        tmp_path, _, _ = twin_runs
        a = (tmp_path / "metrics-a.prom").read_bytes()
        b = (tmp_path / "metrics-b.prom").read_bytes()
        assert a == b


class TestGoldenStructure:
    def test_first_three_cycles_match_golden(self, twin_runs):
        _, res, _ = twin_runs
        obs = res.observability
        assert obs is not None and len(obs.spans) >= 3
        got = [_structure(s.to_dict()) for s in obs.spans[:3]]
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert got == golden, (
            "cycle span taxonomy drifted from tests/golden/"
            "trace_structure.json — if intentional, regenerate the "
            "golden file and update docs/observability.md"
        )

    def test_every_cycle_has_the_six_stages(self, twin_runs):
        _, res, _ = twin_runs
        stages = [
            "collect",
            "estimate",
            "classify",
            "select_targets",
            "actuate",
            "journal",
        ]
        for span in res.observability.spans:
            assert [c.name for c in span.children] == stages
