"""Unit tests for the unit helpers and formatters."""

import pytest

from repro import units


def test_constructors():
    assert units.ghz(2.93) == pytest.approx(2.93e9)
    assert units.mhz(133) == pytest.approx(133e6)
    assert units.gib(4) == 4 * 1024**3
    assert units.mib(512) == 512 * 1024**2
    assert units.kw(1.5) == pytest.approx(1500.0)
    assert units.mw(4.55) == pytest.approx(4.55e6)
    assert units.minutes(2) == 120.0
    assert units.hours(1.5) == 5400.0


def test_fmt_power_adaptive():
    assert units.fmt_power(12.0) == "12.0 W"
    assert units.fmt_power(36_900.0) == "36.90 kW"
    assert units.fmt_power(12_659_000.0) == "12.659 MW"  # the K computer


def test_fmt_energy_adaptive():
    assert units.fmt_energy(500.0) == "500.0 J"
    assert units.fmt_energy(5_000.0) == "5.00 kJ"
    assert units.fmt_energy(2_000_000.0) == "2.00 MJ"
    assert units.fmt_energy(7.2e6) == "2.00 kWh"


def test_fmt_freq_adaptive():
    assert units.fmt_freq(2.93e9) == "2.93 GHz"
    assert units.fmt_freq(133e6) == "133 MHz"
    assert units.fmt_freq(50.0) == "50 Hz"


def test_fmt_bytes_adaptive():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(4 * 1024**3) == "4.0 GiB"
    assert units.fmt_bytes(2 * 1024**4) == "2.00 TiB"


def test_fmt_duration():
    assert units.fmt_duration(65) == "1:05"
    assert units.fmt_duration(3 * 3600 + 125) == "3:02:05"
    assert units.fmt_duration(0) == "0:00"


def test_fmt_percent():
    assert units.fmt_percent(0.0213) == "2.1%"
    assert units.fmt_percent(0.73, digits=0) == "73%"
