"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def _tiny(*extra):
    """Common overrides that make CLI runs finish in ~1 second."""
    return list(extra) + [
        "--runtime-scale", "0.02",
        "--training", "120",
        "--duration", "180",
        "--seed", "5",
    ]


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_policies_command(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    assert "mpc" in out and "hri" in out


def test_policies_json(capsys):
    assert main(["policies", "--json"]) == 0
    names = json.loads(capsys.readouterr().out)
    assert "mpc-c" in names


def test_run_uncapped(capsys):
    assert main(["run", "--policy", "none"] + _tiny()) == 0
    out = capsys.readouterr().out
    assert "uncapped" in out
    assert "Performance(cap)" in out


def test_run_mpc_table(capsys):
    assert main(["run", "--policy", "mpc"] + _tiny()) == 0
    out = capsys.readouterr().out
    assert "green/yellow/red" in out
    assert "DVFS commands" in out


def test_run_json(capsys):
    assert main(["run", "--policy", "mpc", "--json"] + _tiny()) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["label"] == "mpc"
    assert payload["finished_jobs"] > 0
    assert set(payload["state_cycles"]) == {"green", "yellow", "red"}


def test_compare_command(capsys):
    assert main(["compare", "mpc", "lpc"] + _tiny()) == 0
    out = capsys.readouterr().out
    assert "mpc" in out and "lpc" in out and "uncapped" in out


def test_compare_json(capsys):
    assert main(["compare", "mpc", "--json"] + _tiny()) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows[0]["policy"] == "mpc"
    assert 0 < rows[0]["performance"] <= 1.0


def test_fig5_command(capsys):
    assert main(["fig5", "--sizes", "0", "16", "64", "--no-measure"]) == 0
    out = capsys.readouterr().out
    assert "|A_candidate|" in out


def test_fig5_json(capsys):
    assert main(["fig5", "--sizes", "0", "8", "--no-measure", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["sizes"] == [0, 8]
    assert payload["measured_cycle_s"] is None


def test_fig6_command(capsys):
    args = ["fig6", "--sizes", "0", "16", "--policies", "mpc"] + _tiny()
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "dPxT (norm)" in out


def test_fig6_json(capsys):
    args = ["fig6", "--sizes", "0", "16", "--policies", "mpc", "--json"] + _tiny()
    assert main(args) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {r["size"] for r in rows} == {0, 16}


def test_unknown_policy_is_clean_error(capsys):
    code = main(["run", "--policy", "bogus"] + _tiny())
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_nodes_override(capsys):
    args = ["run", "--policy", "none", "--nodes", "32", "--json"] + _tiny()
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    # 32 nodes draw roughly a quarter of the 128-node cluster's power.
    assert payload["p_max_w"] < 15_000


def test_report_command_writes_file(tmp_path, capsys):
    out = tmp_path / "rep.md"
    args = ["report", "mpc", "-o", str(out)] + _tiny()
    assert main(args) == 0
    text = out.read_text()
    assert text.startswith("# Power capping report")
    assert "## Metrics" in text and "mpc" in text


def test_report_command_stdout(capsys):
    args = ["report", "mpc", "-o", "-"] + _tiny()
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "## Normalised against `uncapped`" in out


def test_report_command_thermal_section(tmp_path):
    out = tmp_path / "thermal.md"
    args = ["report", "mpc", "--thermal", "-o", str(out)] + _tiny()
    assert main(args) == 0
    assert "## Thermal / reliability" in out.read_text()


def test_run_with_fault_preset_json(capsys):
    args = ["run", "--policy", "mpc", "--faults", "light", "--json"] + _tiny()
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    stats = payload["fault_stats"]
    assert stats is not None
    assert stats["dropped_samples"] > 0
    assert stats["commands_abandoned"] >= 0


def test_run_without_faults_reports_none(capsys):
    args = ["run", "--policy", "mpc", "--json"] + _tiny()
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["fault_stats"] is None


def test_run_fault_override_flags(capsys):
    args = [
        "run", "--policy", "mpc", "--json",
        "--faults", "none", "--telemetry-dropout", "0.2",
    ] + _tiny()
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["fault_stats"]["dropped_samples"] > 0


def test_run_fault_table_lists_fault_rows(capsys):
    args = ["run", "--policy", "mpc", "--faults", "heavy"] + _tiny()
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "telemetry samples dropped" in out
    assert "forced-red cycles" in out


# ----------------------------------------------------------------------
# Telemetry corruption / integrity flags
# ----------------------------------------------------------------------
def test_run_with_corruption_preset_json(capsys):
    args = [
        "run", "--policy", "mpc", "--json",
        "--corruption", "gain-error",
    ] + _tiny()
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    stats = payload["fault_stats"]
    assert stats is not None
    assert stats["corrupted_samples"] > 0


def test_run_corruption_with_quarantine_table(capsys):
    args = [
        "run", "--policy", "mpc",
        "--corruption", "garbage", "--quarantine",
    ] + _tiny()
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "corrupted samples" in out
    assert "corrupt samples rejected" in out


def test_unknown_corruption_preset_is_clean_error(capsys):
    code = main(["run", "--policy", "mpc", "--corruption", "stuckat"] + _tiny())
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "stuck-at" in err  # the catalogue is listed for the typo


def test_unknown_faults_preset_is_clean_error(capsys):
    code = main(["run", "--policy", "mpc", "--faults", "heavvy"] + _tiny())
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "heavy" in err


def test_no_faults_conflicts_with_faults_preset(capsys):
    code = main(
        ["run", "--policy", "mpc", "--faults", "light", "--no-faults"] + _tiny()
    )
    assert code == 2
    assert "--no-faults" in capsys.readouterr().err


def test_no_faults_conflicts_with_corruption(capsys):
    code = main(
        ["run", "--policy", "mpc", "--corruption", "drift", "--no-faults"]
        + _tiny()
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "--no-faults" in err and "drift" in err


def test_trust_flags_require_quarantine(capsys):
    code = main(
        ["run", "--policy", "mpc", "--trust-release", "0.8"] + _tiny()
    )
    assert code == 2
    assert "--quarantine" in capsys.readouterr().err


def test_corruption_onset_requires_corruption(capsys):
    code = main(
        ["run", "--policy", "mpc", "--corruption-onset", "10"] + _tiny()
    )
    assert code == 2
    assert "--corruption" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Power delivery (--provision) and the preset catalogue
# ----------------------------------------------------------------------
def test_list_presets_table(capsys):
    assert main(["list-presets"]) == 0
    out = capsys.readouterr().out
    for family in ("faults", "corruption", "provision"):
        assert family in out
    assert "feed-loss" in out
    assert "grid-storm" in out


def test_list_presets_json(capsys):
    assert main(["list-presets", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    families = {row["family"] for row in rows}
    assert families == {"faults", "corruption", "provision"}
    provision = {r["name"] for r in rows if r["family"] == "provision"}
    assert {"none", "feed-loss", "pdu-failure"} <= provision
    assert all(row["description"] for row in rows)


def test_run_with_provision_feed_loss(capsys):
    args = ["run", "--policy", "bfp", "--provision", "feed-loss", "--json"]
    assert main(args + _tiny()) == 0
    payload = json.loads(capsys.readouterr().out)
    stats = payload["provision_stats"]
    assert stats["feed_losses"] >= 1
    assert stats["breaker_trips"] == 0
    assert stats["min_capacity_w"] < stats["design_capacity_w"]


def test_run_with_provision_table_section(capsys):
    args = ["run", "--policy", "bfp", "--provision", "feed-loss"]
    assert main(args + _tiny()) == 0
    out = capsys.readouterr().out
    assert "delivery capacity" in out
    assert "breaker trips" in out


def test_provision_none_attaches_healthy_topology(capsys):
    args = ["run", "--policy", "bfp", "--provision", "none", "--json"]
    assert main(args + _tiny()) == 0
    payload = json.loads(capsys.readouterr().out)
    stats = payload["provision_stats"]
    assert stats["feed_losses"] == 0
    assert stats["min_capacity_w"] == stats["design_capacity_w"]


def test_no_provision_flag_reports_no_stats(capsys):
    assert main(["run", "--policy", "bfp", "--json"] + _tiny()) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["provision_stats"] is None


def test_unknown_provision_preset_points_at_catalogue(capsys):
    code = main(
        ["run", "--policy", "bfp", "--provision", "feedloss"] + _tiny()
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "feed-loss" in err
    assert "list-presets" in err


def test_unknown_faults_preset_points_at_catalogue(capsys):
    code = main(["run", "--policy", "mpc", "--faults", "heavvy"] + _tiny())
    assert code == 2
    assert "list-presets" in capsys.readouterr().err


def test_provision_knobs_require_preset(capsys):
    code = main(["run", "--policy", "bfp", "--feed-loss-at", "5"] + _tiny())
    assert code == 2
    assert "--provision" in capsys.readouterr().err


def test_no_faults_conflicts_with_provision(capsys):
    code = main(
        ["run", "--policy", "bfp", "--provision", "feed-loss", "--no-faults"]
        + _tiny()
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "--no-faults" in err and "feed-loss" in err


# ----------------------------------------------------------------------
# Parallel execution and result caching
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", ["0", "-3", "abc", "2.5"])
def test_jobs_rejects_non_positive_non_int(capsys, bad):
    code = main(["compare", "mpc", "--jobs", bad] + _tiny())
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "--jobs" in err and "positive integer" in err


def test_jobs_unset_defaults_serial(capsys):
    # No --jobs at all: identical behaviour to the pre-sweep CLI.
    assert main(["compare", "mpc", "--json"] + _tiny("--nodes", "32")) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows[0]["policy"] == "mpc"


def test_no_cache_conflicts_with_cache_dir(capsys, tmp_path):
    code = main(
        ["compare", "mpc", "--no-cache", "--cache-dir", str(tmp_path)]
        + _tiny()
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "--no-cache" in err and "--cache-dir" in err


def test_cache_dir_warm_rerun_is_byte_identical(capsys, tmp_path):
    args = (
        ["compare", "mpc", "--json", "--cache-dir", str(tmp_path)]
        + _tiny("--nodes", "32")
    )
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert any(tmp_path.iterdir())


def test_run_jobs_and_cache(capsys, tmp_path):
    args = (
        ["run", "--policy", "mpc", "--json", "--jobs", "2",
         "--cache-dir", str(tmp_path)]
        + _tiny("--nodes", "32")
    )
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm == cold


def test_cache_dir_refuses_observability_runs(capsys, tmp_path):
    code = main(
        ["run", "--policy", "mpc", "--cache-dir", str(tmp_path),
         "--trace-out", str(tmp_path / "t.jsonl")]
        + _tiny()
    )
    assert code == 2
    assert "observability" in capsys.readouterr().err
