"""Property-based tests for the power model and power metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster import NodeSpec
from repro.metrics.power import (
    accumulated_overspend,
    energy_joules,
    overspend_energy_joules,
)
from repro.power import PowerModel

SPEC = NodeSpec.tianhe_1a()
MODEL = PowerModel(SPEC)

fraction = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
level = st.integers(min_value=0, max_value=SPEC.top_level)


@given(level, fraction, fraction, fraction)
def test_power_bounded_by_idle_and_max(l, u, m, d):
    p = MODEL.evaluate(l, u, m, d)
    assert SPEC.idle_power_per_level[l] <= p + 1e-9
    assert p <= SPEC.max_power(l) + 1e-9


@given(level, fraction, fraction, fraction)
def test_power_monotone_in_level(l, u, m, d):
    if l < SPEC.top_level:
        assert MODEL.evaluate(l, u, m, d) < MODEL.evaluate(l + 1, u, m, d) + 1e-9


@given(level, fraction, fraction, fraction, fraction)
def test_power_monotone_in_load(l, u, m, d, delta):
    u2 = min(1.0, u + delta)
    assert MODEL.evaluate(l, u, m, d) <= MODEL.evaluate(l, u2, m, d) + 1e-9


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30)
def test_system_power_additive(num_nodes, seed):
    from repro.cluster import ClusterState

    rng = np.random.default_rng(seed)
    state = ClusterState(SPEC, num_nodes)
    state.level[:] = rng.integers(0, SPEC.num_levels, num_nodes)
    state.cpu_util[:] = rng.random(num_nodes)
    state.mem_frac[:] = rng.random(num_nodes)
    state.nic_frac[:] = rng.random(num_nodes)
    total = MODEL.system_power(state)
    assert total == pytest.approx(MODEL.node_power(state).sum())
    assert total >= num_nodes * SPEC.idle_power_per_level.min() - 1e-6
    assert total <= num_nodes * SPEC.max_power() + 1e-6


power_series = hnp.arrays(
    np.float64,
    st.integers(min_value=2, max_value=60),
    elements=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
)


@given(power_series, st.floats(min_value=0.0, max_value=1.2e5, allow_nan=False))
@settings(max_examples=100)
def test_overspend_bounds(values, threshold):
    times = np.arange(len(values), dtype=np.float64)
    excess = overspend_energy_joules(times, values, threshold)
    total = energy_joules(times, values)
    assert excess >= 0.0
    assert excess <= total + 1e-6
    if total > 0:
        ratio = accumulated_overspend(times, values, threshold)
        assert 0.0 <= ratio <= 1.0 + 1e-12


@given(power_series)
@settings(max_examples=100)
def test_overspend_zero_threshold_equals_total_energy(values):
    times = np.arange(len(values), dtype=np.float64)
    assert overspend_energy_joules(times, values, 0.0) == pytest.approx(
        energy_joules(times, values), abs=1e-6
    )


@given(
    power_series,
    st.floats(min_value=0.0, max_value=5e4, allow_nan=False),
    st.floats(min_value=0.0, max_value=5e4, allow_nan=False),
)
@settings(max_examples=100)
def test_overspend_monotone_in_threshold(values, th_a, th_b):
    times = np.arange(len(values), dtype=np.float64)
    lo, hi = sorted((th_a, th_b))
    assert overspend_energy_joules(times, values, lo) >= overspend_energy_joules(
        times, values, hi
    ) - 1e-9


@given(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.2e4, allow_nan=False),
)
def test_overspend_single_segment_exact(v0, v1, threshold):
    """Brute-force integration of one linear segment agrees with the
    closed form (dense midpoint rule)."""
    times = np.array([0.0, 1.0])
    values = np.array([v0, v1])
    analytic = overspend_energy_joules(times, values, threshold)
    xs = np.linspace(0.0, 1.0, 20001)
    interp = v0 + (v1 - v0) * xs
    numeric = np.trapezoid(np.maximum(interp - threshold, 0.0), xs)
    assert analytic == pytest.approx(numeric, abs=max(1.0, v0 + v1) * 1e-3)
