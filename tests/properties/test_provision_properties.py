"""Property tests for the power-delivery fault domain.

Two guarantees pin the design:

* **No-op on healthy delivery** — attaching the provisioning topology
  (breakers armed, emergency response watching) to a run whose power
  delivery never falters is *bit-identical* to the seed run: the
  delivery layer observes, but touches nothing.
* **No breaker ever trips while defended** — whenever a feed is lost,
  the emergency response (renegotiated envelope, forced red, ladder)
  keeps every branch circuit closed, whatever cycle the loss lands on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentConfig, run_experiment
from repro.provision import ProvisionScenario


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_healthy_provisioning_is_bit_identical(seed):
    baseline = run_experiment(ExperimentConfig.quick(num_nodes=32, seed=seed), "bfp")
    provisioned = run_experiment(
        ExperimentConfig.quick(num_nodes=32, seed=seed, attach_provision=True),
        "bfp",
    )
    np.testing.assert_array_equal(baseline.times, provisioned.times)
    np.testing.assert_array_equal(baseline.power_w, provisioned.power_w)
    assert baseline.metrics.overspend == provisioned.metrics.overspend
    assert baseline.p_low_w == provisioned.p_low_w
    assert baseline.p_high_w == provisioned.p_high_w
    assert len(baseline.finished_jobs) == len(provisioned.finished_jobs)
    # The topology watched the whole run and saw nothing.
    stats = provisioned.provision_stats
    assert stats is not None
    assert stats.feed_losses == 0
    assert stats.breaker_trips == 0
    assert stats.min_capacity_w == stats.design_capacity_w


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=5, deadline=None)
def test_defended_feed_loss_never_trips_a_breaker(seed, loss_cycle):
    scenario = ProvisionScenario.preset(
        "feed-loss", feed_loss_at_cycle=loss_cycle
    )
    result = run_experiment(
        ExperimentConfig.quick(num_nodes=32, seed=seed, provision=scenario),
        "bfp",
    )
    stats = result.provision_stats
    assert stats is not None
    assert stats.feed_losses >= 1
    assert stats.breaker_trips == 0
    assert stats.min_capacity_w < stats.design_capacity_w
    # The defense demonstrably acted: either the budget was renegotiated
    # or the loss landed below the draw and forced emergency red.
    assert stats.envelope_renegotiations + stats.emergency_red_cycles > 0
