"""Property-based tests of batch-scheduler invariants.

Random closed job lists are driven to completion under both schedulers
(FCFS and EASY backfill); at every tick the bookkeeping invariants must
hold, and at the end every job must have completed exactly once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.scheduler import BackfillScheduler, BatchScheduler, ListFeeder
from repro.sim import RandomSource
from repro.workload import Job, JobExecutor, JobState, get_application

APPS = ("EP", "CG", "LU", "BT", "SP")


def _executor(cluster, seed):
    return JobExecutor(
        cluster.state,
        RandomSource(seed=seed).stream("exec"),
        util_jitter_std=0.0,
        node_noise_std=0.0,
        modulation_std=0.0,
    )


job_specs = st.lists(
    st.tuples(
        st.sampled_from(APPS),
        st.sampled_from([8, 16, 32, 64, 96]),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


def _materialise(specs, seed):
    """Jobs with tiny work so runs finish in few ticks."""
    rng = np.random.default_rng(seed)
    jobs = []
    for i, (app_name, nprocs, submit) in enumerate(
        sorted(specs, key=lambda s: s[2])
    ):
        job = Job(
            job_id=i,
            app=get_application(app_name),
            nprocs=nprocs,
            submit_time=submit,
        )
        job.progress_s = max(0.0, job.nominal_runtime_s - rng.uniform(1.0, 30.0))
        jobs.append(job)
    return jobs


@given(job_specs, st.integers(min_value=0, max_value=1000), st.booleans())
@settings(max_examples=30, deadline=None)
def test_scheduler_invariants(specs, seed, use_backfill):
    cluster = Cluster.tianhe_1a(num_nodes=16)
    jobs = _materialise(specs, seed)
    cls = BackfillScheduler if use_backfill else BatchScheduler
    scheduler = cls(cluster, _executor(cluster, seed), ListFeeder(list(jobs)))

    for t in range(1, 200):
        scheduler.tick(float(t), 1.0)
        state = cluster.state

        # Occupancy bookkeeping: each running job owns exactly the nodes
        # marked with its id, and no node is double-owned.
        owned = []
        for job in scheduler.running_jobs:
            marked = np.flatnonzero(state.job_id == job.job_id)
            np.testing.assert_array_equal(np.sort(job.nodes), marked)
            owned.extend(job.nodes.tolist())
        assert len(owned) == len(set(owned))

        # Conservation: every job is in exactly one place.
        queued = {j.job_id for j in scheduler.queue}
        running = {j.job_id for j in scheduler.running_jobs}
        finished = {j.job_id for j in scheduler.finished_jobs}
        assert not (queued & running)
        assert not (queued & finished)
        assert not (running & finished)

        if scheduler.idle():
            break

    # Closed list + generous horizon: everything finished exactly once.
    assert scheduler.idle()
    assert len(scheduler.finished_jobs) == len(jobs)
    for job in scheduler.finished_jobs:
        assert job.state is JobState.FINISHED
        assert job.finish_time >= job.start_time >= job.submit_time


@given(job_specs, st.integers(min_value=0, max_value=1000))
@settings(max_examples=15, deadline=None)
def test_backfill_never_finishes_fewer_jobs(specs, seed):
    """Over the same horizon, backfill completes at least as many jobs
    as FCFS for the identical closed list."""

    def run(cls):
        cluster = Cluster.tianhe_1a(num_nodes=16)
        jobs = _materialise(specs, seed)
        scheduler = cls(cluster, _executor(cluster, seed), ListFeeder(jobs))
        for t in range(1, 120):
            scheduler.tick(float(t), 1.0)
            if scheduler.idle():
                break
        return len(scheduler.finished_jobs)

    assert run(BackfillScheduler) >= run(BatchScheduler)
