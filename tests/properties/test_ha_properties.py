"""Property tests: crash-recovery replay fidelity and fencing safety.

The tentpole guarantee of the :mod:`repro.ha` layer, stated as
properties over *arbitrary* crash timing and journal compaction cadence:

* **Replay bit-identity** — crash the controller after any cycle ``k``
  of a seeded trace, restore a successor from the journal, and from
  cycle ``k+1`` on the run is indistinguishable from one that never
  crashed: same power readings, same state classifications, same
  decisions (action, node ids, levels), same final DVFS levels.  The
  compaction cadence (checkpoint-only, checkpoint+tail, tail-only) must
  not matter.
* **Fencing safety** — whatever single cycle the crash lands on, no
  control cycle is ever acted on by two manager epochs, and every
  command the dead primary left in flight is fenced, never applied.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actuator import DvfsActuator
from repro.faults import FaultScenario
from repro.ha import HaConfig, HaController, StateJournal

from tests.ha.conftest import build_manager, drive_load, make_world, tight_thresholds

TOTAL_CYCLES = 36


def _reference_trace(p_low, p_high):
    """The uncrashed run's per-cycle decisions and final levels."""
    world = make_world()
    manager = build_manager(world, p_low, p_high)
    rng = np.random.default_rng(7)
    reports = []
    for k in range(1, TOTAL_CYCLES + 1):
        drive_load(world.state, rng)
        reports.append(manager.control_cycle(float(k)))
    return reports, world.state.level.copy()


@settings(max_examples=15, deadline=None)
@given(
    crash_at=st.integers(min_value=1, max_value=TOTAL_CYCLES - 1),
    compact_every=st.integers(min_value=1, max_value=12),
)
def test_journal_replay_is_bit_identical(crash_at, compact_every):
    world = make_world()
    p_low, p_high = tight_thresholds(world)
    ref_reports, ref_levels = _reference_trace(p_low, p_high)

    journal = StateJournal(compact_every=compact_every)
    primary = build_manager(world, p_low, p_high, journal=journal)
    rng = np.random.default_rng(7)
    reports = []
    for k in range(1, crash_at + 1):
        drive_load(world.state, rng)
        reports.append(primary.control_cycle(float(k)))

    # Crash: the successor shares the world and the live actuator but
    # starts with pristine controller state, then restores.
    successor = build_manager(
        world, p_low, p_high, journal=journal, actuator=primary.actuator
    )
    successor.restore_state(journal.recover())
    assert successor.cycles == crash_at
    for k in range(crash_at + 1, TOTAL_CYCLES + 1):
        drive_load(world.state, rng)
        reports.append(successor.control_cycle(float(k)))

    for k, (a, b) in enumerate(zip(ref_reports, reports), start=1):
        assert a.power_w == b.power_w, k
        assert a.state is b.state, k
        assert a.decision.action is b.decision.action, k
        assert np.array_equal(a.decision.node_ids, b.decision.node_ids), k
        assert np.array_equal(a.decision.new_levels, b.decision.new_levels), k
    np.testing.assert_array_equal(world.state.level, ref_levels)


class _RetryInjector:
    """Every node's first command issue is lost, forcing in-flight retries."""

    def __init__(self):
        self._failed_once = set()
        self.command_delay_cycles = 2
        self.scenario = FaultScenario.none()
        self.meter_outages = 0
        self.meter_outage_cycles = 0
        self.node_crashes = 0
        self.offline_node_cycles = 0
        self.corrupted_samples = 0
        self.corrupted_meter_readings = 0

    def begin_cycle(self, now):
        pass

    def meter_available(self):
        return True

    def perturb_meter(self, reading_w):
        return reading_w

    def telemetry_drop_mask(self, node_ids):
        return np.zeros(len(node_ids), dtype=bool)

    def corrupt_telemetry(self, node_ids, cpu_util, mem_frac, nic_frac):
        return np.zeros(len(node_ids), dtype=bool)

    def command_outcomes(self, node_ids):
        lost = np.asarray(
            [int(i) not in self._failed_once for i in node_ids], dtype=bool
        )
        self._failed_once.update(int(i) for i in node_ids)
        return lost, np.zeros(len(node_ids), dtype=bool)


@settings(max_examples=15, deadline=None)
@given(crash_at=st.integers(min_value=2, max_value=TOTAL_CYCLES - 3))
def test_fencing_never_double_applies(crash_at):
    world = make_world()
    p_low, p_high = tight_thresholds(world)
    injector = _RetryInjector()
    journal = StateJournal(compact_every=8)
    actuator = DvfsActuator(world.state, injector)

    def factory():
        return build_manager(
            world,
            p_low,
            p_high,
            journal=journal,
            actuator=actuator,
            fault_injector=injector,
        )

    ha = HaController(
        factory(),
        factory,
        journal,
        HaConfig.warm(lease_timeout_cycles=2, crash_at_cycles=(crash_at,)),
    )
    rng = np.random.default_rng(7)
    inflight_at_crash = 0
    for k in range(1, TOTAL_CYCLES + 1):
        pending_before = actuator.pending_commands
        drive_load(world.state, rng)
        ha.control_cycle(float(k))
        if k == crash_at:
            inflight_at_crash = pending_before

    stats = ha.stats()
    assert stats.epoch_conflicts == 0
    assert stats.failovers == 1 and stats.final_epoch == 1
    # Every stranded command was fenced by the end of the run; nothing
    # from the dead epoch remains pending or ever landed.
    assert actuator.stale_pending_commands == 0
    assert stats.fenced_commands == inflight_at_crash
