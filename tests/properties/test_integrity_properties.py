"""Property tests for the telemetry-integrity defense.

Two guarantees pin the design:

* **No-op on clean telemetry** — with every sensor honest, a defended
  run (validator + meter monitor armed) is *bit-identical* to the
  undefended seed run: the pipeline observes, but touches nothing.
* **Never-underestimate under corruption** — once every corrupted node
  is quarantined, the power the controller acts on is at least the true
  cluster power, whatever the (noiseless-but-lying) meter reports.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.policies import make_policy
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import CorruptionScenario, FaultInjector, FaultScenario
from repro.power import PowerModel, SystemPowerMeter
from repro.sim import RandomSource
from repro.telemetry import IntegrityConfig

NUM_NODES = 12


def _setup(seed: int, corruption: CorruptionScenario):
    rng = np.random.default_rng(seed)
    cluster = Cluster.tianhe_1a(num_nodes=NUM_NODES)
    state = cluster.state
    state.assign_job(np.arange(0, 6), 0)
    state.set_load(np.arange(0, 6), 0.8, 0.5, 0.3)
    state.assign_job(np.arange(6, 10), 1)
    state.set_load(np.arange(6, 10), 0.5, 0.4, 0.2)

    sets = NodeSets(cluster)
    model = PowerModel(cluster.spec)
    meter = SystemPowerMeter(model, state)
    injector = FaultInjector(
        FaultScenario.none(),
        RandomSource(seed=seed),
        num_nodes=NUM_NODES,
        corruption=corruption,
    )
    p0 = model.system_power(state)
    manager = PowerManager(
        cluster,
        sets,
        meter,
        ThresholdController.fixed(p_low=p0 * 0.97, p_high=p0 * 1.03),
        make_policy("mpc"),
        steady_green_cycles=2,
        fault_injector=injector,
        integrity=IntegrityConfig(),
    )
    return cluster, model, manager, rng


def _wander(state, rng):
    for ids in (np.arange(0, 6), np.arange(6, 10)):
        state.set_load(
            ids,
            float(rng.uniform(0.1, 1.0)),
            float(rng.uniform(0.1, 0.8)),
            float(rng.uniform(0.0, 0.5)),
        )


# ----------------------------------------------------------------------
# Never-underestimate under corruption
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.4, max_value=0.9),
    st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_quarantined_estimate_never_underestimates(seed, meter_gain, stuck):
    """With every sensor garbage and the meter lying low, the acted-on
    power must cover the true cluster power once quarantine engages."""
    corruption = CorruptionScenario(
        garbage_fraction=1.0,
        garbage_rate=1.0,
        meter_gain=meter_gain,
        meter_stuck=stuck,
    )
    cluster, model, manager, rng = _setup(seed, corruption)
    state = cluster.state
    saw_full_quarantine = False
    for t in range(60):
        _wander(state, rng)
        truth = model.system_power(state)
        report = manager.control_cycle(float(t))
        validator = manager.validator
        assert validator is not None
        if report.metered and bool(validator.quarantined.all()):
            saw_full_quarantine = True
            assert report.power_w >= truth - 1e-6, (
                f"cycle {t}: acted on {report.power_w:.1f} W with "
                f"{truth:.1f} W truly flowing"
            )
    assert saw_full_quarantine, "corruption never drove full quarantine"


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_quarantine_engages_and_releases_after_corruption_clears(seed):
    """Garbage sensors land in quarantine; onset gating keeps the run
    clean before the corruption switches on."""
    corruption = CorruptionScenario(
        garbage_fraction=0.5, garbage_rate=1.0, onset_cycle=10
    )
    cluster, model, manager, rng = _setup(seed, corruption)
    state = cluster.state
    for t in range(10):
        _wander(state, rng)
        manager.control_cycle(float(t))
    validator = manager.validator
    assert validator is not None
    assert not validator.any_quarantined  # honest before onset
    assert validator.rejected_samples == 0
    for t in range(10, 40):
        _wander(state, rng)
        manager.control_cycle(float(t))
    assert validator.any_quarantined
    assert validator.rejected_samples > 0


# ----------------------------------------------------------------------
# Bit-identical no-op on clean telemetry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [2012, 7])
def test_defended_run_is_bit_identical_on_clean_telemetry(seed):
    config = ExperimentConfig.quick(num_nodes=32, seed=seed)
    baseline = run_experiment(config, "bfp")
    defended = run_experiment(
        ExperimentConfig.quick(
            num_nodes=32, seed=seed, integrity=IntegrityConfig()
        ),
        "bfp",
    )
    np.testing.assert_array_equal(baseline.times, defended.times)
    np.testing.assert_array_equal(baseline.power_w, defended.power_w)
    assert baseline.metrics.overspend == defended.metrics.overspend
    assert baseline.p_low_w == defended.p_low_w
    assert baseline.p_high_w == defended.p_high_w
    assert len(baseline.finished_jobs) == len(defended.finished_jobs)
