"""Property tests: safety invariants under arbitrary fault schedules.

Drive a full :class:`PowerManager` with a real :class:`FaultInjector`
configured by hypothesis-drawn fault rates, while the workload's load
levels wander randomly.  Whatever the schedule of dropped samples, meter
outages, lost/delayed commands and node crashes:

* a privileged node's DVFS level never changes;
* in any cycle where a node's actual level *rises*, that cycle ran on a
  real meter reading and the node's telemetry was fresh in that cycle's
  snapshot (the never-upgrade-on-stale guarantee);
* every level stays within the platform range.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.policies import make_policy
from repro.faults import DegradedModeConfig, FaultInjector, FaultScenario
from repro.power import PowerModel, SystemPowerMeter
from repro.sim import RandomSource

MAX_STALE_AGE_S = 2.5
PRIVILEGED = np.array([0, 1])

scenarios = st.builds(
    FaultScenario,
    telemetry_dropout=st.floats(0.0, 0.6),
    meter_outage_rate=st.floats(0.0, 0.3),
    meter_recovery_rate=st.floats(0.1, 0.9),
    meter_noise_fraction=st.floats(0.0, 0.1),
    command_loss=st.floats(0.0, 0.4),
    command_delay=st.floats(0.0, 0.4),
    command_delay_cycles=st.integers(min_value=1, max_value=4),
    node_crash_rate=st.floats(0.0, 0.05),
    node_recovery_rate=st.floats(0.05, 0.5),
)


def _setup(seed: int, scenario: FaultScenario):
    rng = np.random.default_rng(seed)
    cluster = Cluster.tianhe_1a(num_nodes=12)
    state = cluster.state
    cluster.set_privileged_nodes(PRIVILEGED)
    state.assign_job(np.arange(2, 7), 0)
    state.set_load(np.arange(2, 7), 0.8, 0.5, 0.3)
    state.assign_job(np.arange(7, 11), 1)
    state.set_load(np.arange(7, 11), 0.5, 0.4, 0.2)

    sets = NodeSets(cluster)
    model = PowerModel(cluster.spec)
    meter = SystemPowerMeter(model, state)
    injector = FaultInjector(scenario, RandomSource(seed=seed), num_nodes=12)
    p0 = model.system_power(state)
    manager = PowerManager(
        cluster,
        sets,
        meter,
        # Tight band around the operating point so the wandering load
        # crosses both thresholds and all three states get exercised.
        ThresholdController.fixed(p_low=p0 * 0.97, p_high=p0 * 1.03),
        make_policy("mpc"),
        steady_green_cycles=2,
        fault_injector=injector,
        degraded=DegradedModeConfig(max_stale_age_s=MAX_STALE_AGE_S),
    )
    return cluster, manager, rng


@given(st.integers(min_value=0, max_value=10_000), scenarios)
@settings(max_examples=30, deadline=None)
def test_safety_invariants_under_any_fault_schedule(seed, scenario):
    cluster, manager, rng = _setup(seed, scenario)
    state = cluster.state
    top = cluster.spec.top_level
    priv_levels = state.level[PRIVILEGED].copy()

    for t in range(40):
        # Random walk of the job loads to traverse green/yellow/red.
        for ids in (np.arange(2, 7), np.arange(7, 11)):
            state.set_load(
                ids,
                float(rng.uniform(0.1, 1.0)),
                float(rng.uniform(0.1, 0.8)),
                float(rng.uniform(0.0, 0.5)),
            )
        before = state.level.copy()
        report = manager.control_cycle(float(t))
        snapshot = manager.collector.current

        # Privileged nodes are untouchable, faults or not.
        np.testing.assert_array_equal(state.level[PRIVILEGED], priv_levels)
        # Levels stay on the platform's ladder.
        assert state.level.min() >= 0 and state.level.max() <= top

        raised = np.flatnonzero(state.level > before)
        if raised.size:
            # Upgrades only ever happen on a real meter reading...
            assert report.metered
            # ...and only for nodes whose telemetry was fresh in the
            # snapshot this very cycle used.
            stale = snapshot.stale_mask(MAX_STALE_AGE_S)
            for node in raised:
                assert not stale[snapshot.index_of(int(node))]


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_total_blackout_never_raises_a_level(seed):
    """With every sample dropped, no node may ever be upgraded."""
    scenario = FaultScenario(telemetry_dropout=1.0)
    cluster, manager, rng = _setup(seed, scenario)
    state = cluster.state
    baseline = state.level.copy()
    for t in range(25):
        manager.control_cycle(float(t))
        assert np.all(state.level <= baseline)
    # The blackout ladder eventually forces red.
    assert manager.forced_red_cycles > 0
