"""Property-based tests for the observability layer.

Four invariants the tentpole stands on:

* span trees produced by any legal tracer program are properly nested
  and fully closed;
* counters are monotone under arbitrary non-negative increments, and
  histogram bucket counts are cumulative and consistent;
* the flight-recorder ring never exceeds its capacity, whatever the
  record/trip interleaving;
* switching observability on does not change a single capping decision —
  the enabled and disabled runs produce identical power series.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExperimentConfig, ObsConfig, run_experiment
from repro.obs import CycleTracer, FlightRecorder, MetricRegistry

# ---------------------------------------------------------------------------
# Span nesting / closure
# ---------------------------------------------------------------------------

#: A random tracer program: each element opens a child span containing
#: that many grandchildren.
span_program = st.lists(
    st.integers(min_value=0, max_value=3), min_size=0, max_size=6
)


@given(span_program, st.floats(min_value=0.0, max_value=1e6))
def test_spans_properly_nested_and_closed(program, t):
    tracer = CycleTracer()
    root = tracer.begin_cycle(t)
    for i, grandchildren in enumerate(program):
        with tracer.span(f"s{i}"):
            for j in range(grandchildren):
                with tracer.span(f"s{i}.{j}"):
                    pass
    tracer.end_cycle()

    assert tracer.depth == 0
    spans = list(root.walk())
    assert all(not s.open for s in spans)
    assert len(spans) == 1 + len(program) + sum(program)
    # Nesting mirrors the program exactly.
    assert [len(c.children) for c in root.children] == program
    # seq is a preorder: strictly increasing along the walk.
    seqs = [s.seq for s in spans]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    # All spans carry the cycle's sim time.
    assert all(s.time == root.time for s in spans)


# ---------------------------------------------------------------------------
# Counter monotonicity / histogram consistency
# ---------------------------------------------------------------------------

increments = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=0,
    max_size=20,
)


@given(increments)
def test_counter_is_monotone_under_any_increments(amounts):
    counter = MetricRegistry().counter("c_total", "help")
    seen = [counter.value]
    for amount in amounts:
        counter.inc(amount)
        seen.append(counter.value)
    assert all(b >= a for a, b in zip(seen, seen[1:]))
    assert seen[-1] == sum(amounts)


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=30,
    )
)
def test_histogram_buckets_are_cumulative_and_total(values):
    hist = MetricRegistry().histogram(
        "h", "help", buckets=(-10.0, 0.0, 10.0, 1e3)
    )
    for v in values:
        hist.observe(v)
    cumulative = hist.cumulative_counts()
    assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == hist.count == len(values)
    for bound, count in zip(hist.bounds, cumulative):
        assert count == sum(1 for v in values if v <= bound)


# ---------------------------------------------------------------------------
# Flight-recorder capacity bound
# ---------------------------------------------------------------------------

#: True = record a cycle, False = trip a dump.
flight_ops = st.lists(st.booleans(), min_size=0, max_size=50)


@given(st.integers(min_value=1, max_value=8), flight_ops)
def test_ring_never_exceeds_capacity(capacity, ops):
    rec = FlightRecorder(capacity)
    recorded = 0
    for i, is_record in enumerate(ops):
        if is_record:
            rec.record({"seq": i})
            recorded += 1
        else:
            dump = rec.trip("prop", now=float(i))
            assert len(dump.records) <= capacity
        assert len(rec) <= capacity
        assert len(rec) == min(recorded, capacity)
    assert rec.recorded_total == recorded
    # Dumps always hold the *most recent* records, oldest first.
    for dump in rec.dumps:
        seqs = [r["seq"] for r in dump.records]
        assert seqs == sorted(seqs)


# ---------------------------------------------------------------------------
# Observability does not perturb control decisions
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=3)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_enabled_obs_changes_no_capping_decision(seed):
    def run(obs_cfg):
        cfg = ExperimentConfig.quick(
            seed=seed,
            training_duration_s=60.0,
            run_duration_s=90.0,
            obs=obs_cfg,
        )
        return run_experiment(cfg, "mpc")

    plain = run(ObsConfig.off())
    traced = run(ObsConfig(trace=True, metrics=True, flight_recorder_cycles=8))

    assert np.array_equal(plain.power_w, traced.power_w)
    assert np.array_equal(plain.times, traced.times)
    assert plain.metrics.finished_jobs == traced.metrics.finished_jobs
    assert plain.metrics.p_max_w == traced.metrics.p_max_w
