"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationEngine
from repro.sim.events import EventQueue

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(st.lists(times, min_size=1, max_size=200))
def test_events_fire_in_time_order(schedule):
    q = EventQueue()
    fired: list[tuple[float, int]] = []
    for i, t in enumerate(schedule):
        q.push(t, lambda t=t, i=i: fired.append((t, i)), label=str(i))
    while q:
        q.pop().callback()
    assert [f[0] for f in fired] == sorted(f[0] for f in fired)
    # Equal-time events keep insertion order (stable).
    for a, b in zip(fired, fired[1:]):
        if a[0] == b[0]:
            assert a[1] < b[1]


@given(st.lists(times, min_size=1, max_size=100), st.data())
def test_cancellation_removes_exactly_those_events(schedule, data):
    q = EventQueue()
    handles = [q.push(t, lambda: None) for t in schedule]
    to_cancel = data.draw(
        st.sets(st.integers(0, len(handles) - 1), max_size=len(handles))
    )
    for i in to_cancel:
        handles[i].cancel()
    assert len(q) == len(schedule) - len(to_cancel)
    survivors = 0
    while q:
        q.pop()
        survivors += 1
    assert survivors == len(schedule) - len(to_cancel)


@given(st.lists(times, min_size=1, max_size=100))
@settings(max_examples=50)
def test_engine_clock_monotone(schedule):
    engine = SimulationEngine()
    observed = []
    for t in schedule:
        engine.schedule(t, lambda: observed.append(engine.now))
    engine.run_until_idle()
    assert observed == sorted(observed)
    assert engine.now == max(schedule)


@given(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_periodic_task_fire_count(period, horizon):
    from repro.sim import PeriodicTask

    engine = SimulationEngine()
    count = []
    task = PeriodicTask(engine, period, count.append)
    task.start()
    engine.run(until=horizon)
    # Each firing schedules the next relative to the previous one, so
    # float accumulation can move a boundary firing by one ulp — allow
    # off-by-one around the exact count.
    expected = horizon / period
    assert abs(len(count) - expected) <= 1.0
