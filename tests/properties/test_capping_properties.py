"""Property-based tests of Algorithm 1's cross-cycle invariants.

Drive the capping algorithm through arbitrary sequences of power states
(with the actuator applying each decision) and check the invariants that
must hold at every step:

* ``A_degraded ⊆ A_candidate``;
* every commanded level stays within the platform's range;
* yellow decisions only lower levels, green upgrades only raise them,
  red floors every candidate;
* once the state stays green, every degraded node eventually returns to
  the top level and ``A_degraded`` drains to empty.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import (
    DvfsActuator,
    NodeSets,
    PowerCappingAlgorithm,
    PowerState,
    PowerThresholds,
)
from repro.core.capping import CappingAction
from repro.core.policies import PolicyContext, make_policy
from repro.power import NodePowerEstimator, PowerModel
from repro.telemetry import TelemetryCollector

STATES = [PowerState.GREEN, PowerState.YELLOW, PowerState.RED]


def _setup(seed: int):
    rng = np.random.default_rng(seed)
    cluster = Cluster.tianhe_1a(num_nodes=12)
    state = cluster.state
    # A few random jobs.
    cursor = 0
    for jid in range(3):
        width = int(rng.integers(1, 4))
        ids = np.arange(cursor, min(cursor + width, 12))
        if len(ids) == 0:
            break
        state.assign_job(ids, jid)
        state.set_load(ids, float(rng.random()), float(rng.random()), float(rng.random()))
        cursor += width + int(rng.integers(0, 2))
    sets = NodeSets(cluster)
    algo = PowerCappingAlgorithm(sets, cluster.spec.top_level, steady_green_cycles=3)
    collector = TelemetryCollector(state, sets.candidates)
    estimator = NodePowerEstimator(PowerModel(cluster.spec))
    actuator = DvfsActuator(state)
    policy = make_policy("mpc")
    return cluster, sets, algo, collector, estimator, actuator, policy


@given(
    st.integers(min_value=0, max_value=10_000),
    st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=60),
)
@settings(max_examples=40, deadline=None)
def test_invariants_under_arbitrary_state_sequences(seed, sequence):
    cluster, sets, algo, collector, estimator, actuator, policy = _setup(seed)
    state = cluster.state
    top = cluster.spec.top_level
    thresholds = PowerThresholds(p_low=1.0, p_high=2.0)
    for i, code in enumerate(sequence):
        snapshot = collector.collect(float(i))
        ctx = PolicyContext(snapshot, collector.previous, estimator, 1.5, thresholds)
        before = state.level.copy()
        decision = algo.decide(STATES[code], ctx, policy)
        actuator.apply(decision)

        # Degraded set stays within candidates.
        assert np.all(np.isin(algo.degraded_nodes, sets.candidates))
        # Levels always in range.
        assert state.level.min() >= 0 and state.level.max() <= top
        # Directionality per action.
        if decision.action is CappingAction.DEGRADE:
            ids = decision.node_ids
            assert np.all(state.level[ids] == before[ids] - 1)
        elif decision.action is CappingAction.UPGRADE:
            ids = decision.node_ids
            assert np.all(state.level[ids] >= before[ids])
        elif decision.action is CappingAction.EMERGENCY:
            assert np.all(state.level[sets.candidates] == 0)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_sustained_green_drains_degraded_set(seed):
    cluster, sets, algo, collector, estimator, actuator, policy = _setup(seed)
    state = cluster.state
    top = cluster.spec.top_level
    thresholds = PowerThresholds(p_low=1.0, p_high=2.0)

    # Push hard: one red cycle floors everything.
    snapshot = collector.collect(0.0)
    ctx = PolicyContext(snapshot, collector.previous, estimator, 3.0, thresholds)
    actuator.apply(algo.decide(PowerState.RED, ctx, policy))
    assert len(algo.degraded_nodes) == len(sets.candidates)

    # Sustained green: within T_g + top_level cycles everything recovers.
    for i in range(1, 3 + top + 2):
        snapshot = collector.collect(float(i))
        ctx = PolicyContext(snapshot, collector.previous, estimator, 0.5, thresholds)
        actuator.apply(algo.decide(PowerState.GREEN, ctx, policy))
    assert len(algo.degraded_nodes) == 0
    assert np.all(state.level == top)
