"""Property-based tests of the policy contract (§III.B).

Every policy, on every randomly generated cluster situation, must return
a target set that is (a) a subset of the monitored candidate nodes,
(b) free of idle nodes, (c) free of nodes at the lowest level and
(d) consisting of whole degradable job node-sets (policies target jobs).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import NodeSets, PowerThresholds
from repro.core.policies import PolicyContext, available_policies, make_policy
from repro.power import NodePowerEstimator, PowerModel
from repro.telemetry import TelemetryCollector

SPEC_CLUSTER_SIZE = 24


def _random_situation(rng: np.random.Generator):
    """A random cluster occupancy + load + level state and its context."""
    cluster = Cluster.tianhe_1a(num_nodes=SPEC_CLUSTER_SIZE)
    state = cluster.state
    # Random jobs over random disjoint node blocks.
    node_perm = rng.permutation(SPEC_CLUSTER_SIZE)
    cursor = 0
    job_id = 0
    while cursor < SPEC_CLUSTER_SIZE and job_id < 6:
        size = int(rng.integers(1, 6))
        block = node_perm[cursor : cursor + size]
        if len(block) == 0:
            break
        if rng.random() < 0.8:  # some blocks stay idle
            state.assign_job(np.sort(block), job_id)
            state.set_load(
                np.sort(block),
                cpu_util=float(rng.random()),
                mem_frac=float(rng.random()),
                nic_frac=float(rng.random()),
            )
            job_id += 1
        cursor += size
    # Random levels everywhere (including floors).
    state.level[:] = rng.integers(0, cluster.spec.num_levels, SPEC_CLUSTER_SIZE)

    sets = NodeSets(cluster)
    collector = TelemetryCollector(state, sets.candidates)
    estimator = NodePowerEstimator(PowerModel(cluster.spec))
    previous = collector.collect(0.0)
    # Perturb loads for a second snapshot so change-based policies see rates.
    busy = np.flatnonzero(state.job_id >= 0)
    if len(busy):
        state.cpu_util[busy] = np.clip(
            state.cpu_util[busy] + rng.normal(0, 0.2, len(busy)), 0, 1
        )
    snapshot = collector.collect(1.0)
    power = float(PowerModel(cluster.spec).system_power(state))
    ctx = PolicyContext(
        snapshot=snapshot,
        previous=previous,
        estimator=estimator,
        system_power=power,
        thresholds=PowerThresholds(p_low=power * 0.95, p_high=power * 1.05),
    )
    return cluster, ctx


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_policy_contract_on_random_situations(seed):
    rng = np.random.default_rng(seed)
    cluster, ctx = _random_situation(rng)
    snapshot = ctx.snapshot
    for name in available_policies():
        kwargs = {}
        if name == "random":
            kwargs["rng"] = np.random.default_rng(seed + 1)
        elif name == "sla":
            kwargs["priority_of"] = lambda jid: jid % 3
        policy = make_policy(name, **kwargs)
        selection = np.asarray(policy.select(ctx), dtype=np.int64)

        # (a) subset of monitored nodes
        assert np.all(np.isin(selection, snapshot.node_ids)), name
        if len(selection) == 0:
            continue
        idx = np.searchsorted(snapshot.node_ids, selection)
        # (b) no idle nodes
        assert np.all(snapshot.job_id[idx] >= 0), name
        # (c) no floor nodes
        assert np.all(snapshot.level[idx] > 0), name
        # (d) whole degradable job sets: for each selected job, every
        # degradable node of that job is selected.
        for jid in np.unique(snapshot.job_id[idx]):
            job_nodes = ctx.degradable_nodes_of_job(int(jid))
            assert np.all(np.isin(job_nodes, selection)), name
        # No duplicates, sorted output.
        assert np.all(np.diff(selection) > 0), name


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=20, deadline=None)
def test_deterministic_policies_repeatable(seed):
    rng = np.random.default_rng(seed)
    _, ctx = _random_situation(rng)
    for name in available_policies():
        if name == "random":
            continue
        kwargs = {"priority_of": lambda jid: jid % 3} if name == "sla" else {}
        a = make_policy(name, **kwargs).select(ctx)
        b = make_policy(name, **kwargs).select(ctx)
        np.testing.assert_array_equal(a, b, err_msg=name)
