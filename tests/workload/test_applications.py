"""Unit tests for the NPB application profile library."""

import pytest

from repro.errors import WorkloadError
from repro.workload import NPB_APPLICATIONS, get_application


def test_all_five_benchmarks_present():
    assert sorted(NPB_APPLICATIONS) == ["BT", "CG", "EP", "LU", "SP"]


def test_lookup_case_insensitive():
    assert get_application("ep").name == "EP"
    assert get_application("Cg").name == "CG"


def test_unknown_application_raises():
    with pytest.raises(WorkloadError):
        get_application("FT")


def test_ep_is_most_compute_bound():
    """EP is embarrassingly parallel — the most DVFS-sensitive profile."""
    betas = {
        name: app.mean_compute_boundness() for name, app in NPB_APPLICATIONS.items()
    }
    assert max(betas, key=betas.get) == "EP"
    assert betas["EP"] > 0.9


def test_cg_is_least_compute_bound():
    betas = {
        name: app.mean_compute_boundness() for name, app in NPB_APPLICATIONS.items()
    }
    assert min(betas, key=betas.get) == "CG"
    assert betas["CG"] < 0.5


def test_ep_has_highest_mean_utilisation():
    utils = {
        name: app.schedule.mean_cpu_util() for name, app in NPB_APPLICATIONS.items()
    }
    assert max(utils, key=utils.get) == "EP"


def test_memory_footprints_ordered_sensibly():
    """EP is tiny; BT carries the largest working set."""
    assert NPB_APPLICATIONS["EP"].mem_fraction < 0.1
    assert NPB_APPLICATIONS["BT"].mem_fraction > NPB_APPLICATIONS["EP"].mem_fraction


def test_nominal_runtime_strong_scaling():
    app = get_application("LU")
    t64 = app.nominal_runtime(64)
    t128 = app.nominal_runtime(128)
    assert t128 < t64
    # α < 1 ⇒ doubling processes less than halves the runtime.
    assert t128 > t64 / 2


def test_ep_scales_perfectly():
    app = get_application("EP")
    assert app.nominal_runtime(128) == pytest.approx(app.nominal_runtime(64) / 2)


def test_nominal_runtime_at_reference():
    for app in NPB_APPLICATIONS.values():
        assert app.nominal_runtime(app.ref_nprocs) == pytest.approx(app.ref_runtime_s)


def test_nominal_runtime_rejects_bad_nprocs():
    with pytest.raises(WorkloadError):
        get_application("EP").nominal_runtime(0)


def test_profiles_have_positive_gflops():
    for app in NPB_APPLICATIONS.values():
        assert app.gflops_per_node > 0
