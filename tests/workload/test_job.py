"""Unit tests for the job lifecycle."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload import Job, JobState, get_application


def _job(job_id=0, app="EP", nprocs=64, submit=0.0):
    return Job(job_id=job_id, app=get_application(app), nprocs=nprocs, submit_time=submit)


def test_initial_state():
    job = _job()
    assert job.state is JobState.PENDING
    assert job.progress_s == 0.0
    assert job.degraded_exposure_s == 0.0


def test_validation():
    with pytest.raises(WorkloadError):
        _job(nprocs=0)
    with pytest.raises(WorkloadError):
        _job(submit=-1.0)


def test_nominal_runtime_delegates_to_app():
    job = _job(nprocs=128)
    assert job.nominal_runtime_s == pytest.approx(
        get_application("EP").nominal_runtime(128)
    )


def test_lifecycle_happy_path():
    job = _job(submit=10.0)
    job.start(15.0, np.array([0, 1, 2]))
    assert job.state is JobState.RUNNING
    assert job.waiting_time_s == pytest.approx(5.0)
    job.finish(100.0)
    assert job.state is JobState.FINISHED
    assert job.actual_runtime_s == pytest.approx(85.0)


def test_start_twice_rejected():
    job = _job()
    job.start(0.0, np.array([0]))
    with pytest.raises(WorkloadError):
        job.start(1.0, np.array([0]))


def test_start_on_zero_nodes_rejected():
    with pytest.raises(WorkloadError):
        _job().start(0.0, np.array([], dtype=np.int64))


def test_start_before_submit_rejected():
    with pytest.raises(WorkloadError):
        _job(submit=10.0).start(5.0, np.array([0]))


def test_finish_without_running_rejected():
    with pytest.raises(WorkloadError):
        _job().finish(1.0)


def test_finish_before_start_rejected():
    job = _job()
    job.start(10.0, np.array([0]))
    with pytest.raises(WorkloadError):
        job.finish(5.0)


def test_actual_runtime_requires_finished():
    job = _job()
    with pytest.raises(WorkloadError):
        _ = job.actual_runtime_s


def test_waiting_time_requires_started():
    with pytest.raises(WorkloadError):
        _ = _job().waiting_time_s


def test_remaining_work():
    job = _job()
    assert job.remaining_work_s == pytest.approx(job.nominal_runtime_s)
    job.progress_s = job.nominal_runtime_s
    assert job.remaining_work_s == 0.0


def test_cycle_position_wraps():
    job = _job()
    cycle = job.cycle_length_s
    job.progress_s = 0.25 * cycle
    assert job.cycle_position == pytest.approx(0.25)
    job.progress_s = 2.75 * cycle
    assert job.cycle_position == pytest.approx(0.75)


def test_cycle_length_bounded():
    job = _job(nprocs=8)  # long job
    assert job.cycle_length_s <= 120.0
    assert job.cycle_length_s > 0


def test_nodes_array_is_copied():
    job = _job()
    nodes = np.array([1, 2, 3])
    job.start(0.0, nodes)
    nodes[0] = 99
    assert job.nodes[0] == 1
