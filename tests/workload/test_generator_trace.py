"""Unit tests for the random job generator and trace record/replay."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.sim import RandomSource
from repro.workload import JobTrace, RandomJobGenerator, TraceRecord
from repro.workload.generator import PAPER_NPROCS_CHOICES


def _generator(seed=1, **kwargs):
    return RandomJobGenerator(RandomSource(seed=seed).stream("gen"), **kwargs)


def test_paper_nprocs_choices():
    assert PAPER_NPROCS_CHOICES == (8, 16, 32, 64, 128, 256)


def test_jobs_have_increasing_ids():
    gen = _generator()
    jobs = [gen.next_job(float(i)) for i in range(10)]
    assert [j.job_id for j in jobs] == list(range(10))
    assert gen.generated == 10


def test_jobs_draw_from_paper_sets():
    gen = _generator()
    jobs = [gen.next_job(0.0) for _ in range(300)]
    apps = {j.app.name for j in jobs}
    nprocs = {j.nprocs for j in jobs}
    assert apps == {"EP", "CG", "LU", "BT", "SP"}
    assert nprocs == set(PAPER_NPROCS_CHOICES)


def test_mix_is_roughly_uniform():
    gen = _generator()
    jobs = [gen.next_job(0.0) for _ in range(2000)]
    for name in ("EP", "CG", "LU", "BT", "SP"):
        frac = sum(1 for j in jobs if j.app.name == name) / len(jobs)
        assert 0.14 < frac < 0.26


def test_same_seed_same_sequence():
    a = [(j.app.name, j.nprocs) for j in (_generator(5).next_job(0.0) for _ in range(50))]
    b = [(j.app.name, j.nprocs) for j in (_generator(5).next_job(0.0) for _ in range(50))]
    assert a == b


def test_runtime_scale_compresses():
    full = _generator(1, runtime_scale=1.0).next_job(0.0)
    small_gen = _generator(1, runtime_scale=0.1)
    small = small_gen.next_job(0.0)
    assert small.app.name == full.app.name  # same draw
    assert small.nominal_runtime_s == pytest.approx(0.1 * full.nominal_runtime_s)


def test_invalid_configuration():
    rng = RandomSource(seed=0).stream("x")
    with pytest.raises(ConfigurationError):
        RandomJobGenerator(rng, runtime_scale=0.0)
    with pytest.raises(ConfigurationError):
        RandomJobGenerator(rng, nprocs_choices=())
    with pytest.raises(ConfigurationError):
        RandomJobGenerator(rng, nprocs_choices=(0,))
    with pytest.raises(ConfigurationError):
        RandomJobGenerator(rng, applications=[])


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def test_trace_roundtrip_csv():
    gen = _generator()
    jobs = [gen.next_job(float(i)) for i in range(20)]
    trace = JobTrace.from_jobs(jobs)
    restored = JobTrace.from_csv(trace.to_csv())
    assert len(restored) == 20
    for a, b in zip(trace, restored):
        assert a == b


def test_trace_to_jobs_assigns_ids():
    trace = JobTrace(
        [TraceRecord(0.0, "EP", 8), TraceRecord(5.0, "CG", 64)]
    )
    jobs = trace.to_jobs()
    assert [j.job_id for j in jobs] == [0, 1]
    assert jobs[0].app.name == "EP"
    assert jobs[1].submit_time == 5.0


def test_trace_to_jobs_runtime_scale():
    trace = JobTrace([TraceRecord(0.0, "EP", 64)])
    job = trace.to_jobs(runtime_scale=0.5)[0]
    full = trace.to_jobs()[0]
    assert job.nominal_runtime_s == pytest.approx(0.5 * full.nominal_runtime_s)


def test_trace_requires_time_order():
    with pytest.raises(WorkloadError):
        JobTrace([TraceRecord(5.0, "EP", 8), TraceRecord(1.0, "EP", 8)])


def test_trace_save_load(tmp_path):
    trace = JobTrace([TraceRecord(0.0, "LU", 32)])
    path = tmp_path / "trace.csv"
    trace.save(path)
    loaded = JobTrace.load(path)
    assert loaded[0] == trace[0]


def test_trace_rejects_malformed_csv():
    with pytest.raises(WorkloadError):
        JobTrace.from_csv("not,a,header\n1,2,3")
    with pytest.raises(WorkloadError):
        JobTrace.from_csv("submit_time,app,nprocs\n1.0,EP")


def test_trace_record_validation():
    with pytest.raises(WorkloadError):
        TraceRecord(-1.0, "EP", 8)
    with pytest.raises(WorkloadError):
        TraceRecord(0.0, "EP", 0)
