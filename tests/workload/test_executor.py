"""Unit tests for the job executor (per-tick advancement)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim import RandomSource
from repro.workload import Job, JobExecutor, JobState, get_application


def _executor(cluster, deterministic=True, **kwargs):
    rng = RandomSource(seed=3).stream("exec")
    if deterministic:
        kwargs.setdefault("util_jitter_std", 0.0)
        kwargs.setdefault("node_noise_std", 0.0)
        kwargs.setdefault("modulation_std", 0.0)
    return JobExecutor(cluster.state, rng, **kwargs)


def _start_job(cluster, nodes, app="EP", nprocs=64, job_id=0, t=0.0):
    job = Job(job_id=job_id, app=get_application(app), nprocs=nprocs, submit_time=0.0)
    cluster.state.assign_job(nodes, job_id)
    job.start(t, nodes)
    return job


def test_progress_at_full_speed(small_cluster):
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4))
    ex.advance([job], now=0.0, dt=1.0)
    assert job.progress_s == pytest.approx(1.0)
    assert job.degraded_exposure_s == 0.0


def test_load_written_to_state(small_cluster):
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4), app="EP")
    ex.advance([job], now=0.0, dt=1.0)
    phase = job.app.schedule.phase_at(job.cycle_position)
    np.testing.assert_allclose(small_cluster.state.cpu_util[:4], phase.cpu_util)
    np.testing.assert_allclose(small_cluster.state.nic_frac[:4], phase.nic_frac)


def test_degraded_node_slows_whole_job(small_cluster):
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4), app="EP")
    small_cluster.state.set_level(0, 0)  # one slow node
    ex.advance([job], now=0.0, dt=1.0)
    speed0 = small_cluster.spec.dvfs.speed(0)
    phase = job.app.schedule.phase_at(0.0)
    beta = phase.compute_boundness
    expected = 1.0 / ((1 - beta) + beta / speed0)
    assert job.progress_s == pytest.approx(expected)
    assert job.degraded_exposure_s == pytest.approx(1.0)


def test_degrading_all_nodes_same_as_one(small_cluster):
    ex = _executor(small_cluster)
    job_a = _start_job(small_cluster, np.arange(0, 4), job_id=0)
    job_b = _start_job(small_cluster, np.arange(4, 8), job_id=1)
    small_cluster.state.set_level(0, 3)
    small_cluster.state.set_levels(np.arange(4, 8), 3)
    ex.advance([job_a, job_b], now=0.0, dt=1.0)
    assert job_a.progress_s == pytest.approx(job_b.progress_s)


def test_completion_interpolated_exactly(small_cluster):
    """An uncapped job's measured runtime equals its nominal runtime."""
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4))
    nominal = job.nominal_runtime_s
    job.progress_s = nominal - 0.25  # quarter of a second of work left
    notices = ex.advance([job], now=100.0, dt=1.0)
    assert len(notices) == 1
    assert notices[0].finish_time == pytest.approx(100.25)
    assert job.remaining_work_s == 0.0


def test_completion_not_issued_twice(small_cluster):
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4))
    job.progress_s = job.nominal_runtime_s - 0.5
    notices = ex.advance([job], now=0.0, dt=1.0)
    assert len(notices) == 1
    job.finish(notices[0].finish_time)
    # Finished jobs are skipped on later ticks.
    assert ex.advance([job], now=1.0, dt=1.0) == []


def test_non_running_jobs_skipped(small_cluster):
    ex = _executor(small_cluster)
    pending = Job(job_id=5, app=get_application("EP"), nprocs=8, submit_time=0.0)
    assert ex.advance([pending], now=0.0, dt=1.0) == []
    assert pending.progress_s == 0.0


def test_memory_ramp(small_cluster):
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4), app="CG")
    ramp = job.app.mem_ramp_s
    ex.advance([job], now=0.0, dt=1.0)
    early = small_cluster.state.mem_frac[0]
    ex.advance([job], now=ramp * 2, dt=1.0)
    late = small_cluster.state.mem_frac[0]
    assert early < late
    assert late == pytest.approx(job.app.mem_fraction)


def test_invalid_dt_rejected(small_cluster):
    ex = _executor(small_cluster)
    with pytest.raises(WorkloadError):
        ex.advance([], now=0.0, dt=0.0)


def test_invalid_jitter_rejected(small_cluster):
    rng = RandomSource(seed=1).stream("x")
    with pytest.raises(WorkloadError):
        JobExecutor(small_cluster.state, rng, util_jitter_std=-0.1)
    with pytest.raises(WorkloadError):
        JobExecutor(small_cluster.state, rng, modulation_std=-0.1)
    with pytest.raises(WorkloadError):
        JobExecutor(small_cluster.state, rng, modulation_tau_s=0.0)


def test_modulation_factor_fluctuates_and_is_bounded(small_cluster):
    ex = _executor(small_cluster, deterministic=False, modulation_std=0.2)
    job = _start_job(small_cluster, np.arange(4))
    factors = []
    for t in range(200):
        ex.advance([job], now=float(t), dt=1.0)
        factors.append(ex.modulation_factor)
    arr = np.asarray(factors)
    assert arr.std() > 0.01
    assert np.all(arr >= 0.55) and np.all(arr <= 1.45)


def test_zero_modulation_keeps_factor_one(small_cluster):
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4))
    ex.advance([job], now=0.0, dt=1.0)
    assert ex.modulation_factor == pytest.approx(1.0)


def test_phase_progression_changes_load(small_cluster):
    """As progress crosses phase boundaries the written load changes."""
    ex = _executor(small_cluster)
    job = _start_job(small_cluster, np.arange(4), app="SP", nprocs=64)
    seen_utils = set()
    total_cycles = int(job.nominal_runtime_s)
    for t in range(min(total_cycles - 1, 400)):
        ex.advance([job], now=float(t), dt=1.0)
        seen_utils.add(round(float(small_cluster.state.cpu_util[0]), 3))
    assert len(seen_utils) >= 2  # solve and exchange phases both seen
