"""Tests for the Poisson (open-system) arrival feeder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scheduler import JobQueue
from repro.sim import RandomSource
from repro.workload import PoissonFeeder, RandomJobGenerator


def _feeder(rate=0.5, seed=9, **kwargs):
    src = RandomSource(seed=seed)
    generator = RandomJobGenerator(src.stream("gen"), runtime_scale=0.01)
    return PoissonFeeder(
        generator, src.stream("arrivals"), rate_per_s=rate, **kwargs
    )


def test_invalid_rate_rejected():
    with pytest.raises(ConfigurationError):
        _feeder(rate=0.0)


def test_arrivals_released_by_time():
    feeder = _feeder(rate=1.0)
    queue = JobQueue()
    feeder.poll(0.0, queue)
    early = len(queue)
    feeder.poll(100.0, queue)
    assert len(queue) > early
    assert feeder.arrivals == len(queue)


def test_mean_rate_matches_lambda():
    feeder = _feeder(rate=2.0)
    queue = JobQueue()
    horizon = 2000.0
    feeder.poll(horizon, queue)
    observed_rate = feeder.arrivals / horizon
    assert observed_rate == pytest.approx(2.0, rel=0.1)


def test_submit_times_are_arrival_times():
    feeder = _feeder(rate=1.0)
    queue = JobQueue()
    feeder.poll(50.0, queue)
    times = [j.submit_time for j in queue]
    assert times == sorted(times)
    assert all(0.0 < t <= 50.0 for t in times)


def test_deterministic_per_seed():
    q1, q2 = JobQueue(), JobQueue()
    _feeder(seed=4).poll(200.0, q1)
    _feeder(seed=4).poll(200.0, q2)
    assert [(j.app.name, j.nprocs, j.submit_time) for j in q1] == [
        (j.app.name, j.nprocs, j.submit_time) for j in q2
    ]


def test_never_exhausted():
    assert not _feeder().exhausted()


def test_no_arrivals_before_first_draw():
    feeder = _feeder(rate=0.001, seed=1)  # first arrival ~1000 s out
    queue = JobQueue()
    feeder.poll(0.001, queue)
    assert len(queue) == 0
    assert feeder.next_arrival_time > 0.001


def test_works_with_batch_scheduler(small_cluster):
    from repro.scheduler import BatchScheduler
    from repro.workload import JobExecutor

    src = RandomSource(seed=2)
    generator = RandomJobGenerator(
        src.stream("gen"), runtime_scale=0.005, nprocs_choices=(8, 16, 32)
    )
    feeder = PoissonFeeder(generator, src.stream("arr"), rate_per_s=0.2)
    executor = JobExecutor(small_cluster.state, src.stream("exec"))
    scheduler = BatchScheduler(small_cluster, executor, feeder)
    saw_idle = False
    for t in range(1, 301):
        scheduler.tick(float(t), 1.0)
        if small_cluster.state.idle_mask().sum() > 0:
            saw_idle = True
    assert scheduler.started_count > 0
    # Open system: the machine is NOT saturated the whole time.
    assert saw_idle
