"""Unit tests for the DVFS slowdown and job progress-rate models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.scaling import (
    job_progress_rate,
    node_progress_rate,
    slowdown_factor,
)


def test_full_speed_is_rate_one():
    assert node_progress_rate(1.0, 0.5) == pytest.approx(1.0)
    assert node_progress_rate(1.0, 0.0) == pytest.approx(1.0)
    assert node_progress_rate(1.0, 1.0) == pytest.approx(1.0)


def test_fully_compute_bound_scales_with_frequency():
    assert node_progress_rate(0.5, 1.0) == pytest.approx(0.5)
    assert node_progress_rate(0.25, 1.0) == pytest.approx(0.25)


def test_frequency_insensitive_phase_unaffected():
    assert node_progress_rate(0.5, 0.0) == pytest.approx(1.0)


def test_partial_boundness_harmonic_mix():
    # β=0.5, s=0.5: rate = 1/(0.5 + 0.5/0.5) = 1/1.5
    assert node_progress_rate(0.5, 0.5) == pytest.approx(1.0 / 1.5)


def test_rate_monotone_in_speed():
    speeds = np.linspace(0.2, 1.0, 9)
    rates = np.asarray(node_progress_rate(speeds, 0.7))
    assert np.all(np.diff(rates) > 0)


def test_rate_monotone_in_boundness_below_full_speed():
    """At reduced speed, more compute-bound phases slow down more."""
    rates = [node_progress_rate(0.5, b) for b in (0.0, 0.3, 0.6, 1.0)]
    assert all(b < a for a, b in zip(rates, rates[1:]))


def test_slowdown_is_reciprocal():
    assert slowdown_factor(0.5, 1.0) == pytest.approx(2.0)
    s = slowdown_factor(np.array([0.5, 1.0]), 0.7)
    assert s[1] == pytest.approx(1.0)


def test_invalid_inputs_rejected():
    with pytest.raises(WorkloadError):
        node_progress_rate(0.0, 0.5)
    with pytest.raises(WorkloadError):
        node_progress_rate(1.5, 0.5)
    with pytest.raises(WorkloadError):
        node_progress_rate(0.5, -0.1)
    with pytest.raises(WorkloadError):
        node_progress_rate(0.5, 1.1)


def test_job_rate_is_bottleneck():
    """§IV.A: one slow node gates the whole bulk-synchronous job."""
    speeds = np.array([1.0, 1.0, 0.6, 1.0])
    assert job_progress_rate(speeds, 1.0) == pytest.approx(0.6)


def test_job_rate_degrading_more_nodes_costs_nothing_extra():
    """Degrading every node of a job equals degrading one node — the
    rationale for whole-job target sets."""
    one_slow = job_progress_rate(np.array([0.6, 1.0, 1.0]), 0.8)
    all_slow = job_progress_rate(np.array([0.6, 0.6, 0.6]), 0.8)
    assert one_slow == pytest.approx(all_slow)


def test_job_rate_empty_rejected():
    with pytest.raises(WorkloadError):
        job_progress_rate(np.array([]), 0.5)
