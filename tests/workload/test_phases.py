"""Unit tests for phases and cyclic schedules."""

import pytest

from repro.errors import WorkloadError
from repro.workload import Phase, PhaseSchedule


def _phase(name, share, util=0.5, nic=0.1, beta=0.5):
    return Phase(name, share, cpu_util=util, nic_frac=nic, compute_boundness=beta)


def test_phase_validation():
    with pytest.raises(WorkloadError):
        _phase("bad", 0.0)
    with pytest.raises(WorkloadError):
        _phase("bad", 1.0, util=1.5)
    with pytest.raises(WorkloadError):
        _phase("bad", 1.0, nic=-0.1)
    with pytest.raises(WorkloadError):
        _phase("bad", 1.0, beta=2.0)


def test_schedule_requires_phases():
    with pytest.raises(WorkloadError):
        PhaseSchedule([])


def test_single_phase_covers_everything():
    sched = PhaseSchedule([_phase("only", 1.0)])
    for pos in (0.0, 0.3, 0.999):
        assert sched.phase_at(pos).name == "only"


def test_phase_at_boundaries():
    sched = PhaseSchedule([_phase("a", 0.5), _phase("b", 0.5)])
    assert sched.phase_at(0.0).name == "a"
    assert sched.phase_at(0.49).name == "a"
    assert sched.phase_at(0.5).name == "b"
    assert sched.phase_at(0.99).name == "b"


def test_shares_are_normalised():
    # Shares 3 and 1 behave like 0.75 / 0.25.
    sched = PhaseSchedule([_phase("a", 3.0), _phase("b", 1.0)])
    assert sched.phase_at(0.74).name == "a"
    assert sched.phase_at(0.76).name == "b"


def test_phase_at_wraps_cyclically():
    sched = PhaseSchedule([_phase("a", 0.5), _phase("b", 0.5)])
    assert sched.phase_at(1.25).name == "a"
    assert sched.phase_at(2.75).name == "b"


def test_means_are_share_weighted():
    sched = PhaseSchedule(
        [
            Phase("a", 0.75, cpu_util=0.8, nic_frac=0.0, compute_boundness=1.0),
            Phase("b", 0.25, cpu_util=0.4, nic_frac=0.4, compute_boundness=0.0),
        ]
    )
    assert sched.mean_cpu_util() == pytest.approx(0.75 * 0.8 + 0.25 * 0.4)
    assert sched.mean_compute_boundness() == pytest.approx(0.75)
    assert sched.mean_nic_frac() == pytest.approx(0.1)


def test_len_and_phases_accessor():
    phases = [_phase("a", 1.0), _phase("b", 2.0)]
    sched = PhaseSchedule(phases)
    assert len(sched) == 2
    assert sched.phases[0].name == "a"
