"""Unit tests for the power-delivery (capacity) metrics."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import (
    branch_overload_w_seconds,
    capacity_recovery_seconds,
    capacity_shortfall_w_seconds,
    time_over_capacity,
)


def _series():
    t = np.array([0.0, 10.0, 20.0, 30.0, 40.0])
    p = np.array([500.0, 900.0, 900.0, 600.0, 400.0])
    c = np.array([1000.0, 800.0, 800.0, 800.0, 1000.0])
    return t, p, c


def test_shortfall_integrates_only_the_excess():
    t, p, c = _series()
    # Over by 100 W for the two intervals starting at t=10 and t=20.
    assert capacity_shortfall_w_seconds(t, p, c) == pytest.approx(2000.0)


def test_shortfall_zero_when_always_inside():
    t, p, c = _series()
    assert capacity_shortfall_w_seconds(t, np.full_like(p, 100.0), c) == 0.0


def test_time_over_capacity_counts_left_samples():
    t, p, c = _series()
    assert time_over_capacity(t, p, c) == pytest.approx(20.0)


def test_recovery_seconds_until_inside_the_band():
    t, p, c = _series()
    # First over at t=10; first sample at or below 0.95*C is t=30
    # (600 <= 760).
    assert capacity_recovery_seconds(t, p, c) == pytest.approx(20.0)


def test_recovery_none_when_never_over():
    t, p, c = _series()
    assert capacity_recovery_seconds(t, np.full_like(p, 10.0), c) is None


def test_recovery_inf_when_never_recovered():
    t = np.array([0.0, 10.0, 20.0])
    p = np.array([900.0, 900.0, 900.0])
    c = np.array([800.0, 800.0, 800.0])
    assert capacity_recovery_seconds(t, p, c) == float("inf")


def test_recovery_fraction_validation():
    t, p, c = _series()
    with pytest.raises(MetricError):
        capacity_recovery_seconds(t, p, c, recover_fraction=0.0)


def test_branch_overload_integral():
    t = np.array([0.0, 10.0, 20.0, 30.0])
    over = np.array([0.0, 50.0, 20.0, 0.0])
    assert branch_overload_w_seconds(t, over) == pytest.approx(700.0)


def test_single_sample_series_integrate_to_zero():
    one = np.array([0.0])
    assert capacity_shortfall_w_seconds(one, one, np.array([10.0])) == 0.0
    assert branch_overload_w_seconds(one, one) == 0.0


@pytest.mark.parametrize(
    "bad",
    [
        (np.array([]), np.array([]), np.array([])),
        (np.array([0.0, 1.0]), np.array([1.0]), np.array([1.0, 1.0])),
        (np.array([1.0, 0.0]), np.array([1.0, 1.0]), np.array([1.0, 1.0])),
        (
            np.array([0.0, 1.0]),
            np.array([1.0, float("nan")]),
            np.array([1.0, 1.0]),
        ),
        (np.array([0.0, 1.0]), np.array([1.0, -1.0]), np.array([1.0, 1.0])),
        (np.array([0.0, 1.0]), np.array([1.0, 1.0]), np.array([1.0])),
        (
            np.array([0.0, 1.0]),
            np.array([1.0, 1.0]),
            np.array([1.0, float("inf")]),
        ),
    ],
)
def test_malformed_series_rejected(bad):
    t, p, c = bad
    with pytest.raises(MetricError):
        capacity_shortfall_w_seconds(t, p, c)
