"""Unit tests for P_max, energy and the ΔP×T overspend metric."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import (
    accumulated_overspend,
    average_power,
    energy_joules,
    peak_power,
    time_fraction_above,
)
from repro.metrics.power import overspend_energy_joules


def test_peak_power():
    t = np.arange(4, dtype=float)
    v = np.array([1.0, 5.0, 3.0, 2.0])
    assert peak_power(t, v) == 5.0


def test_energy_trapezoid():
    t = np.array([0.0, 2.0])
    v = np.array([10.0, 20.0])
    assert energy_joules(t, v) == pytest.approx(30.0)


def test_average_power():
    t = np.array([0.0, 2.0])
    v = np.array([10.0, 20.0])
    assert average_power(t, v) == pytest.approx(15.0)


def test_average_power_single_point():
    assert average_power(np.array([1.0]), np.array([42.0])) == 42.0


def test_overspend_zero_below_threshold():
    t = np.linspace(0, 10, 11)
    v = np.full(11, 50.0)
    assert overspend_energy_joules(t, v, 100.0) == 0.0
    assert accumulated_overspend(t, v, 100.0) == 0.0


def test_overspend_constant_excess():
    t = np.array([0.0, 10.0])
    v = np.array([150.0, 150.0])
    assert overspend_energy_joules(t, v, 100.0) == pytest.approx(500.0)
    # ΔP×T = 500 / 1500
    assert accumulated_overspend(t, v, 100.0) == pytest.approx(1.0 / 3.0)


def test_overspend_crossing_interpolated_upward():
    """Segment rising 50→150 over threshold 100: the above-threshold part
    is a triangle of height 50 over half the interval."""
    t = np.array([0.0, 2.0])
    v = np.array([50.0, 150.0])
    assert overspend_energy_joules(t, v, 100.0) == pytest.approx(0.5 * 50.0 * 1.0)


def test_overspend_crossing_interpolated_downward():
    t = np.array([0.0, 2.0])
    v = np.array([150.0, 50.0])
    assert overspend_energy_joules(t, v, 100.0) == pytest.approx(25.0)


def test_overspend_spike_shape():
    """Triangle spike 0→200→0 over threshold 100: excess area is the top
    triangle = ½·base·height with base the half-width above threshold."""
    t = np.array([0.0, 1.0, 2.0])
    v = np.array([0.0, 200.0, 0.0])
    # Each side crosses at 0.5 from the apex; area = 2 · (½·100·0.5) = 50.
    assert overspend_energy_joules(t, v, 100.0) == pytest.approx(50.0)


def test_overspend_exact_boundary_segment():
    """A segment exactly at the threshold contributes zero."""
    t = np.array([0.0, 1.0])
    v = np.array([100.0, 100.0])
    assert overspend_energy_joules(t, v, 100.0) == 0.0


def test_accumulated_overspend_monotone_in_threshold():
    rng = np.random.default_rng(0)
    t = np.arange(100, dtype=float)
    v = 100.0 + 20.0 * rng.random(100)
    values = [accumulated_overspend(t, v, th) for th in (100.0, 105.0, 110.0, 120.0)]
    assert all(b <= a for a, b in zip(values, values[1:]))
    assert values[0] > 0


def test_time_fraction_above():
    t = np.arange(5, dtype=float)
    v = np.array([50.0, 150.0, 150.0, 50.0, 50.0])
    # Left-sample rule: intervals starting at t=1 and t=2 are above.
    assert time_fraction_above(t, v, 100.0) == pytest.approx(0.5)


def test_validation_errors():
    good_t = np.array([0.0, 1.0])
    good_v = np.array([1.0, 2.0])
    with pytest.raises(MetricError):
        peak_power(np.array([]), np.array([]))
    with pytest.raises(MetricError):
        peak_power(good_t, np.array([1.0]))
    with pytest.raises(MetricError):
        peak_power(np.array([1.0, 0.0]), good_v)  # decreasing time
    with pytest.raises(MetricError):
        peak_power(good_t, np.array([-1.0, 1.0]))  # negative power
    with pytest.raises(MetricError):
        energy_joules(np.array([0.0]), np.array([1.0]))  # single sample
    with pytest.raises(MetricError):
        overspend_energy_joules(good_t, good_v, -1.0)
    with pytest.raises(MetricError):
        time_fraction_above(np.array([0.0, 0.0]), np.array([1.0, 1.0]), 0.5)
