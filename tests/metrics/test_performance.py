"""Unit tests for Performance(cap) and CPLJ."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import (
    count_performance_lossless_jobs,
    mean_slowdown,
    per_application_performance,
    performance_metric,
)
from repro.workload import Job, get_application


def _finished_job(job_id=0, app="EP", nprocs=64, stretch=1.0):
    """A finished job whose runtime is nominal × stretch."""
    job = Job(job_id=job_id, app=get_application(app), nprocs=nprocs, submit_time=0.0)
    job.start(0.0, np.array([0]))
    job.finish(job.nominal_runtime_s * stretch)
    return job


def test_performance_lossless_is_one():
    jobs = [_finished_job(i) for i in range(5)]
    assert performance_metric(jobs) == pytest.approx(1.0)


def test_performance_uniform_stretch():
    jobs = [_finished_job(i, stretch=1.25) for i in range(4)]
    assert performance_metric(jobs) == pytest.approx(0.8)


def test_performance_is_mean_of_ratios():
    jobs = [_finished_job(0, stretch=1.0), _finished_job(1, stretch=2.0)]
    assert performance_metric(jobs) == pytest.approx((1.0 + 0.5) / 2)


def test_performance_ignores_unfinished():
    pending = Job(job_id=9, app=get_application("EP"), nprocs=8, submit_time=0.0)
    jobs = [_finished_job(0), pending]
    assert performance_metric(jobs) == pytest.approx(1.0)


def test_performance_empty_raises():
    with pytest.raises(MetricError):
        performance_metric([])
    pending = Job(job_id=9, app=get_application("EP"), nprocs=8, submit_time=0.0)
    with pytest.raises(MetricError):
        performance_metric([pending])


def test_cplj_counts_exact_runtimes():
    jobs = [
        _finished_job(0, stretch=1.0),
        _finished_job(1, stretch=1.0),
        _finished_job(2, stretch=1.1),
    ]
    assert count_performance_lossless_jobs(jobs) == 2


def test_cplj_tolerance():
    jobs = [_finished_job(0, stretch=1.0 + 1e-9)]
    assert count_performance_lossless_jobs(jobs) == 1
    assert count_performance_lossless_jobs(jobs, rel_tolerance=0.0) == 0


def test_cplj_negative_tolerance_rejected():
    with pytest.raises(MetricError):
        count_performance_lossless_jobs([_finished_job(0)], rel_tolerance=-1.0)


def test_mean_slowdown_reciprocal_view():
    jobs = [_finished_job(0, stretch=1.5)]
    assert mean_slowdown(jobs) == pytest.approx(1.5)


def test_per_application_breakdown():
    jobs = [
        _finished_job(0, app="EP", stretch=1.25),
        _finished_job(1, app="EP", stretch=1.25),
        _finished_job(2, app="CG", stretch=1.0),
    ]
    result = per_application_performance(jobs)
    assert result["EP"] == pytest.approx(0.8)
    assert result["CG"] == pytest.approx(1.0)
    assert sorted(result) == ["CG", "EP"]
