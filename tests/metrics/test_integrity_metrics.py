"""Tests for the telemetry-integrity metric helpers."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import (
    estimate_error_w_under_corruption,
    meter_distrust_seconds,
    quarantine_node_seconds,
    quarantine_seconds,
)

T = np.array([0.0, 1.0, 2.0, 3.0, 4.0])


def test_quarantine_seconds_sample_and_hold():
    counts = np.array([0.0, 2.0, 1.0, 0.0, 3.0])
    # Intervals [1,2) and [2,3) have a positive left sample; the final
    # sample opens no interval.
    assert quarantine_seconds(T, counts) == pytest.approx(2.0)


def test_quarantine_node_seconds_integrates_depth():
    counts = np.array([0.0, 2.0, 1.0, 0.0, 3.0])
    assert quarantine_node_seconds(T, counts) == pytest.approx(3.0)


def test_quarantine_metrics_on_clean_run_are_zero():
    zeros = np.zeros_like(T)
    assert quarantine_seconds(T, zeros) == 0.0
    assert quarantine_node_seconds(T, zeros) == 0.0


def test_single_sample_trace_has_zero_duration():
    assert quarantine_seconds(np.array([5.0]), np.array([3.0])) == 0.0


def test_negative_counts_rejected():
    with pytest.raises(MetricError):
        quarantine_seconds(T, np.array([0.0, -1.0, 0.0, 0.0, 0.0]))


def test_meter_distrust_seconds():
    flags = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
    assert meter_distrust_seconds(T, flags) == pytest.approx(2.0)


def test_estimate_error_unsigned_is_worst_absolute_deviation():
    acted = np.array([100.0, 90.0, 130.0, 100.0, 100.0])
    true = np.full(5, 100.0)
    assert estimate_error_w_under_corruption(T, acted, true) == pytest.approx(
        30.0
    )


def test_estimate_error_signed_is_worst_underestimate():
    acted = np.array([100.0, 90.0, 130.0, 100.0, 100.0])
    true = np.full(5, 100.0)
    err = estimate_error_w_under_corruption(T, acted, true, signed=True)
    assert err == pytest.approx(-10.0)


def test_estimate_error_respects_corruption_mask():
    acted = np.array([50.0, 90.0, 130.0, 100.0, 100.0])
    true = np.full(5, 100.0)
    corrupted = np.array([0.0, 1.0, 1.0, 1.0, 1.0])  # first sample honest
    err = estimate_error_w_under_corruption(T, acted, true, corrupted)
    assert err == pytest.approx(30.0)


def test_estimate_error_misalignment_and_nan_rejected():
    with pytest.raises(MetricError):
        estimate_error_w_under_corruption(T, np.zeros(5), np.zeros(4))
    with pytest.raises(MetricError):
        estimate_error_w_under_corruption(
            T, np.full(5, np.nan), np.zeros(5)
        )
    with pytest.raises(MetricError):
        estimate_error_w_under_corruption(
            T, np.zeros(5), np.zeros(5), corrupted=np.zeros(5)
        )
