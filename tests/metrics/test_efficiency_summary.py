"""Unit tests for the survey metrics and the run-summary bundle."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import (
    RunMetrics,
    compare_runs,
    energy_delay_product,
    flops_per_watt,
    power_usage_effectiveness,
    total_cost_of_ownership,
)
from repro.workload import Job, get_application


# ----------------------------------------------------------------------
# Survey metrics
# ----------------------------------------------------------------------
def test_edp():
    assert energy_delay_product(100.0, 2.0) == pytest.approx(200.0)
    assert energy_delay_product(100.0, 2.0, n=2) == pytest.approx(400.0)
    assert energy_delay_product(100.0, 2.0, n=0) == pytest.approx(100.0)


def test_edp_validation():
    with pytest.raises(MetricError):
        energy_delay_product(-1.0, 1.0)
    with pytest.raises(MetricError):
        energy_delay_product(1.0, 0.0)
    with pytest.raises(MetricError):
        energy_delay_product(1.0, 1.0, n=-1)


def test_flops_per_watt():
    assert flops_per_watt(1e12, 500.0) == pytest.approx(2e9)
    with pytest.raises(MetricError):
        flops_per_watt(1e12, 0.0)
    with pytest.raises(MetricError):
        flops_per_watt(-1.0, 10.0)


def test_pue_llnl_example():
    """0.7 W cooling per 1.0 W compute (§I.A) ⇒ PUE 1.7."""
    assert power_usage_effectiveness(1.7, 1.0) == pytest.approx(1.7)


def test_pue_validation():
    with pytest.raises(MetricError):
        power_usage_effectiveness(1.0, 0.0)
    with pytest.raises(MetricError):
        power_usage_effectiveness(0.5, 1.0)


def test_tco():
    assert total_cost_of_ownership(1000.0, 10.0, 0.2, 50.0) == pytest.approx(1052.0)
    with pytest.raises(MetricError):
        total_cost_of_ownership(-1.0, 0.0, 0.0)


# ----------------------------------------------------------------------
# RunMetrics / compare_runs
# ----------------------------------------------------------------------
def _run(label, stretch, peak, overspend_level, threshold=100.0, n_jobs=4):
    jobs = []
    for i in range(n_jobs):
        job = Job(job_id=i, app=get_application("EP"), nprocs=64, submit_time=0.0)
        job.start(0.0, np.array([0]))
        job.finish(job.nominal_runtime_s * stretch)
        jobs.append(job)
    t = np.linspace(0.0, 100.0, 101)
    power = np.full(101, overspend_level)
    power[50] = peak
    return RunMetrics.evaluate(label, t, power, jobs, threshold)


def test_run_metrics_evaluate():
    m = _run("x", stretch=1.0, peak=120.0, overspend_level=90.0)
    assert m.performance == pytest.approx(1.0)
    assert m.cplj == 4
    assert m.finished_jobs == 4
    assert m.cplj_fraction == 1.0
    assert m.p_max_w == 120.0
    assert m.overspend > 0  # the spike exceeds 100
    assert m.energy_j > 0


def test_compare_runs_ratios():
    base = _run("base", 1.0, 150.0, 95.0)
    capped = _run("cap", 1.05, 120.0, 90.0)
    comparison = compare_runs(capped, base)
    assert comparison.p_max_ratio == pytest.approx(120.0 / 150.0)
    assert 0 < comparison.overspend_ratio < 1
    assert comparison.overspend_reduction == pytest.approx(
        1 - comparison.overspend_ratio
    )
    assert comparison.performance == pytest.approx(capped.performance)


def test_compare_runs_threshold_mismatch_rejected():
    base = _run("base", 1.0, 150.0, 95.0, threshold=100.0)
    capped = _run("cap", 1.0, 120.0, 90.0, threshold=200.0)
    with pytest.raises(MetricError):
        compare_runs(capped, base)


def test_compare_runs_zero_baseline_overspend():
    base = _run("base", 1.0, 99.0, 50.0)
    capped = _run("cap", 1.0, 99.0, 50.0)
    assert base.overspend == 0.0
    comparison = compare_runs(capped, base)
    assert comparison.overspend_ratio == 1.0
    assert comparison.overspend_reduction == 0.0


def test_cplj_fraction_no_jobs_raises():
    m = RunMetrics(
        label="x",
        performance=1.0,
        cplj=0,
        finished_jobs=0,
        p_max_w=1.0,
        avg_power_w=1.0,
        energy_j=1.0,
        overspend=0.0,
        threshold_w=1.0,
    )
    with pytest.raises(MetricError):
        _ = m.cplj_fraction
