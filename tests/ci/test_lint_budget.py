"""Tests for the CI lint-budget gate (tools/ci/lint_budget.py)."""

from __future__ import annotations

import json
from pathlib import Path

from tools.ci.lint_budget import check_budget, main, write_baseline


def _stats(**rule_counts) -> dict:
    return {
        "paths": ["src/repro"],
        "files_checked": 10,
        "parse_errors": 0,
        "rule_counts": {"RL101": 0, "RL501": 0, **rule_counts},
        "cache": {"hits": 0, "misses": 10},
    }


def _baseline(**rule_counts) -> dict:
    return {"rule_counts": {"RL101": 0, "RL501": 0, **rule_counts}}


def test_within_budget_passes() -> None:
    failures, hints = check_budget(_stats(), _baseline())
    assert failures == []
    assert hints == []


def test_regression_fails() -> None:
    failures, _ = check_budget(_stats(RL501=2), _baseline())
    assert len(failures) == 1
    assert "RL501" in failures[0]
    assert "budget is 0" in failures[0]


def test_unknown_rule_defaults_to_zero_budget() -> None:
    failures, _ = check_budget(_stats(RL999=1), _baseline())
    assert any("RL999" in f for f in failures)


def test_improvement_is_a_ratchet_hint_not_a_failure() -> None:
    failures, hints = check_budget(_stats(RL203=1), _baseline(RL203=5))
    assert failures == []
    assert any("RL203" in h and "ratchet" in h for h in hints)


def test_parse_errors_always_fail() -> None:
    stats = _stats()
    stats["parse_errors"] = 2
    failures, _ = check_budget(stats, _baseline())
    assert any("parse" in f for f in failures)


def test_missing_rule_counts_fails() -> None:
    failures, _ = check_budget({"parse_errors": 0}, _baseline())
    assert any("rule_counts" in f for f in failures)


def test_main_exit_codes(tmp_path: Path, capsys) -> None:
    stats_path = tmp_path / "stats.json"
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(_baseline()), encoding="utf-8")

    stats_path.write_text(json.dumps(_stats()), encoding="utf-8")
    assert main([str(stats_path), "--baseline", str(baseline_path)]) == 0
    assert "within baseline" in capsys.readouterr().out

    stats_path.write_text(json.dumps(_stats(RL501=3)), encoding="utf-8")
    assert main([str(stats_path), "--baseline", str(baseline_path)]) == 1
    assert "RL501" in capsys.readouterr().err


def test_write_baseline_round_trip(tmp_path: Path) -> None:
    out = tmp_path / "baseline.json"
    write_baseline(_stats(RL203=4), out)
    stored = json.loads(out.read_text(encoding="utf-8"))
    assert stored == {
        "rule_counts": {"RL101": 0, "RL203": 4, "RL501": 0}
    }
    failures, _ = check_budget(_stats(RL203=4), stored)
    assert failures == []


def test_checked_in_baseline_is_all_zero() -> None:
    """The repo's own budget: every rule at zero — the tree is clean and
    must stay clean; improvements can only tighten, never loosen."""
    repo_root = Path(__file__).resolve().parents[2]
    baseline = json.loads(
        (repo_root / "tools" / "ci" / "lint_baseline.json").read_text(
            encoding="utf-8"
        )
    )
    counts = baseline["rule_counts"]
    assert counts and all(count == 0 for count in counts.values())
    assert {"RL501", "RL502", "RL503", "RL504"} <= set(counts)
