"""Tests for the CI chaos-run safety gate (tools/ci/chaos_check.py)."""

import json

import pytest

from tools.ci.chaos_check import check, main


def _payload(**overrides):
    payload = {
        "label": "bfp",
        "overspend": 0.002,
        "p_max_w": 8600.0,
        "fault_stats": {
            "corrupted_samples": 3600,
            "corrupted_meter_readings": 599,
            "corrupt_samples_rejected": 3275,
            "quarantine_entries": 6,
            "quarantined_node_cycles": 3380,
            "meter_distrusted_cycles": 0,
        },
    }
    payload.update(overrides)
    return payload


def test_healthy_defended_run_passes():
    assert check(_payload(), max_overspend=0.05) == []


def test_nan_anywhere_fails():
    failures = check(_payload(p_max_w=float("nan")), max_overspend=0.05)
    assert any("non-finite" in f and "p_max_w" in f for f in failures)


def test_nested_infinity_fails():
    payload = _payload()
    payload["fault_stats"]["quarantined_node_cycles"] = float("inf")
    failures = check(payload, max_overspend=0.05)
    assert any("fault_stats.quarantined_node_cycles" in f for f in failures)


def test_overspend_beyond_bound_fails():
    failures = check(_payload(overspend=0.2), max_overspend=0.05)
    assert any("exceeds the safety bound" in f for f in failures)


def test_corruption_must_have_fired():
    payload = _payload()
    payload["fault_stats"]["corrupted_samples"] = 0
    payload["fault_stats"]["corrupted_meter_readings"] = 0
    failures = check(payload, max_overspend=0.05)
    assert any("never fired" in f for f in failures)


def test_defense_must_have_engaged():
    payload = _payload()
    for key in (
        "corrupt_samples_rejected",
        "quarantine_entries",
        "meter_distrusted_cycles",
    ):
        payload["fault_stats"][key] = 0
    failures = check(payload, max_overspend=0.05)
    assert any("never engaged" in f for f in failures)


def test_missing_fault_stats_fails():
    failures = check(_payload(fault_stats=None), max_overspend=0.05)
    assert failures == ["fault_stats missing: run had no fault injector"]


def test_main_roundtrip(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_payload()))
    assert main([str(good)]) == 0
    assert "all safety invariants hold" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_payload(overspend=0.2)))
    assert main([str(bad), "--max-overspend", "0.05"]) == 1
    assert "FAIL" in capsys.readouterr().err


@pytest.mark.parametrize("preset_overspend", [0.049, 0.0])
def test_bound_is_inclusive(preset_overspend):
    assert check(_payload(overspend=preset_overspend), max_overspend=0.049) == []
