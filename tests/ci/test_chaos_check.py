"""Tests for the CI chaos-run safety gate (tools/ci/chaos_check.py)."""

import json

import pytest

from tools.ci.chaos_check import check, check_provision, main


def _payload(**overrides):
    payload = {
        "label": "bfp",
        "overspend": 0.002,
        "p_max_w": 8600.0,
        "fault_stats": {
            "corrupted_samples": 3600,
            "corrupted_meter_readings": 599,
            "corrupt_samples_rejected": 3275,
            "quarantine_entries": 6,
            "quarantined_node_cycles": 3380,
            "meter_distrusted_cycles": 0,
        },
    }
    payload.update(overrides)
    return payload


def test_healthy_defended_run_passes():
    assert check(_payload(), max_overspend=0.05) == []


def test_nan_anywhere_fails():
    failures = check(_payload(p_max_w=float("nan")), max_overspend=0.05)
    assert any("non-finite" in f and "p_max_w" in f for f in failures)


def test_nested_infinity_fails():
    payload = _payload()
    payload["fault_stats"]["quarantined_node_cycles"] = float("inf")
    failures = check(payload, max_overspend=0.05)
    assert any("fault_stats.quarantined_node_cycles" in f for f in failures)


def test_overspend_beyond_bound_fails():
    failures = check(_payload(overspend=0.2), max_overspend=0.05)
    assert any("exceeds the safety bound" in f for f in failures)


def test_corruption_must_have_fired():
    payload = _payload()
    payload["fault_stats"]["corrupted_samples"] = 0
    payload["fault_stats"]["corrupted_meter_readings"] = 0
    failures = check(payload, max_overspend=0.05)
    assert any("never fired" in f for f in failures)


def test_defense_must_have_engaged():
    payload = _payload()
    for key in (
        "corrupt_samples_rejected",
        "quarantine_entries",
        "meter_distrusted_cycles",
    ):
        payload["fault_stats"][key] = 0
    failures = check(payload, max_overspend=0.05)
    assert any("never engaged" in f for f in failures)


def test_missing_fault_stats_fails():
    failures = check(_payload(fault_stats=None), max_overspend=0.05)
    assert failures == ["fault_stats missing: run had no fault injector"]


def test_main_roundtrip(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_payload()))
    assert main([str(good)]) == 0
    assert "all safety invariants hold" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_payload(overspend=0.2)))
    assert main([str(bad), "--max-overspend", "0.05"]) == 1
    assert "FAIL" in capsys.readouterr().err


@pytest.mark.parametrize("preset_overspend", [0.049, 0.0])
def test_bound_is_inclusive(preset_overspend):
    assert check(_payload(overspend=preset_overspend), max_overspend=0.049) == []


# ----------------------------------------------------------------------
# Provision mode (--mode provision)
# ----------------------------------------------------------------------
def _provision_payload(**overrides):
    stats = {
        "design_capacity_w": 10000.0,
        "min_capacity_w": 4000.0,
        "feed_losses": 1,
        "feed_restores": 1,
        "pdu_failures": 0,
        "cap_orders": 0,
        "breaker_trips": 0,
        "capacity_lost_w_seconds": 120000.0,
        "branch_cap_violation_seconds": 0.0,
        "envelope_renegotiations": 2,
        "emergency_red_cycles": 5,
        "branch_cap_interventions": 0,
        "jobs_suspended": 0,
        "jobs_resumed": 0,
        "jobs_killed": 0,
        "nodes_shed": 0,
        "nodes_readmitted": 0,
    }
    stats.update(overrides.pop("stats", {}))
    payload = {
        "label": "bfp",
        "overspend": 0.01,
        "p_high_w": 8000.0,
        "provision_stats": stats,
    }
    payload.update(overrides)
    return payload


def test_provision_defended_run_passes():
    assert check_provision(_provision_payload(), max_overspend=0.05) == []


def test_provision_stats_missing_fails():
    failures = check_provision(
        _provision_payload(provision_stats=None), max_overspend=0.05
    )
    assert failures == ["provision_stats missing: run had no delivery topology"]


def test_provision_scenario_must_have_bitten():
    quiet = {
        "feed_losses": 0,
        "feed_restores": 0,
        "envelope_renegotiations": 0,
        "emergency_red_cycles": 0,
        "min_capacity_w": 10000.0,
    }
    failures = check_provision(
        _provision_payload(stats=quiet), max_overspend=0.05
    )
    assert any("never bit" in f for f in failures)


def test_provision_branch_pressure_counts_as_biting():
    stats = {
        "feed_losses": 0,
        "feed_restores": 0,
        "branch_cap_violation_seconds": 3.0,
        "min_capacity_w": 10000.0,
    }
    failures = check_provision(
        _provision_payload(stats=stats), max_overspend=0.05
    )
    assert not any("never bit" in f for f in failures)


def test_provision_defense_must_engage_when_capacity_below_p_high():
    stats = {"envelope_renegotiations": 0, "emergency_red_cycles": 0}
    failures = check_provision(
        _provision_payload(stats=stats), max_overspend=0.05
    )
    assert any("never engaged" in f for f in failures)


def test_provision_quiet_defense_excused_when_benign():
    # A shallow cap order that never dips below P_H needs no response.
    stats = {
        "cap_orders": 1,
        "min_capacity_w": 9000.0,  # >= p_high_w 8000
        "envelope_renegotiations": 0,
        "emergency_red_cycles": 0,
    }
    failures = check_provision(
        _provision_payload(stats=stats), max_overspend=0.05
    )
    assert failures == []


def test_provision_breaker_trip_fails():
    failures = check_provision(
        _provision_payload(stats={"breaker_trips": 1}), max_overspend=0.05
    )
    assert any("tripped" in f for f in failures)


def test_provision_non_finite_and_overspend_gates_apply():
    failures = check_provision(
        _provision_payload(
            overspend=0.2, stats={"capacity_lost_w_seconds": float("nan")}
        ),
        max_overspend=0.05,
    )
    assert any("non-finite" in f for f in failures)
    assert any("exceeds the safety bound" in f for f in failures)


def test_main_provision_mode(tmp_path, capsys):
    good = tmp_path / "prov.json"
    good.write_text(json.dumps(_provision_payload()))
    assert main([str(good), "--mode", "provision"]) == 0
    capsys.readouterr()

    bad = tmp_path / "prov_bad.json"
    bad.write_text(json.dumps(_provision_payload(stats={"breaker_trips": 2})))
    assert main([str(bad), "--mode", "provision"]) == 1
    assert "FAIL" in capsys.readouterr().err
