"""Tests for the sweep-runner chaos matrices (tools/ci/chaos_sweep.py)."""

import json

import pytest

import tools.ci.chaos_sweep as chaos_sweep
from repro.errors import ReproError
from tools.ci.chaos_sweep import (
    CORRUPTION_PRESETS,
    PROVISION_PRESETS,
    build_cells,
    main,
)


@pytest.fixture(autouse=True)
def _short_training(monkeypatch):
    """The safety gates hold at a shorter training window; keep CI fast."""
    monkeypatch.setattr(chaos_sweep, "_TRAINING_S", 120.0)


def test_build_cells_corruption_matches_matrix():
    cells = build_cells("corruption")
    assert set(cells) == set(CORRUPTION_PRESETS)
    for preset, cell in cells.items():
        assert cell.policy == "bfp"
        assert cell.config.seed == 2012
        assert cell.config.num_nodes == 32
        assert cell.config.run_duration_s == 600.0
        assert cell.config.corruption.enabled
        assert cell.config.integrity is not None
        assert not cell.config.attach_provision


def test_build_cells_provision_matches_matrix():
    cells = build_cells("provision")
    assert set(cells) == set(PROVISION_PRESETS)
    for preset, cell in cells.items():
        assert cell.policy == "bfp"
        assert cell.config.run_duration_s == 900.0
        assert cell.config.attach_provision
        assert not cell.config.corruption.enabled


def test_unknown_family_raises():
    with pytest.raises(ReproError, match="family"):
        build_cells("thermal")


def test_cold_then_warm_byte_identical(tmp_path, capsys):
    cache = tmp_path / "cache"
    cold_out = tmp_path / "cold.json"
    warm_out = tmp_path / "warm.json"
    base = [
        "--family", "corruption",
        "--cache-dir", str(cache),
        "--max-overspend", "0.05",
    ]
    assert main(base + ["--out", str(cold_out)]) == 0
    assert main(base + ["--out", str(warm_out), "--expect-warm"]) == 0
    assert cold_out.read_bytes() == warm_out.read_bytes()
    payload = json.loads(cold_out.read_text(encoding="utf-8"))
    assert payload["family"] == "corruption"
    assert set(payload["cells"]) == set(CORRUPTION_PRESETS)


def test_expect_warm_fails_on_cold_cache(tmp_path, capsys):
    code = main(
        [
            "--family", "corruption",
            "--cache-dir", str(tmp_path / "fresh"),
            "--out", str(tmp_path / "out.json"),
            "--expect-warm",
        ]
    )
    assert code == 1
    assert "warm" in capsys.readouterr().err


def test_jobs_validation_is_friendly(tmp_path, capsys):
    code = main(
        [
            "--family", "corruption",
            "--jobs", "0",
            "--out", str(tmp_path / "out.json"),
        ]
    )
    assert code == 2
    assert "positive integer" in capsys.readouterr().err


def test_gate_failure_propagates(tmp_path, capsys):
    # An absurd overspend bound every defended run must violate.
    code = main(
        [
            "--family", "corruption",
            "--out", str(tmp_path / "out.json"),
            "--max-overspend", "-1.0",
        ]
    )
    assert code == 1
    assert "FAIL" in capsys.readouterr().err
