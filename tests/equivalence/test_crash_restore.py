"""Crash/restore replay on the vector engine is bit-identical.

Two angles:

* journal restore — run a journaled manager for N cycles, "crash" it,
  restore a *fresh* manager from the journal mid-run, and require the
  continued decision trace to match an uninterrupted run record for
  record;
* HA failover — the full ``run_experiment`` HA path (warm standby,
  scripted crash) is deterministic across reruns and across engines.
"""

from __future__ import annotations

import numpy as np

from repro.ha import StateJournal
from repro.ha.journal import JournalRecovery

from tests.equivalence.harness import (
    assert_records_equal,
    assert_results_equal,
    build_journaled_manager,
    drive_load,
    make_busy_cluster,
    run_pair,
)


def _thresholds_of(cluster) -> tuple[float, float]:
    from repro.power import PowerModel

    p0 = PowerModel(cluster.spec).system_power(cluster.state)
    return (p0 * 0.93, p0 * 0.99)


def _run_with_crash(crash_after: int, total: int) -> tuple:
    """Journaled trace where a fresh manager takes over mid-run."""
    cluster = make_busy_cluster("vector")
    pair = _thresholds_of(cluster)
    journal = StateJournal(compact_every=10_000)
    manager = build_journaled_manager(cluster, journal, thresholds=pair)
    rng = np.random.default_rng(7)
    for k in range(1, crash_after + 1):
        drive_load(cluster.state, rng)
        manager.control_cycle(float(k))
    # Crash: the primary is gone.  A fresh manager over the same world
    # restores from the journal alone (cold restore, fresh actuator); it
    # inherits the primary's *configuration* (thresholds), never the hot
    # state.
    recovery = JournalRecovery(checkpoint=journal.base, records=journal.records)
    successor = build_journaled_manager(cluster, journal, thresholds=pair)
    successor.restore_state(recovery, restore_actuator=True)
    for k in range(crash_after + 1, total + 1):
        drive_load(cluster.state, rng)
        successor.control_cycle(float(k))
    return journal.records


def _run_uninterrupted(total: int) -> tuple:
    cluster = make_busy_cluster("vector")
    journal = StateJournal(compact_every=10_000)
    manager = build_journaled_manager(cluster, journal)
    rng = np.random.default_rng(7)
    for k in range(1, total + 1):
        drive_load(cluster.state, rng)
        manager.control_cycle(float(k))
    return journal.records


def test_mid_run_restore_replays_bit_identically() -> None:
    baseline = _run_uninterrupted(total=60)
    for crash_after in (10, 37):
        restored = _run_with_crash(crash_after=crash_after, total=60)
        assert_records_equal(
            baseline, restored, context=f"crash@{crash_after}"
        )


def test_ha_failover_run_is_deterministic_on_vector_engine() -> None:
    first, _ = run_pair(policy="mpc", seed=31, preset="ha-failover")
    again, _ = run_pair(policy="mpc", seed=31, preset="ha-failover")
    assert_results_equal(first, again, context="ha-rerun")
    assert first.ha_stats is not None and first.ha_stats.crashes >= 1


def test_ha_failover_identical_across_engines() -> None:
    vector, obj = run_pair(policy="lpc", seed=31, preset="ha-failover")
    assert_results_equal(vector, obj, context="ha-cross-engine")
