"""Regression pin for the canonical aggregate-power summation order.

IEEE-754 addition is not associative, so the order per-node watts are
accumulated in is part of the aggregate's bit pattern.  The rule both
engines share — reduce in ascending node id — lives in
:func:`repro.cluster.engine.canonical_power_sum`; these tests pin the
rule itself so a future refactor cannot silently change the reduction
order and break cross-engine bit-identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, canonical_power_sum
from repro.errors import ConfigurationError
from repro.power import PowerModel
from repro.power.hetero import make_power_model

# Watts engineered so the reduction order is visible in the result's
# bits: summed largest-first the 1.0 is absorbed (1e16 + 1.0 == 1e16 in
# float64), summed after cancellation it survives.
_CANCELLING = np.array([1.0e16, 1.0, -1.0e16])


def test_permutation_of_inputs_does_not_change_the_bits() -> None:
    ids = np.array([0, 1, 2])
    reference = canonical_power_sum(_CANCELLING, ids)
    rng = np.random.default_rng(13)
    for _ in range(10):
        perm = rng.permutation(3)
        permuted = canonical_power_sum(_CANCELLING[perm], ids[perm])
        assert repr(permuted) == repr(reference)


def test_the_order_genuinely_matters_for_these_inputs() -> None:
    # The guard above is only meaningful if a naive order-of-arrival
    # reduction WOULD diverge on the same inputs.
    ascending = float(np.sum(_CANCELLING))
    arrival = float(np.sum(_CANCELLING[[0, 2, 1]]))
    assert repr(ascending) != repr(arrival)


def test_canonical_order_is_ascending_node_id() -> None:
    # Pin the rule, not just the invariance: the reduction must equal a
    # plain sum over values pre-sorted by node id.
    ids = np.array([7, 3, 5])
    expected = float(np.sum(_CANCELLING[np.argsort(ids)]))
    assert repr(canonical_power_sum(_CANCELLING, ids)) == repr(expected)


def test_none_node_ids_means_already_ascending() -> None:
    assert repr(canonical_power_sum(_CANCELLING)) == repr(
        float(np.sum(_CANCELLING))
    )


def test_misaligned_node_ids_is_a_configuration_error() -> None:
    with pytest.raises(ConfigurationError, match="misaligned"):
        canonical_power_sum(np.ones(3), np.array([0, 1]))


def test_returns_python_float() -> None:
    total = canonical_power_sum(np.array([1.5, 2.5]), np.array([1, 0]))
    assert type(total) is float
    assert total == 4.0


@pytest.mark.parametrize("engine", ["vector", "object"])
def test_system_power_reduces_in_canonical_order(engine: str) -> None:
    cluster = Cluster.tianhe_1a(num_nodes=12, engine=engine)
    rng = np.random.default_rng(5)
    ids = np.arange(12)
    cluster.state.set_load(
        ids,
        cpu_util=rng.uniform(0.05, 1.0, 12),
        mem_frac=rng.uniform(0.0, 1.0, 12),
        nic_frac=rng.uniform(0.0, 1.0, 12),
    )
    model = PowerModel(cluster.spec)
    per_node = model.node_power(cluster.state)
    assert repr(model.system_power(cluster.state)) == repr(
        canonical_power_sum(per_node, ids)
    )


def test_heterogeneous_system_power_reduces_in_canonical_order() -> None:
    from repro.cluster import NodeSpec

    cluster = Cluster.heterogeneous(
        [(NodeSpec.tianhe_1a(), 6), (NodeSpec.tianhe_1a(), 6)]
    )
    rng = np.random.default_rng(5)
    ids = np.arange(12)
    cluster.state.set_load(
        ids,
        cpu_util=rng.uniform(0.05, 1.0, 12),
        mem_frac=rng.uniform(0.0, 1.0, 12),
        nic_frac=rng.uniform(0.0, 1.0, 12),
    )
    model = make_power_model(cluster)
    per_node = model.node_power(cluster.state)
    assert repr(model.system_power(cluster.state)) == repr(
        canonical_power_sum(per_node, ids)
    )
