"""The differential equivalence harness.

Reusable machinery for proving the vector and object engines are
**bit-identical**, three ways:

* :func:`run_pair` — one full ``run_experiment`` per engine from the
  same seed, compared field by field with :func:`assert_results_equal`
  (exact digests, not tolerances);
* :func:`run_decision_trace` — a manually-driven
  :class:`~repro.core.manager.PowerManager` wired to a
  :class:`~repro.ha.StateJournal`, returning the journaled
  :class:`~repro.ha.journal.CycleRecord` sequence for exact comparison
  with :func:`assert_records_equal`;
* :data:`PRESETS` — the five scenario presets the matrix runs
  (clean, meter-outage, corruption, provision-emergency, ha-failover).

Everything compares with :func:`exact_equal` — floats by bit pattern
(``repr`` round-trips exactly), arrays by ``array_equal`` with dtype and
shape pinned — so a single flipped mantissa bit anywhere fails loudly.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np

from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.policies import make_policy
from repro.experiments.common import ExperimentConfig, ExperimentResult, run_experiment
from repro.faults import CorruptionScenario, FaultScenario
from repro.ha import HaConfig, StateJournal
from repro.power import PowerModel, SystemPowerMeter
from repro.provision import ProvisionScenario
from repro.telemetry import IntegrityConfig

ENGINES = ("vector", "object")

#: The differential matrix: every preset must be bit-identical across
#: engines.  Values are ``ExperimentConfig`` overrides on top of the
#: small base world :func:`make_config` builds.
PRESETS: dict[str, dict[str, Any]] = {
    "clean": {},
    "meter-outage": {
        "faults": FaultScenario(meter_outage_rate=0.08, telemetry_dropout=0.05),
    },
    "corruption": {
        "corruption": CorruptionScenario.preset("stuck-at"),
        "integrity": IntegrityConfig(),
    },
    "provision-emergency": {
        "provision": ProvisionScenario.preset("feed-loss"),
        "attach_provision": True,
    },
    "ha-failover": {
        "ha": HaConfig.warm(crash_at_cycles=(40,)),
    },
}

#: ``ExperimentResult`` fields excluded from comparison: ``config``
#: legitimately differs (it carries the engine name itself).
_EXCLUDED_FIELDS = frozenset({"config"})


def make_config(
    engine: str,
    seed: int = 2012,
    num_nodes: int = 24,
    training_s: float = 150.0,
    run_s: float = 300.0,
    **overrides: Any,
) -> ExperimentConfig:
    """A small-but-complete experiment world on the given engine."""
    return ExperimentConfig.quick(
        seed=seed,
        num_nodes=num_nodes,
        training_duration_s=training_s,
        run_duration_s=run_s,
        engine=engine,
        **overrides,
    )


def run_pair(
    policy: str = "mpc",
    seed: int = 2012,
    preset: str = "clean",
    **overrides: Any,
) -> tuple[ExperimentResult, ExperimentResult]:
    """One identical seeded run per engine; returns (vector, object)."""
    kwargs = dict(PRESETS[preset])
    kwargs.update(overrides)
    results = []
    for engine in ENGINES:
        config = make_config(engine, seed=seed, **kwargs)
        results.append(run_experiment(config, policy=policy))
    return results[0], results[1]


# ----------------------------------------------------------------------
# Exact comparison
# ----------------------------------------------------------------------
def exact_equal(a: Any, b: Any) -> bool:
    """Bit-exact structural equality (arrays, dataclasses, containers)."""
    if type(a) is not type(b):
        # Allow int/np.int64-style pairs to fail loudly rather than
        # coerce: differing types mean the engines produced different
        # shapes of data, which is itself a divergence.
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b, equal_nan=True)
        )
    if isinstance(a, float):
        return repr(a) == repr(b)  # round-trip exact, NaN-safe
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return all(
            exact_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, dict):
        return set(a) == set(b) and all(exact_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(exact_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


def fingerprint(value: Any) -> str:
    """A short stable digest of any result substructure (for diffs)."""
    h = hashlib.sha256()
    _feed(h, value)
    return h.hexdigest()[:16]


def _feed(h: "hashlib._Hash", value: Any) -> None:
    if isinstance(value, np.ndarray):
        h.update(f"ndarray:{value.dtype}:{value.shape}:".encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(type(value).__name__.encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _feed(h, getattr(value, f.name))
    elif isinstance(value, dict):
        for k in sorted(value, key=repr):
            h.update(repr(k).encode())
            _feed(h, value[k])
    elif isinstance(value, (list, tuple)):
        h.update(f"seq:{len(value)}:".encode())
        for item in value:
            _feed(h, item)
    else:
        h.update(repr(value).encode())


def result_fingerprints(result: ExperimentResult) -> dict[str, str]:
    """Digest of every compared ``ExperimentResult`` field."""
    return {
        f.name: fingerprint(getattr(result, f.name))
        for f in dataclasses.fields(result)
        if f.name not in _EXCLUDED_FIELDS
    }


def assert_results_equal(
    vector: ExperimentResult, obj: ExperimentResult, context: str = ""
) -> None:
    """Bit-identity over every compared field, with a per-field diff."""
    fv = result_fingerprints(vector)
    fo = result_fingerprints(obj)
    diverged = sorted(name for name in fv if fv[name] != fo[name])
    assert diverged == [], (
        f"engines diverged{f' [{context}]' if context else ''} on fields: "
        f"{diverged} (vector vs object digests: "
        f"{ {n: (fv[n], fo[n]) for n in diverged} })"
    )


def assert_records_equal(
    vector_records: tuple, object_records: tuple, context: str = ""
) -> None:
    """Bit-identity of two journaled decision traces."""
    label = f" [{context}]" if context else ""
    assert len(vector_records) == len(object_records), (
        f"trace lengths differ{label}: "
        f"{len(vector_records)} vs {len(object_records)}"
    )
    for rv, ro in zip(vector_records, object_records):
        assert exact_equal(rv, ro), (
            f"decision trace diverged{label} at cycle {rv.cycle}: "
            f"{fingerprint(rv)} vs {fingerprint(ro)}"
        )


# ----------------------------------------------------------------------
# Journal-level decision traces
# ----------------------------------------------------------------------
def make_busy_cluster(engine: str, num_nodes: int = 16) -> Cluster:
    """A small cluster with three resident jobs (busy_cluster layout)."""
    cluster = Cluster.tianhe_1a(num_nodes=num_nodes, engine=engine)
    state = cluster.state
    state.assign_job(np.arange(0, 4), 0)
    state.set_load(np.arange(0, 4), cpu_util=0.3, mem_frac=0.2, nic_frac=0.1)
    state.assign_job(np.arange(4, 10), 1)
    state.set_load(np.arange(4, 10), cpu_util=0.9, mem_frac=0.5, nic_frac=0.3)
    state.assign_job(np.arange(10, 14), 2)
    state.set_load(np.arange(10, 14), cpu_util=0.6, mem_frac=0.4, nic_frac=0.2)
    return cluster


def build_journaled_manager(
    cluster: Cluster,
    journal: StateJournal,
    policy: str = "mpc",
    steady_green_cycles: int = 3,
    thresholds: tuple[float, float] | None = None,
) -> PowerManager:
    """A manager writing every cycle to ``journal``.

    ``thresholds`` defaults to brackets of the cluster's *current* power
    (so green/yellow/red all occur); a successor manager restoring
    mid-run must be handed the primary's original pair explicitly — a
    crashed controller's replacement inherits configuration, it does not
    re-derive it from the live (hot) state.
    """
    model = PowerModel(cluster.spec)
    if thresholds is None:
        p0 = model.system_power(cluster.state)
        thresholds = (p0 * 0.93, p0 * 0.99)
    return PowerManager(
        cluster,
        NodeSets(cluster),
        SystemPowerMeter(model, cluster.state),
        ThresholdController.fixed(p_low=thresholds[0], p_high=thresholds[1]),
        make_policy(policy),
        steady_green_cycles=steady_green_cycles,
        journal=journal,
    )


def drive_load(state, rng) -> None:
    """One seeded random-walk step of every busy node's CPU load."""
    busy = np.flatnonzero(state.job_id >= 0)
    u = np.clip(state.cpu_util[busy] + rng.normal(0, 0.1, len(busy)), 0.05, 1.0)
    state.set_load(
        busy,
        cpu_util=u,
        mem_frac=state.mem_frac[busy],
        nic_frac=state.nic_frac[busy],
    )


def run_decision_trace(
    engine: str, seed: int = 7, cycles: int = 80, policy: str = "mpc"
) -> tuple:
    """Journaled CycleRecord trace of a manually-driven manager."""
    cluster = make_busy_cluster(engine)
    journal = StateJournal(compact_every=10_000)  # keep every record
    manager = build_journaled_manager(cluster, journal, policy=policy)
    rng = np.random.default_rng(seed)
    for k in range(1, cycles + 1):
        drive_load(cluster.state, rng)
        manager.control_cycle(float(k))
    return journal.records
