"""Differential equivalence suite: vector engine ≡ object engine.

The harness (:mod:`tests.equivalence.harness`) runs the same seeded
scenario on both hot-path engines and asserts the results are
bit-identical — decision traces, journal records, metrics, every array.
"""
