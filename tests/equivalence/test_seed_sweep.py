"""Property-based seed sweep: random seeds × run lengths × policies.

Hypothesis drives the harness over a much wider slice of configuration
space than the fixed preset matrix — any divergence between the engines
on any seeded world is a failing example with a minimal reproduction.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.equivalence.harness import assert_results_equal, run_pair

#: Policies spanning every engine kernel mix: power-ranked (mpc/lpc),
#: savings-ranked (bfp), increase-rate (hri), stochastic and priority.
_POLICIES = ("mpc", "lpc", "bfp", "mpc-c", "hri", "random", "sla")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    policy=st.sampled_from(_POLICIES),
    run_s=st.sampled_from([150.0, 240.0, 330.0]),
    num_nodes=st.sampled_from([24, 32]),
)
def test_engines_identical_over_random_worlds(
    seed: int, policy: str, run_s: float, num_nodes: int
) -> None:
    vector, obj = run_pair(
        policy=policy,
        seed=seed,
        preset="clean",
        run_s=run_s,
        num_nodes=num_nodes,
        training_s=120.0,
    )
    assert_results_equal(
        vector, obj, context=f"seed={seed} policy={policy} run={run_s}"
    )


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    preset=st.sampled_from(["meter-outage", "corruption"]),
)
def test_engines_identical_under_random_fault_seeds(seed: int, preset: str) -> None:
    vector, obj = run_pair(policy="bfp", seed=seed, preset=preset)
    assert_results_equal(vector, obj, context=f"seed={seed} preset={preset}")
