"""The differential matrix: five scenario presets, two engines, zero bits
of divergence.

Each preset runs the identical seeded experiment on the vector and the
object engine and compares every ``ExperimentResult`` field (power
series, metrics, fault/provision/HA statistics, per-job outcomes) by
exact digest; the journal test compares the raw ``CycleRecord`` decision
traces of a manually-driven manager.
"""

from __future__ import annotations

import pytest

from tests.equivalence.harness import (
    ENGINES,
    PRESETS,
    assert_records_equal,
    assert_results_equal,
    run_decision_trace,
    run_pair,
)


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_preset_results_bit_identical(preset: str) -> None:
    vector, obj = run_pair(policy="mpc", seed=2012, preset=preset)
    assert_results_equal(vector, obj, context=preset)


def test_clean_preset_across_policies() -> None:
    # The policy families score target sets differently (job tables,
    # savings, priorities) — each exercises a different engine kernel mix.
    for policy in ("lpc", "bfp", "hri-c", "sla"):
        vector, obj = run_pair(policy=policy, seed=2012, preset="clean")
        assert_results_equal(vector, obj, context=f"clean/{policy}")


@pytest.mark.parametrize("policy", ["mpc", "mpc-c"])
def test_journal_decision_traces_bit_identical(policy: str) -> None:
    traces = {name: run_decision_trace(name, seed=7, policy=policy) for name in ENGINES}
    assert len(traces["vector"]) == 80
    assert_records_equal(traces["vector"], traces["object"], context=policy)


def test_same_engine_reruns_are_deterministic() -> None:
    # Sanity anchor for the whole suite: the comparison machinery sees
    # *zero* diff when the engine is held fixed too.
    first, _ = run_pair(policy="mpc", seed=99, preset="clean")
    again, _ = run_pair(policy="mpc", seed=99, preset="clean")
    assert_results_equal(first, again, context="vector-rerun")
