"""Tests for fault scenarios wired through the experiment engine."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import FaultScenario, FaultStats

from tests.experiments.test_common import tiny_config


def test_none_scenario_bit_identical_to_default():
    """``FaultScenario.none()`` must not perturb a run at all."""
    plain = run_experiment(tiny_config(), "mpc")
    explicit = run_experiment(
        tiny_config(faults=FaultScenario.none()), "mpc"
    )
    np.testing.assert_array_equal(plain.power_w, explicit.power_w)
    np.testing.assert_array_equal(plain.times, explicit.times)
    assert plain.state_cycles == explicit.state_cycles
    assert plain.fault_stats is None and explicit.fault_stats is None
    assert plain.degraded_flags is None


def test_faulted_run_is_deterministic():
    cfg = tiny_config(faults=FaultScenario.light())
    a = run_experiment(cfg, "mpc")
    b = run_experiment(cfg, "mpc")
    np.testing.assert_array_equal(a.power_w, b.power_w)
    assert a.fault_stats == b.fault_stats


def test_faulted_run_populates_stats_and_flags():
    cfg = tiny_config(faults=FaultScenario.light())
    result = run_experiment(cfg, "mpc")
    assert isinstance(result.fault_stats, FaultStats)
    assert result.fault_stats.dropped_samples > 0
    assert result.degraded_flags is not None
    assert len(result.degraded_flags) == len(result.power_w)
    assert set(np.unique(result.degraded_flags)) <= {0.0, 1.0}


def test_heavy_scenario_exercises_degraded_sensing():
    cfg = tiny_config(faults=FaultScenario.heavy())
    result = run_experiment(cfg, "mpc")
    stats = result.fault_stats
    assert stats.meter_outage_cycles > 0
    assert stats.estimated_power_cycles > 0
    assert result.degraded_flags.sum() > 0


def test_baselines_accept_fault_scenarios():
    from repro.core.baselines import BudgetPartitionManager, MimoFeedbackManager

    cfg = tiny_config(faults=FaultScenario.light())
    for factory in (MimoFeedbackManager, BudgetPartitionManager):
        result = run_experiment(cfg, "mpc", manager_factory=factory)
        assert result.fault_stats is not None
        assert np.all(np.isfinite(result.power_w))


def test_invalid_scenario_probability_rejected():
    from repro.errors import FaultInjectionError

    with pytest.raises(FaultInjectionError):
        FaultScenario(telemetry_dropout=1.2)
