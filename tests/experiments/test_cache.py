"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ResultCache, run_experiment
from repro.experiments.serialize import canonical_json, result_to_dict

from .test_common import tiny_config


@pytest.fixture(scope="module")
def computed():
    config = tiny_config(num_nodes=32)
    return config, run_experiment(config, "mpc")


def test_empty_root_rejected():
    with pytest.raises(ConfigurationError):
        ResultCache("")


def test_miss_then_put_then_hit(tmp_path, computed):
    config, result = computed
    cache = ResultCache(tmp_path)
    key = cache.key(config, "mpc")
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    cache.put(key, result)
    assert cache.stats.writes == 1
    replayed = cache.get(key)
    assert replayed is not None
    assert cache.stats.hits == 1
    # The replayed result is bit-identical on the canonical surface.
    assert canonical_json(result_to_dict(replayed)) == canonical_json(
        result_to_dict(result)
    )


def test_config_change_invalidates(tmp_path, computed):
    config, result = computed
    cache = ResultCache(tmp_path)
    cache.put(cache.key(config, "mpc"), result)
    assert cache.get(cache.key(tiny_config(num_nodes=32, seed=6), "mpc")) is None
    assert cache.get(cache.key(config, "hri")) is None
    assert cache.get(cache.key(config, "mpc", label="renamed")) is None
    # ... while the original address still hits.
    assert cache.get(cache.key(config, "mpc")) is not None


def test_salt_change_invalidates(tmp_path, computed):
    config, result = computed
    old = ResultCache(tmp_path, salt="v1")
    old.put(old.key(config, "mpc"), result)
    new = ResultCache(tmp_path, salt="v2")
    assert new.get(new.key(config, "mpc")) is None


def test_corrupted_blob_is_a_miss_and_removed(tmp_path, computed):
    config, result = computed
    cache = ResultCache(tmp_path)
    key = cache.key(config, "mpc")
    cache.put(key, result)
    cache.path_for(key).write_text("{not json", encoding="utf-8")
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert not cache.path_for(key).exists()
    # The caller recomputes and overwrites; the cache heals.
    cache.put(key, result)
    assert cache.get(key) is not None


def test_envelope_key_mismatch_is_corrupt(tmp_path, computed):
    config, result = computed
    cache = ResultCache(tmp_path)
    key = cache.key(config, "mpc")
    other = cache.key(config, "hri")
    cache.put(key, result)
    # Simulate a mis-filed blob: content stored under the wrong address.
    cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
    cache.path_for(other).write_text(
        cache.path_for(key).read_text(encoding="utf-8"), encoding="utf-8"
    )
    assert cache.get(other) is None
    assert cache.stats.corrupt == 1


def test_tampered_field_fails_validation_and_misses(tmp_path, computed):
    config, result = computed
    cache = ResultCache(tmp_path)
    key = cache.key(config, "mpc")
    cache.put(key, result)
    blob = json.loads(cache.path_for(key).read_text(encoding="utf-8"))
    # An in-range JSON edit that violates dataclass validation: the
    # decoder must re-run __post_init__ and treat the blob as corrupt.
    blob["result"]["fields"]["config"]["fields"]["num_nodes"] = 0
    cache.path_for(key).write_text(json.dumps(blob), encoding="utf-8")
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1


def test_put_is_atomic_no_tmp_left_behind(tmp_path, computed):
    config, result = computed
    cache = ResultCache(tmp_path)
    key = cache.key(config, "mpc")
    cache.put(key, result)
    leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
    assert leftovers == []
