"""Tests for the canonical config/result JSON round-trip.

The cache addresses results by the hash of the canonical config bytes,
so two things must never drift silently: the round-trip (a decoded
object must equal the encoded one, field for field) and the hash itself
(pinned against a golden value checked into ``tests/golden/``).
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.serialize import (
    SCHEMA_VERSION,
    canonical_json,
    config_from_dict,
    config_hash,
    config_to_dict,
    from_jsonable,
    result_from_dict,
    result_to_dict,
    to_jsonable,
)
from repro.faults import CorruptionScenario, FaultScenario
from repro.ha import HaConfig
from repro.provision import ProvisionScenario
from repro.telemetry import IntegrityConfig

from .test_common import tiny_config

GOLDEN = Path(__file__).parent.parent / "golden" / "config_hash.json"


# ----------------------------------------------------------------------
# Config round-trip
# ----------------------------------------------------------------------
def test_config_round_trip_plain():
    config = tiny_config()
    assert config_from_dict(config_to_dict(config)) == config


def test_config_round_trip_all_subsystems():
    config = tiny_config(
        num_nodes=32,
        candidate_size=8,
        faults=FaultScenario.light(),
        corruption=CorruptionScenario.drift(),
        integrity=IntegrityConfig(),
        ha=HaConfig.warm(crash_at_cycles=(40,)),
        provision=ProvisionScenario.feed_loss(),
        attach_provision=True,
        track_thermal=True,
    )
    decoded = config_from_dict(config_to_dict(config))
    assert decoded == config
    # Canonical bytes are stable through the round-trip too.
    assert canonical_json(config_to_dict(decoded)) == canonical_json(
        config_to_dict(config)
    )


def test_config_round_trip_survives_json_transport():
    config = tiny_config(num_nodes=32, candidate_size=4)
    wire = canonical_json(config_to_dict(config))
    assert config_from_dict(json.loads(wire)) == config


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_nodes=st.sampled_from((8, 16, 32, 128)),
    candidate_size=st.integers(min_value=0, max_value=8),
    margins=st.sampled_from(((0.03, 0.08), (0.07, 0.16), (0.10, 0.22))),
    control_period_s=st.sampled_from((0.5, 1.0, 2.0)),
    scheduler=st.sampled_from(("fcfs", "backfill")),
    faults=st.sampled_from(("none", "light", "heavy")),
)
def test_config_round_trip_property(
    seed, num_nodes, candidate_size, margins, control_period_s, scheduler, faults
):
    config = tiny_config(
        seed=seed,
        num_nodes=num_nodes,
        candidate_size=candidate_size,
        margin_high=margins[0],
        margin_low=margins[1],
        control_period_s=control_period_s,
        scheduler=scheduler,
        faults=FaultScenario.preset(faults),
    )
    decoded = config_from_dict(config_to_dict(config))
    assert decoded == config
    # Equal configs hash equal; the hash is a pure function of content.
    assert config_hash(decoded, "mpc", salt="s") == config_hash(
        config, "mpc", salt="s"
    )


# ----------------------------------------------------------------------
# Hash discrimination
# ----------------------------------------------------------------------
def test_config_hash_separates_every_cell_dimension():
    config = tiny_config()
    base = config_hash(config, "mpc", salt="s")
    assert config_hash(tiny_config(seed=6), "mpc", salt="s") != base
    assert config_hash(config, "hri", salt="s") != base
    assert config_hash(config, None, salt="s") != base
    assert config_hash(config, "mpc", salt="s2") != base
    assert config_hash(config, "mpc", salt="s", label="x") != base


def test_golden_config_hash_pin():
    """The canonical encoding must not drift silently.

    If this fails you changed what the config encoding hashes to —
    either the field set, the tagged encoding, or SCHEMA_VERSION.  If
    the change is intentional, regenerate the pin:

        PYTHONPATH=src python - <<'PY'
        import json
        from repro.experiments import ExperimentConfig
        from repro.experiments.serialize import SCHEMA_VERSION, config_hash
        config = ExperimentConfig.quick(seed=2012)
        print(json.dumps({
            "schema": SCHEMA_VERSION,
            "config": "ExperimentConfig.quick(seed=2012)",
            "salt": "golden-pin",
            "policy": "mpc",
            "hash": config_hash(config, "mpc", salt="golden-pin"),
        }, indent=2))
        PY

    and paste the output into ``tests/golden/config_hash.json`` — the
    diff then documents the drift in review.  (The pin deliberately uses
    a fixed salt so CODE_VERSION bumps don't touch it.)
    """
    pin = json.loads(GOLDEN.read_text(encoding="utf-8"))
    config = ExperimentConfig.quick(seed=2012)
    assert pin["schema"] == SCHEMA_VERSION
    assert config_hash(config, pin["policy"], salt=pin["salt"]) == pin["hash"]


# ----------------------------------------------------------------------
# Result round-trip
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def managed_result():
    return run_experiment(tiny_config(num_nodes=32), "mpc")


def test_result_round_trip_bit_identical(managed_result):
    encoded = result_to_dict(managed_result)
    decoded = result_from_dict(encoded)
    assert canonical_json(result_to_dict(decoded)) == canonical_json(encoded)
    np.testing.assert_array_equal(decoded.power_w, managed_result.power_w)
    np.testing.assert_array_equal(decoded.times, managed_result.times)
    assert decoded.metrics == managed_result.metrics
    assert decoded.config == managed_result.config
    assert decoded.state_cycles == managed_result.state_cycles


def test_result_round_trip_drops_observability(managed_result):
    assert result_to_dict(managed_result)["fields"]["observability"] is None


def test_result_arrays_keep_dtype(managed_result):
    decoded = result_from_dict(result_to_dict(managed_result))
    assert decoded.power_w.dtype == managed_result.power_w.dtype
    assert decoded.power_w.shape == managed_result.power_w.shape


# ----------------------------------------------------------------------
# Encoder/decoder strictness
# ----------------------------------------------------------------------
def test_to_jsonable_rejects_unregistered_types():
    class Opaque:
        pass

    with pytest.raises(ConfigurationError):
        to_jsonable(Opaque())


def test_to_jsonable_rejects_non_string_dict_keys():
    with pytest.raises(ConfigurationError):
        to_jsonable({1: "a"})


def test_to_jsonable_rejects_reserved_tag_keys():
    with pytest.raises(ConfigurationError):
        to_jsonable({"__dc__": "smuggled"})


def test_from_jsonable_rejects_unknown_dataclass():
    with pytest.raises(ConfigurationError):
        from_jsonable({"__dc__": "NoSuchType", "fields": {}})


def test_from_jsonable_rejects_unknown_enum():
    with pytest.raises(ConfigurationError):
        from_jsonable({"__enum__": "NoSuchEnum", "value": 1})


def test_config_from_dict_rejects_wrong_node():
    with pytest.raises(ConfigurationError):
        config_from_dict({"__dc__": "ExperimentResult", "fields": {}})


def test_decode_reruns_validation():
    node = config_to_dict(tiny_config())
    node["fields"]["num_nodes"] = 0
    with pytest.raises(ConfigurationError):
        config_from_dict(node)
