"""Unit tests for the experiment configuration and single-run engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig, run_experiment


def tiny_config(**overrides):
    defaults = dict(
        seed=5,
        runtime_scale=0.02,
        training_duration_s=180.0,
        run_duration_s=240.0,
        adjust_every_cycles=120,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(num_nodes=0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(control_period_s=0.0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(runtime_scale=-1.0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(training_duration_s=0.0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(steady_green_cycles=0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(provision_fraction=0.0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(modulation_std=-0.1)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(modulation_tau_s=0.0)


def test_effective_modulation_tau():
    assert ExperimentConfig(modulation_tau_s=77.0).effective_modulation_tau_s == 77.0
    derived = ExperimentConfig(runtime_scale=0.25).effective_modulation_tau_s
    assert derived == pytest.approx(100.0)
    assert ExperimentConfig(runtime_scale=0.001).effective_modulation_tau_s == 20.0
    assert ExperimentConfig(runtime_scale=10.0).effective_modulation_tau_s == 400.0


def test_presets_construct():
    assert ExperimentConfig.quick().run_duration_s == 900.0
    assert ExperimentConfig.calibrated().runtime_scale == 0.25
    assert ExperimentConfig.paper().training_duration_s == 24 * 3600.0
    assert ExperimentConfig.quick(seed=9).seed == 9


def test_uncapped_run_shape():
    result = run_experiment(tiny_config(), None)
    assert result.label == "uncapped"
    assert len(result.times) == len(result.power_w) == 240
    assert result.times[0] == pytest.approx(181.0)
    assert result.times[-1] == pytest.approx(420.0)
    assert result.training_peak_w > 0
    assert result.provision_w == pytest.approx(0.82 * result.training_peak_w)
    assert result.metrics.finished_jobs == len(result.finished_jobs) > 0
    assert result.state_cycles == {}
    assert result.commands_sent == 0


def test_uncapped_jobs_run_at_nominal_speed():
    result = run_experiment(tiny_config(), None)
    for job in result.finished_jobs:
        assert job.actual_runtime_s == pytest.approx(job.nominal_runtime_s)
    assert result.metrics.performance == pytest.approx(1.0)


def test_capped_run_reports_manager_state():
    result = run_experiment(tiny_config(), "mpc")
    assert result.label == "mpc"
    total_cycles = sum(result.state_cycles.values())
    assert total_cycles == 240
    assert result.management_cpu > 0
    assert result.p_low_w < result.p_high_w


def test_policy_instance_accepted():
    from repro.core.policies import make_policy

    result = run_experiment(tiny_config(), make_policy("lpc"), label="mylpc")
    assert result.label == "mylpc"


def test_same_seed_reproducible():
    a = run_experiment(tiny_config(), "mpc")
    b = run_experiment(tiny_config(), "mpc")
    np.testing.assert_array_equal(a.power_w, b.power_w)
    assert a.metrics.performance == b.metrics.performance
    assert a.metrics.cplj == b.metrics.cplj


def test_different_seeds_differ():
    a = run_experiment(tiny_config(), None)
    b = run_experiment(tiny_config(seed=6), None)
    assert not np.array_equal(a.power_w, b.power_w)


def test_training_identical_across_policies():
    """The training peak (and thus thresholds/provision) must be the
    same no matter which policy runs afterwards."""
    uncapped = run_experiment(tiny_config(), None)
    capped = run_experiment(tiny_config(), "hri")
    assert uncapped.training_peak_w == pytest.approx(capped.training_peak_w)
    assert uncapped.provision_w == pytest.approx(capped.provision_w)


def test_candidate_size_respected():
    result = run_experiment(tiny_config(candidate_size=8), "mpc")
    assert result.management_cpu < run_experiment(
        tiny_config(), "mpc"
    ).management_cpu


def test_privileged_nodes_config():
    result = run_experiment(tiny_config(privileged_nodes=(0, 1)), "mpc")
    assert result.metrics.finished_jobs > 0


def test_random_policy_runs():
    result = run_experiment(tiny_config(), "random")
    assert result.label == "random"


def test_thermal_tracking_fields():
    cold = run_experiment(tiny_config(), None)
    assert cold.peak_temperature_c is None and cold.expected_failures is None
    hot = run_experiment(tiny_config(track_thermal=True), None)
    assert hot.peak_temperature_c > 40.0
    assert hot.expected_failures > 0


def test_capping_reduces_thermal_impact():
    base = run_experiment(tiny_config(track_thermal=True), None)
    capped = run_experiment(tiny_config(track_thermal=True), "mpc")
    # Aggregate-power capping only weakly bounds the hottest single node;
    # the integrated failure expectation is the guaranteed direction.
    assert capped.peak_temperature_c <= base.peak_temperature_c + 2.0
    assert capped.expected_failures < base.expected_failures


def test_manager_factory_baselines_run():
    from repro.core.baselines import BudgetPartitionManager, MimoFeedbackManager

    mimo = run_experiment(
        tiny_config(), "mpc", label="mimo", manager_factory=MimoFeedbackManager
    )
    assert mimo.label == "mimo"
    assert mimo.commands_sent > 0
    budget = run_experiment(
        tiny_config(), "mpc", label="budget", manager_factory=BudgetPartitionManager
    )
    assert budget.metrics.p_max_w < run_experiment(tiny_config(), None).metrics.p_max_w
