"""Tests for the deterministic parallel sweep runner.

The two contracts under test:

1. **Parallel equals serial, bit for bit.**  Worker count and cell
   submission order may only affect scheduling; the merged canonical
   JSON must be byte-identical for every ``jobs`` value.
2. **The shared baseline simulates once.**  fig6, fig7 and the
   manager-knob ablations all dedupe onto one normalized unmanaged
   cell; with a shared cache, the whole grid family computes it once.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.sweep as sweep_module
from repro.core.sets import CandidateSelector
from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig, ResultCache, run_fig6, run_fig7
from repro.experiments.ablations import sweep_steady_green
from repro.experiments.common import run_experiment
from repro.experiments.serialize import canonical_json, result_to_dict
from repro.experiments.sweep import (
    MANAGER_ONLY_FIELDS,
    SweepCell,
    baseline_cell,
    baseline_config,
    cell_key,
    run_sweep,
    validate_jobs,
)
from repro.faults import FaultScenario
from repro.ha import HaConfig
from repro.obs import ObsConfig
from repro.telemetry import ManagementCostModel

from .test_common import tiny_config


def _grid(n_extra_seeds=2):
    """A small fig7-style grid: shared baseline + policies + seeds."""
    config = tiny_config(num_nodes=32, training_duration_s=120.0)
    cells = [baseline_cell(config)]
    cells += [SweepCell(config, policy) for policy in ("mpc", "hri")]
    cells += [
        SweepCell(tiny_config(num_nodes=32, training_duration_s=120.0, seed=s), "bfp")
        for s in range(7, 7 + n_extra_seeds)
    ]
    return cells


# ----------------------------------------------------------------------
# --jobs validation
# ----------------------------------------------------------------------
def test_validate_jobs_defaults_serial():
    assert validate_jobs(None) == 1


@pytest.mark.parametrize("value,expect", [(1, 1), (4, 4), ("2", 2), ("16", 16)])
def test_validate_jobs_accepts_positive_ints(value, expect):
    assert validate_jobs(value) == expect


@pytest.mark.parametrize("bad", [0, -1, -8, "0", "abc", "2.5", 2.5, True, []])
def test_validate_jobs_rejects_non_positive_non_int(bad):
    with pytest.raises(ConfigurationError, match="positive integer"):
        validate_jobs(bad)


# ----------------------------------------------------------------------
# Cell / grid basics
# ----------------------------------------------------------------------
def test_cell_rejects_policy_instances():
    with pytest.raises(ConfigurationError, match="policy"):
        SweepCell(tiny_config(), policy=object())  # type: ignore[arg-type]


def test_empty_grid_rejected():
    with pytest.raises(ConfigurationError, match="empty"):
        run_sweep([])


def test_result_for_unknown_cell_raises():
    cells = [SweepCell(tiny_config(num_nodes=32), "mpc")]
    report = run_sweep(cells)
    with pytest.raises(ConfigurationError, match="not part of this sweep"):
        report.result_for(SweepCell(tiny_config(num_nodes=32, seed=99), "mpc"))


def test_duplicate_cells_collapse():
    config = tiny_config(num_nodes=32)
    calls = []
    original = run_experiment

    def counting(cfg, policy, label=None):
        calls.append(policy)
        return original(cfg, policy, label=label)

    sweep_module.run_experiment, saved = counting, sweep_module.run_experiment
    try:
        cells = [SweepCell(config, "mpc")] * 3 + [baseline_cell(config)] * 2
        report = run_sweep(cells)
    finally:
        sweep_module.run_experiment = saved
    assert len(calls) == 2
    assert report.stats.cells == 2
    assert report.stats.computed == 2


def test_obs_cells_refuse_parallel_jobs(tmp_path):
    config = tiny_config(
        num_nodes=32,
        obs=ObsConfig(trace=True, trace_path=str(tmp_path / "t.jsonl")),
    )
    cells = [SweepCell(config, "mpc"), SweepCell(config, "hri")]
    with pytest.raises(ConfigurationError, match="observability"):
        run_sweep(cells, jobs=2)
    # Serial is fine: the run stays in-process with live instruments.
    report = run_sweep([SweepCell(config, "mpc")])
    assert report.stats.computed == 1


# ----------------------------------------------------------------------
# Bit-identity: jobs ∈ {1, 2, 4} × shuffled submission order
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_merged():
    return run_sweep(_grid(), jobs=1).merged_json()


@settings(max_examples=4, deadline=None)
@given(
    jobs=st.sampled_from((1, 2, 4)),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
def test_merged_json_identical_across_jobs_and_order(
    serial_merged, jobs, order_seed
):
    cells = _grid()
    random.Random(order_seed).shuffle(cells)
    assert run_sweep(cells, jobs=jobs).merged_json() == serial_merged


def test_parallel_report_results_bit_identical_per_cell(serial_merged):
    cells = _grid()
    report = run_sweep(cells, jobs=2)
    assert report.merged_json() == serial_merged
    for cell in cells:
        encoded = canonical_json(result_to_dict(report.result_for(cell)))
        assert encoded in serial_merged


# ----------------------------------------------------------------------
# Shared-baseline normalization and dedup
# ----------------------------------------------------------------------
def test_baseline_config_resets_only_manager_fields():
    config = tiny_config(
        num_nodes=32,
        candidate_size=8,
        margin_high=0.10,
        margin_low=0.22,
        steady_green_cycles=3,
        faults=FaultScenario.light(),
        ha=HaConfig.warm(crash_at_cycles=(10,)),
        cost_model=ManagementCostModel(),
        track_thermal=True,
        scheduler="backfill",
    )
    normalized = baseline_config(config)
    defaults = ExperimentConfig()
    for name in MANAGER_ONLY_FIELDS:
        assert getattr(normalized, name) == getattr(defaults, name), name
    # Simulation-relevant fields survive untouched.
    assert normalized.seed == config.seed
    assert normalized.num_nodes == config.num_nodes
    assert normalized.track_thermal is True
    assert normalized.scheduler == "backfill"


@pytest.mark.parametrize(
    "overrides",
    [
        {"candidate_size": 8, "candidate_strategy": CandidateSelector.SPREAD_K},
        {"margin_high": 0.10, "margin_low": 0.22, "steady_green_cycles": 3},
        {"adjust_every_cycles": 30, "faults": FaultScenario.light()},
        {"ha": HaConfig.warm(crash_at_cycles=(10,))},
    ],
)
def test_manager_only_fields_do_not_affect_unmanaged_runs(overrides):
    """The property behind the shared baseline: an unmanaged run is
    bit-identical under any manager-only override, except for the
    echoed config and the informational threshold fields derived from
    the margins."""
    base = tiny_config(num_nodes=32, training_duration_s=120.0)
    varied = tiny_config(num_nodes=32, training_duration_s=120.0, **overrides)
    r_base = result_to_dict(run_experiment(baseline_config(varied), None))
    r_varied = result_to_dict(run_experiment(varied, None))
    for node in (r_base, r_varied):
        for informational in ("config", "p_low_w", "p_high_w"):
            node["fields"].pop(informational)
    assert canonical_json(r_base) == canonical_json(r_varied)
    # And the normalized cell is literally the same address as the
    # plain config's baseline — that's what makes it shared.
    assert cell_key(baseline_cell(varied)) == cell_key(baseline_cell(base))


def test_baseline_simulates_once_per_grid():
    """fig6 + fig7 + an ablation against one cache: the shared
    unmanaged baseline is computed exactly once across the family."""
    baseline_runs = []
    original = run_experiment

    def counting(cfg, policy, label=None):
        if policy is None:
            baseline_runs.append(cfg)
        return original(cfg, policy, label=label)

    config = tiny_config(num_nodes=32, training_duration_s=120.0)
    sweep_module.run_experiment, saved = counting, sweep_module.run_experiment
    try:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp)
            run_fig7(config, policies=("mpc",), cache=cache)
            run_fig6(config, sizes=(0, 8), policies=("mpc",), cache=cache)
            sweep_steady_green(config, values=(2, 20), cache=cache)
    finally:
        sweep_module.run_experiment = saved
    assert len(baseline_runs) == 1
    # ... and it ran with the normalized (default manager knobs) config.
    assert baseline_runs[0] == baseline_config(config)


def test_cache_round_trip_preserves_merged_bytes(tmp_path):
    cells = _grid(n_extra_seeds=0)
    cache = ResultCache(tmp_path)
    cold = run_sweep(cells, jobs=2, cache=cache)
    warm = run_sweep(cells, jobs=2, cache=cache)
    assert warm.stats.computed == 0
    assert warm.stats.cache_hits == cold.stats.cells
    assert warm.merged_json() == cold.merged_json()
