"""Tests for the per-figure harnesses (small configurations)."""

import numpy as np
import pytest

from repro.analysis import format_fig6_table, format_fig7_table
from repro.errors import ConfigurationError
from repro.experiments import run_fig5, run_fig6, run_fig7
from repro.experiments.ablations import policy_zoo, sweep_steady_green
from repro.experiments.fig5_scalability import measure_collection_cycle_s
from repro.telemetry import ManagementCostModel

from tests.experiments.test_common import tiny_config


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def test_fig5_modelled_curve_monotone_and_superlinear():
    result = run_fig5(sizes=(0, 8, 32, 128), measure=False)
    assert np.all(np.diff(result.modelled_cpu) > 0)
    assert result.nonlinearity() > 1.5
    assert result.measured_cycle_s is None


def test_fig5_measured_curve():
    result = run_fig5(sizes=(0, 16, 64), measure=True, num_nodes=64)
    assert result.measured_cycle_s is not None
    assert result.measured_cycle_s[0] == 0.0
    assert np.all(result.measured_cycle_s[1:] > 0)


def test_fig5_size_bounds_checked():
    with pytest.raises(ConfigurationError):
        run_fig5(sizes=(0, 500), measure=False)


def test_fig5_nonlinearity_requires_points():
    result = run_fig5(sizes=(0, 8), measure=False)
    with pytest.raises(ConfigurationError):
        result.nonlinearity()


def test_measure_collection_cycle_zero_size():
    assert measure_collection_cycle_s(0) == 0.0


def test_fig5_custom_cost_model():
    flat = ManagementCostModel(fixed_ms=1.0, per_node_ms=0.0, pairwise_us=0.0)
    result = run_fig5(sizes=(0, 64), cost_model=flat, measure=False)
    assert result.modelled_cpu[0] == pytest.approx(result.modelled_cpu[1])


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def test_fig6_sweep_structure():
    result = run_fig6(tiny_config(), sizes=(0, 16, 128), policies=("mpc",))
    sizes, pmax, overspend = result.series("mpc")
    np.testing.assert_array_equal(sizes, [0, 16, 128])
    assert pmax[0] == 1.0 and overspend[0] == 1.0
    # Managing the whole machine beats managing nothing.
    assert overspend[-1] < 1.0
    assert pmax[-1] < 1.0
    text = format_fig6_table(result)
    assert "|A_candidate|" in text and "mpc" in text


def test_fig6_adds_size_zero_if_missing():
    result = run_fig6(tiny_config(), sizes=(16,), policies=("mpc",))
    sizes, _, _ = result.series("mpc")
    assert sizes[0] == 0


def test_fig6_unknown_policy_series():
    result = run_fig6(tiny_config(), sizes=(0, 16), policies=("mpc",))
    with pytest.raises(ConfigurationError):
        result.series("hri")


def test_fig6_knee_size():
    result = run_fig6(tiny_config(), sizes=(0, 16, 64, 128), policies=("mpc",))
    knee = result.knee_size("mpc", tolerance=1.0)  # huge tolerance: first size
    assert knee == 0
    tight = result.knee_size("mpc", tolerance=0.0)
    assert tight in (0, 16, 64, 128)


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
def test_fig7_outcomes():
    result = run_fig7(tiny_config(), policies=("mpc", "hri"))
    assert {o.policy for o in result.outcomes} == {"mpc", "hri"}
    mpc = result.outcome("mpc")
    assert 0.0 < mpc.performance <= 1.0
    assert mpc.performance_loss == pytest.approx(1.0 - mpc.performance)
    assert 0.0 < mpc.p_max_ratio <= 1.05
    assert mpc.commands_sent > 0
    gap = result.cplj_gap("mpc", "hri")
    assert -1.0 <= gap <= 1.0
    text = format_fig7_table(result)
    assert "uncapped" in text and "mpc" in text and "hri" in text


def test_fig7_unknown_outcome():
    result = run_fig7(tiny_config(), policies=("mpc",))
    with pytest.raises(ConfigurationError):
        result.outcome("bfp")


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def test_sweep_steady_green_rows():
    rows = sweep_steady_green(tiny_config(), values=(2, 20), policy="mpc")
    assert [r.label for r in rows] == ["T_g=2", "T_g=20"]
    for row in rows:
        assert 0.0 < row.performance <= 1.0


def test_sweep_steady_green_empty_rejected():
    with pytest.raises(ConfigurationError):
        sweep_steady_green(tiny_config(), values=())


def test_policy_zoo_small():
    result = policy_zoo(tiny_config(), policies=("mpc", "lpc"))
    assert {o.policy for o in result.outcomes} == {"mpc", "lpc"}
