"""StateJournal mechanics: append ordering, compaction, recovery."""

import numpy as np
import pytest

from repro.errors import PowerManagementError
from repro.ha import ControllerCheckpoint, CycleRecord, StateJournal
from repro.telemetry.collector import TelemetrySnapshot


def _snapshot(t: float) -> TelemetrySnapshot:
    return TelemetrySnapshot(
        time=t,
        node_ids=np.array([0, 1]),
        level=np.array([9, 9]),
        cpu_util=np.array([0.5, 0.5]),
        mem_frac=np.array([0.2, 0.2]),
        nic_frac=np.array([0.1, 0.1]),
        job_id=np.array([0, 0]),
    )


def _record(cycle: int) -> CycleRecord:
    return CycleRecord(
        cycle=cycle,
        time=float(cycle),
        power_w=1000.0,
        metered=True,
        state="green",
        forced_red=False,
        action="none",
        node_ids=(),
        new_levels=(),
        time_in_green=0,
        coverage=1.0,
        blackout_streak=0,
        snapshot=_snapshot(float(cycle)),
        actuator={"cycle": cycle, "pending": (), "counters": {}},
    )


def _checkpoint(cycle: int) -> ControllerCheckpoint:
    return ControllerCheckpoint(
        cycle=cycle,
        time=float(cycle),
        thresholds={},
        degraded_mask=(False, False),
        time_in_green=0,
        state_counts={},
        forced_red_cycles=0,
        estimated_cycles=0,
        blackout_streak=0,
        snapshot=_snapshot(float(cycle)),
        collections=cycle,
        dropped_samples=0,
        accumulated_cost_s=0.0,
        last_metered_power=1000.0,
        last_metered_snapshot=None,
        actuator={"cycle": cycle, "pending": (), "counters": {}},
    )


def test_append_advances_tail():
    journal = StateJournal(compact_every=4)
    assert journal.last_cycle == 0 and journal.size == 0
    journal.append(_record(1))
    journal.append(_record(2))
    assert journal.last_cycle == 2
    assert journal.size == 2
    assert journal.appended_total == 2


def test_out_of_order_append_rejected():
    journal = StateJournal()
    journal.append(_record(3))
    with pytest.raises(PowerManagementError):
        journal.append(_record(3))  # duplicate cycle
    with pytest.raises(PowerManagementError):
        journal.append(_record(2))  # rewind
    # Gaps are fine (downtime cycles journal nothing).
    journal.append(_record(7))
    assert journal.last_cycle == 7


def test_should_compact_threshold():
    journal = StateJournal(compact_every=3)
    for c in (1, 2):
        journal.append(_record(c))
        assert not journal.should_compact()
    journal.append(_record(3))
    assert journal.should_compact()


def test_compact_drops_subsumed_records():
    journal = StateJournal(compact_every=10)
    for c in (1, 2, 3, 4):
        journal.append(_record(c))
    journal.compact(_checkpoint(4))
    assert journal.base.cycle == 4
    assert journal.records == ()
    assert journal.compactions == 1
    assert journal.appended_total == 4  # lifetime counter unaffected
    assert journal.last_cycle == 4
    # Appends after compaction build a fresh tail on the new base.
    journal.append(_record(5))
    assert [r.cycle for r in journal.records] == [5]
    assert journal.last_cycle == 5


def test_stale_checkpoint_rejected():
    journal = StateJournal()
    for c in (1, 2, 3):
        journal.append(_record(c))
    journal.compact(_checkpoint(3))
    journal.append(_record(4))
    # A checkpoint older than the tail would rewind the recovery point:
    # the journal refuses both the mid-tail and the pre-base variant.
    with pytest.raises(PowerManagementError):
        journal.compact(_checkpoint(2))
    with pytest.raises(PowerManagementError):
        journal.compact(_checkpoint(3))


def test_recover_returns_base_plus_tail():
    journal = StateJournal(compact_every=2)
    recovery = journal.recover()
    assert recovery.checkpoint is None
    assert recovery.records == ()
    assert recovery.last_cycle == 0

    for c in (1, 2):
        journal.append(_record(c))
    journal.compact(_checkpoint(2))
    journal.append(_record(3))
    recovery = journal.recover()
    assert recovery.checkpoint.cycle == 2
    assert [r.cycle for r in recovery.records] == [3]
    assert recovery.last_cycle == 3

    journal.compact(_checkpoint(3))
    recovery = journal.recover()
    assert recovery.records == ()
    assert recovery.last_cycle == 3  # falls back to the checkpoint


def test_compact_every_validated():
    with pytest.raises(PowerManagementError):
        StateJournal(compact_every=0)
