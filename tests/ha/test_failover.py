"""HaController lifecycle: crash, downtime, takeover, fencing."""

import numpy as np
import pytest

from repro.core import PowerState
from repro.core.actuator import DvfsActuator
from repro.errors import PowerManagementError
from repro.faults import FaultScenario
from repro.ha import HaConfig, HaController, StateJournal

from tests.ha.conftest import build_manager, drive_load, tight_thresholds


class _Harness:
    """A world + HA controller with a scripted crash schedule."""

    def __init__(self, world, config, injector=None):
        self.world = world
        self.rng = np.random.default_rng(7)
        p_low, p_high = tight_thresholds(world)
        self.journal = StateJournal(compact_every=8)
        self.actuator = DvfsActuator(world.state, injector)
        self._injector = injector

        def factory():
            return build_manager(
                world,
                p_low,
                p_high,
                journal=self.journal,
                actuator=self.actuator,
                fault_injector=injector,
            )

        self.factory = factory
        self.primary = factory()
        self.ha = HaController(self.primary, factory, self.journal, config)

    def run(self, cycles, start=1):
        reports = []
        for k in range(start, start + cycles):
            drive_load(self.world.state, self.rng)
            reports.append(self.ha.control_cycle(float(k)))
        return reports


class _ScriptedInjector:
    """Minimal injector: optional per-node telemetry drops, no faults."""

    def __init__(self, num_nodes):
        self.drop = np.zeros(num_nodes, dtype=bool)
        self.command_delay_cycles = 2
        self.scenario = FaultScenario.none()
        self.meter_outages = 0
        self.meter_outage_cycles = 0
        self.node_crashes = 0
        self.offline_node_cycles = 0
        self.corrupted_samples = 0
        self.corrupted_meter_readings = 0

    def begin_cycle(self, now):
        pass

    def meter_available(self):
        return True

    def perturb_meter(self, reading_w):
        return reading_w

    def telemetry_drop_mask(self, node_ids):
        return self.drop[np.asarray(node_ids, dtype=np.int64)]

    def corrupt_telemetry(self, node_ids, cpu_util, mem_frac, nic_frac):
        return np.zeros(len(node_ids), dtype=bool)

    def command_outcomes(self, node_ids):
        z = np.zeros(len(node_ids), dtype=bool)
        return z, z.copy()


def test_requires_enabled_config(world):
    harness = _Harness(world, HaConfig.warm())
    with pytest.raises(PowerManagementError):
        HaController(
            harness.primary, harness.factory, harness.journal, HaConfig()
        )


def test_crash_loses_the_cycle_and_warm_standby_takes_over(world):
    h = _Harness(world, HaConfig.warm(lease_timeout_cycles=3, crash_at_cycles=(5,)))
    reports = h.run(12)
    # Crash cycle + lease expiry: cycles 5..7 run open-loop.
    assert [r is None for r in reports] == [False] * 4 + [True] * 3 + [False] * 5
    stats = h.ha.stats()
    assert stats.crashes == 1
    assert stats.failovers == 1 and stats.warm_failovers == 1
    assert stats.cold_restarts == 0
    assert stats.downtime_cycles == 3
    assert stats.final_epoch == 1
    assert stats.epoch_conflicts == 0
    # The successor is a different manager restored to the crash point.
    assert h.ha.manager is not h.primary
    assert h.ha.manager.cycles == 9  # 12 HA cycles - 3 lost
    assert h.ha.manager.fencing_epoch == 1


def test_cold_restart_costs_restart_cycles(world):
    h = _Harness(
        world, HaConfig.restart_only(restart_cycles=6, crash_at_cycles=(3,))
    )
    reports = h.run(12)
    assert [r is None for r in reports] == [False] * 2 + [True] * 6 + [False] * 4
    stats = h.ha.stats()
    assert stats.warm_failovers == 0 and stats.cold_restarts == 1
    assert stats.downtime_cycles == 6


def test_back_to_back_crashes_exhaust_the_standby(world):
    # First crash consumes the warm standby; the second strikes before
    # its replacement finishes launching, so it pays a cold restart; the
    # third comes after the replacement is ready and is warm again.
    h = _Harness(
        world,
        HaConfig.warm(
            lease_timeout_cycles=1,
            restart_cycles=5,
            crash_at_cycles=(3, 5, 30),
        ),
    )
    h.run(40)
    stats = h.ha.stats()
    assert stats.crashes == 3
    assert stats.failovers == 3
    assert stats.warm_failovers == 2
    assert stats.cold_restarts == 1
    assert stats.downtime_cycles == 1 + 5 + 1
    assert stats.final_epoch == 3
    assert stats.epoch_conflicts == 0


def test_factory_must_share_the_live_actuator(world):
    h = _Harness(world, HaConfig.warm(lease_timeout_cycles=1, crash_at_cycles=(2,)))
    p_low, p_high = tight_thresholds(world)

    def rogue_factory():
        return build_manager(
            world,
            p_low,
            p_high,
            journal=h.journal,
            actuator=DvfsActuator(world.state),
        )

    ha = HaController(h.factory(), rogue_factory, h.journal, h.ha._config)
    drive_load(world.state, h.rng)
    ha.control_cycle(1.0)
    drive_load(world.state, h.rng)
    assert ha.control_cycle(2.0) is None  # crash cycle
    with pytest.raises(PowerManagementError):
        drive_load(world.state, h.rng)
        ha.control_cycle(3.0)  # takeover with a foreign actuator


def test_deposed_primary_is_fenced_out(world):
    h = _Harness(world, HaConfig.warm(lease_timeout_cycles=1, crash_at_cycles=(4,)))
    h.run(8)
    zombie = h.primary
    successor = h.ha.manager
    assert zombie is not successor
    assert zombie.deposed and not successor.deposed

    # The zombie wakes up and runs a cycle on a red-hot machine: its
    # decision carries commands, every one of which must bounce off the
    # fence — and its cycle must not be journaled.
    state = h.world.state
    busy = np.flatnonzero(state.job_id >= 0)
    state.set_load(busy, cpu_util=1.0, mem_frac=0.9, nic_frac=0.9)
    appended_before = h.journal.appended_total
    levels_before = state.level.copy()
    report = zombie.control_cycle(99.0)
    assert report.state in (PowerState.YELLOW, PowerState.RED)
    assert report.actuation.commands > 0
    assert report.actuation.fenced == report.actuation.commands
    assert report.actuation.effective == 0
    np.testing.assert_array_equal(state.level, levels_before)
    assert h.journal.appended_total == appended_before
    assert h.actuator.epoch_conflicts == 0


def test_restored_manager_holds_upgrades_until_candidates_reobserved(world):
    inj = _ScriptedInjector(16)
    h = _Harness(
        world,
        HaConfig.warm(lease_timeout_cycles=1, crash_at_cycles=(6,)),
        injector=inj,
    )
    h.run(6)  # cycles 1..5 act, cycle 6 crashes

    # Node 5 goes dark across the takeover: the successor may not
    # upgrade anything until node 5 reports fresh telemetry again.
    inj.drop[5] = True
    h.run(4, start=7)  # cycle 7 is downtime, 8..10 run the successor
    successor = h.ha.manager
    assert successor is not h.primary
    assert successor.in_recovery_hold
    assert successor.recovery_pending_nodes == 1

    inj.drop[5] = False
    h.run(1, start=11)
    assert not successor.in_recovery_hold
    assert successor.recovery_pending_nodes == 0


def test_journal_and_fault_free_run_agree(world):
    # An HA run with no crashes behaves exactly like a bare manager.
    h = _Harness(world, HaConfig.warm())
    reports = h.run(20)
    assert all(r is not None for r in reports)
    stats = h.ha.stats()
    assert stats.crashes == 0 and stats.failovers == 0
    assert stats.final_epoch == 0
    assert stats.journal_records == 20
    assert stats.journal_compactions == 2  # compact_every=8 over 20 cycles
    assert h.ha.manager is h.primary
