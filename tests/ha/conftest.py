"""Shared world-building helpers for the HA test suite.

Every test here needs the same shape: a seeded 16-node world whose load
random-walks hot enough to exercise yellow/red decisions, a manager
wired to a journal and (optionally) a shared actuator, and a way to
advance both in lockstep with a reference world.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.actuator import DvfsActuator
from repro.core.policies import make_policy
from repro.power import PowerModel, SystemPowerMeter


def make_world() -> Cluster:
    """A fresh 16-node busy cluster (same layout as ``busy_cluster``)."""
    cluster = Cluster.tianhe_1a(num_nodes=16)
    state = cluster.state
    state.assign_job(np.arange(0, 4), 0)
    state.set_load(np.arange(0, 4), cpu_util=0.3, mem_frac=0.2, nic_frac=0.1)
    state.assign_job(np.arange(4, 10), 1)
    state.set_load(np.arange(4, 10), cpu_util=0.9, mem_frac=0.5, nic_frac=0.3)
    state.assign_job(np.arange(10, 14), 2)
    state.set_load(np.arange(10, 14), cpu_util=0.6, mem_frac=0.4, nic_frac=0.2)
    return cluster


def drive_load(state, rng) -> None:
    """One seeded random-walk step of every busy node's CPU load."""
    busy = np.flatnonzero(state.job_id >= 0)
    u = np.clip(state.cpu_util[busy] + rng.normal(0, 0.1, len(busy)), 0.05, 1.0)
    state.set_load(
        busy,
        cpu_util=u,
        mem_frac=state.mem_frac[busy],
        nic_frac=state.nic_frac[busy],
    )


def tight_thresholds(cluster) -> tuple[float, float]:
    """P_L/P_H bracketing the initial power so all three states occur."""
    p0 = PowerModel(cluster.spec).system_power(cluster.state)
    return p0 * 0.93, p0 * 0.99


def build_manager(
    cluster,
    p_low: float,
    p_high: float,
    journal=None,
    actuator: DvfsActuator | None = None,
    fault_injector=None,
) -> PowerManager:
    sets = NodeSets(cluster)
    model = PowerModel(cluster.spec)
    meter = SystemPowerMeter(model, cluster.state)
    return PowerManager(
        cluster,
        sets,
        meter,
        ThresholdController.fixed(p_low=p_low, p_high=p_high),
        make_policy("mpc"),
        steady_green_cycles=3,
        fault_injector=fault_injector,
        journal=journal,
        actuator=actuator,
    )


@pytest.fixture
def world() -> Cluster:
    return make_world()
