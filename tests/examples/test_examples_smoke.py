"""Smoke-run every script in ``examples/`` end to end.

Each example is executed with :mod:`runpy` as ``__main__`` — exactly how
a reader would run it — with :meth:`ExperimentConfig.quick` (and
``calibrated``) monkeypatched down to two-minute simulated windows so
the whole sweep stays test-suite fast.  Cluster size and everything else
the examples configure is untouched; only the simulated durations
shrink.  A new example dropped into the directory is picked up
automatically.
"""

import runpy
import sys
from pathlib import Path

import pytest

from repro import ExperimentConfig

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

_REAL_QUICK = ExperimentConfig.quick.__func__


def _tiny_quick(cls, **overrides):
    """``ExperimentConfig.quick`` with two-minute windows.

    Caller overrides (seeds, policies, sizes) still win, so the examples
    keep their own knobs — they just simulate far less time.
    """
    shrunk = {"training_duration_s": 120.0, "run_duration_s": 120.0}
    shrunk.update(overrides)
    return _REAL_QUICK(cls, **shrunk)


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 6, EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_to_completion(script, monkeypatch, capsys):
    monkeypatch.setattr(ExperimentConfig, "quick", classmethod(_tiny_quick))
    monkeypatch.setattr(
        ExperimentConfig, "calibrated", classmethod(_tiny_quick)
    )
    # Examples that parse arguments must see a bare command line.
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
