"""Unit tests for the DVFS actuator and the assembled power manager."""

import numpy as np
import pytest

from repro.core import (
    DvfsActuator,
    NodeSets,
    PowerManager,
    PowerState,
    ThresholdController,
)
from repro.core.capping import CappingAction, CappingDecision
from repro.core.policies import make_policy
from repro.errors import PowerManagementError
from repro.power import PowerModel, SystemPowerMeter


def _decision(action, node_ids, new_levels, state=PowerState.YELLOW):
    return CappingDecision(
        state=state,
        action=action,
        node_ids=np.asarray(node_ids, dtype=np.int64),
        new_levels=np.asarray(new_levels, dtype=np.int64),
        time_in_green=0,
    )


# ----------------------------------------------------------------------
# DvfsActuator
# ----------------------------------------------------------------------
def test_actuator_applies_levels(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    act.apply(_decision(CappingAction.DEGRADE, [4, 5], [8, 8]))
    assert busy_cluster.state.level[4] == 8
    assert act.commands_sent == 2
    assert act.levels_lowered == 2
    assert act.levels_raised == 0


def test_actuator_counts_raises(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    busy_cluster.state.set_levels(np.array([4, 5]), 5)
    act.apply(_decision(CappingAction.UPGRADE, [4, 5], [6, 6], PowerState.GREEN))
    assert act.levels_raised == 2


def test_actuator_none_action_is_noop(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    before = busy_cluster.state.level.copy()
    act.apply(
        _decision(CappingAction.NONE, [], [], PowerState.GREEN)
    )
    np.testing.assert_array_equal(busy_cluster.state.level, before)
    assert act.commands_sent == 0


def test_actuator_emergency_counter(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    act.apply(
        _decision(CappingAction.EMERGENCY, np.arange(16), np.zeros(16), PowerState.RED)
    )
    assert act.emergencies == 1
    assert np.all(busy_cluster.state.level == 0)


def test_actuator_rejects_privileged_nodes(busy_cluster):
    busy_cluster.set_privileged_nodes([4])
    act = DvfsActuator(busy_cluster.state)
    with pytest.raises(PowerManagementError):
        act.apply(_decision(CappingAction.DEGRADE, [4], [8]))


def test_actuator_release_restores_levels(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    ids = np.array([4, 5, 6])
    busy_cluster.state.set_levels(ids, 0)
    top = busy_cluster.spec.top_level
    assert act.release(ids, top) == 3
    assert np.all(busy_cluster.state.level[ids] == top)
    # Teardown path, not a control command: no command statistics.
    assert act.commands_sent == 0


def test_actuator_release_current_epoch_lands(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    current = act.advance_epoch()
    ids = np.array([4, 5])
    busy_cluster.state.set_levels(ids, 0)
    top = busy_cluster.spec.top_level
    assert act.release(ids, top, epoch=current) == 2
    assert np.all(busy_cluster.state.level[ids] == top)
    assert act.fenced_commands == 0


def test_actuator_release_stale_epoch_is_fenced(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    stale = act.advance_epoch()
    act.advance_epoch()
    ids = np.array([4, 5])
    busy_cluster.state.set_levels(ids, 0)
    assert act.release(ids, busy_cluster.spec.top_level, epoch=stale) == 0
    assert np.all(busy_cluster.state.level[ids] == 0)
    assert act.fenced_commands == 2


def test_actuator_release_empty_is_noop(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    before = busy_cluster.state.level.copy()
    assert act.release(np.empty(0, dtype=np.int64), 0) == 0
    np.testing.assert_array_equal(busy_cluster.state.level, before)


def test_decision_alignment_validated():
    with pytest.raises(PowerManagementError):
        CappingDecision(
            state=PowerState.YELLOW,
            action=CappingAction.DEGRADE,
            node_ids=np.array([1, 2]),
            new_levels=np.array([1]),
            time_in_green=0,
        )


# ----------------------------------------------------------------------
# PowerManager
# ----------------------------------------------------------------------
def _manager(cluster, policy_name="mpc", p_low=None, p_high=None):
    sets = NodeSets(cluster)
    model = PowerModel(cluster.spec)
    meter = SystemPowerMeter(model, cluster.state)
    if p_low is None:
        thresholds = ThresholdController.from_training(meter.true_power() * 1.2)
    else:
        thresholds = ThresholdController.fixed(p_low=p_low, p_high=p_high)
    return PowerManager(
        cluster, sets, meter, thresholds, make_policy(policy_name),
        steady_green_cycles=2,
    )


def test_manager_green_cycle_no_action(busy_cluster):
    mgr = _manager(busy_cluster)
    report = mgr.control_cycle(1.0)
    assert report.state is PowerState.GREEN
    assert not report.acted
    assert mgr.cycles == 1
    assert mgr.state_count(PowerState.GREEN) == 1


def test_manager_yellow_cycle_degrades(busy_cluster):
    model = PowerModel(busy_cluster.spec)
    current = model.system_power(busy_cluster.state)
    mgr = _manager(busy_cluster, p_low=current * 0.9, p_high=current * 1.5)
    report = mgr.control_cycle(1.0)
    assert report.state is PowerState.YELLOW
    assert report.acted
    top = busy_cluster.spec.top_level
    assert np.all(busy_cluster.state.level[4:10] == top - 1)
    assert mgr.actuator.levels_lowered == 6


def test_manager_red_cycle_emergency(busy_cluster):
    model = PowerModel(busy_cluster.spec)
    current = model.system_power(busy_cluster.state)
    mgr = _manager(busy_cluster, p_low=current * 0.5, p_high=current * 0.8)
    report = mgr.control_cycle(1.0)
    assert report.state is PowerState.RED
    assert np.all(busy_cluster.state.level == 0)
    assert mgr.ever_entered_red()


def test_manager_records_series(busy_cluster):
    mgr = _manager(busy_cluster)
    mgr.control_cycle(1.0)
    mgr.control_cycle(2.0)
    assert mgr.recorder.length("power_w") == 2
    assert mgr.recorder.length("state_severity") == 2
    assert mgr.recorder.length("targets") == 2
    times, power = mgr.recorder.arrays("power_w")
    np.testing.assert_array_equal(times, [1.0, 2.0])
    assert np.all(power > 0)


def test_manager_full_loop_degrade_then_recover(busy_cluster):
    """Yellow pushes down; sustained green restores to the top."""
    model = PowerModel(busy_cluster.spec)
    current = model.system_power(busy_cluster.state)
    mgr = _manager(busy_cluster, p_low=current - 50.0, p_high=current * 1.5)
    top = busy_cluster.spec.top_level

    report = mgr.control_cycle(1.0)
    assert report.state is PowerState.YELLOW  # degraded job 1 by one level
    assert np.all(busy_cluster.state.level[4:10] == top - 1)

    # Degradation lowered power below P_L ⇒ green; after T_g = 2 green
    # cycles the nodes are restored.
    r2 = mgr.control_cycle(2.0)
    assert r2.state is PowerState.GREEN
    r3 = mgr.control_cycle(3.0)
    assert r3.state is PowerState.GREEN
    assert r3.decision.action is CappingAction.UPGRADE
    assert np.all(busy_cluster.state.level[4:10] == top)


def test_manager_reset_episode_state(busy_cluster):
    model = PowerModel(busy_cluster.spec)
    current = model.system_power(busy_cluster.state)
    mgr = _manager(busy_cluster, p_low=current * 0.9, p_high=current * 1.5)
    mgr.control_cycle(1.0)
    assert len(mgr.capping.degraded_nodes) > 0
    mgr.reset_episode_state()
    assert len(mgr.capping.degraded_nodes) == 0


def test_manager_release_all(busy_cluster):
    model = PowerModel(busy_cluster.spec)
    current = model.system_power(busy_cluster.state)
    mgr = _manager(busy_cluster, p_low=current * 0.5, p_high=current * 0.8)
    mgr.control_cycle(1.0)  # red: everything to level 0
    mgr.release_all()
    assert np.all(busy_cluster.state.level == busy_cluster.spec.top_level)


def test_deposed_manager_release_all_cannot_touch_machine(busy_cluster):
    """A deposed incarnation's teardown is fenced like any other write."""
    model = PowerModel(busy_cluster.spec)
    current = model.system_power(busy_cluster.state)
    mgr = _manager(busy_cluster, p_low=current * 0.5, p_high=current * 0.8)
    mgr.control_cycle(1.0)  # red: everything to level 0
    mgr.set_fencing_epoch(mgr.actuator.epoch)
    mgr.actuator.advance_epoch()  # successor took over
    mgr.release_all()
    assert np.all(busy_cluster.state.level == 0)
    assert mgr.actuator.fenced_commands > 0


def test_manager_with_empty_candidates(busy_cluster):
    sets = NodeSets(busy_cluster, np.empty(0, dtype=np.int64))
    model = PowerModel(busy_cluster.spec)
    meter = SystemPowerMeter(model, busy_cluster.state)
    thresholds = ThresholdController.fixed(p_low=1.0, p_high=2.0)  # always red
    mgr = PowerManager(busy_cluster, sets, meter, thresholds, make_policy("mpc"))
    report = mgr.control_cycle(1.0)  # must not crash, nothing to do
    assert report.state is PowerState.RED
    assert not report.acted
    mgr.release_all()  # no-op


def test_manager_threshold_observation(busy_cluster):
    mgr = _manager(busy_cluster)
    before = mgr.thresholds.running_peak
    busy_cluster.state.set_load(np.arange(14), 1.0, 0.9, 0.9)
    mgr.control_cycle(1.0)
    assert mgr.thresholds.running_peak >= before
