"""Unit tests for node-set classification and power-state classification."""

import numpy as np
import pytest

from repro.core import CandidateSelector, NodeSets, PowerState, classify_power_state
from repro.errors import ConfigurationError, PowerManagementError


# ----------------------------------------------------------------------
# NodeSets
# ----------------------------------------------------------------------
def test_default_candidates_are_all_controllable(small_cluster):
    sets = NodeSets(small_cluster)
    assert sets.size == 16
    np.testing.assert_array_equal(sets.candidates, np.arange(16))
    assert len(sets.uncontrollable) == 0


def test_privileged_nodes_excluded(small_cluster):
    small_cluster.set_privileged_nodes([0, 5])
    sets = NodeSets(small_cluster)
    assert sets.size == 14
    assert 0 not in sets.candidates
    assert list(sets.uncontrollable) == [0, 5]
    assert not sets.is_candidate(0)
    assert sets.is_candidate(1)


def test_total_set(small_cluster):
    sets = NodeSets(small_cluster)
    np.testing.assert_array_equal(sets.total, np.arange(16))


def test_explicit_candidate_ids(small_cluster):
    sets = NodeSets(small_cluster, np.array([3, 1, 3, 7]))
    np.testing.assert_array_equal(sets.candidates, [1, 3, 7])  # unique, sorted
    mask = sets.candidate_mask
    assert mask[1] and mask[3] and mask[7] and not mask[0]


def test_candidates_must_be_controllable(small_cluster):
    small_cluster.set_privileged_nodes([2])
    with pytest.raises(ConfigurationError):
        NodeSets(small_cluster, np.array([1, 2]))


def test_candidate_ids_bounds_checked(small_cluster):
    with pytest.raises(ConfigurationError):
        NodeSets(small_cluster, np.array([99]))


def test_select_first_k(small_cluster):
    sets = NodeSets.select(small_cluster, 4, CandidateSelector.FIRST_K)
    np.testing.assert_array_equal(sets.candidates, [0, 1, 2, 3])


def test_select_first_k_skips_privileged(small_cluster):
    small_cluster.set_privileged_nodes([0])
    sets = NodeSets.select(small_cluster, 4, CandidateSelector.FIRST_K)
    np.testing.assert_array_equal(sets.candidates, [1, 2, 3, 4])


def test_select_spread_k(small_cluster):
    sets = NodeSets.select(small_cluster, 4, CandidateSelector.SPREAD_K)
    assert sets.size == 4
    assert sets.candidates[0] == 0
    assert sets.candidates[-1] == 15


def test_select_spread_k_full(small_cluster):
    sets = NodeSets.select(small_cluster, 16, CandidateSelector.SPREAD_K)
    assert sets.size == 16


def test_select_random_k(small_cluster):
    rng = np.random.default_rng(0)
    sets = NodeSets.select(small_cluster, 5, CandidateSelector.RANDOM_K, rng=rng)
    assert sets.size == 5
    assert len(np.unique(sets.candidates)) == 5


def test_select_random_requires_rng(small_cluster):
    with pytest.raises(ConfigurationError):
        NodeSets.select(small_cluster, 5, CandidateSelector.RANDOM_K)


def test_select_zero_gives_empty(small_cluster):
    sets = NodeSets.select(small_cluster, 0)
    assert sets.size == 0


def test_select_too_many_rejected(small_cluster):
    with pytest.raises(ConfigurationError):
        NodeSets.select(small_cluster, 17)


# ----------------------------------------------------------------------
# Power states
# ----------------------------------------------------------------------
def test_green_below_low():
    assert classify_power_state(999.0, 1000.0, 2000.0) is PowerState.GREEN


def test_yellow_between():
    assert classify_power_state(1000.0, 1000.0, 2000.0) is PowerState.YELLOW
    assert classify_power_state(1999.0, 1000.0, 2000.0) is PowerState.YELLOW


def test_red_at_and_above_high():
    assert classify_power_state(2000.0, 1000.0, 2000.0) is PowerState.RED
    assert classify_power_state(9999.0, 1000.0, 2000.0) is PowerState.RED


def test_invalid_thresholds_rejected():
    with pytest.raises(PowerManagementError):
        classify_power_state(1.0, 0.0, 1.0)
    with pytest.raises(PowerManagementError):
        classify_power_state(1.0, 2.0, 1.0)


def test_severity_ordering():
    assert PowerState.GREEN.severity < PowerState.YELLOW.severity < PowerState.RED.severity
