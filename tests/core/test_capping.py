"""Unit tests for Algorithm 1 (the power capping algorithm)."""

import numpy as np
import pytest

from repro.core import NodeSets, PowerCappingAlgorithm, PowerState
from repro.core.capping import CappingAction
from repro.core.policies import SelectionPolicy, make_policy
from repro.errors import ConfigurationError, PowerManagementError

from tests.core.conftest import ContextBuilder


@pytest.fixture
def algo(busy_cluster):
    sets = NodeSets(busy_cluster)
    return PowerCappingAlgorithm(sets, busy_cluster.spec.top_level, steady_green_cycles=3)


@pytest.fixture
def builder(busy_cluster):
    return ContextBuilder(busy_cluster)


def test_green_below_tg_does_nothing(algo, builder):
    mpc = make_policy("mpc")
    decision = algo.decide(PowerState.GREEN, builder.snap(), mpc)
    assert decision.action is CappingAction.NONE
    assert decision.num_targets == 0
    assert decision.time_in_green == 1
    assert algo.time_in_green == 1


def test_green_without_degraded_never_upgrades(algo, builder):
    mpc = make_policy("mpc")
    for i in range(10):
        decision = algo.decide(PowerState.GREEN, builder.snap(), mpc)
        assert decision.action is CappingAction.NONE
    assert algo.time_in_green == 10


def test_yellow_degrades_policy_selection(algo, builder, busy_cluster):
    mpc = make_policy("mpc")
    ctx = builder.snap()
    decision = algo.decide(PowerState.YELLOW, ctx, mpc)
    assert decision.action is CappingAction.DEGRADE
    np.testing.assert_array_equal(decision.node_ids, np.arange(4, 10))
    top = busy_cluster.spec.top_level
    np.testing.assert_array_equal(decision.new_levels, np.full(6, top - 1))
    np.testing.assert_array_equal(algo.degraded_nodes, np.arange(4, 10))
    assert algo.time_in_green == 0


def test_yellow_resets_green_timer(algo, builder):
    mpc = make_policy("mpc")
    algo.decide(PowerState.GREEN, builder.snap(), mpc)
    assert algo.time_in_green == 1
    algo.decide(PowerState.YELLOW, builder.snap(), mpc)
    assert algo.time_in_green == 0


def test_yellow_empty_selection_is_none_action(algo, builder, busy_cluster):
    busy_cluster.state.set_levels(np.arange(16), 0)  # nothing degradable
    mpc = make_policy("mpc")
    decision = algo.decide(PowerState.YELLOW, builder.snap(), mpc)
    assert decision.action is CappingAction.NONE


def test_steady_green_upgrades_degraded(algo, builder, busy_cluster):
    mpc = make_policy("mpc")
    # Degrade once (yellow), then stay green for T_g = 3 cycles.
    decision = algo.decide(PowerState.YELLOW, builder.snap(), mpc)
    busy_cluster.state.set_levels(decision.node_ids, decision.new_levels)
    for _ in range(2):
        d = algo.decide(PowerState.GREEN, builder.snap(), mpc)
        assert d.action is CappingAction.NONE
    d = algo.decide(PowerState.GREEN, builder.snap(), mpc)  # 3rd green cycle
    assert d.action is CappingAction.UPGRADE
    np.testing.assert_array_equal(d.node_ids, np.arange(4, 10))
    top = busy_cluster.spec.top_level
    np.testing.assert_array_equal(d.new_levels, np.full(6, top))
    # Nodes reached the top ⇒ removed from A_degraded.
    assert len(algo.degraded_nodes) == 0


def test_steady_green_upgrades_every_cycle_until_top(busy_cluster):
    """Time_g is not reset by an upgrade: each further green cycle lifts
    the remaining degraded nodes another level (Figure 2 semantics)."""
    sets = NodeSets(busy_cluster)
    algo = PowerCappingAlgorithm(sets, busy_cluster.spec.top_level, steady_green_cycles=2)
    builder = ContextBuilder(busy_cluster)
    mpc = make_policy("mpc")
    # Push job 1's nodes down 3 levels via three yellow cycles.
    for _ in range(3):
        d = algo.decide(PowerState.YELLOW, builder.snap(), mpc)
        busy_cluster.state.set_levels(d.node_ids, d.new_levels)
    top = busy_cluster.spec.top_level
    assert np.all(busy_cluster.state.level[4:10] == top - 3)
    # Green cycle 1: no upgrade (Time_g = 1 < 2); cycles 2..4 upgrade.
    assert algo.decide(PowerState.GREEN, builder.snap(), mpc).action is CappingAction.NONE
    for expected in (top - 2, top - 1, top):
        d = algo.decide(PowerState.GREEN, builder.snap(), mpc)
        assert d.action is CappingAction.UPGRADE
        busy_cluster.state.set_levels(d.node_ids, d.new_levels)
        assert np.all(busy_cluster.state.level[4:10] == expected)
    assert len(algo.degraded_nodes) == 0


def test_red_drops_all_candidates_to_lowest(algo, builder, busy_cluster):
    mpc = make_policy("mpc")
    decision = algo.decide(PowerState.RED, builder.snap(), mpc)
    assert decision.action is CappingAction.EMERGENCY
    np.testing.assert_array_equal(decision.node_ids, np.arange(16))
    np.testing.assert_array_equal(decision.new_levels, np.zeros(16, dtype=np.int64))
    np.testing.assert_array_equal(algo.degraded_nodes, np.arange(16))
    assert algo.time_in_green == 0


def test_red_with_empty_candidate_set(busy_cluster):
    sets = NodeSets(busy_cluster, np.empty(0, dtype=np.int64))
    algo = PowerCappingAlgorithm(sets, busy_cluster.spec.top_level)
    builder = ContextBuilder(busy_cluster, candidate_ids=np.empty(0, dtype=np.int64))
    decision = algo.decide(PowerState.RED, builder.snap(), make_policy("mpc"))
    assert decision.action is CappingAction.NONE


def test_recovery_after_red(algo, builder, busy_cluster):
    mpc = make_policy("mpc")
    d = algo.decide(PowerState.RED, builder.snap(), mpc)
    busy_cluster.state.set_levels(d.node_ids, d.new_levels)
    # 3 green cycles to reach steady green, then upgrades start.
    for _ in range(2):
        algo.decide(PowerState.GREEN, builder.snap(), mpc)
    d = algo.decide(PowerState.GREEN, builder.snap(), mpc)
    assert d.action is CappingAction.UPGRADE
    np.testing.assert_array_equal(d.new_levels, np.ones(16, dtype=np.int64))


def test_policy_selecting_non_candidate_rejected(busy_cluster):
    sets = NodeSets(busy_cluster, np.arange(8))  # candidates 0..7 only
    algo = PowerCappingAlgorithm(sets, busy_cluster.spec.top_level)
    builder = ContextBuilder(busy_cluster, candidate_ids=np.arange(8))

    class Rogue(SelectionPolicy):
        name = "rogue"

        def select(self, ctx):
            return np.array([12])  # outside the candidate set

    with pytest.raises(PowerManagementError):
        algo.decide(PowerState.YELLOW, builder.snap(), Rogue())


def test_policy_selecting_idle_node_rejected(algo, builder):
    class Rogue(SelectionPolicy):
        name = "rogue"

        def select(self, ctx):
            return np.array([15])  # idle node

    with pytest.raises(PowerManagementError):
        algo.decide(PowerState.YELLOW, builder.snap(), Rogue())


def test_policy_selecting_floor_node_rejected(algo, builder, busy_cluster):
    busy_cluster.state.set_level(4, 0)

    class Rogue(SelectionPolicy):
        name = "rogue"

        def select(self, ctx):
            return np.array([4])  # already at the lowest level

    with pytest.raises(PowerManagementError):
        algo.decide(PowerState.YELLOW, builder.snap(), Rogue())


def test_reset(algo, builder):
    mpc = make_policy("mpc")
    algo.decide(PowerState.YELLOW, builder.snap(), mpc)
    algo.decide(PowerState.GREEN, builder.snap(), mpc)
    algo.reset()
    assert len(algo.degraded_nodes) == 0
    assert algo.time_in_green == 0


def test_construction_validation(busy_cluster):
    sets = NodeSets(busy_cluster)
    with pytest.raises(ConfigurationError):
        PowerCappingAlgorithm(sets, busy_cluster.spec.top_level, steady_green_cycles=0)
    with pytest.raises(ConfigurationError):
        PowerCappingAlgorithm(sets, -1)
