"""Tests for actuation reports, the raise clamp and command re-issue."""

import numpy as np
import pytest

from repro.core import DvfsActuator, PowerState
from repro.core.actuator import ActuationReport
from repro.core.capping import CappingAction, CappingDecision
from repro.errors import ConfigurationError


def _decision(action, node_ids, new_levels, state=PowerState.YELLOW):
    return CappingDecision(
        state=state,
        action=action,
        node_ids=np.asarray(node_ids, dtype=np.int64),
        new_levels=np.asarray(new_levels, dtype=np.int64),
        time_in_green=0,
    )


class _ScriptedOutcomes:
    """Fault-injector stand-in: a queue of (lost, delayed) masks.

    Each ``command_outcomes`` call pops one entry; an exhausted queue
    lands everything.
    """

    def __init__(self, outcomes=(), delay_cycles=2):
        self._outcomes = list(outcomes)
        self.command_delay_cycles = delay_cycles

    def command_outcomes(self, node_ids):
        n = len(node_ids)
        if self._outcomes:
            lost, delayed = self._outcomes.pop(0)
            return (
                np.asarray(lost, dtype=bool)[:n],
                np.asarray(delayed, dtype=bool)[:n],
            )
        return np.zeros(n, dtype=bool), np.zeros(n, dtype=bool)


# ----------------------------------------------------------------------
# ActuationReport accounting (fault-free)
# ----------------------------------------------------------------------
def test_report_counts_effective_commands(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    report = act.apply(_decision(CappingAction.DEGRADE, [4, 5], [8, 8]))
    assert isinstance(report, ActuationReport)
    assert report.commands == 2
    assert report.effective == 2
    assert report.noop == 0
    assert report.lost == 0 and report.delayed == 0
    assert report.landed == 2


def test_report_counts_noops(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    act.apply(_decision(CappingAction.DEGRADE, [4, 5], [8, 8]))
    report = act.apply(_decision(CappingAction.DEGRADE, [4, 5], [8, 8]))
    assert report.effective == 0
    assert report.noop == 2
    assert act.noop_commands == 2
    assert act.effective_commands == 2


def test_report_none_action_empty(busy_cluster):
    act = DvfsActuator(busy_cluster.state)
    report = act.apply(_decision(CappingAction.NONE, [], [], PowerState.GREEN))
    assert report == ActuationReport()


def test_negative_max_retries_rejected(busy_cluster):
    with pytest.raises(ConfigurationError):
        DvfsActuator(busy_cluster.state, max_retries=-1)


# ----------------------------------------------------------------------
# The never-upgrade-on-stale clamp
# ----------------------------------------------------------------------
def test_raise_clamp_suppresses_upgrade(busy_cluster):
    state = busy_cluster.state
    state.set_levels(np.array([4, 5]), 5)
    act = DvfsActuator(state)
    raise_ok = np.ones(state.num_nodes, dtype=bool)
    raise_ok[5] = False  # node 5's telemetry is stale
    report = act.apply(
        _decision(CappingAction.UPGRADE, [4, 5], [6, 6], PowerState.GREEN),
        raise_ok=raise_ok,
    )
    assert state.level[4] == 6
    assert state.level[5] == 5  # unchanged
    assert report.effective == 1
    assert report.suppressed == 1
    assert act.suppressed_commands == 1


def test_raise_clamp_never_blocks_degrades(busy_cluster):
    state = busy_cluster.state
    act = DvfsActuator(state)
    raise_ok = np.zeros(state.num_nodes, dtype=bool)  # everything stale
    report = act.apply(
        _decision(CappingAction.DEGRADE, [4, 5], [8, 8]), raise_ok=raise_ok
    )
    assert report.effective == 2
    assert state.level[4] == 8


def test_stale_degrade_command_cannot_raise_actual_level(busy_cluster):
    """A DEGRADE computed from a stale snapshot may command a level above
    the node's actual one; the clamp must catch it."""
    state = busy_cluster.state
    state.set_levels(np.array([4]), 6)  # actual level 6
    act = DvfsActuator(state)
    raise_ok = np.zeros(state.num_nodes, dtype=bool)
    # Stale snapshot showed level 9, so the controller commands 8 — an
    # actual raise from 6.
    report = act.apply(
        _decision(CappingAction.DEGRADE, [4], [8]), raise_ok=raise_ok
    )
    assert state.level[4] == 6
    assert report.suppressed == 1


# ----------------------------------------------------------------------
# Loss, retry with backoff, delay, supersede
# ----------------------------------------------------------------------
def test_lost_command_retried_and_lands(busy_cluster):
    state = busy_cluster.state
    inj = _ScriptedOutcomes([([True, False], [False, False])])
    act = DvfsActuator(state, inj)
    act.begin_cycle()
    report = act.apply(_decision(CappingAction.DEGRADE, [4, 5], [8, 8]))
    assert report.lost == 1
    assert report.effective == 1
    assert state.level[4] == 9  # command to node 4 lost
    assert state.level[5] == 8
    assert act.pending_commands == 1
    # First retry is due one cycle later and (queue exhausted) lands.
    landed = act.begin_cycle()
    assert landed == 1
    assert state.level[4] == 8
    assert act.retried_commands == 1
    assert act.pending_commands == 0


def test_retries_back_off_exponentially(busy_cluster):
    state = busy_cluster.state
    # First issue lost, retry 1 lost, retry 2 lost, retry 3 lands.
    inj = _ScriptedOutcomes(
        [([True], [False]), ([True], [False]), ([True], [False])]
    )
    act = DvfsActuator(state, inj, max_retries=3)
    act.begin_cycle()  # cycle 1
    act.apply(_decision(CappingAction.DEGRADE, [4], [8]))
    # Backoff gaps double: retry 1 at cycle 2 (+1), retry 2 at cycle 4
    # (+2), retry 3 at cycle 8 (+4) — which finally lands.
    landings = [act.begin_cycle() for _ in range(7)]  # cycles 2..8
    assert landings == [0, 0, 0, 0, 0, 0, 1]
    assert state.level[4] == 8
    assert act.lost_commands == 3
    assert act.retried_commands == 1
    assert act.abandoned_commands == 0


def test_command_abandoned_after_max_retries(busy_cluster):
    state = busy_cluster.state
    inj = _ScriptedOutcomes([([True], [False])] * 10)
    act = DvfsActuator(state, inj, max_retries=2)
    act.begin_cycle()
    act.apply(_decision(CappingAction.DEGRADE, [4], [8]))
    for _ in range(10):
        act.begin_cycle()
    assert act.abandoned_commands == 1
    assert act.pending_commands == 0
    assert state.level[4] == 9  # never landed


def test_delayed_command_lands_late(busy_cluster):
    state = busy_cluster.state
    inj = _ScriptedOutcomes([([False], [True])], delay_cycles=2)
    act = DvfsActuator(state, inj)
    act.begin_cycle()  # cycle 1
    report = act.apply(_decision(CappingAction.DEGRADE, [4], [8]))
    assert report.delayed == 1
    assert state.level[4] == 9
    assert act.begin_cycle() == 0  # cycle 2: not due yet
    assert act.begin_cycle() == 1  # cycle 3: lands
    assert state.level[4] == 8
    # A clean (never-lost) late landing is not counted as retried.
    assert act.retried_commands == 0


def test_newer_command_supersedes_pending(busy_cluster):
    state = busy_cluster.state
    inj = _ScriptedOutcomes([([True], [False])])
    act = DvfsActuator(state, inj)
    act.begin_cycle()
    act.apply(_decision(CappingAction.DEGRADE, [4], [8]))  # lost, queued
    assert act.pending_commands == 1
    act.apply(_decision(CappingAction.DEGRADE, [4], [7]))  # supersedes
    assert act.pending_commands == 0
    assert state.level[4] == 7
    act.begin_cycle()
    assert state.level[4] == 7  # the stale level-8 retry never lands


def test_late_raise_clamped_by_current_cycle_mask(busy_cluster):
    """A raise in flight must not land on a node that went stale."""
    state = busy_cluster.state
    state.set_levels(np.array([4]), 5)
    inj = _ScriptedOutcomes([([False], [True])], delay_cycles=1)
    act = DvfsActuator(state, inj)
    act.begin_cycle()
    ok = np.ones(state.num_nodes, dtype=bool)
    act.apply(
        _decision(CappingAction.UPGRADE, [4], [6], PowerState.GREEN),
        raise_ok=ok,  # fresh at issue time
    )
    stale_now = np.zeros(state.num_nodes, dtype=bool)
    act.begin_cycle(raise_ok=stale_now)  # node went stale while in flight
    assert state.level[4] == 5
    assert act.suppressed_commands == 1
