"""Unit tests for the related-work baseline controllers."""

import numpy as np
import pytest

from repro.core import NodeSets, ThresholdController
from repro.core.baselines import BudgetPartitionManager, MimoFeedbackManager
from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.power import PowerModel, SystemPowerMeter


def _manager(cluster, cls, p_low, p_high, **kwargs):
    model = PowerModel(cluster.spec)
    return cls(
        cluster,
        NodeSets(cluster),
        SystemPowerMeter(model, cluster.state),
        ThresholdController.fixed(p_low=p_low, p_high=p_high),
        make_policy("mpc"),
        **kwargs,
    )


def _current_power(cluster):
    return PowerModel(cluster.spec).system_power(cluster.state)


# ----------------------------------------------------------------------
# MimoFeedbackManager
# ----------------------------------------------------------------------
def test_mimo_throttles_on_positive_error(busy_cluster):
    power = _current_power(busy_cluster)
    mgr = _manager(
        busy_cluster, MimoFeedbackManager, p_low=power * 0.9, p_high=power * 2
    )
    top = busy_cluster.spec.top_level
    report = mgr.control_cycle(1.0)
    assert report.acted
    # Some busy nodes were pushed down one level; idle nodes untouched.
    assert np.any(busy_cluster.state.level[:14] == top - 1)
    assert np.all(busy_cluster.state.level[14:] == top)


def test_mimo_ignores_job_structure(busy_cluster):
    """Unlike MPC, MIMO selects individual nodes by savings — it may
    split a job (here: throttle only part of the heavy job)."""
    power = _current_power(busy_cluster)
    # A tiny error: shedding needs only one node's savings.
    mgr = _manager(
        busy_cluster, MimoFeedbackManager, p_low=power - 10.0, p_high=power * 2,
        gain=1.0,
    )
    mgr.control_cycle(1.0)
    heavy = busy_cluster.state.level[4:10]
    assert 0 < np.sum(heavy < busy_cluster.spec.top_level) < 6


def test_mimo_releases_with_headroom(busy_cluster):
    power = _current_power(busy_cluster)
    busy_cluster.state.set_levels(np.arange(4, 10), 5)  # pre-degraded
    mgr = _manager(
        busy_cluster, MimoFeedbackManager, p_low=power * 2, p_high=power * 3
    )
    before = busy_cluster.state.level[4:10].copy()
    report = mgr.control_cycle(1.0)
    assert report.acted
    assert np.all(busy_cluster.state.level[4:10] >= before)
    assert np.any(busy_cluster.state.level[4:10] == 6)


def test_mimo_deadband_does_nothing(busy_cluster):
    power = _current_power(busy_cluster)
    # Setpoint barely above current power: inside the release margin.
    mgr = _manager(
        busy_cluster, MimoFeedbackManager, p_low=power * 1.01, p_high=power * 2
    )
    report = mgr.control_cycle(1.0)
    assert not report.acted


def test_mimo_nothing_to_throttle(busy_cluster):
    busy_cluster.state.set_levels(np.arange(16), 0)
    power = _current_power(busy_cluster)
    mgr = _manager(
        busy_cluster, MimoFeedbackManager, p_low=power * 0.5, p_high=power * 2
    )
    report = mgr.control_cycle(1.0)
    assert not report.acted


def test_mimo_gain_scales_response(busy_cluster):
    power = _current_power(busy_cluster)

    def nodes_touched(gain):
        cluster_copy = busy_cluster  # fresh state per call below
        cluster_copy.state.set_levels(np.arange(16), cluster_copy.spec.top_level)
        mgr = _manager(
            cluster_copy, MimoFeedbackManager, p_low=power * 0.85,
            p_high=power * 2, gain=gain,
        )
        report = mgr.control_cycle(1.0)
        return report.decision.num_targets

    assert nodes_touched(1.0) >= nodes_touched(0.2)


def test_mimo_validation(busy_cluster):
    power = _current_power(busy_cluster)
    with pytest.raises(ConfigurationError):
        _manager(
            busy_cluster, MimoFeedbackManager, p_low=power, p_high=power * 2, gain=0.0
        )
    with pytest.raises(ConfigurationError):
        _manager(
            busy_cluster, MimoFeedbackManager, p_low=power, p_high=power * 2,
            release_margin_fraction=-0.1,
        )


# ----------------------------------------------------------------------
# BudgetPartitionManager
# ----------------------------------------------------------------------
def test_budget_clamps_to_shares(busy_cluster):
    power = _current_power(busy_cluster)
    mgr = _manager(
        busy_cluster, BudgetPartitionManager, p_low=power * 0.8, p_high=power * 2
    )
    mgr.control_cycle(1.0)
    # With an 80% budget something must have been clamped down.
    assert np.any(busy_cluster.state.level < busy_cluster.spec.top_level)
    # And the estimated power now fits the budget (approximately: the
    # discrete ladder may undershoot, never overshoot by construction).
    assert _current_power(busy_cluster) <= power * 0.8 * 1.02


def test_budget_restores_when_budget_ample(busy_cluster):
    busy_cluster.state.set_levels(np.arange(16), 2)
    power_floor = _current_power(busy_cluster)
    mgr = _manager(
        busy_cluster, BudgetPartitionManager, p_low=power_floor * 3,
        p_high=power_floor * 4,
    )
    mgr.control_cycle(1.0)
    assert np.all(
        busy_cluster.state.level[:14] == busy_cluster.spec.top_level
    )


def test_budget_uniform_vs_proportional(busy_cluster):
    """Proportional shares give heavy nodes more headroom than uniform."""
    power = _current_power(busy_cluster)

    def levels_after(proportional):
        busy_cluster.state.set_levels(np.arange(16), busy_cluster.spec.top_level)
        mgr = _manager(
            busy_cluster, BudgetPartitionManager, p_low=power * 0.85,
            p_high=power * 2, proportional=proportional,
        )
        mgr.control_cycle(1.0)
        return busy_cluster.state.level.copy()

    proportional = levels_after(True)
    uniform = levels_after(False)
    # Heavy job (nodes 4..9) keeps higher levels under proportional shares.
    assert proportional[4:10].mean() >= uniform[4:10].mean()


def test_budget_stable_once_converged(busy_cluster):
    power = _current_power(busy_cluster)
    mgr = _manager(
        busy_cluster, BudgetPartitionManager, p_low=power * 0.8, p_high=power * 2
    )
    mgr.control_cycle(1.0)
    levels = busy_cluster.state.level.copy()
    report = mgr.control_cycle(2.0)
    # Same loads, same budget ⇒ no further commands.
    assert not report.acted
    np.testing.assert_array_equal(busy_cluster.state.level, levels)
