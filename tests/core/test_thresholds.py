"""Unit tests for threshold learning and adjustment (§III.A)."""

import pytest

from repro.core import PowerThresholds, ThresholdController
from repro.errors import ConfigurationError, PowerManagementError


def test_paper_margin_formulas():
    c = ThresholdController(initial_peak_w=10000.0)
    assert c.p_high == pytest.approx(0.93 * 10000.0)
    assert c.p_low == pytest.approx(0.84 * 10000.0)


def test_thresholds_dataclass_validation():
    with pytest.raises(ConfigurationError):
        PowerThresholds(p_low=0.0, p_high=1.0)
    with pytest.raises(ConfigurationError):
        PowerThresholds(p_low=2.0, p_high=1.0)
    t = PowerThresholds(p_low=1.0, p_high=1.0)  # equality allowed
    assert t.p_low == t.p_high


def test_running_peak_ratchets_immediately():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=10)
    c.observe(1500.0)
    assert c.running_peak == 1500.0
    assert c.peak == 1000.0  # thresholds not yet re-derived


def test_adjustment_every_tp_cycles():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=5)
    changed = [c.observe(1200.0) for _ in range(5)]
    assert changed == [False, False, False, False, True]
    assert c.peak == 1200.0
    assert c.p_high == pytest.approx(0.93 * 1200.0)
    assert c.adjustments == 1


def test_no_adjustment_without_new_peak():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=2)
    assert not c.observe(500.0)
    assert not c.observe(400.0)  # t_p cycle, but peak unchanged
    assert c.adjustments == 0


def test_peak_never_decreases():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=1)
    c.observe(1500.0)
    c.observe(200.0)
    assert c.peak == 1500.0


def test_complete_training_adopts_peak():
    c = ThresholdController(initial_peak_w=1000.0)
    assert c.complete_training(1800.0)
    assert c.peak == 1800.0
    assert c.p_low == pytest.approx(0.84 * 1800.0)


def test_complete_training_below_current_keeps_running_peak():
    c = ThresholdController(initial_peak_w=1000.0)
    c.observe(2000.0)
    c.complete_training(1500.0)
    assert c.peak == 2000.0


def test_from_training_constructor():
    c = ThresholdController.from_training(2000.0)
    assert c.peak == 2000.0
    assert c.p_high == pytest.approx(1860.0)


def test_fixed_thresholds_never_change():
    c = ThresholdController.fixed(p_low=800.0, p_high=900.0)
    assert c.p_low == 800.0 and c.p_high == 900.0
    for _ in range(10):
        c.observe(5000.0)
    assert c.p_low == 800.0 and c.p_high == 900.0
    assert not c.complete_training(9999.0)


def test_fixed_validation():
    with pytest.raises(ConfigurationError):
        ThresholdController.fixed(p_low=900.0, p_high=800.0)


def test_custom_margins():
    c = ThresholdController(initial_peak_w=1000.0, margin_high=0.05, margin_low=0.2)
    assert c.p_high == pytest.approx(950.0)
    assert c.p_low == pytest.approx(800.0)


def test_margin_validation():
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, margin_high=0.2, margin_low=0.1)
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, margin_high=-0.1, margin_low=0.16)
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, margin_high=0.07, margin_low=1.0)


def test_observe_validation():
    c = ThresholdController(initial_peak_w=1000.0)
    with pytest.raises(PowerManagementError):
        c.observe(-1.0)
    with pytest.raises(PowerManagementError):
        c.complete_training(0.0)


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        ThresholdController(initial_peak_w=0.0)
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, adjust_every_cycles=0)
