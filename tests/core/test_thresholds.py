"""Unit tests for threshold learning and adjustment (§III.A)."""

import pytest

from repro.core import PowerThresholds, ThresholdController
from repro.errors import ConfigurationError, PowerManagementError


def test_paper_margin_formulas():
    c = ThresholdController(initial_peak_w=10000.0)
    assert c.p_high == pytest.approx(0.93 * 10000.0)
    assert c.p_low == pytest.approx(0.84 * 10000.0)


def test_thresholds_dataclass_validation():
    with pytest.raises(ConfigurationError):
        PowerThresholds(p_low=0.0, p_high=1.0)
    with pytest.raises(ConfigurationError):
        PowerThresholds(p_low=2.0, p_high=1.0)
    t = PowerThresholds(p_low=1.0, p_high=1.0)  # equality allowed
    assert t.p_low == t.p_high


def test_running_peak_ratchets_immediately():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=10)
    c.observe(1500.0)
    assert c.running_peak == 1500.0
    assert c.peak == 1000.0  # thresholds not yet re-derived


def test_adjustment_every_tp_cycles():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=5)
    changed = [c.observe(1200.0) for _ in range(5)]
    assert changed == [False, False, False, False, True]
    assert c.peak == 1200.0
    assert c.p_high == pytest.approx(0.93 * 1200.0)
    assert c.adjustments == 1


def test_no_adjustment_without_new_peak():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=2)
    assert not c.observe(500.0)
    assert not c.observe(400.0)  # t_p cycle, but peak unchanged
    assert c.adjustments == 0


def test_peak_never_decreases():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=1)
    c.observe(1500.0)
    c.observe(200.0)
    assert c.peak == 1500.0


def test_complete_training_adopts_peak():
    c = ThresholdController(initial_peak_w=1000.0)
    assert c.complete_training(1800.0)
    assert c.peak == 1800.0
    assert c.p_low == pytest.approx(0.84 * 1800.0)


def test_complete_training_below_current_keeps_running_peak():
    c = ThresholdController(initial_peak_w=1000.0)
    c.observe(2000.0)
    c.complete_training(1500.0)
    assert c.peak == 2000.0


def test_from_training_constructor():
    c = ThresholdController.from_training(2000.0)
    assert c.peak == 2000.0
    assert c.p_high == pytest.approx(1860.0)


def test_fixed_thresholds_never_change():
    c = ThresholdController.fixed(p_low=800.0, p_high=900.0)
    assert c.p_low == 800.0 and c.p_high == 900.0
    for _ in range(10):
        c.observe(5000.0)
    assert c.p_low == 800.0 and c.p_high == 900.0
    assert not c.complete_training(9999.0)


def test_fixed_validation():
    with pytest.raises(ConfigurationError):
        ThresholdController.fixed(p_low=900.0, p_high=800.0)


def test_custom_margins():
    c = ThresholdController(initial_peak_w=1000.0, margin_high=0.05, margin_low=0.2)
    assert c.p_high == pytest.approx(950.0)
    assert c.p_low == pytest.approx(800.0)


def test_margin_validation():
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, margin_high=0.2, margin_low=0.1)
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, margin_high=-0.1, margin_low=0.16)
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, margin_high=0.07, margin_low=1.0)


def test_observe_validation():
    c = ThresholdController(initial_peak_w=1000.0)
    with pytest.raises(PowerManagementError):
        c.observe(-1.0)
    with pytest.raises(PowerManagementError):
        c.complete_training(0.0)


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        ThresholdController(initial_peak_w=0.0)
    with pytest.raises(ConfigurationError):
        ThresholdController(1000.0, adjust_every_cycles=0)


# ----------------------------------------------------------------------
# Provisioned-capacity envelope (repro.provision renegotiation)
# ----------------------------------------------------------------------
def test_envelope_clamps_current_thresholds():
    c = ThresholdController(initial_peak_w=10000.0)
    changed = c.set_envelope(5000.0)
    assert changed
    assert c.p_high == pytest.approx(0.93 * 5000.0)
    assert c.p_low == pytest.approx(0.84 * 5000.0)
    assert c.envelope_w == 5000.0


def test_envelope_noop_when_capacity_is_ample():
    c = ThresholdController(initial_peak_w=1000.0)
    assert c.set_envelope(50000.0) is False
    assert c.p_high == pytest.approx(930.0)


def test_envelope_release_restores_learned_thresholds():
    c = ThresholdController(initial_peak_w=10000.0)
    c.set_envelope(5000.0)
    assert c.set_envelope(None) is True
    assert c.p_high == pytest.approx(9300.0)
    assert c.envelope_w is None


def test_envelope_validation_and_idempotence():
    c = ThresholdController(initial_peak_w=1000.0)
    with pytest.raises(ConfigurationError):
        c.set_envelope(0.0)
    c.set_envelope(500.0)
    assert c.set_envelope(500.0) is False  # unchanged: no churn


def test_relearning_never_widens_past_envelope():
    c = ThresholdController(initial_peak_w=1000.0, adjust_every_cycles=1)
    c.set_envelope(800.0)
    # A big new peak would re-derive wider thresholds, but the envelope
    # must keep the effective budget pinned to surviving capacity.
    c.observe(5000.0)
    assert c.p_high == pytest.approx(0.93 * 800.0)
    assert c.p_low == pytest.approx(0.84 * 800.0)
    # Capacity back: the learned (wider) thresholds reappear at once.
    c.set_envelope(None)
    assert c.p_high == pytest.approx(0.93 * 5000.0)


def test_envelope_clamps_frozen_controllers_too():
    c = ThresholdController.fixed(p_low=840.0, p_high=930.0)
    c.set_envelope(500.0)
    assert c.p_high == pytest.approx(0.93 * 500.0)
    c.set_envelope(None)
    assert c.p_high == pytest.approx(930.0)


def test_restore_state_keeps_stricter_live_envelope():
    # Failover regression: the journal was written under full capacity,
    # but a feed was lost before the standby finished restoring.  The
    # live (shrunken) envelope must win over the journaled one.
    primary = ThresholdController(initial_peak_w=10000.0)
    checkpoint = primary.state_dict()  # envelope_w is None here
    standby = ThresholdController(initial_peak_w=10000.0)
    standby.set_envelope(4000.0)  # feed loss observed before restore
    standby.restore_state(checkpoint)
    assert standby.envelope_w == 4000.0
    assert standby.p_high == pytest.approx(0.93 * 4000.0)
    # Re-learning after the restore stays inside the envelope as well.
    standby.observe(20000.0)
    assert standby.p_high == pytest.approx(0.93 * 4000.0)


def test_restore_state_takes_min_of_both_envelopes():
    primary = ThresholdController(initial_peak_w=10000.0)
    primary.set_envelope(6000.0)
    checkpoint = primary.state_dict()
    standby = ThresholdController(initial_peak_w=10000.0)
    standby.set_envelope(4000.0)
    standby.restore_state(checkpoint)
    assert standby.envelope_w == 4000.0  # stricter of 6000 vs 4000
    loose = ThresholdController(initial_peak_w=10000.0)
    loose.restore_state(checkpoint)
    assert loose.envelope_w == 6000.0  # journaled envelope still applies
    assert loose.p_high == pytest.approx(0.93 * 6000.0)
