"""release_all() / reset_episode_state() interplay.

Both clear the degraded-mode latches, but they answer different
questions: ``release_all`` reconciles control state with a machine it
just restored to full speed (end of run), ``reset_episode_state``
re-arms the control posture for a new episode on whatever machine state
stands.  These tests pin the contract: latches cleared, lifetime
counters kept, and the two composable in either order without leaving a
stale ``A_degraded`` or blackout streak behind.
"""

import numpy as np

from repro.core import NodeSets, PowerManager, PowerState, ThresholdController
from repro.core.policies import make_policy
from repro.faults import DegradedModeConfig
from repro.power import PowerModel, SystemPowerMeter


class _FakeInjector:
    """Scripted injector: flip ``meter_up`` / ``drop`` between cycles."""

    def __init__(self, num_nodes):
        self.meter_up = True
        self.drop = np.zeros(num_nodes, dtype=bool)
        self.command_delay_cycles = 2
        self.meter_outages = 0
        self.meter_outage_cycles = 0
        self.node_crashes = 0
        self.offline_node_cycles = 0
        self.corrupted_samples = 0
        self.corrupted_meter_readings = 0

    def begin_cycle(self, now):
        if not self.meter_up:
            self.meter_outage_cycles += 1

    def meter_available(self):
        return self.meter_up

    def perturb_meter(self, reading_w):
        return reading_w

    def telemetry_drop_mask(self, node_ids):
        return self.drop[np.asarray(node_ids, dtype=np.int64)]

    def corrupt_telemetry(self, node_ids, cpu_util, mem_frac, nic_frac):
        return np.zeros(len(node_ids), dtype=bool)

    def command_outcomes(self, node_ids):
        z = np.zeros(len(node_ids), dtype=bool)
        return z, z.copy()


def _manager(cluster, p_low, p_high, injector=None):
    sets = NodeSets(cluster)
    model = PowerModel(cluster.spec)
    meter = SystemPowerMeter(model, cluster.state)
    return PowerManager(
        cluster,
        sets,
        meter,
        ThresholdController.fixed(p_low=p_low, p_high=p_high),
        make_policy("mpc"),
        steady_green_cycles=2,
        fault_injector=injector,
        degraded=DegradedModeConfig(blackout_cycles=2),
    )


def _hot_manager(cluster, injector=None):
    """A manager whose first cycle lands yellow and degrades nodes."""
    p_ref = PowerModel(cluster.spec).system_power(cluster.state)
    return _manager(cluster, p_ref * 0.9, p_ref * 1.5, injector)


def test_release_all_restores_levels_and_clears_degraded_state(busy_cluster):
    state = busy_cluster.state
    top = busy_cluster.spec.top_level
    manager = _hot_manager(busy_cluster)
    report = manager.control_cycle(1.0)
    assert report.state is PowerState.YELLOW
    assert len(manager.capping.degraded_nodes) > 0
    assert (state.level < top).any()

    manager.release_all()
    candidates = manager.sets.candidates
    assert (state.level[candidates] == top).all()
    assert len(manager.capping.degraded_nodes) == 0
    assert manager.capping.time_in_green == 0
    # Lifetime accounting survives the release.
    assert manager.cycles == 1
    assert manager.state_count(PowerState.YELLOW) == 1


def test_release_all_clears_blackout_latch(busy_cluster):
    inj = _FakeInjector(16)
    manager = _hot_manager(busy_cluster, inj)
    inj.drop[:] = True  # total telemetry blackout -> forced red
    for t in (1.0, 2.0, 3.0):
        report = manager.control_cycle(t)
    assert report.forced_red
    streak_before = manager.forced_red_cycles

    manager.release_all()
    inj.drop[:] = False
    report = manager.control_cycle(4.0)
    # Full coverage is back and the streak latch was cleared: the next
    # cycle is graded on thresholds, not forced red by a stale streak.
    assert not report.forced_red
    assert manager.forced_red_cycles == streak_before


def test_reset_episode_state_keeps_counters_clears_latches(busy_cluster):
    inj = _FakeInjector(16)
    manager = _hot_manager(busy_cluster, inj)
    manager.control_cycle(1.0)
    inj.meter_up = False
    manager.control_cycle(2.0)  # runs on the estimation anchor
    assert manager.estimated_power_cycles == 1
    cycles, yellow = manager.cycles, manager.state_count(PowerState.YELLOW)

    manager.reset_episode_state()
    assert len(manager.capping.degraded_nodes) == 0
    assert manager.capping.time_in_green == 0
    # Counters are accounting, not control state: they must survive.
    assert manager.cycles == cycles
    assert manager.state_count(PowerState.YELLOW) == yellow
    assert manager.estimated_power_cycles == 1

    # The estimation anchor was discarded with the episode: the next
    # estimated cycle re-anchors from the new episode's first metered
    # reading instead of reusing the stale offset.
    inj.meter_up = True
    metered = manager.control_cycle(3.0)
    inj.meter_up = False
    estimated = manager.control_cycle(4.0)
    assert not estimated.metered
    assert abs(estimated.power_w - metered.power_w) < 0.5 * metered.power_w


def test_reset_does_not_touch_node_levels(busy_cluster):
    state = busy_cluster.state
    manager = _hot_manager(busy_cluster)
    manager.control_cycle(1.0)
    levels = state.level.copy()
    manager.reset_episode_state()
    # reset re-arms control state only; releasing hardware is
    # release_all()'s job.
    np.testing.assert_array_equal(state.level, levels)


def test_release_then_reset_equals_fresh_manager(busy_cluster):
    state = busy_cluster.state
    manager = _hot_manager(busy_cluster)
    for t in (1.0, 2.0, 3.0):
        manager.control_cycle(t)
    manager.release_all()
    manager.reset_episode_state()

    fresh = _hot_manager(busy_cluster)
    reused_report = manager.control_cycle(10.0)
    # Rerun the same instant on an identical machine with the fresh
    # manager: the reused manager must make the same first decision.
    levels_after_reused = state.level.copy()
    manager.release_all()
    fresh_report = fresh.control_cycle(10.0)
    assert reused_report.state is fresh_report.state
    assert reused_report.decision.action == fresh_report.decision.action
    np.testing.assert_array_equal(levels_after_reused, state.level)
