"""Fixtures for core (capping architecture) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NodeSets, PowerThresholds
from repro.core.policies import PolicyContext
from repro.power import NodePowerEstimator, PowerModel
from repro.telemetry import TelemetryCollector


class ContextBuilder:
    """Builds PolicyContext objects from the live state of a cluster.

    ``snap()`` collects a snapshot (tracking previous automatically, as
    the manager does) and wraps it with chosen power/threshold values.
    """

    def __init__(self, cluster, candidate_ids=None):
        self.cluster = cluster
        ids = (
            np.arange(cluster.num_nodes)
            if candidate_ids is None
            else np.asarray(candidate_ids)
        )
        self.sets = NodeSets(cluster, ids)
        self.collector = TelemetryCollector(cluster.state, self.sets.candidates)
        self.estimator = NodePowerEstimator(PowerModel(cluster.spec))
        self._t = 0.0

    def snap(
        self,
        system_power: float = 5000.0,
        p_low: float = 4000.0,
        p_high: float = 4800.0,
    ) -> PolicyContext:
        self._t += 1.0
        snapshot = self.collector.collect(self._t)
        return PolicyContext(
            snapshot=snapshot,
            previous=self.collector.previous,
            estimator=self.estimator,
            system_power=system_power,
            thresholds=PowerThresholds(p_low=p_low, p_high=p_high),
        )


@pytest.fixture
def ctx_builder(busy_cluster):
    """Context builder over the standard 3-job busy cluster."""
    return ContextBuilder(busy_cluster)
