"""Tests for the manager's degraded-mode fail-safe ladder."""

import numpy as np
import pytest

from repro.core import NodeSets, PowerManager, PowerState, ThresholdController
from repro.core.policies import make_policy
from repro.errors import DegradedModeError
from repro.faults import DegradedModeConfig, FaultStats
from repro.power import PowerModel, SystemPowerMeter


class _FakeInjector:
    """Scripted injector: flip ``meter_up`` / ``drop`` between cycles."""

    def __init__(self, num_nodes):
        self.meter_up = True
        self.drop = np.zeros(num_nodes, dtype=bool)
        self.command_delay_cycles = 2
        # Accounting consumed by fault_report().
        self.meter_outages = 0
        self.meter_outage_cycles = 0
        self.node_crashes = 0
        self.offline_node_cycles = 0
        self.corrupted_samples = 0
        self.corrupted_meter_readings = 0

    def begin_cycle(self, now):
        if not self.meter_up:
            self.meter_outage_cycles += 1

    def meter_available(self):
        return self.meter_up

    def perturb_meter(self, reading_w):
        return reading_w

    def telemetry_drop_mask(self, node_ids):
        return self.drop[np.asarray(node_ids, dtype=np.int64)]

    def corrupt_telemetry(self, node_ids, cpu_util, mem_frac, nic_frac):
        return np.zeros(len(node_ids), dtype=bool)

    def command_outcomes(self, node_ids):
        z = np.zeros(len(node_ids), dtype=bool)
        return z, z.copy()


def _manager(cluster, p_low, p_high, injector, degraded=None, t_g=2):
    sets = NodeSets(cluster)
    model = PowerModel(cluster.spec)
    meter = SystemPowerMeter(model, cluster.state)
    thresholds = ThresholdController.fixed(p_low=p_low, p_high=p_high)
    return PowerManager(
        cluster,
        sets,
        meter,
        thresholds,
        make_policy("mpc"),
        steady_green_cycles=t_g,
        fault_injector=injector,
        degraded=degraded,
    ), meter


JOB1 = np.arange(4, 10)  # the most power-consuming job in busy_cluster


def _quiet(state):
    """Drop every job's load so true power falls well below P_L."""
    for ids in (np.arange(0, 4), JOB1, np.arange(10, 14)):
        state.set_load(ids, cpu_util=0.05, mem_frac=0.05, nic_frac=0.05)


# ----------------------------------------------------------------------
# Rung 1: meter outage
# ----------------------------------------------------------------------
def test_meter_outage_runs_on_formula1_estimate(busy_cluster):
    inj = _FakeInjector(16)
    model = PowerModel(busy_cluster.spec)
    p_ref = model.system_power(busy_cluster.state)
    manager, _ = _manager(busy_cluster, p_ref * 1.1, p_ref * 1.3, inj)
    metered = manager.control_cycle(1.0)
    assert metered.metered and not metered.degraded
    inj.meter_up = False
    report = manager.control_cycle(2.0)
    assert not report.metered
    assert report.degraded
    assert report.power_w > 0.0
    # The estimate is anchored to the last metered reading, so with an
    # unchanged machine it stays near it.
    assert report.power_w == pytest.approx(metered.power_w, rel=0.15)
    assert manager.estimated_power_cycles == 1


def test_no_upgrade_while_meter_is_out(busy_cluster):
    state = busy_cluster.state
    inj = _FakeInjector(16)
    model = PowerModel(busy_cluster.spec)
    p_ref = model.system_power(state)
    # Start just above P_L: the first cycle is yellow and degrades job 1.
    manager, _ = _manager(busy_cluster, p_ref * 0.98, p_ref * 1.5, inj)
    report = manager.control_cycle(1.0)
    assert report.state is PowerState.YELLOW
    assert np.all(state.level[JOB1] == 8)

    _quiet(state)  # power collapses -> green from now on
    inj.meter_up = False
    for t in (2.0, 3.0, 4.0, 5.0):
        report = manager.control_cycle(t)
        assert report.state is PowerState.GREEN
        assert np.all(state.level[JOB1] == 8), "upgraded on estimated power"

    inj.meter_up = True  # meter returns; steady green may restore now
    manager.control_cycle(6.0)
    assert np.all(state.level[JOB1] == 9)


def test_degraded_error_without_any_estimation_basis(busy_cluster):
    busy_cluster.set_privileged_nodes(np.arange(16))  # empty candidate set
    inj = _FakeInjector(16)
    inj.meter_up = False
    manager, _ = _manager(busy_cluster, 1e5, 2e5, inj)
    with pytest.raises(DegradedModeError):
        manager.control_cycle(1.0)


# ----------------------------------------------------------------------
# Rung 2: stale telemetry never upgrades
# ----------------------------------------------------------------------
def test_stale_node_waits_for_fresh_data_before_upgrade(busy_cluster):
    state = busy_cluster.state
    inj = _FakeInjector(16)
    model = PowerModel(busy_cluster.spec)
    p_ref = model.system_power(state)
    manager, _ = _manager(
        busy_cluster,
        p_ref * 0.98,
        p_ref * 1.5,
        inj,
        degraded=DegradedModeConfig(max_stale_age_s=1.5),
        t_g=3,
    )
    report = manager.control_cycle(1.0)
    assert report.state is PowerState.YELLOW
    assert np.all(state.level[JOB1] == 8)

    _quiet(state)
    inj.drop[4] = True  # node 4's agent goes dark
    manager.control_cycle(2.0)  # green, Time_g = 1, age(4) = 1
    manager.control_cycle(3.0)  # green, Time_g = 2, age(4) = 2 -> stale
    report = manager.control_cycle(4.0)  # steady green: upgrades begin
    assert report.state is PowerState.GREEN
    assert np.all(state.level[np.arange(5, 10)] == 9)
    assert state.level[4] == 8  # stale node held back
    assert 4 in manager.capping.degraded_nodes

    manager.control_cycle(5.0)  # still dark, still held
    assert state.level[4] == 8

    inj.drop[4] = False  # agent recovers: fresh sample this cycle
    manager.control_cycle(6.0)
    assert state.level[4] == 9
    assert len(manager.capping.degraded_nodes) == 0


# ----------------------------------------------------------------------
# Rung 3: candidate-set blackout forces red
# ----------------------------------------------------------------------
def test_telemetry_blackout_forces_red(busy_cluster):
    state = busy_cluster.state
    inj = _FakeInjector(16)
    model = PowerModel(busy_cluster.spec)
    p_ref = model.system_power(state)
    manager, _ = _manager(
        busy_cluster,
        p_ref * 1.2,  # comfortably green on real data
        p_ref * 1.5,
        inj,
        degraded=DegradedModeConfig(blackout_coverage=0.5, blackout_cycles=3),
    )
    inj.drop[:] = True  # the whole candidate set goes dark
    reports = [manager.control_cycle(float(t)) for t in range(1, 5)]
    assert all(r.coverage == 0.0 for r in reports)
    assert [r.forced_red for r in reports] == [False, False, True, True]
    assert reports[2].state is PowerState.RED
    assert manager.forced_red_cycles == 2
    assert np.all(state.level == 0)  # emergency floor landed

    inj.drop[:] = False  # telemetry returns: streak resets
    report = manager.control_cycle(5.0)
    assert not report.forced_red
    assert report.coverage == 1.0


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_fault_report_assembles_stats(busy_cluster):
    inj = _FakeInjector(16)
    model = PowerModel(busy_cluster.spec)
    p_ref = model.system_power(busy_cluster.state)
    manager, _ = _manager(busy_cluster, p_ref * 1.2, p_ref * 1.5, inj)
    inj.drop[3] = True
    manager.control_cycle(1.0)
    inj.meter_up = False
    manager.control_cycle(2.0)
    stats = manager.fault_report()
    assert isinstance(stats, FaultStats)
    assert stats.dropped_samples == 2
    assert stats.estimated_power_cycles == 1
    assert stats.meter_outage_cycles == 1
    assert stats.commands_lost == 0


def test_fault_free_manager_reports_nothing(busy_cluster):
    model = PowerModel(busy_cluster.spec)
    p_ref = model.system_power(busy_cluster.state)
    sets = NodeSets(busy_cluster)
    meter = SystemPowerMeter(model, busy_cluster.state)
    thresholds = ThresholdController.fixed(p_low=p_ref * 1.1, p_high=p_ref * 1.3)
    manager = PowerManager(
        busy_cluster, sets, meter, thresholds, make_policy("mpc")
    )
    report = manager.control_cycle(1.0)
    assert report.metered
    assert report.coverage == 1.0
    assert not report.forced_red and not report.degraded
    assert manager.fault_report() is None
    assert manager.fault_injector is None
    # Degraded-mode series are not recorded on fault-free runs.
    assert "telemetry_coverage" not in manager.recorder
    assert "degraded_sensing" not in manager.recorder


def test_recorder_gains_degraded_series_with_injector(busy_cluster):
    inj = _FakeInjector(16)
    model = PowerModel(busy_cluster.spec)
    p_ref = model.system_power(busy_cluster.state)
    manager, _ = _manager(busy_cluster, p_ref * 1.2, p_ref * 1.5, inj)
    manager.control_cycle(1.0)
    inj.meter_up = False
    manager.control_cycle(2.0)
    assert "telemetry_coverage" in manager.recorder
    np.testing.assert_array_equal(
        manager.recorder.values("degraded_sensing"), [0.0, 1.0]
    )
