"""Unit tests for MPC, LPC, BFP (§IV.A).

Fixture layout (``busy_cluster``): job 0 on nodes 0–3 (light load),
job 1 on nodes 4–9 (heavy), job 2 on nodes 10–13 (medium); 14–15 idle.
Power ranking: job 1 > job 2 > job 0.
"""

import numpy as np
import pytest

from repro.core.policies import make_policy


def test_mpc_targets_heaviest_job(ctx_builder):
    ctx = ctx_builder.snap()
    selection = make_policy("mpc").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(4, 10))


def test_lpc_targets_lightest_job(ctx_builder):
    ctx = ctx_builder.snap()
    selection = make_policy("lpc").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 4))


def test_idle_nodes_never_selected(ctx_builder):
    ctx = ctx_builder.snap()
    for name in ("mpc", "lpc", "bfp"):
        selection = make_policy(name).select(ctx)
        assert 14 not in selection and 15 not in selection


def test_mpc_skips_job_at_lowest_level(ctx_builder):
    """If the heaviest job's nodes are all at level 0 it cannot be
    degraded — MPC falls through to the next job."""
    ctx_builder.cluster.state.set_levels(np.arange(4, 10), 0)
    ctx = ctx_builder.snap()
    selection = make_policy("mpc").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(10, 14))


def test_mpc_partial_degradable_set(ctx_builder):
    """Only the degradable subset of the top job's nodes is returned."""
    ctx_builder.cluster.state.set_levels(np.array([4, 5]), 0)
    ctx = ctx_builder.snap()
    selection = make_policy("mpc").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(6, 10))


def test_empty_when_nothing_degradable(ctx_builder):
    ctx_builder.cluster.state.set_levels(np.arange(16), 0)
    ctx = ctx_builder.snap()
    for name in ("mpc", "lpc", "bfp"):
        assert len(make_policy(name).select(ctx)) == 0


def test_empty_when_no_jobs(small_cluster):
    from tests.core.conftest import ContextBuilder

    builder = ContextBuilder(small_cluster)
    ctx = builder.snap()
    for name in ("mpc", "lpc", "bfp"):
        assert len(make_policy(name).select(ctx)) == 0


def test_bfp_picks_smallest_sufficient_job(ctx_builder):
    """With a small deficit, every job's savings cover it; BFP picks the
    one whose savings are *just* above — the lightest job here."""
    ctx = ctx_builder.snap(system_power=4000.1, p_low=4000.0)
    selection = make_policy("bfp").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 4))


def test_bfp_falls_back_to_largest_savings(ctx_builder):
    """With a deficit no single job can cover, BFP picks the job with
    the greatest savings (closest from below) — the heavy job."""
    ctx = ctx_builder.snap(system_power=9.9e5, p_low=1000.0)
    selection = make_policy("bfp").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(4, 10))


def test_bfp_intermediate_deficit(ctx_builder):
    """Deficit sized between job 0's and job 2's savings: job 2 is the
    best fit among sufficient jobs."""
    ctx0 = ctx_builder.snap()
    savings0 = ctx0.savings_of_job(0)
    savings2 = ctx0.savings_of_job(2)
    assert savings0 < savings2
    deficit = (savings0 + savings2) / 2
    ctx = ctx_builder.snap(system_power=4000.0 + deficit, p_low=4000.0)
    selection = make_policy("bfp").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(10, 14))


def test_selection_deterministic(ctx_builder):
    ctx = ctx_builder.snap()
    a = make_policy("mpc").select(ctx)
    b = make_policy("mpc").select(ctx)
    np.testing.assert_array_equal(a, b)
