"""Unit tests for the SLA-aware selection policy.

Fixture layout (``busy_cluster``): job 0 on nodes 0–3 (light), job 1 on
nodes 4–9 (heavy), job 2 on nodes 10–13 (medium).
"""

import numpy as np
import pytest

from repro.core.policies import SlaAwarePolicy, make_policy
from repro.errors import PolicyError


def test_lowest_priority_job_targeted_first(ctx_builder):
    priorities = {0: 2, 1: 1, 2: 0}  # job 2 least important
    policy = make_policy("sla", priority_of=priorities.__getitem__)
    ctx = ctx_builder.snap()
    np.testing.assert_array_equal(policy.select(ctx), np.arange(10, 14))


def test_power_breaks_priority_ties(ctx_builder):
    """Equal priorities: the most power-consuming job goes first (the
    MPC ordering within a class)."""
    policy = make_policy("sla", priority_of=lambda jid: 0)
    ctx = ctx_builder.snap()
    np.testing.assert_array_equal(policy.select(ctx), np.arange(4, 10))


def test_protected_class_never_selected(ctx_builder):
    priorities = {0: 5, 1: 5, 2: 1}
    policy = make_policy(
        "sla", priority_of=priorities.__getitem__, protect_priority=5
    )
    ctx = ctx_builder.snap()
    np.testing.assert_array_equal(policy.select(ctx), np.arange(10, 14))


def test_everything_protected_yields_empty(ctx_builder):
    policy = make_policy("sla", priority_of=lambda jid: 9, protect_priority=5)
    ctx = ctx_builder.snap()
    assert len(policy.select(ctx)) == 0


def test_falls_through_undegradable_jobs(ctx_builder):
    ctx_builder.cluster.state.set_levels(np.arange(10, 14), 0)  # job 2 floored
    priorities = {0: 2, 1: 1, 2: 0}
    policy = make_policy("sla", priority_of=priorities.__getitem__)
    ctx = ctx_builder.snap()
    # Job 2 (lowest class) cannot degrade; job 1 is next.
    np.testing.assert_array_equal(policy.select(ctx), np.arange(4, 10))


def test_requires_lookup():
    with pytest.raises(PolicyError):
        SlaAwarePolicy(priority_of=None)


def test_unknown_jobs_default_priority_zero():
    """The generator lookup returns 0 for unknown ids — document that
    contract here via the generator itself."""
    from repro.sim import RandomSource
    from repro.workload import RandomJobGenerator

    generator = RandomJobGenerator(
        RandomSource(seed=0).stream("g"), priority_choices=(1, 2, 3)
    )
    job = generator.next_job(0.0)
    assert generator.priority_of(job.job_id) == job.priority
    assert generator.priority_of(12345) == 0
