"""Unit tests for the extension policies, the registry and the context."""

import numpy as np
import pytest

from repro.core.policies import (
    PolicyContext,
    SelectionPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.errors import PolicyError


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_all_paper_policies_registered():
    names = available_policies()
    for expected in ("mpc", "mpc-c", "lpc", "lpc-c", "bfp", "hri", "hri-c"):
        assert expected in names


def test_extension_policies_registered():
    names = available_policies()
    for expected in ("random", "fair", "hybrid"):
        assert expected in names


def test_make_policy_unknown_name():
    with pytest.raises(PolicyError):
        make_policy("nonexistent")


def test_policy_name_attribute():
    assert make_policy("mpc").name == "mpc"
    assert make_policy("hri-c").name == "hri-c"


def test_double_registration_rejected():
    with pytest.raises(PolicyError):

        @register_policy("mpc")
        class Duplicate(SelectionPolicy):  # pragma: no cover
            def select(self, ctx):
                return self.empty_selection()


def test_register_non_policy_rejected():
    with pytest.raises(PolicyError):
        register_policy("not-a-policy")(int)


# ----------------------------------------------------------------------
# PolicyContext derived quantities
# ----------------------------------------------------------------------
def test_deficit(ctx_builder):
    ctx = ctx_builder.snap(system_power=4500.0, p_low=4000.0)
    assert ctx.deficit_w == pytest.approx(500.0)
    green = ctx_builder.snap(system_power=3000.0, p_low=4000.0)
    assert green.deficit_w == 0.0


def test_node_power_cached(ctx_builder):
    ctx = ctx_builder.snap()
    assert ctx.node_power is ctx.node_power


def test_job_table_contents(ctx_builder):
    ctx = ctx_builder.snap()
    assert list(ctx.job_table.job_ids) == [0, 1, 2]
    assert ctx.job_table.power_of(1) > ctx.job_table.power_of(2)
    assert ctx.job_table.power_of(2) > ctx.job_table.power_of(0)


def test_degradable_nodes_of_job_sorted(ctx_builder):
    ctx = ctx_builder.snap()
    nodes = ctx.degradable_nodes_of_job(1)
    np.testing.assert_array_equal(nodes, np.arange(4, 10))


def test_savings_of_job_positive(ctx_builder):
    ctx = ctx_builder.snap()
    assert ctx.savings_of_job(1) > ctx.savings_of_job(0) > 0


# ----------------------------------------------------------------------
# Extension policies
# ----------------------------------------------------------------------
def test_random_policy_targets_whole_jobs(ctx_builder):
    rng = np.random.default_rng(0)
    policy = make_policy("random", rng=rng)
    ctx = ctx_builder.snap()
    job_node_sets = [tuple(range(0, 4)), tuple(range(4, 10)), tuple(range(10, 14))]
    for _ in range(20):
        sel = tuple(policy.select(ctx))
        assert sel in job_node_sets


def test_random_policy_requires_rng():
    with pytest.raises(PolicyError):
        make_policy("random", rng=None)


def test_random_policy_covers_all_jobs_eventually(ctx_builder):
    rng = np.random.default_rng(1)
    policy = make_policy("random", rng=rng)
    ctx = ctx_builder.snap()
    seen = {tuple(policy.select(ctx)) for _ in range(60)}
    assert len(seen) == 3


def test_fair_policy_rotates(ctx_builder):
    policy = make_policy("fair")
    ctx = ctx_builder.snap()
    first = tuple(policy.select(ctx))
    second = tuple(policy.select(ctx))
    third = tuple(policy.select(ctx))
    assert {first, second, third} == {
        tuple(range(0, 4)),
        tuple(range(4, 10)),
        tuple(range(10, 14)),
    }
    # Fourth selection wraps around to the least-hit job again.
    fourth = tuple(policy.select(ctx))
    assert fourth == first


def test_fair_policy_reset(ctx_builder):
    policy = make_policy("fair")
    ctx = ctx_builder.snap()
    first = tuple(policy.select(ctx))
    policy.select(ctx)
    policy.reset()
    assert tuple(policy.select(ctx)) == first


def test_hybrid_uses_mpc_without_rates(ctx_builder):
    policy = make_policy("hybrid")
    ctx = ctx_builder.snap()  # no previous snapshot
    np.testing.assert_array_equal(policy.select(ctx), np.arange(4, 10))


def test_hybrid_switches_to_hri_on_surge(ctx_builder):
    policy = make_policy("hybrid", rate_threshold=0.05)
    state = ctx_builder.cluster.state
    ctx_builder.snap()
    state.set_load(np.arange(0, 4), 0.9, 0.2, 0.1)  # job 0 surges
    ctx = ctx_builder.snap()
    np.testing.assert_array_equal(policy.select(ctx), np.arange(0, 4))


def test_hybrid_stays_mpc_below_threshold(ctx_builder):
    policy = make_policy("hybrid", rate_threshold=0.5)  # very high bar
    state = ctx_builder.cluster.state
    ctx_builder.snap()
    state.set_load(np.arange(0, 4), 0.5, 0.2, 0.1)  # mild rise only
    ctx = ctx_builder.snap()
    np.testing.assert_array_equal(policy.select(ctx), np.arange(4, 10))


def test_hybrid_validation():
    with pytest.raises(PolicyError):
        make_policy("hybrid", rate_threshold=-1.0)
