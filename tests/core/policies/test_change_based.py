"""Unit tests for HRI and HRI-C (§IV.B)."""

import numpy as np
import pytest

from repro.core.policies import make_policy


def test_hri_empty_on_first_cycle(ctx_builder):
    """No previous snapshot ⇒ no rates ⇒ empty selection."""
    ctx = ctx_builder.snap()
    assert ctx.previous is None
    assert len(make_policy("hri").select(ctx)) == 0


def test_hri_targets_fastest_riser(ctx_builder):
    state = ctx_builder.cluster.state
    ctx_builder.snap()  # snapshot t-1
    # Job 0 surges from 0.3 to 0.9 utilisation; others unchanged.
    state.set_load(np.arange(0, 4), 0.9, 0.2, 0.1)
    ctx = ctx_builder.snap()
    selection = make_policy("hri").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 4))


def test_hri_rates_are_relative(ctx_builder):
    """A small absolute rise of a light job outranks a smaller relative
    rise of a heavy job: rates are normalised by P^{t-1}(J)."""
    state = ctx_builder.cluster.state
    ctx_builder.snap()
    # Job 0 (light): +0.3 util. Job 1 (heavy): +0.05 util.
    state.set_load(np.arange(0, 4), 0.6, 0.2, 0.1)
    state.set_load(np.arange(4, 10), 0.95, 0.5, 0.3)
    ctx = ctx_builder.snap()
    rates = ctx.job_increase_rates()
    assert rates[0] > rates[1]
    selection = make_policy("hri").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 4))


def test_hri_falls_through_undegradable_riser(ctx_builder):
    state = ctx_builder.cluster.state
    state.set_levels(np.arange(0, 4), 0)  # job 0 cannot degrade
    ctx_builder.snap()
    state.set_load(np.arange(0, 4), 0.9, 0.2, 0.1)  # job 0 surges anyway
    state.set_load(np.arange(10, 14), 0.7, 0.4, 0.2)  # job 2 rises a bit
    ctx = ctx_builder.snap()
    selection = make_policy("hri").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(10, 14))


def test_hri_job_appearing_between_snapshots_has_no_rate(ctx_builder):
    state = ctx_builder.cluster.state
    ctx_builder.snap()
    state.assign_job(np.array([14, 15]), 9)  # new job after t-1
    state.set_load(np.array([14, 15]), 0.99, 0.5, 0.3)
    ctx = ctx_builder.snap()
    assert 9 not in ctx.job_increase_rates()


def test_hric_accumulates_risers(ctx_builder):
    state = ctx_builder.cluster.state
    ctx_builder.snap()
    # Two risers: job 0 fastest, job 2 second.
    state.set_load(np.arange(0, 4), 0.9, 0.2, 0.1)
    state.set_load(np.arange(10, 14), 0.75, 0.4, 0.2)
    probe = ctx_builder.snap()
    s0 = probe.savings_of_job(0)
    # Deficit beyond job 0's savings forces job 2 into the collection.
    # (Rebuild the same situation for a fresh context.)
    state.set_load(np.arange(0, 4), 0.3, 0.2, 0.1)
    state.set_load(np.arange(10, 14), 0.6, 0.4, 0.2)
    ctx_builder.snap()
    state.set_load(np.arange(0, 4), 0.9, 0.2, 0.1)
    state.set_load(np.arange(10, 14), 0.75, 0.4, 0.2)
    ctx = ctx_builder.snap(system_power=4000.0 + 1.5 * s0, p_low=4000.0)
    selection = make_policy("hri-c").select(ctx)
    expected = np.concatenate([np.arange(0, 4), np.arange(10, 14)])
    np.testing.assert_array_equal(selection, expected)


def test_hric_small_deficit_single_riser(ctx_builder):
    state = ctx_builder.cluster.state
    ctx_builder.snap()
    state.set_load(np.arange(0, 4), 0.9, 0.2, 0.1)
    ctx = ctx_builder.snap(system_power=4000.1, p_low=4000.0)
    selection = make_policy("hri-c").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 4))


def test_hric_empty_without_previous(ctx_builder):
    ctx = ctx_builder.snap()
    assert len(make_policy("hri-c").select(ctx)) == 0


def test_hri_ties_break_deterministically(ctx_builder):
    """Unchanged loads give every job the same (zero) rate; the lowest
    job id with degradable nodes is picked."""
    ctx_builder.snap()
    ctx = ctx_builder.snap()
    rates = ctx.job_increase_rates()
    assert all(abs(r) < 1e-12 for r in rates.values())
    selection = make_policy("hri").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 4))
