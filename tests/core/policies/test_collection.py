"""Unit tests for MPC-C (Algorithm 2) and LPC-C."""

import numpy as np
import pytest

from repro.core.policies import make_policy


def test_mpcc_small_deficit_one_job(ctx_builder):
    """A deficit the heaviest job covers alone ⇒ only its nodes."""
    ctx = ctx_builder.snap(system_power=4000.1, p_low=4000.0)
    selection = make_policy("mpc-c").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(4, 10))


def test_mpcc_accumulates_until_deficit_covered(ctx_builder):
    """Deficit bigger than job 1's savings ⇒ job 2 joins the collection."""
    probe = ctx_builder.snap()
    s1 = probe.savings_of_job(1)
    s2 = probe.savings_of_job(2)
    deficit = s1 + 0.5 * s2  # job 1 alone insufficient; jobs 1+2 suffice
    ctx = ctx_builder.snap(system_power=4000.0 + deficit, p_low=4000.0)
    selection = make_policy("mpc-c").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(4, 14))


def test_mpcc_collects_everything_for_huge_deficit(ctx_builder):
    ctx = ctx_builder.snap(system_power=9e9, p_low=4000.0)
    selection = make_policy("mpc-c").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 14))


def test_lpcc_accumulates_from_light_end(ctx_builder):
    probe = ctx_builder.snap()
    s0 = probe.savings_of_job(0)
    deficit = s0 * 1.5  # job 0 insufficient alone ⇒ job 2 joins
    ctx = ctx_builder.snap(system_power=4000.0 + deficit, p_low=4000.0)
    selection = make_policy("lpc-c").select(ctx)
    expected = np.concatenate([np.arange(0, 4), np.arange(10, 14)])
    np.testing.assert_array_equal(selection, expected)


def test_lpcc_small_deficit_lightest_only(ctx_builder):
    ctx = ctx_builder.snap(system_power=4000.1, p_low=4000.0)
    selection = make_policy("lpc-c").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(0, 4))


def test_collection_skips_undegradable_jobs(ctx_builder):
    ctx_builder.cluster.state.set_levels(np.arange(4, 10), 0)  # job 1 at floor
    ctx = ctx_builder.snap(system_power=9e9, p_low=4000.0)
    selection = make_policy("mpc-c").select(ctx)
    expected = np.concatenate([np.arange(0, 4), np.arange(10, 14)])
    np.testing.assert_array_equal(selection, expected)


def test_collection_empty_without_jobs(small_cluster):
    from tests.core.conftest import ContextBuilder

    ctx = ContextBuilder(small_cluster).snap()
    assert len(make_policy("mpc-c").select(ctx)) == 0
    assert len(make_policy("lpc-c").select(ctx)) == 0


def test_collection_zero_deficit_still_selects_one_job(ctx_builder):
    """In the yellow state the deficit may be 0⁺ (P barely above P_L);
    Algorithm 2's loop body runs once before the Saved >= P−P_L check,
    so one job is still throttled."""
    ctx = ctx_builder.snap(system_power=3999.0, p_low=4000.0)  # deficit 0
    selection = make_policy("mpc-c").select(ctx)
    np.testing.assert_array_equal(selection, np.arange(4, 10))


def test_selection_sorted_and_unique(ctx_builder):
    ctx = ctx_builder.snap(system_power=9e9, p_low=4000.0)
    for name in ("mpc-c", "lpc-c"):
        sel = make_policy(name).select(ctx)
        assert np.all(np.diff(sel) > 0)
