"""Unit tests for the thermal model and reliability accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power import ReliabilityTracker, ThermalModel, failure_rate_multiplier


def test_starts_at_ambient():
    model = ThermalModel(4, ambient_c=25.0)
    np.testing.assert_allclose(model.temperature_c, 25.0)


def test_steady_state_linear_in_power():
    model = ThermalModel(2, ambient_c=22.0, thermal_resistance_c_per_w=0.1)
    ss = model.steady_state(np.array([100.0, 300.0]))
    np.testing.assert_allclose(ss, [32.0, 52.0])


def test_relaxation_towards_steady_state():
    model = ThermalModel(1, time_constant_s=100.0)
    power = np.array([300.0])
    t0 = model.temperature_c[0]
    model.step(power, dt=100.0)  # one time constant
    t_ss = model.steady_state(power)[0]
    # After one tau the gap closes by 1 - 1/e ≈ 63%.
    expected = t_ss + (t0 - t_ss) * np.exp(-1.0)
    assert model.temperature_c[0] == pytest.approx(expected)


def test_step_converges_to_steady_state():
    model = ThermalModel(1, time_constant_s=50.0)
    power = np.array([250.0])
    for _ in range(100):
        model.step(power, dt=10.0)
    assert model.temperature_c[0] == pytest.approx(model.steady_state(power)[0], abs=0.01)


def test_exact_update_independent_of_substepping():
    """The exponential update is exact: one 100 s step equals ten 10 s
    steps (a property the trapezoid-style update would not have)."""
    a = ThermalModel(1, time_constant_s=77.0)
    b = ThermalModel(1, time_constant_s=77.0)
    power = np.array([310.0])
    a.step(power, 100.0)
    for _ in range(10):
        b.step(power, 10.0)
    assert a.temperature_c[0] == pytest.approx(b.temperature_c[0], rel=1e-12)


def test_settle_and_reset():
    model = ThermalModel(3)
    model.settle(np.array([200.0, 300.0, 160.0]))
    assert model.temperature_c[1] > model.temperature_c[2]
    model.reset()
    np.testing.assert_allclose(model.temperature_c, model.ambient_c)


def test_realistic_blade_temperatures():
    model = ThermalModel(1)
    idle = model.steady_state(np.array([160.0]))[0]
    busy = model.steady_state(np.array([340.0]))[0]
    assert 40.0 < idle < 55.0
    assert 65.0 < busy < 85.0


def test_thermal_validation():
    with pytest.raises(ConfigurationError):
        ThermalModel(0)
    with pytest.raises(ConfigurationError):
        ThermalModel(1, thermal_resistance_c_per_w=0.0)
    with pytest.raises(ConfigurationError):
        ThermalModel(1, time_constant_s=0.0)
    model = ThermalModel(2)
    with pytest.raises(ConfigurationError):
        model.step(np.array([100.0]), 1.0)  # shape mismatch
    with pytest.raises(ConfigurationError):
        model.step(np.array([100.0, 100.0]), 0.0)


def test_failure_rate_doubling_law():
    assert failure_rate_multiplier(50.0) == pytest.approx(1.0)
    assert failure_rate_multiplier(60.0) == pytest.approx(2.0)
    assert failure_rate_multiplier(70.0) == pytest.approx(4.0)
    assert failure_rate_multiplier(40.0) == pytest.approx(0.5)
    arr = failure_rate_multiplier(np.array([50.0, 60.0]))
    np.testing.assert_allclose(arr, [1.0, 2.0])


def test_reliability_tracker_accumulates():
    tracker = ReliabilityTracker(base_rate_per_node_hour=1.0, reference_c=50.0)
    temps = np.full(10, 50.0)
    tracker.accumulate(temps, dt=3600.0)  # 10 node-hours at reference
    assert tracker.expected_failures == pytest.approx(10.0)
    assert tracker.mean_rate_multiplier() == pytest.approx(1.0)


def test_reliability_hotter_means_more_failures():
    cool = ReliabilityTracker(base_rate_per_node_hour=1.0)
    hot = ReliabilityTracker(base_rate_per_node_hour=1.0)
    cool.accumulate(np.full(4, 50.0), 3600.0)
    hot.accumulate(np.full(4, 60.0), 3600.0)
    assert hot.expected_failures == pytest.approx(2 * cool.expected_failures)
    assert hot.peak_temperature_c == 60.0


def test_reliability_validation():
    with pytest.raises(ConfigurationError):
        ReliabilityTracker(base_rate_per_node_hour=0.0)
    tracker = ReliabilityTracker()
    with pytest.raises(ConfigurationError):
        tracker.accumulate(np.array([50.0]), 0.0)
    assert tracker.mean_rate_multiplier() == 0.0
