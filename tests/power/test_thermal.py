"""Unit tests for the thermal model and reliability accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power import ReliabilityTracker, ThermalModel, failure_rate_multiplier


def test_starts_at_ambient():
    model = ThermalModel(4, ambient_c=25.0)
    np.testing.assert_allclose(model.temperature_c, 25.0)


def test_steady_state_linear_in_power():
    model = ThermalModel(2, ambient_c=22.0, thermal_resistance_c_per_w=0.1)
    ss = model.steady_state(np.array([100.0, 300.0]))
    np.testing.assert_allclose(ss, [32.0, 52.0])


def test_relaxation_towards_steady_state():
    model = ThermalModel(1, time_constant_s=100.0)
    power = np.array([300.0])
    t0 = model.temperature_c[0]
    model.step(power, dt=100.0)  # one time constant
    t_ss = model.steady_state(power)[0]
    # After one tau the gap closes by 1 - 1/e ≈ 63%.
    expected = t_ss + (t0 - t_ss) * np.exp(-1.0)
    assert model.temperature_c[0] == pytest.approx(expected)


def test_step_converges_to_steady_state():
    model = ThermalModel(1, time_constant_s=50.0)
    power = np.array([250.0])
    for _ in range(100):
        model.step(power, dt=10.0)
    assert model.temperature_c[0] == pytest.approx(model.steady_state(power)[0], abs=0.01)


def test_exact_update_independent_of_substepping():
    """The exponential update is exact: one 100 s step equals ten 10 s
    steps (a property the trapezoid-style update would not have)."""
    a = ThermalModel(1, time_constant_s=77.0)
    b = ThermalModel(1, time_constant_s=77.0)
    power = np.array([310.0])
    a.step(power, 100.0)
    for _ in range(10):
        b.step(power, 10.0)
    assert a.temperature_c[0] == pytest.approx(b.temperature_c[0], rel=1e-12)


def test_settle_and_reset():
    model = ThermalModel(3)
    model.settle(np.array([200.0, 300.0, 160.0]))
    assert model.temperature_c[1] > model.temperature_c[2]
    model.reset()
    np.testing.assert_allclose(model.temperature_c, model.ambient_c)


def test_realistic_blade_temperatures():
    model = ThermalModel(1)
    idle = model.steady_state(np.array([160.0]))[0]
    busy = model.steady_state(np.array([340.0]))[0]
    assert 40.0 < idle < 55.0
    assert 65.0 < busy < 85.0


def test_thermal_validation():
    with pytest.raises(ConfigurationError):
        ThermalModel(0)
    with pytest.raises(ConfigurationError):
        ThermalModel(1, thermal_resistance_c_per_w=0.0)
    with pytest.raises(ConfigurationError):
        ThermalModel(1, time_constant_s=0.0)
    model = ThermalModel(2)
    with pytest.raises(ConfigurationError):
        model.step(np.array([100.0]), 1.0)  # shape mismatch
    with pytest.raises(ConfigurationError):
        model.step(np.array([100.0, 100.0]), 0.0)


def test_failure_rate_doubling_law():
    assert failure_rate_multiplier(50.0) == pytest.approx(1.0)
    assert failure_rate_multiplier(60.0) == pytest.approx(2.0)
    assert failure_rate_multiplier(70.0) == pytest.approx(4.0)
    assert failure_rate_multiplier(40.0) == pytest.approx(0.5)
    arr = failure_rate_multiplier(np.array([50.0, 60.0]))
    np.testing.assert_allclose(arr, [1.0, 2.0])


def test_reliability_tracker_accumulates():
    tracker = ReliabilityTracker(base_rate_per_node_hour=1.0, reference_c=50.0)
    temps = np.full(10, 50.0)
    tracker.accumulate(temps, dt=3600.0)  # 10 node-hours at reference
    assert tracker.expected_failures == pytest.approx(10.0)
    assert tracker.mean_rate_multiplier() == pytest.approx(1.0)


def test_reliability_hotter_means_more_failures():
    cool = ReliabilityTracker(base_rate_per_node_hour=1.0)
    hot = ReliabilityTracker(base_rate_per_node_hour=1.0)
    cool.accumulate(np.full(4, 50.0), 3600.0)
    hot.accumulate(np.full(4, 60.0), 3600.0)
    assert hot.expected_failures == pytest.approx(2 * cool.expected_failures)
    assert hot.peak_temperature_c == 60.0


def test_reliability_validation():
    with pytest.raises(ConfigurationError):
        ReliabilityTracker(base_rate_per_node_hour=0.0)
    tracker = ReliabilityTracker()
    with pytest.raises(ConfigurationError):
        tracker.accumulate(np.array([50.0]), 0.0)
    assert tracker.mean_rate_multiplier() == 0.0


# ----------------------------------------------------------------------
# Branch breakers: trip-integral edge cases
# ----------------------------------------------------------------------
def _breaker(**overrides):
    from repro.power import BreakerThermalModel

    kwargs = dict(
        rated_w=np.array([100.0, 100.0]),
        trip_time_s=60.0,
        cool_time_s=300.0,
        cooldown_fraction=0.9,
    )
    kwargs.update(overrides)
    return BreakerThermalModel(**kwargs)


def test_breaker_exactly_rated_load_holds_the_integral():
    brk = _breaker()
    # Preheat branch 0 to u = 0.5 with a 2x overload for 30 s.
    brk.step(np.array([200.0, 0.0]), 30.0)
    assert brk.trip_integral[0] == pytest.approx(0.5)
    # Exactly-rated load sits in the hysteresis band: no heat, no cool.
    for _ in range(10):
        brk.step(np.array([100.0, 100.0]), 60.0)
    np.testing.assert_allclose(brk.trip_integral, [0.5, 0.0])
    assert not brk.tripped.any()


def test_breaker_no_cooling_inside_hysteresis_band():
    brk = _breaker()
    brk.step(np.array([200.0, 200.0]), 30.0)
    # 90 W = cooldown_fraction * rated: the band is inclusive at its
    # lower edge, so the integral still holds.
    brk.step(np.array([90.0, 95.0]), 600.0)
    np.testing.assert_allclose(brk.trip_integral, [0.5, 0.5])


def test_breaker_cools_below_the_band():
    brk = _breaker()
    brk.step(np.array([200.0, 200.0]), 30.0)
    brk.step(np.array([50.0, 50.0]), 150.0)  # half of cool_time_s
    np.testing.assert_allclose(brk.trip_integral, [0.0, 0.0])
    # Cooling clamps at zero rather than going negative.
    brk.step(np.array([0.0, 0.0]), 10_000.0)
    np.testing.assert_allclose(brk.trip_integral, [0.0, 0.0])


def test_breaker_inverse_time_characteristic():
    # A 2x overload trips in trip_time_s; a 1.5x overload needs twice
    # that exposure.
    fast = _breaker(rated_w=np.array([100.0]))
    slow = _breaker(rated_w=np.array([100.0]))
    assert fast.step(np.array([200.0]), 60.0).any()
    assert not slow.step(np.array([150.0]), 60.0).any()
    assert slow.step(np.array([150.0]), 60.0).any()


def test_breaker_latches_open_and_never_retrips():
    brk = _breaker(rated_w=np.array([100.0]))
    first = brk.step(np.array([300.0]), 60.0)
    assert first.any() and brk.trip_count == 1
    assert brk.trip_integral[0] == 1.0  # clamped at the latch
    # Further overload on an open breaker: no re-trip, no extra heat.
    again = brk.step(np.array([300.0]), 60.0)
    assert not again.any()
    assert brk.trip_count == 1
    assert brk.trip_integral[0] == 1.0
    # Nor does a cold interval drain a latched breaker.
    brk.step(np.array([0.0]), 10_000.0)
    assert brk.tripped[0]


def test_breaker_reset_subset_and_all():
    brk = _breaker()
    brk.step(np.array([300.0, 300.0]), 60.0)
    assert brk.tripped.all()
    brk.reset(np.array([1]))
    np.testing.assert_array_equal(brk.tripped, [True, False])
    assert brk.trip_integral[1] == 0.0
    brk.reset()
    assert not brk.tripped.any()
    assert brk.trip_count == 2  # counter is cumulative across resets


def test_breaker_reset_rejects_out_of_range_ids():
    brk = _breaker()
    with pytest.raises(ConfigurationError):
        brk.reset(np.array([5]))


@pytest.mark.parametrize(
    "overrides",
    [
        {"rated_w": np.array([[100.0]])},
        {"rated_w": np.array([100.0, -1.0])},
        {"trip_time_s": 0.0},
        {"cool_time_s": -1.0},
        {"cooldown_fraction": 0.0},
        {"cooldown_fraction": 1.5},
    ],
)
def test_breaker_invalid_config_rejected(overrides):
    with pytest.raises(ConfigurationError):
        _breaker(**overrides)


def test_breaker_step_validation():
    brk = _breaker()
    with pytest.raises(ConfigurationError):
        brk.step(np.array([0.0, 0.0]), 0.0)
    with pytest.raises(ConfigurationError):
        brk.step(np.array([0.0]), 1.0)
