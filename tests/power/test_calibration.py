"""Unit tests for power-model calibration (least-squares coefficient fit)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PowerManagementError
from repro.power import (
    CalibrationSample,
    fit_power_tables,
    synthesize_samples,
)
from repro.power.calibration import MIN_SAMPLES_PER_LEVEL


def test_sample_validation():
    with pytest.raises(ConfigurationError):
        CalibrationSample(-1, 0.5, 0.5, 0.5, 100.0)
    with pytest.raises(ConfigurationError):
        CalibrationSample(0, 1.5, 0.5, 0.5, 100.0)
    with pytest.raises(ConfigurationError):
        CalibrationSample(0, 0.5, 0.5, 0.5, -1.0)


def test_noiseless_fit_recovers_exact_coefficients(power_model):
    rng = np.random.default_rng(0)
    campaign = synthesize_samples(power_model, rng, samples_per_level=16)
    fitted = fit_power_tables(campaign, power_model.spec.num_levels)
    assert fitted.max_error_against(power_model) < 1e-6
    assert np.all(fitted.rmse_w < 1e-8)
    assert np.all(fitted.samples == 16)


def test_noisy_fit_recovers_approximately(power_model):
    rng = np.random.default_rng(1)
    campaign = synthesize_samples(
        power_model, rng, samples_per_level=400, noise_std_w=3.0
    )
    fitted = fit_power_tables(campaign, power_model.spec.num_levels)
    # 3 W meter noise over 400 samples/level: coefficients within ~2 W.
    assert fitted.max_error_against(power_model) < 2.0
    assert np.all(fitted.rmse_w < 4.0)


def test_fitted_tables_evaluate_like_model(power_model):
    rng = np.random.default_rng(2)
    campaign = synthesize_samples(power_model, rng, samples_per_level=16)
    fitted = fit_power_tables(campaign, power_model.spec.num_levels)
    for level in (0, 5, 9):
        truth = power_model.evaluate(level, 0.7, 0.4, 0.2)
        assert fitted.evaluate(level, 0.7, 0.4, 0.2) == pytest.approx(truth, abs=1e-6)
    vec = fitted.evaluate(
        np.array([0, 9]), np.array([0.5, 0.5]), np.array([0.3, 0.3]), np.array([0.1, 0.1])
    )
    assert vec.shape == (2,)


def test_fitted_evaluate_rejects_bad_level(power_model):
    rng = np.random.default_rng(3)
    campaign = synthesize_samples(power_model, rng, samples_per_level=16)
    fitted = fit_power_tables(campaign, power_model.spec.num_levels)
    with pytest.raises(PowerManagementError):
        fitted.evaluate(99, 0.5, 0.5, 0.5)


def test_fit_requires_enough_samples(power_model):
    rng = np.random.default_rng(4)
    campaign = synthesize_samples(power_model, rng, samples_per_level=16)
    short = [s for s in campaign if not (s.level == 3 and campaign.index(s) % 2)]
    # Remove most level-3 samples to go below the minimum.
    short = [s for s in campaign if s.level != 3][: 9 * 16]
    short += [s for s in campaign if s.level == 3][: MIN_SAMPLES_PER_LEVEL - 1]
    with pytest.raises(ConfigurationError):
        fit_power_tables(short, power_model.spec.num_levels)


def test_fit_rejects_degenerate_campaign():
    # All loads identical ⇒ design matrix rank < 4.
    samples = [
        CalibrationSample(0, 0.5, 0.5, 0.5, 200.0) for _ in range(20)
    ]
    with pytest.raises(ConfigurationError):
        fit_power_tables(samples, 1)


def test_fit_rejects_out_of_range_level():
    samples = [CalibrationSample(5, 0.5, 0.5, 0.5, 200.0)]
    with pytest.raises(ConfigurationError):
        fit_power_tables(samples, 2)


def test_synthesize_validation(power_model):
    rng = np.random.default_rng(5)
    with pytest.raises(ConfigurationError):
        synthesize_samples(power_model, rng, samples_per_level=2)
    with pytest.raises(ConfigurationError):
        synthesize_samples(power_model, rng, noise_std_w=-1.0)


def test_max_error_level_mismatch(power_model):
    rng = np.random.default_rng(6)
    campaign = [s for s in synthesize_samples(power_model, rng, 16) if s.level < 5]
    fitted = fit_power_tables(campaign, 5)
    with pytest.raises(PowerManagementError):
        fitted.max_error_against(power_model)
