"""Direct coverage of :class:`HeterogeneousPowerModel`'s per-level tables.

The model's coefficient lookup is two-dimensional
(``table[spec_index, level]``); these tests pin that each node type is
priced from its *own* per-level table, that levels are validated and
clipped where the interface promises, and that broadcasting yields the
``(L, N)`` matrices the budget-partition baseline relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power import HeterogeneousPowerModel, PowerModel, make_power_model

from tests.cluster.test_heterogeneous import hetero_cluster  # noqa: F401 (fixture)


def test_per_level_tables_match_each_types_own_model(hetero_cluster):
    """Every (type, level) cell prices exactly as that type's PowerModel."""
    model = HeterogeneousPowerModel(hetero_cluster.state)
    per_spec = [PowerModel(s) for s in hetero_cluster.state.specs]
    top = hetero_cluster.spec.top_level
    for node_id, spec_model in ((2, per_spec[0]), (10, per_spec[1])):
        for level in range(top + 1):
            got = model.evaluate_for_nodes(
                np.array([node_id]), level, 0.7, 0.4, 0.2
            )
            expected = spec_model.evaluate(level, 0.7, 0.4, 0.2)
            assert got[0] == expected


def test_level_out_of_range_is_rejected(hetero_cluster):
    model = HeterogeneousPowerModel(hetero_cluster.state)
    top = hetero_cluster.spec.top_level
    with pytest.raises(ConfigurationError, match="level"):
        model.evaluate_for_nodes(np.array([0]), top + 1, 0.5, 0.5, 0.5)
    with pytest.raises(ConfigurationError, match="level"):
        model.evaluate_for_nodes(np.array([0]), -1, 0.5, 0.5, 0.5)


def test_empty_ids_evaluate_to_empty(hetero_cluster):
    model = HeterogeneousPowerModel(hetero_cluster.state)
    out = model.evaluate_for_nodes(
        np.array([], dtype=np.int64), np.array([], dtype=np.int64), 0.5, 0.5, 0.5
    )
    assert out.shape == (0,)


def test_broadcast_levels_give_level_by_node_matrix(hetero_cluster):
    """(L, 1) levels × (N,) ids → (L, N), column per node, row per level."""
    model = HeterogeneousPowerModel(hetero_cluster.state)
    ids = np.array([0, 8])  # one node of each type
    levels = np.arange(3)[:, None]
    grid = model.evaluate_for_nodes(ids, levels, 0.8, 0.3, 0.1)
    assert grid.shape == (3, 2)
    for row, level in enumerate(range(3)):
        expected = model.evaluate_for_nodes(ids, level, 0.8, 0.3, 0.1)
        np.testing.assert_array_equal(grid[row], expected)


def test_power_at_level_clips_hypothetical_levels(hetero_cluster):
    state = hetero_cluster.state
    model = HeterogeneousPowerModel(state)
    ids = np.array([0, 8])
    top = hetero_cluster.spec.top_level
    over = model.power_at_level(state, ids, top + 5)
    at_top = model.power_at_level(state, ids, top)
    np.testing.assert_array_equal(over, at_top)
    under = model.power_at_level(state, ids, -3)
    at_zero = model.power_at_level(state, ids, 0)
    np.testing.assert_array_equal(under, at_zero)


def test_degrade_savings_is_current_minus_one_level(hetero_cluster):
    state = hetero_cluster.state
    state.set_load(np.arange(16), cpu_util=0.9, mem_frac=0.5, nic_frac=0.2)
    model = HeterogeneousPowerModel(state)
    ids = np.arange(16)
    savings = model.degrade_savings(state, ids)
    current = model.power_at_level(state, ids, state.level[ids])
    lower = model.power_at_level(
        state, ids, np.maximum(state.level[ids] - 1, 0)
    )
    np.testing.assert_array_equal(savings, current - lower)
    assert (savings > 0).all()  # everyone starts at the top level
    # A node already at the floor has nothing left to give.
    state.set_level(np.array([3]), 0)
    assert model.degrade_savings(state, np.array([3]))[0] == 0.0


def test_node_power_uses_each_types_table(hetero_cluster):
    state = hetero_cluster.state
    state.set_load(np.arange(16), cpu_util=0.8, mem_frac=0.4, nic_frac=0.2)
    model = HeterogeneousPowerModel(state)
    per_node = model.node_power(state)
    assert per_node.shape == (16,)
    # Same load, same level — but the low-power blades (8..15) are cheaper.
    assert (per_node[:8] > per_node[8:]).all()


def test_mismatched_ladder_depth_is_rejected(hetero_cluster):
    state = hetero_cluster.state
    shallow = state.specs[0].__class__  # NodeSpec; rebuild with fewer levels
    from repro.cluster import DvfsTable, MemorySpec, NicSpec
    from repro.cluster.cpu import ProcessorSpec
    from repro.units import gib

    cpu = ProcessorSpec(
        name="shallow",
        cores=6,
        dvfs=DvfsTable.linear(5, 1.2e9, 2.2e9),
        max_power_w=60.0,
        idle_power_top_w=20.0,
        idle_power_bottom_w=12.0,
    )
    spec = shallow(
        processor=cpu,
        sockets=2,
        memory=MemorySpec(8, gib(4), 2.5, 1.2),
        nic=NicSpec(10e9, 10.0, 6.0),
        board_power_w=50.0,
    )
    state.specs = (state.specs[0], spec)
    with pytest.raises(ConfigurationError, match="ladder"):
        HeterogeneousPowerModel(state)


def test_make_power_model_dispatch(hetero_cluster, small_cluster):
    assert isinstance(make_power_model(hetero_cluster), HeterogeneousPowerModel)
    assert isinstance(make_power_model(small_cluster), PowerModel)
