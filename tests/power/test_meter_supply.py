"""Unit tests for the system power meter and the provision model."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.errors import ConfigurationError
from repro.power import PowerModel, PowerProvision, SystemPowerMeter


# ----------------------------------------------------------------------
# SystemPowerMeter
# ----------------------------------------------------------------------
def test_noiseless_meter_reads_truth(small_cluster):
    model = PowerModel(small_cluster.spec)
    meter = SystemPowerMeter(model, small_cluster.state)
    assert meter.read() == pytest.approx(model.system_power(small_cluster.state))
    assert meter.readings == 1
    assert meter.last_reading == pytest.approx(meter.true_power())


def test_meter_tracks_state_changes(small_cluster):
    model = PowerModel(small_cluster.spec)
    meter = SystemPowerMeter(model, small_cluster.state)
    before = meter.read()
    small_cluster.state.set_load(np.arange(8), 0.9, 0.5, 0.3)
    after = meter.read()
    assert after > before


def test_noisy_meter_varies_around_truth(small_cluster):
    model = PowerModel(small_cluster.spec)
    rng = np.random.default_rng(1)
    meter = SystemPowerMeter(model, small_cluster.state, 0.01, rng)
    truth = meter.true_power()
    samples = np.array([meter.read() for _ in range(500)])
    assert samples.std() > 0
    assert abs(samples.mean() - truth) / truth < 0.005
    assert np.all(samples >= 0)


def test_noisy_meter_requires_rng(small_cluster):
    model = PowerModel(small_cluster.spec)
    with pytest.raises(ConfigurationError):
        SystemPowerMeter(model, small_cluster.state, 0.01, None)


def test_negative_noise_rejected(small_cluster):
    model = PowerModel(small_cluster.spec)
    with pytest.raises(ConfigurationError):
        SystemPowerMeter(model, small_cluster.state, -0.1)


class _ScriptedNormal:
    """np.random.Generator stand-in with a scripted noise stream."""

    def __init__(self, draws):
        self._draws = list(draws)

    def normal(self, loc, scale):
        return self._draws.pop(0)


def test_noise_clamp_boundary_and_counter(small_cluster):
    # Draws land the noise factor below, exactly at, and above zero:
    # only a strictly negative factor is unphysical and clamped.
    model = PowerModel(small_cluster.spec)
    rng = _ScriptedNormal([-1.5, -1.0, 0.5])
    meter = SystemPowerMeter(model, small_cluster.state, 0.5, rng)
    truth = meter.true_power()

    assert meter.read() == 0.0  # factor -0.5: clamped
    assert meter.clamped_readings == 1
    assert meter.read() == 0.0  # factor exactly 0.0: physical, no clamp
    assert meter.clamped_readings == 1
    assert meter.read() == pytest.approx(1.5 * truth)
    assert meter.clamped_readings == 1
    assert meter.readings == 3


def test_noiseless_meter_never_clamps(small_cluster):
    model = PowerModel(small_cluster.spec)
    meter = SystemPowerMeter(model, small_cluster.state)
    for _ in range(5):
        meter.read()
    assert meter.clamped_readings == 0


# ----------------------------------------------------------------------
# PowerProvision
# ----------------------------------------------------------------------
def test_for_cluster_fraction(small_cluster):
    prov = PowerProvision.for_cluster(small_cluster, 0.85)
    assert prov.capability_w == pytest.approx(
        0.85 * small_cluster.theoretical_max_power()
    )


def test_necessity_check(small_cluster):
    prov = PowerProvision.for_cluster(small_cluster, 0.85)
    assert prov.satisfies_necessity(small_cluster)
    over = PowerProvision(capability_w=2 * small_cluster.theoretical_max_power())
    assert not over.satisfies_necessity(small_cluster)


def test_for_cluster_rejects_invalid_fraction(small_cluster):
    with pytest.raises(ConfigurationError):
        PowerProvision.for_cluster(small_cluster, 1.0)
    with pytest.raises(ConfigurationError):
        PowerProvision.for_cluster(small_cluster, 0.0)


def test_controllability_check(small_cluster):
    prov = PowerProvision.for_cluster(small_cluster, 0.85)
    assert prov.satisfies_controllability(small_cluster)
    tiny = PowerProvision(capability_w=small_cluster.minimum_power() * 0.5)
    assert not tiny.satisfies_controllability(small_cluster)


def test_check_assumptions_raises_on_violation(small_cluster):
    tiny = PowerProvision(capability_w=small_cluster.minimum_power() * 0.5)
    with pytest.raises(ConfigurationError):
        tiny.check_assumptions(small_cluster)


def test_throttled_floor_accounts_for_privileged(small_cluster):
    prov = PowerProvision.for_cluster(small_cluster, 0.85)
    floor_all = prov.throttled_floor(small_cluster)
    small_cluster.set_privileged_nodes([0, 1, 2, 3])
    floor_with_privileged = prov.throttled_floor(small_cluster)
    # Privileged nodes count at max power, so the floor rises.
    assert floor_with_privileged > floor_all
    expected = 12 * small_cluster.spec.min_power() + 4 * small_cluster.spec.max_power()
    assert floor_with_privileged == pytest.approx(expected)


def test_headroom(small_cluster):
    prov = PowerProvision(capability_w=1000.0)
    assert prov.headroom(600.0) == pytest.approx(400.0)
    assert prov.headroom(1500.0) == pytest.approx(-500.0)
    assert prov.overspend_threshold_w == pytest.approx(1000.0)


def test_positive_capability_required():
    with pytest.raises(ConfigurationError):
        PowerProvision(capability_w=0.0)
