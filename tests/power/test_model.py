"""Unit tests for the Formula (1) power model."""

import numpy as np
import pytest

from repro.cluster import ClusterState
from repro.errors import ConfigurationError
from repro.power import PowerModel


def test_idle_node_draws_idle_power(power_model, node_spec):
    p = power_model.evaluate(node_spec.top_level, 0.0, 0.0, 0.0)
    assert p == pytest.approx(node_spec.idle_power_per_level[-1])


def test_formula_components_add_linearly(power_model, node_spec):
    l = 5
    base = power_model.evaluate(l, 0.0, 0.0, 0.0)
    cpu_only = power_model.evaluate(l, 0.5, 0.0, 0.0)
    mem_only = power_model.evaluate(l, 0.0, 0.5, 0.0)
    nic_only = power_model.evaluate(l, 0.0, 0.0, 0.5)
    combined = power_model.evaluate(l, 0.5, 0.5, 0.5)
    assert combined == pytest.approx(cpu_only + mem_only + nic_only - 2 * base)
    assert cpu_only - base == pytest.approx(0.5 * node_spec.cpu_dynamic_per_level[l])
    assert mem_only - base == pytest.approx(0.5 * node_spec.mem_dynamic_per_level[l])
    assert nic_only - base == pytest.approx(0.5 * node_spec.nic_dynamic_per_level[l])


def test_full_load_top_level_equals_max_power(power_model, node_spec):
    p = power_model.evaluate(node_spec.top_level, 1.0, 1.0, 1.0)
    assert p == pytest.approx(node_spec.max_power())


def test_power_monotone_in_level(power_model):
    powers = [power_model.evaluate(l, 0.8, 0.5, 0.2) for l in range(10)]
    assert all(b > a for a, b in zip(powers, powers[1:]))


def test_power_monotone_in_utilisation(power_model):
    powers = [power_model.evaluate(9, u, 0.5, 0.2) for u in np.linspace(0, 1, 11)]
    assert all(b > a for a, b in zip(powers, powers[1:]))


def test_evaluate_vectorised_matches_scalar(power_model):
    levels = np.array([0, 4, 9])
    utils = np.array([0.1, 0.5, 0.9])
    vec = power_model.evaluate(levels, utils, 0.3, 0.1)
    for i in range(3):
        assert vec[i] == pytest.approx(
            power_model.evaluate(int(levels[i]), float(utils[i]), 0.3, 0.1)
        )


def test_evaluate_rejects_bad_level(power_model):
    with pytest.raises(ConfigurationError):
        power_model.evaluate(42, 0.5, 0.5, 0.5)


def test_node_power_over_state(power_model, node_spec):
    state = ClusterState(node_spec, 4)
    state.set_load(np.arange(4), 0.5, 0.3, 0.1)
    per_node = power_model.node_power(state)
    assert per_node.shape == (4,)
    expected = power_model.evaluate(node_spec.top_level, 0.5, 0.3, 0.1)
    np.testing.assert_allclose(per_node, expected)


def test_system_power_is_sum(power_model, node_spec):
    state = ClusterState(node_spec, 4)
    assert power_model.system_power(state) == pytest.approx(
        power_model.node_power(state).sum()
    )


def test_power_at_level_what_if(power_model, node_spec):
    state = ClusterState(node_spec, 4)
    state.set_load(np.arange(4), 0.8, 0.5, 0.2)
    ids = np.array([0, 1])
    current = power_model.power_at_level(state, ids, state.level[ids])
    np.testing.assert_allclose(current, power_model.node_power(state)[ids])
    lower = power_model.power_at_level(state, ids, state.level[ids] - 1)
    assert np.all(lower < current)


def test_power_at_level_clips_below_zero(power_model, node_spec):
    state = ClusterState(node_spec, 2, initial_level=0)
    ids = np.array([0])
    lower = power_model.power_at_level(state, ids, np.array([-5]))
    same = power_model.power_at_level(state, ids, np.array([0]))
    np.testing.assert_allclose(lower, same)


def test_degrade_savings_positive_above_bottom(power_model, node_spec):
    state = ClusterState(node_spec, 4)
    state.set_load(np.arange(4), 0.9, 0.5, 0.3)
    savings = power_model.degrade_savings(state, np.arange(4))
    assert np.all(savings > 0)


def test_degrade_savings_zero_at_bottom(power_model, node_spec):
    state = ClusterState(node_spec, 2, initial_level=0)
    savings = power_model.degrade_savings(state, np.arange(2))
    np.testing.assert_allclose(savings, 0.0)


def test_savings_grow_with_utilisation(power_model, node_spec):
    """Degrading a busy node saves more than degrading an idle one —
    the property MPC's job ranking exploits."""
    state = ClusterState(node_spec, 2)
    state.set_load(np.array([0]), 1.0, 0.5, 0.3)
    state.set_load(np.array([1]), 0.1, 0.5, 0.3)
    savings = power_model.degrade_savings(state, np.arange(2))
    assert savings[0] > savings[1]
