"""Estimation and policy plumbing on heterogeneous clusters."""

import numpy as np
import pytest

from repro.core import NodeSets, PowerThresholds
from repro.core.policies import PolicyContext, make_policy
from repro.power import NodePowerEstimator, make_power_model
from repro.telemetry import TelemetryCollector

from tests.cluster.test_heterogeneous import hetero_cluster  # noqa: F401 (fixture)


def test_estimator_requires_ids_to_disambiguate_types(hetero_cluster):
    """With node ids, the estimator prices the same operating point
    differently per node type."""
    estimator = NodePowerEstimator(make_power_model(hetero_cluster))
    level = np.array([9, 9])
    util = np.array([0.8, 0.8])
    mem = np.array([0.4, 0.4])
    nic = np.array([0.1, 0.1])
    powers = estimator.estimate_nodes(level, util, mem, nic, node_ids=np.array([0, 8]))
    assert powers[0] > powers[1]  # Tianhe blade vs low-power blade


def test_estimate_savings_per_type(hetero_cluster):
    estimator = NodePowerEstimator(make_power_model(hetero_cluster))
    level = np.array([9, 9])
    util = np.array([0.9, 0.9])
    savings = estimator.estimate_savings(
        level, util, np.array([0.5, 0.5]), np.array([0.2, 0.2]),
        node_ids=np.array([0, 8]),
    )
    assert savings[0] > savings[1] > 0


def test_policy_context_job_table_is_type_aware(hetero_cluster):
    """Two jobs with identical loads but on different node types rank
    by *watts*, so the hot-blade job is the MPC target."""
    state = hetero_cluster.state
    state.assign_job(np.arange(0, 4), 0)   # hot blades
    state.set_load(np.arange(0, 4), 0.8, 0.4, 0.2)
    state.assign_job(np.arange(8, 12), 1)  # low-power blades, same load
    state.set_load(np.arange(8, 12), 0.8, 0.4, 0.2)

    sets = NodeSets(hetero_cluster)
    collector = TelemetryCollector(state, sets.candidates)
    estimator = NodePowerEstimator(make_power_model(hetero_cluster))
    snapshot = collector.collect(1.0)
    ctx = PolicyContext(
        snapshot, None, estimator, 5000.0,
        PowerThresholds(p_low=4000.0, p_high=6000.0),
    )
    assert ctx.job_table.power_of(0) > ctx.job_table.power_of(1)
    np.testing.assert_array_equal(
        make_policy("mpc").select(ctx), np.arange(0, 4)
    )
    # LPC symmetrically picks the low-power job.
    np.testing.assert_array_equal(
        make_policy("lpc").select(ctx), np.arange(8, 12)
    )


def test_homogeneous_estimator_ignores_ids(estimator):
    level = np.array([9, 5])
    util = np.array([0.5, 0.5])
    mem = np.array([0.3, 0.3])
    nic = np.array([0.1, 0.1])
    with_ids = estimator.estimate_nodes(level, util, mem, nic, node_ids=np.array([3, 7]))
    without = estimator.estimate_nodes(level, util, mem, nic)
    np.testing.assert_allclose(with_ids, without)
