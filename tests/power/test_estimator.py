"""Unit tests for per-node/per-job power estimation."""

import numpy as np
import pytest

from repro.power import NodePowerEstimator


def test_estimate_nodes_matches_model(estimator, power_model):
    levels = np.array([9, 5, 0])
    utils = np.array([0.9, 0.5, 0.1])
    mems = np.array([0.4, 0.3, 0.05])
    nics = np.array([0.2, 0.1, 0.0])
    est = estimator.estimate_nodes(levels, utils, mems, nics)
    expected = power_model.evaluate(levels, utils, mems, nics)
    np.testing.assert_allclose(est, expected)


def test_estimate_savings_zero_at_bottom(estimator):
    savings = estimator.estimate_savings(
        np.array([0, 9]), np.array([0.9, 0.9]), np.array([0.5, 0.5]), np.array([0.2, 0.2])
    )
    assert savings[0] == pytest.approx(0.0)
    assert savings[1] > 0


def test_aggregate_by_job_sums(estimator):
    job_id = np.array([3, 3, 7, -1, 7, 7])
    power = np.array([10.0, 20.0, 5.0, 99.0, 5.0, 5.0])
    table = estimator.aggregate_by_job(job_id, power)
    assert len(table) == 2
    assert table.power_of(3) == pytest.approx(30.0)
    assert table.power_of(7) == pytest.approx(15.0)
    assert 3 in table and 7 in table and -1 not in table


def test_aggregate_excludes_idle(estimator):
    table = estimator.aggregate_by_job(np.array([-1, -1]), np.array([1.0, 2.0]))
    assert len(table) == 0


def test_aggregate_node_counts(estimator):
    table = estimator.aggregate_by_job(
        np.array([1, 1, 1, 2]), np.array([1.0, 1.0, 1.0, 4.0])
    )
    idx = {int(j): int(c) for j, c in zip(table.job_ids, table.node_counts)}
    assert idx == {1: 3, 2: 1}


def test_sorted_by_power_descending_default(estimator):
    table = estimator.aggregate_by_job(
        np.array([1, 2, 3]), np.array([5.0, 50.0, 0.5])
    )
    assert list(table.sorted_by_power()) == [2, 1, 3]
    assert list(table.sorted_by_power(descending=False)) == [3, 1, 2]


def test_sorted_ties_break_by_job_id(estimator):
    table = estimator.aggregate_by_job(
        np.array([5, 3, 9]), np.array([7.0, 7.0, 7.0])
    )
    # Stable sort over ascending job ids, reversed for descending order:
    # ties must produce a deterministic order.
    desc = list(table.sorted_by_power(descending=True))
    asc = list(table.sorted_by_power(descending=False))
    assert sorted(desc) == [3, 5, 9]
    assert desc == list(reversed(asc))


def test_power_of_unknown_job_raises(estimator):
    table = estimator.aggregate_by_job(np.array([1]), np.array([1.0]))
    with pytest.raises(KeyError):
        table.power_of(99)


def test_model_accessor(estimator, power_model):
    assert estimator.model is power_model
