"""CLI behaviour: exit codes, formats, rule selection."""

from __future__ import annotations

import json

import pytest

from tests.lint.conftest import FIXTURES, SRC_REPRO
from tools.reprolint.cli import EXIT_CLEAN, EXIT_DIAGNOSTICS, EXIT_ERROR, main


def test_clean_tree_exits_zero(capsys) -> None:
    assert main([str(SRC_REPRO)]) == EXIT_CLEAN
    assert "clean" in capsys.readouterr().err


def test_fixture_corpus_exits_nonzero(capsys) -> None:
    assert main([str(FIXTURES)]) == EXIT_DIAGNOSTICS
    out = capsys.readouterr().out
    assert "RL101" in out and "RL403" in out


def test_github_format(capsys) -> None:
    bad = FIXTURES / "rl403_bad.py"
    assert main([str(bad), "--format=github"]) == EXIT_DIAGNOSTICS
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines and all(line.startswith("::error") for line in lines)
    assert any("title=reprolint RL403" in line for line in lines)


def test_json_format(capsys) -> None:
    bad = FIXTURES / "rl401_bad.py"
    assert main([str(bad), "--format=json"]) == EXIT_DIAGNOSTICS
    payload = json.loads(capsys.readouterr().out)
    assert {entry["rule"] for entry in payload} == {"RL401"}


def test_select_restricts_rules(capsys) -> None:
    target = str(FIXTURES)
    assert main([target, "--select=RL403"]) == EXIT_DIAGNOSTICS
    out = capsys.readouterr().out
    assert "RL403" in out and "RL101" not in out


def test_ignore_drops_rules(capsys) -> None:
    bad = FIXTURES / "rl403_bad.py"
    assert main([str(bad), "--ignore=RL403"]) == EXIT_CLEAN


def test_unknown_rule_id_is_a_usage_error(capsys) -> None:
    assert main([str(FIXTURES), "--select=RL999"]) == EXIT_ERROR
    assert "RL999" in capsys.readouterr().err


def test_fail_on_error_passes_warning_only_findings(tmp_path, capsys) -> None:
    snippet = tmp_path / "snippet.py"
    snippet.write_text("CAP = 40e3\n")
    assert main([str(snippet)]) == EXIT_DIAGNOSTICS
    capsys.readouterr()
    assert main([str(snippet), "--fail-on=error"]) == EXIT_CLEAN
    capsys.readouterr()
    assert main([str(snippet), "--fail-on=never"]) == EXIT_CLEAN
    capsys.readouterr()


def test_syntax_error_exits_two(tmp_path, capsys) -> None:
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken)]) == EXIT_ERROR
    assert "parse error" in capsys.readouterr().err


def test_statistics_output(capsys) -> None:
    bad = FIXTURES / "rl401_bad.py"
    assert main([str(bad), "--statistics"]) == EXIT_DIAGNOSTICS
    assert "RL401: 3" in capsys.readouterr().out


def test_list_rules(capsys) -> None:
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("RL101", "RL201", "RL301", "RL401"):
        assert rule_id in out


@pytest.mark.parametrize("fmt", ["text", "github"])
def test_module_invocation(fmt) -> None:
    import subprocess
    import sys

    from tests.lint.conftest import REPO_ROOT

    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src/repro", f"--format={fmt}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == EXIT_CLEAN, proc.stdout + proc.stderr
