"""Self-test against the real tree: the analyzer guards the actual
manager wiring, not just synthetic fixtures.

A scratch copy of ``src/repro`` is linted clean, then a deliberate
validator bypass — a raw meter reading fed straight into threshold
learning — is seeded into the copy and must be caught by RL501.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from tests.lint.conftest import SRC_REPRO
from tools.reprolint.runner import run

_BYPASS = '''\
"""Deliberately rogue wiring used by the lint self-test."""

from repro.core.thresholds import ThresholdController
from repro.power.meter import SystemPowerMeter


def sneak_training(meter: SystemPowerMeter, learner: ThresholdController) -> None:
    learner.observe(meter.read())
'''


@pytest.fixture(scope="module")
def scratch_repro(tmp_path_factory) -> Path:
    root = tmp_path_factory.mktemp("selftest") / "repro"
    shutil.copytree(
        SRC_REPRO, root, ignore=shutil.ignore_patterns("__pycache__")
    )
    return root


def test_scratch_copy_is_flow_clean(scratch_repro: Path) -> None:
    result = run([scratch_repro], select=["RL501", "RL502", "RL503", "RL504"])
    assert result.parse_errors == []
    assert result.diagnostics == [], [
        d.format_text() for d in result.diagnostics
    ]


def test_seeded_validator_bypass_is_caught(scratch_repro: Path) -> None:
    rogue = scratch_repro / "core" / "bypass.py"
    rogue.write_text(_BYPASS, encoding="utf-8")
    try:
        result = run([scratch_repro], select=["RL501"])
    finally:
        rogue.unlink()
    findings = [
        d for d in result.diagnostics if d.rule_id == "RL501"
    ]
    assert len(findings) == 1
    assert findings[0].path == str(rogue)
    assert findings[0].line == 8
    assert "ThresholdController.observe" in findings[0].message
