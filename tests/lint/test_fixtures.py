"""The fixture corpus: every rule must flag its bad snippet at exactly
the marked lines, and must stay silent on the good twin."""

from __future__ import annotations

from collections import Counter

import pytest

from tests.lint.conftest import FIXTURES, expected_findings
from tools.reprolint.checkers import all_rules
from tools.reprolint.runner import lint_paths

BAD_FIXTURES = sorted(FIXTURES.rglob("*_bad.py"))
GOOD_FIXTURES = sorted(FIXTURES.rglob("*_good.py"))


def test_corpus_is_complete() -> None:
    """Every rule in the catalogue has one bad and one good fixture."""
    bad_rules = {p.stem.split("_")[0].upper() for p in BAD_FIXTURES}
    good_rules = {p.stem.split("_")[0].upper() for p in GOOD_FIXTURES}
    catalogue = {rule.rule_id for rule in all_rules()}
    assert catalogue <= bad_rules, catalogue - bad_rules
    assert catalogue <= good_rules | {"SUPPRESSED"}, catalogue - good_rules


@pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
def test_bad_fixture_flags_exactly_the_marked_lines(path) -> None:
    expected = expected_findings(path)
    assert expected, f"{path} has no # rl-expect markers"
    diagnostics, parse_errors = lint_paths([path])
    assert parse_errors == []
    found = Counter((d.line, d.rule_id) for d in diagnostics)
    assert found == Counter(expected), (
        f"{path}: expected {sorted(Counter(expected).items())}, "
        f"found {sorted(found.items())}"
    )


@pytest.mark.parametrize("path", GOOD_FIXTURES, ids=lambda p: p.stem)
def test_good_fixture_is_clean(path) -> None:
    diagnostics, parse_errors = lint_paths([path])
    assert parse_errors == []
    assert diagnostics == [], [d.format_text() for d in diagnostics]


def test_whole_corpus_fails_the_gate() -> None:
    """Linting the corpus root is nonzero: the bad files dominate."""
    diagnostics, _ = lint_paths([FIXTURES])
    assert diagnostics, "corpus unexpectedly clean"
    flagged_rules = {d.rule_id for d in diagnostics}
    assert flagged_rules == {rule.rule_id for rule in all_rules()}
