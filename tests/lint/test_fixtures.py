"""The fixture corpus: every rule must flag its bad snippet at exactly
the marked lines, and must stay silent on the good twin.

Per-file rules (RL1xx–RL4xx) have single-file fixtures linted in
isolation; whole-program rules (RL5xx) have multi-file package fixtures
under ``fixtures/flow/`` exercised through the full pipeline in
``test_flow_fixtures.py``.
"""

from __future__ import annotations

from collections import Counter

import pytest

from tests.lint.conftest import FIXTURES, expected_findings
from tools.reprolint.checkers import all_rules
from tools.reprolint.runner import lint_paths, run

FLOW = FIXTURES / "flow"

ALL_BAD = sorted(FIXTURES.rglob("*_bad.py"))
ALL_GOOD = sorted(FIXTURES.rglob("*_good.py"))
#: Single-file fixtures, linted per file; flow fixtures need the project.
BAD_FIXTURES = [p for p in ALL_BAD if FLOW not in p.parents]
GOOD_FIXTURES = [p for p in ALL_GOOD if FLOW not in p.parents]


def test_corpus_is_complete() -> None:
    """Every rule in the catalogue has one bad and one good fixture."""
    bad_rules = {p.stem.split("_")[0].upper() for p in ALL_BAD}
    good_rules = {p.stem.split("_")[0].upper() for p in ALL_GOOD}
    catalogue = {rule.rule_id for rule in all_rules()}
    assert catalogue <= bad_rules, catalogue - bad_rules
    assert catalogue <= good_rules | {"SUPPRESSED"}, catalogue - good_rules


@pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
def test_bad_fixture_flags_exactly_the_marked_lines(path) -> None:
    expected = expected_findings(path)
    assert expected, f"{path} has no # rl-expect markers"
    diagnostics, parse_errors = lint_paths([path])
    assert parse_errors == []
    found = Counter((d.line, d.rule_id) for d in diagnostics)
    assert found == Counter(expected), (
        f"{path}: expected {sorted(Counter(expected).items())}, "
        f"found {sorted(found.items())}"
    )


@pytest.mark.parametrize("path", GOOD_FIXTURES, ids=lambda p: p.stem)
def test_good_fixture_is_clean(path) -> None:
    diagnostics, parse_errors = lint_paths([path])
    assert parse_errors == []
    assert diagnostics == [], [d.format_text() for d in diagnostics]


def test_whole_corpus_fails_the_gate() -> None:
    """Linting the corpus root is nonzero: the bad files dominate.

    The full pipeline (per-file *and* whole-program flow) over the
    entire corpus must produce every rule in the catalogue — no rule's
    bad fixture can silently stop firing.
    """
    result = run([FIXTURES])
    assert result.diagnostics, "corpus unexpectedly clean"
    flagged_rules = {d.rule_id for d in result.diagnostics}
    assert flagged_rules == {rule.rule_id for rule in all_rules()}
