"""Project model: import graph, re-export resolution, summary cache."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from tools.reprolint.project import CACHE_VERSION, ProjectModel, file_hash


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def _tree(root: Path) -> list[Path]:
    """A small project with a cycle, relative imports and re-exports."""
    files = [
        _write(
            root,
            "repro/alpha.py",
            """
            from repro.beta import pong


            def ping(n: int) -> int:
                return pong(n)
            """,
        ),
        _write(
            root,
            "repro/beta.py",
            """
            import repro.alpha


            def pong(n: int) -> int:
                return n


            def echo(n: int) -> int:
                return repro.alpha.ping(n)
            """,
        ),
        _write(
            root,
            "repro/pkg/__init__.py",
            """
            from .mid import Thing
            """,
        ),
        _write(
            root,
            "repro/pkg/mid.py",
            """
            from .impl import Thing

            __all__ = ["Thing"]
            """,
        ),
        _write(
            root,
            "repro/pkg/impl.py",
            """
            class Thing:
                def go(self) -> int:
                    return 1


            def helper() -> int:
                return 2
            """,
        ),
        _write(
            root,
            "repro/pkg/use.py",
            """
            from .impl import helper


            def call() -> int:
                return helper()
            """,
        ),
    ]
    return sorted(files)


def test_import_graph_has_cycle_and_relative_edges(tmp_path: Path) -> None:
    project, errors = ProjectModel.build(_tree(tmp_path))
    assert errors == []
    graph = project.import_graph()
    # The alpha ↔ beta cycle is represented, not collapsed or dropped.
    assert "repro.beta" in graph["repro.alpha"]
    assert "repro.alpha" in graph["repro.beta"]
    # `from .impl import helper` resolves against the module's package.
    assert "repro.pkg.impl" in graph["repro.pkg.use"]
    # A package __init__ is a module named for the package itself.
    assert "repro.pkg.mid" in graph["repro.pkg"]


def test_canonical_follows_reexport_chain(tmp_path: Path) -> None:
    project, _ = ProjectModel.build(_tree(tmp_path))
    # Two hops: pkg/__init__ → pkg.mid → pkg.impl, then stop at the def.
    assert (
        project.canonical("repro.pkg.Thing.go") == "repro.pkg.impl.Thing.go"
    )
    assert project.canonical("repro.pkg.mid.Thing") == "repro.pkg.impl.Thing"
    # Names defined in place and names outside the project pass through.
    assert project.canonical("repro.pkg.impl.Thing") == "repro.pkg.impl.Thing"
    assert project.canonical("numpy.random.default_rng") == (
        "numpy.random.default_rng"
    )


def test_function_ir_resolves_methods_and_constructors(
    tmp_path: Path,
) -> None:
    project, _ = ProjectModel.build(_tree(tmp_path))
    assert project.function_ir("repro.pkg.impl.Thing.go") is not None
    assert project.function_ir("repro.pkg.impl.helper") is not None
    assert project.function_ir("repro.pkg.impl.nope") is None
    assert project.function_ir("not.in.project") is None


def test_cache_warm_run_skips_extraction(tmp_path: Path) -> None:
    files = _tree(tmp_path / "proj")
    cache = tmp_path / "cache.json"
    cold, _ = ProjectModel.build(files, cache_path=cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(files)
    assert cache.exists()

    warm, _ = ProjectModel.build(files, cache_path=cache)
    assert warm.cache_hits == len(files)
    assert warm.cache_misses == 0
    # Decoded summaries are equivalent to freshly extracted ones.
    assert warm.canonical("repro.pkg.Thing.go") == "repro.pkg.impl.Thing.go"
    assert warm.function_ir("repro.beta.pong") is not None
    assert warm.import_graph() == cold.import_graph()


def test_cache_invalidates_only_the_changed_file(tmp_path: Path) -> None:
    files = _tree(tmp_path / "proj")
    cache = tmp_path / "cache.json"
    ProjectModel.build(files, cache_path=cache)

    beta = tmp_path / "proj" / "repro" / "beta.py"
    beta.write_text(
        beta.read_text(encoding="utf-8")
        + "\n\ndef extra(n: int) -> int:\n    return n + 1\n",
        encoding="utf-8",
    )
    project, _ = ProjectModel.build(files, cache_path=cache)
    assert project.cache_misses == 1
    assert project.cache_hits == len(files) - 1
    # The re-extracted summary reflects the new content...
    assert project.function_ir("repro.beta.extra") is not None
    # ...and the rewritten cache carries the new hash.
    stored = json.loads(cache.read_text(encoding="utf-8"))
    assert stored["files"][str(beta)]["hash"] == file_hash(beta.read_bytes())


def test_cache_version_mismatch_discards_wholesale(tmp_path: Path) -> None:
    files = _tree(tmp_path / "proj")
    cache = tmp_path / "cache.json"
    ProjectModel.build(files, cache_path=cache)
    stored = json.loads(cache.read_text(encoding="utf-8"))
    stored["version"] = CACHE_VERSION - 1
    cache.write_text(json.dumps(stored), encoding="utf-8")

    project, _ = ProjectModel.build(files, cache_path=cache)
    assert project.cache_hits == 0
    assert project.cache_misses == len(files)


def test_corrupt_cache_is_ignored_not_fatal(tmp_path: Path) -> None:
    files = _tree(tmp_path / "proj")
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    project, errors = ProjectModel.build(files, cache_path=cache)
    assert errors == []
    assert project.cache_misses == len(files)
    # The bad cache was replaced by a well-formed one.
    assert json.loads(cache.read_text())["version"] == CACHE_VERSION


def test_parse_errors_are_reported_not_fatal(tmp_path: Path) -> None:
    files = _tree(tmp_path / "proj")
    broken = _write(
        tmp_path / "proj", "repro/broken.py", "def oops(:\n    pass\n"
    )
    project, errors = ProjectModel.build(sorted(files + [broken]))
    assert len(errors) == 1
    assert "broken.py" in errors[0]
    assert project.module("repro.alpha") is not None
    assert project.module("repro.broken") is None
