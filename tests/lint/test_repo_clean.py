"""The gate itself: the simulator (and the linter) lint clean.

This is the test that keeps every invariant the rule catalogue encodes —
seeded determinism, SI-unit annotations, fenced actuation, hygiene —
machine-enforced for all future changes to ``src/repro``.
"""

from __future__ import annotations

from tests.lint.conftest import REPO_ROOT, SRC_REPRO
from tools.reprolint.runner import lint_paths


def test_src_repro_lints_clean() -> None:
    diagnostics, parse_errors = lint_paths([SRC_REPRO])
    assert parse_errors == []
    assert diagnostics == [], "\n".join(d.format_text() for d in diagnostics)


def test_reprolint_lints_itself_clean() -> None:
    diagnostics, parse_errors = lint_paths([REPO_ROOT / "tools"])
    assert parse_errors == []
    assert diagnostics == [], "\n".join(d.format_text() for d in diagnostics)
