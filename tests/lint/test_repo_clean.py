"""The gate itself: the simulator (and the linter) lint clean.

This is the test that keeps every invariant the rule catalogue encodes —
seeded determinism, SI-unit annotations, fenced actuation, hygiene —
machine-enforced for all future changes to ``src/repro``.
"""

from __future__ import annotations

import re

from tests.lint.conftest import REPO_ROOT, SRC_REPRO
from tools.reprolint.runner import lint_paths, run


def test_src_repro_lints_clean() -> None:
    """Full pipeline — per-file rules, whole-program flow (RL5xx) and
    suppression-usage accounting — over the shipped package."""
    result = run([SRC_REPRO], warn_unused=True)
    assert result.parse_errors == []
    assert result.diagnostics == [], "\n".join(
        d.format_text() for d in result.diagnostics
    )


def test_src_repro_has_no_flow_suppressions() -> None:
    """Zero ``disable=RL5xx`` comments anywhere in src/: real flow
    violations were fixed at the source, not waved through."""
    pattern = re.compile(r"reprolint:\s*disable[^=]*=\s*[^#\n]*RL5")
    offenders = [
        str(path)
        for path in sorted(SRC_REPRO.rglob("*.py"))
        if pattern.search(path.read_text(encoding="utf-8"))
    ]
    assert offenders == []


def test_reprolint_lints_itself_clean() -> None:
    diagnostics, parse_errors = lint_paths([REPO_ROOT / "tools"])
    assert parse_errors == []
    assert diagnostics == [], "\n".join(d.format_text() for d in diagnostics)
