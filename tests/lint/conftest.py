"""Shared paths and expectation parsing for the lint test suite."""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC_REPRO = REPO_ROOT / "src" / "repro"

# ``tools`` is imported as a top-level package from the repo root (it is
# not installed); make that work no matter where pytest was launched.
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

_EXPECT_RE = re.compile(r"#\s*rl-expect:\s*([A-Z0-9,\s]+)")


def expected_findings(path: Path) -> list[tuple[int, str]]:
    """``(line, rule_id)`` pairs declared by ``# rl-expect:`` markers.

    A marker names every rule expected on its line, repeated ids meaning
    repeated diagnostics (``# rl-expect: RL402, RL402``).
    """
    expected: list[tuple[int, str]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for rule_id in match.group(1).split(","):
            rule_id = rule_id.strip()
            if rule_id:
                expected.append((lineno, rule_id))
    return expected
