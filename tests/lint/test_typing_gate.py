"""The strict-typing half of the gate: mypy --strict and ruff.

Both tools are dev-only dependencies (requirements-dev.txt); when the
environment lacks them the tests skip rather than fail, and CI — which
installs requirements-dev.txt — runs them for real.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

import pytest

from tests.lint.conftest import REPO_ROOT


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


@pytest.mark.skipif(not _have("mypy"), reason="mypy not installed")
def test_mypy_strict_src_repro() -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not _have("ruff"), reason="ruff not installed")
def test_ruff_check() -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tools", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
