"""Whole-program (RL5xx) fixture corpus.

Each ``fixtures/flow/rl5xx_{bad,good}`` directory is a small multi-file
package: sources, sanitizers, sinks and stream handoffs deliberately
split across modules so a finding only exists when the analyzer follows
the project's call graph.  Bad packages must flag exactly the
``# rl-expect`` lines; good twins must be clean under the full pipeline.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

import pytest

from tests.lint.conftest import FIXTURES, expected_findings
from tools.reprolint.runner import run

FLOW = FIXTURES / "flow"
BAD_DIRS = sorted(p for p in FLOW.iterdir() if p.name.endswith("_bad"))
GOOD_DIRS = sorted(p for p in FLOW.iterdir() if p.name.endswith("_good"))


def _expected_in_tree(root: Path) -> Counter:
    expected: Counter = Counter()
    for path in sorted(root.rglob("*.py")):
        for line, rule_id in expected_findings(path):
            expected[(str(path), line, rule_id)] += 1
    return expected


def test_corpus_has_all_flow_rules() -> None:
    assert {p.name for p in BAD_DIRS} == {
        "rl501_bad",
        "rl502_bad",
        "rl503_bad",
        "rl504_bad",
    }
    assert {p.name for p in GOOD_DIRS} == {
        "rl501_good",
        "rl502_good",
        "rl503_good",
        "rl504_good",
    }


@pytest.mark.parametrize("root", BAD_DIRS, ids=lambda p: p.name)
def test_bad_package_flags_exactly_the_marked_lines(root: Path) -> None:
    expected = _expected_in_tree(root)
    assert expected, f"{root} has no # rl-expect markers"
    rule_id = root.name.split("_")[0].upper()
    assert {key[2] for key in expected} == {rule_id}
    result = run([root], select=[rule_id])
    assert result.parse_errors == []
    found = Counter(
        (d.path, d.line, d.rule_id) for d in result.diagnostics
    )
    assert found == expected, (
        f"{root}: expected {sorted(expected.items())}, "
        f"found {sorted(found.items())}"
    )


@pytest.mark.parametrize("root", BAD_DIRS, ids=lambda p: p.name)
def test_bad_package_is_clean_per_file(root: Path) -> None:
    """The violation only exists whole-program: per-file passes see nothing."""
    result = run([root], flow=False)
    assert result.parse_errors == []
    assert result.diagnostics == [], [
        d.format_text() for d in result.diagnostics
    ]


@pytest.mark.parametrize("root", GOOD_DIRS, ids=lambda p: p.name)
def test_good_package_is_clean(root: Path) -> None:
    result = run([root])
    assert result.parse_errors == []
    assert result.diagnostics == [], [
        d.format_text() for d in result.diagnostics
    ]


def test_flow_corpus_linted_together_is_stable() -> None:
    """One project model over every flow package at once: the bad
    packages' findings survive and the good packages stay silent —
    packages are namespaced so summaries cannot cross-contaminate."""
    result = run([FLOW])
    assert result.parse_errors == []
    flagged_paths = {Path(d.path).parts for d in result.diagnostics}
    for parts in flagged_paths:
        assert any(seg.endswith("_bad") for seg in parts), parts
    expected = Counter()
    for root in BAD_DIRS:
        expected += _expected_in_tree(root)
    found = Counter(
        (d.path, d.line, d.rule_id) for d in result.diagnostics
    )
    assert found == expected
