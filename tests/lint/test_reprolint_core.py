"""Unit tests for reprolint's engine: suppressions, import resolution,
module naming, diagnostic formatting."""

from __future__ import annotations

from pathlib import Path

from tools.reprolint.diagnostics import Diagnostic, Severity
from tools.reprolint.runner import lint_source, max_severity
from tools.reprolint.source import ParsedModule, module_name_for_path


class TestSuppressions:
    def test_line_suppression_silences_only_that_rule(self) -> None:
        src = "import time\nT = time.time()  # reprolint: disable=RL102\n"
        assert lint_source(src) == []

    def test_wrong_rule_id_does_not_suppress(self) -> None:
        src = "import time\nT = time.time()  # reprolint: disable=RL101\n"
        diags = lint_source(src)
        assert [d.rule_id for d in diags] == ["RL102"]

    def test_disable_all_keyword(self) -> None:
        src = "import time\nT = time.time()  # reprolint: disable=all\n"
        assert lint_source(src) == []

    def test_file_level_suppression(self) -> None:
        src = (
            "# reprolint: disable-file=RL102\n"
            "import time\n"
            "A = time.time()\n"
            "B = time.time()\n"
        )
        assert lint_source(src) == []

    def test_file_level_suppression_is_rule_scoped(self) -> None:
        src = (
            "# reprolint: disable-file=RL104\n"
            "import time\n"
            "A = time.time()\n"
        )
        assert [d.rule_id for d in lint_source(src)] == ["RL102"]

    def test_multiple_rules_one_comment(self) -> None:
        src = (
            "import time\n"
            "def f(xs: list) -> list:\n"
            "    t = time.time(); return list(set(xs))"
            "  # reprolint: disable=RL102, RL104\n"
        )
        assert lint_source(src) == []


class TestImportResolution:
    def test_aliased_numpy_import(self) -> None:
        src = "import numpy as anp\nG = anp.random.default_rng(0)\n"
        assert [d.rule_id for d in lint_source(src)] == ["RL101"]

    def test_from_import(self) -> None:
        src = "from time import time\nT = time()\n"
        assert [d.rule_id for d in lint_source(src)] == ["RL102"]

    def test_from_import_with_alias(self) -> None:
        src = "from random import choice as pick\nX = pick([1, 2])\n"
        assert [d.rule_id for d in lint_source(src)] == ["RL101"]

    def test_unrelated_names_are_not_confused(self) -> None:
        # A local object with a ``random`` attribute is not the module.
        src = "def f(gen) -> float:\n    return gen.random()\n"
        assert lint_source(src) == []


class TestModuleNaming:
    def test_src_layout(self) -> None:
        path = Path("src/repro/power/meter.py")
        assert module_name_for_path(path) == "repro.power.meter"

    def test_fixture_layout(self) -> None:
        path = Path("tests/lint/fixtures/repro/power/rl201_bad.py")
        assert module_name_for_path(path) == "repro.power.rl201_bad"

    def test_package_init(self) -> None:
        assert module_name_for_path(Path("src/repro/__init__.py")) == "repro"

    def test_bare_file(self) -> None:
        assert module_name_for_path(Path("snippet.py")) == "snippet"

    def test_scoped_rules_do_not_fire_outside_their_packages(self) -> None:
        src = "def f(power_w: float) -> float:\n    return power_w\n"
        assert lint_source(src, path="scratch/snippet.py") == []
        flagged = lint_source(src, path="src/repro/power/snippet.py")
        assert [d.rule_id for d in flagged] == ["RL201"]


class TestDiagnostics:
    DIAG = Diagnostic(
        path="src/repro/x.py",
        line=12,
        column=5,
        rule_id="RL101",
        severity=Severity.ERROR,
        message="bad",
    )

    def test_text_format(self) -> None:
        assert self.DIAG.format_text() == "src/repro/x.py:12:5: error RL101 bad"

    def test_github_format(self) -> None:
        rendered = self.DIAG.format_github()
        assert rendered.startswith("::error ")
        assert "file=src/repro/x.py" in rendered
        assert "line=12" in rendered
        assert rendered.endswith("::bad")

    def test_json_shape(self) -> None:
        assert self.DIAG.as_dict() == {
            "path": "src/repro/x.py",
            "line": 12,
            "column": 5,
            "rule": "RL101",
            "severity": "error",
            "message": "bad",
        }

    def test_max_severity(self) -> None:
        warn = Diagnostic("p", 1, 1, "RL201", Severity.WARNING, "m")
        assert max_severity([]) is None
        assert max_severity([warn]) is Severity.WARNING
        assert max_severity([warn, self.DIAG]) is Severity.ERROR


class TestParsedModule:
    def test_in_package_requires_boundary(self) -> None:
        module = ParsedModule.parse(
            Path("src/repro/power/meter.py"), source="X = 1\n"
        )
        assert module.in_package("repro.power")
        assert module.in_package("repro")
        assert not module.in_package("repro.pow")
