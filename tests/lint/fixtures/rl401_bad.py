"""Bad: mutable default arguments (RL401)."""

from __future__ import annotations


def collect(into: list = []) -> list:  # rl-expect: RL401
    return into


def tag(labels: dict = {}) -> dict:  # rl-expect: RL401
    return labels


def register(*, seen: set = set()) -> set:  # rl-expect: RL401
    return seen
