"""Bad: exact float equality on power/time quantities (RL202)."""

from __future__ import annotations


def same_power(power_w: float, budget_w: float) -> bool:
    return power_w == budget_w  # rl-expect: RL202


def is_fresh(age: float) -> bool:
    return float(age) == 0.0  # rl-expect: RL202


def expired(timeout_s: float, elapsed: float) -> bool:
    return elapsed != timeout_s  # rl-expect: RL202
