"""Good: specific exception types."""

from __future__ import annotations


def parse(value: str) -> int:
    try:
        return int(value)
    except ValueError:
        return 0
