"""Good: a hot-path module that batches node work through numpy.

# reprolint: hot-path
"""

import numpy as np


def system_power(node_power_w: np.ndarray) -> float:
    return float(np.sum(node_power_w))


def sample_all(cpu_util: np.ndarray, ids: np.ndarray) -> np.ndarray:
    return cpu_util[ids].copy()


def per_job_work(jobs: list) -> list:
    # Looping over *jobs* is fine — job count is O(10), not O(cluster).
    return [job.progress_s for job in jobs]


def per_spec_tables(specs: list) -> list:
    out = []
    for spec in specs:
        out.append(spec.idle_power_per_level)
    return out
