"""Bad: RNGs created or drawn outside repro.sim.random (RL101)."""

import random

import numpy as np


def jitter() -> float:
    return random.random()  # rl-expect: RL101


def noise() -> float:
    gen = np.random.default_rng(7)  # rl-expect: RL101
    return float(gen.normal())


def shuffle_ids(ids: list) -> None:
    random.shuffle(ids)  # rl-expect: RL101


def legacy_draw() -> float:
    return float(np.random.uniform())  # rl-expect: RL101
