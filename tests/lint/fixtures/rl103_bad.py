"""Bad: OS entropy sources (RL103)."""

import os
import secrets
import uuid


def token() -> bytes:
    return os.urandom(16)  # rl-expect: RL103


def run_id() -> str:
    return str(uuid.uuid4())  # rl-expect: RL103


def secret() -> str:
    return secrets.token_hex(8)  # rl-expect: RL103
