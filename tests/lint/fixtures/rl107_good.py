"""Good: worker count comes from explicit configuration.

The sweep runner takes ``jobs`` from the caller (CLI ``--jobs N``),
defaults to serial, and only ever uses it to size the pool — results
are keyed and merged by cell key, so scheduling cannot reach them.
"""

from concurrent.futures import ProcessPoolExecutor


def run_cells(cells: list, jobs: int) -> list:
    workers = min(jobs, len(cells))
    if workers <= 1:
        return [cell() for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(cell): index for index, cell in enumerate(cells)}
    ordered = sorted(futures.items(), key=lambda item: item[1])
    return [future.result() for future, _index in ordered]
