"""Bad: bare except clauses (RL403)."""

from __future__ import annotations


def swallow(value: str) -> int:
    try:
        return int(value)
    except:  # rl-expect: RL403
        return 0
