"""Good: magnitudes spelled through the repro.units constructors."""

from repro.units import GIGA, ghz, kw

BANDWIDTH_BYTES_PER_S = 20 * GIGA


def base_frequency() -> float:
    return ghz(2.93)


def cap_watts() -> float:
    return kw(40)


def tolerance() -> float:
    # Small tolerances are not magnitudes; negative exponents are fine.
    return 1e-9
