"""Good: tolerances and ordering comparisons on float quantities."""

from __future__ import annotations

import math


def same_power(power_w: float, budget_w: float, tol_w: float = 1e-9) -> bool:
    return math.isclose(power_w, budget_w, abs_tol=tol_w)


def is_fresh(age: float) -> bool:
    return age <= 0.0


def over_budget(power_w: float, budget_w: float) -> bool:
    return power_w > budget_w
