"""Good: every draw flows from a named RandomSource substream."""

from repro.sim.random import RandomSource


def jitter(rng: RandomSource) -> float:
    stream = rng.stream("fixture.jitter")
    return float(stream.uniform())


def fork_for_repetition(rng: RandomSource, rep: int) -> RandomSource:
    return rng.fork(f"rep.{rep}")
