"""RL501 good twin: readings cross the integrity layer before learning."""

from repro.core.thresholds import ThresholdController
from repro.f501g.sensors import screened_total
from repro.power.meter import SystemPowerMeter


def train(meter: SystemPowerMeter, ctl: ThresholdController) -> None:
    power = screened_total(meter, now=1.0)
    ctl.observe(power)


def feed(ctl: ThresholdController, value: float) -> None:
    ctl.observe(value)


def train_indirect(meter: SystemPowerMeter, ctl: ThresholdController) -> None:
    feed(ctl, screened_total(meter, now=2.0))
