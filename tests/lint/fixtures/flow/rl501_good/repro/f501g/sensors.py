"""Helper module: screens the meter reading through the integrity layer."""

from repro.power.meter import SystemPowerMeter
from repro.telemetry.integrity import screen_metered_power


def screened_total(meter: SystemPowerMeter, now: float) -> float:
    raw = meter.read()
    screened = screen_metered_power(None, raw, lambda: raw, False, now)
    return screened.power_w
