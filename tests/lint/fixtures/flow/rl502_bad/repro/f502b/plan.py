"""Helper module: target lists for the actuation fixtures."""

import numpy as np


def floor_ids(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)
