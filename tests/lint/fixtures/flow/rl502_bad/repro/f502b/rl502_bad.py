"""RL502: actuation outcomes discarded across modules."""

from repro.core.actuator import DvfsActuator
from repro.f502b.plan import floor_ids


def cap(actuator: DvfsActuator, decision) -> None:
    actuator.apply(decision)  # rl-expect: RL502


def blackout(actuator: DvfsActuator, n: int) -> None:
    actuator.release(floor_ids(n), 0)  # rl-expect: RL502
