"""RL502 good twin: every actuation result reaches a status check."""

from repro.core.actuator import DvfsActuator
from repro.f502g.plan import floor_ids


def cap(actuator: DvfsActuator, decision) -> int:
    report = actuator.apply(decision)
    if report.fenced:
        return 0
    return report.effective


def blackout(actuator: DvfsActuator, n: int) -> int:
    written = actuator.release(floor_ids(n), 0)
    return written
