"""Helper module: returns the raw meter reading unscreened."""

from repro.power.meter import SystemPowerMeter


def read_total(meter: SystemPowerMeter) -> float:
    return meter.read()
