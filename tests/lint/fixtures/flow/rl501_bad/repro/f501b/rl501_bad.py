"""RL501: raw telemetry reaches threshold learning across modules."""

from repro.core.thresholds import ThresholdController
from repro.f501b.sensors import read_total
from repro.power.meter import SystemPowerMeter


def train_direct(meter: SystemPowerMeter, ctl: ThresholdController) -> None:
    power = read_total(meter)
    ctl.observe(power)  # rl-expect: RL501


def feed(ctl: ThresholdController, value: float) -> None:
    # Not flagged here: `value` is a parameter, so this function becomes
    # a sink and the violation anchors at the caller that passes raw
    # telemetry in.
    ctl.observe(value)


def train_indirect(meter: SystemPowerMeter, ctl: ThresholdController) -> None:
    feed(ctl, meter.read())  # rl-expect: RL501
