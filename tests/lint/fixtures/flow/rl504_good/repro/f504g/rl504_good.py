"""RL504 good twin: each timeline is only ever compared with itself."""

from repro.f504g.clocks import host_stamp, sim_now
from repro.sim.engine import SimulationEngine


def sim_elapsed(engine: SimulationEngine, start_sim: float) -> float:
    return sim_now(engine) - start_sim


def wall_elapsed() -> float:
    started = host_stamp()
    return host_stamp() - started
