"""RL503: substreams drawn and handed off outside their custody domain."""

from repro.f503b.metering import sample_noise
from repro.sim.random import RandomSource


def wire(source: RandomSource) -> float:
    noise = source.stream("meter.noise")
    jobs = source.stream("workload.jobs")
    first = float(jobs.normal(0.0, 1.0))  # rl-expect: RL503
    second = sample_noise(noise)  # rl-expect: RL503
    return first + second
