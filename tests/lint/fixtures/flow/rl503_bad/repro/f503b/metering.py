"""Helper module in a foreign custody domain: draws from a handed-in stream."""

import numpy as np


def sample_noise(stream: np.random.Generator) -> float:
    return float(stream.normal(0.0, 1.0))
