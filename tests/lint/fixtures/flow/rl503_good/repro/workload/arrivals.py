"""Helper module inside the workload custody domain."""

import numpy as np


def next_arrival(stream: np.random.Generator) -> float:
    return float(stream.exponential(1.0))
