"""RL503 good twin: the workload substream stays in its domain."""

from repro.sim.random import RandomSource
from repro.workload.arrivals import next_arrival


def wire(source: RandomSource) -> float:
    jobs = source.stream("workload.jobs")
    first = float(jobs.exponential(1.0))
    second = next_arrival(jobs)
    return first + second
