"""RL504: sim-clock and host-clock values mixed across modules."""

from repro.f504b.clocks import host_stamp, sim_now
from repro.sim.engine import SimulationEngine


def drift(engine: SimulationEngine) -> float:
    started = host_stamp()
    return sim_now(engine) - started  # rl-expect: RL504


def overdue(engine: SimulationEngine) -> bool:
    return sim_now(engine) > host_stamp()  # rl-expect: RL504
