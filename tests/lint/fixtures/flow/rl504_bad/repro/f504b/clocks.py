"""Helper module: one function per timeline."""

import time

from repro.sim.engine import SimulationEngine


def host_stamp() -> float:
    return time.perf_counter()


def sim_now(engine: SimulationEngine) -> float:
    return engine.now
