"""Bad: __all__ drifted from the module's definitions (RL402)."""

__all__ = ["exists", "ghost"]  # rl-expect: RL402, RL402


def exists() -> int:
    return 1


def orphan() -> int:
    return 2
