"""Bad: host wall-clock reads in simulator code (RL102)."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # rl-expect: RL102


def when() -> str:
    return datetime.now().isoformat()  # rl-expect: RL102


def nanos() -> int:
    return time.time_ns()  # rl-expect: RL102
