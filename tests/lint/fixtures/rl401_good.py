"""Good: None defaults with containers created per call."""

from __future__ import annotations


def collect(into: list | None = None) -> list:
    return [] if into is None else into


def tag(labels: dict | None = None) -> dict:
    return {} if labels is None else labels


def register(*, seen: frozenset = frozenset()) -> frozenset:
    # Immutable defaults are safe to share.
    return seen
