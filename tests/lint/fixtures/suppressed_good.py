"""Good: real violations, explicitly suppressed in place."""

import time

# A deliberate wall-clock read, e.g. for a log header outside the
# simulation path, carries an inline waiver:
STARTED_AT = time.time()  # reprolint: disable=RL102


def materialise(xs: list) -> list:
    return list(set(xs))  # reprolint: disable=RL104
