"""Good: sets are sorted before their order can reach results."""


def walk_sorted() -> list:
    out = []
    for node_id in sorted({3, 1, 2}):
        out.append(node_id)
    return out


def materialise(xs: list) -> list:
    return sorted(set(xs))


def membership_only(xs: list) -> int:
    seen = set(xs)
    return sum(1 for x in xs if x in seen)
