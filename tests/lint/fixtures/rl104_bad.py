"""Bad: set iteration order reaching results (RL104)."""


def walk_literal() -> list:
    out = []
    for node_id in {3, 1, 2}:  # rl-expect: RL104
        out.append(node_id)
    return out


def materialise(xs: list) -> list:
    return list(set(xs))  # rl-expect: RL104


def in_comprehension(xs: list) -> list:
    return [x * 2 for x in set(xs)]  # rl-expect: RL104


def union_order(a: list, b: list) -> list:
    return list(set(a) | set(b))  # rl-expect: RL104
