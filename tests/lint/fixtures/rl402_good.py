"""Good: __all__ and the public surface agree."""

__all__ = ["exists", "helper", "CONSTANT"]

CONSTANT = 7


def exists() -> int:
    return 1


def helper() -> int:
    return 2


def _private() -> int:
    return 3
