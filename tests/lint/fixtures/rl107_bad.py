"""Bad: host CPU topology read in deterministic code (RL107)."""

import multiprocessing
import os

import psutil


def grid_shard_count() -> int:
    # Sweep shape now depends on the machine running it.
    return os.cpu_count() or 1  # rl-expect: RL107


def batch_size() -> int:
    return 4 * multiprocessing.cpu_count()  # rl-expect: RL107


def pinned_workers() -> int:
    return len(os.sched_getaffinity(0))  # rl-expect: RL107


def physical_cores() -> int:
    return psutil.cpu_count(logical=False)  # rl-expect: RL107


def interleave(cells: list) -> list:
    stride = os.process_cpu_count()  # rl-expect: RL107
    return cells[::stride]
