"""Bad: raw scientific-notation magnitude literals (RL203)."""

BANDWIDTH_BYTES_PER_S = 20e9  # rl-expect: RL203


def base_frequency() -> float:
    return 2.93e9  # rl-expect: RL203


def cap_watts() -> float:
    return 40e3  # rl-expect: RL203
