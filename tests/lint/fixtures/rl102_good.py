"""Good: simulated time from the engine; perf_counter for benchmarks."""

import time


def measure(repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        pass
    return time.perf_counter() - start


def simulated_deadline(now: float, period_s: float) -> float:
    return now + period_s
