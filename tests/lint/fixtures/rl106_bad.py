"""Bad: per-node Python loops in a hot-path-marked module (RL106).

# reprolint: hot-path
"""


def system_power(cluster) -> float:
    total = 0.0
    for node in cluster.nodes:  # rl-expect: RL106
        total += node.power_w
    return total


def sample_all(state, node_ids) -> list:
    return [state.cpu_util[i] for i in node_ids]  # rl-expect: RL106


def degrade_each(cluster) -> None:
    for node_id in range(cluster.num_nodes):  # rl-expect: RL106
        cluster.degrade(node_id)


def per_node_levels(snapshot) -> dict:
    return {n.node_id: n.level for n in snapshot.node_samples}  # rl-expect: RL106
