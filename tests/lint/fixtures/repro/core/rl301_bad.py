"""Bad: control code writing DVFS state behind the actuator's back."""

from __future__ import annotations


class SneakyController:
    def __init__(self, state: object) -> None:
        self._state = state

    def force_top(self, node_id: int, top: int) -> None:
        self._state.set_level(node_id, top)  # rl-expect: RL301

    def force_all(self, ids: object, top: int) -> None:
        self._state.set_levels(ids, top)  # rl-expect: RL301

    def poke_array(self, state: object, ids: object, top: int) -> None:
        state.level[ids] = top  # rl-expect: RL301
