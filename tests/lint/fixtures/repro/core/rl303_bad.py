"""Bad: control code mutating budget state behind the provisioner's back."""

from __future__ import annotations

from repro.types import Watts


class SneakyManager:
    def __init__(self, thresholds: object, runtime: object) -> None:
        self._thresholds = thresholds
        self._runtime = runtime

    def widen(self, new_high_w: Watts) -> None:
        self._thresholds.p_high_w = new_high_w  # rl-expect: RL303

    def restore_capacity(self) -> None:
        self._runtime.capacity_w = self._runtime.design_capacity_w  # rl-expect: RL303

    def nudge(self, delta_w: Watts) -> None:
        self._thresholds.p_low += delta_w  # rl-expect: RL303

    def uprate_branch(self, rack: int, rating_w: Watts) -> None:
        self._runtime.branch_limits_w[rack] = rating_w  # rl-expect: RL303
