"""Bad: unit-bearing params on the public power surface as bare floats."""

from __future__ import annotations


def set_cap(
    cap_w: float,  # rl-expect: RL201
    ramp_s: float,  # rl-expect: RL201
) -> None:
    del cap_w, ramp_s


def retune(
    frequency: float,  # rl-expect: RL201
    energy_j: float | None = None,  # rl-expect: RL201
) -> None:
    del frequency, energy_j
