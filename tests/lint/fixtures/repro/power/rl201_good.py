"""Good: the same surface annotated with the repro.types aliases."""

from __future__ import annotations

from repro.types import Hertz, Joules, Seconds, Watts


def set_cap(cap_w: Watts, ramp_s: Seconds) -> None:
    del cap_w, ramp_s


def retune(frequency_hz: Hertz | None = None, energy_j: Joules | None = None) -> None:
    del frequency_hz, energy_j


def _internal(power_w: float) -> float:
    # Private helpers are outside the public unit contract.
    return power_w
