"""Good: the same comparisons with a NaN guard in the same function."""

from __future__ import annotations

import math

import numpy as np


def classify(cpu_util: np.ndarray) -> np.ndarray:
    return np.nan_to_num(cpu_util, nan=1.0) > 0.9


def is_idle(snapshot) -> bool:
    value = float(snapshot.mem_frac[0])
    return not math.isnan(value) and value < 0.05


def fully_covered(coverage: float) -> bool:
    if math.isnan(coverage):
        return False
    return coverage == 1.0


def stale(age: np.ndarray, horizon_s: float) -> np.ndarray:
    finite = np.isfinite(age)
    return finite & (age >= horizon_s)


def saturated(cpu_util: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return cpu_util >= 1.0


def plain_threshold(power_w: float, cap_w: float) -> bool:
    # Non-telemetry quantities are outside RL105's scope.
    return power_w > cap_w
