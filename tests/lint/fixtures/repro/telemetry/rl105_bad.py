"""Bad: telemetry fields compared with no NaN guard in scope (RL105)."""

from __future__ import annotations

import numpy as np


def classify(cpu_util: np.ndarray) -> np.ndarray:
    # A corrupted sensor's NaN makes this silently False.
    return cpu_util > 0.9  # rl-expect: RL105


def is_idle(snapshot) -> bool:
    return float(snapshot.mem_frac[0]) < 0.05  # rl-expect: RL105


def fully_covered(coverage: float) -> bool:
    return coverage == 1.0  # rl-expect: RL105


def stale(age: np.ndarray, horizon_s: float) -> np.ndarray:
    # A guard inside the nested closure does not license this compare.
    mask = age >= horizon_s  # rl-expect: RL105

    def saturated(cpu_util: np.ndarray) -> np.ndarray:
        clean = np.nan_to_num(cpu_util, nan=1.0)
        return clean >= 1.0  # guarded in its own scope: not flagged

    return mask & saturated(age)
