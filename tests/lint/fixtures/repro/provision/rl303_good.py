"""Good: the provisioning layer (repro.provision) owns budget state."""

from __future__ import annotations

from repro.types import Watts


class DeliveryRuntime:
    def __init__(self, design_capacity_w: Watts) -> None:
        self.design_capacity_w = design_capacity_w
        self.capacity_w = design_capacity_w

    def lose_feed(self, surviving_w: Watts) -> None:
        self.capacity_w = surviving_w

    def restore(self) -> None:
        self.capacity_w = self.design_capacity_w


class ControlCode:
    """Control code renegotiates through the sanctioned entry point."""

    def __init__(self, thresholds: object) -> None:
        self._thresholds = thresholds

    def renegotiate(self, envelope_w: Watts) -> bool:
        changed: bool = self._thresholds.set_envelope(envelope_w)
        return changed
