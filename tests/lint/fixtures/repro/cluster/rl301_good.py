"""Good: the machine layer (repro.cluster) may write its own DVFS state."""

from __future__ import annotations


class NodeFacade:
    def __init__(self, state: object, index: int) -> None:
        self._state = state
        self._index = index

    def set_level(self, value: int) -> None:
        self._state.set_level(self._index, value)
