"""Good: stable identifiers derived from content, not OS entropy."""

import hashlib


def stream_key(name: str) -> int:
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")
