"""Full-pipeline behaviour: annotation escaping, suppression accounting,
statistics artifacts and the whole-program CLI switches."""

from __future__ import annotations

import json
from pathlib import Path

from tests.lint.conftest import FIXTURES
from tools.reprolint.cli import EXIT_CLEAN, EXIT_DIAGNOSTICS, main
from tools.reprolint.diagnostics import Diagnostic, Severity
from tools.reprolint.runner import USELESS_SUPPRESSION_ID, run

FLOW = FIXTURES / "flow"


# ----------------------------------------------------------------------
# --format=github: workflow-command escaping
# ----------------------------------------------------------------------
def test_github_format_escapes_message_payload() -> None:
    diag = Diagnostic(
        path="src/x.py",
        line=3,
        column=1,
        rule_id="RL999",
        severity=Severity.ERROR,
        message="evil\n::error file=forged.py::injected %25 trick",
    )
    line = diag.format_github()
    # One physical line: workflow commands are parsed per line, so the
    # payload cannot start a second annotation without a raw newline.
    assert "\n" not in line
    assert "\r" not in line
    assert line.startswith("::error file=src/x.py,")
    assert "%0A" in line
    # Raw '%' is escaped first, so '%25' in the input cannot collapse
    # back into an escape sequence on the runner's side.
    assert "%2525" in line


def test_github_format_escapes_path_properties() -> None:
    diag = Diagnostic(
        path="odd,name:file.py",
        line=1,
        column=1,
        rule_id="RL101",
        severity=Severity.WARNING,
        message="m",
    )
    line = diag.format_github()
    assert line.startswith("::warning file=odd%2Cname%3Afile.py,")
    # Properties survive round-tripping: no raw ',' or ':' in the value.
    assert "odd,name" not in line
    assert "name:file" not in line


# ----------------------------------------------------------------------
# --warn-unused-suppressions (RL901)
# ----------------------------------------------------------------------
def test_unused_line_suppression_is_reported(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "CAP = 40.0  # reprolint: disable=RL203\n", encoding="utf-8"
    )
    result = run([target], warn_unused=True)
    assert [d.rule_id for d in result.diagnostics] == [USELESS_SUPPRESSION_ID]
    assert result.diagnostics[0].line == 1
    assert "RL203" in result.diagnostics[0].message


def test_used_suppression_is_not_reported(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "CAP = 40e3  # reprolint: disable=RL203\n", encoding="utf-8"
    )
    result = run([target], warn_unused=True)
    assert result.diagnostics == []


def test_unused_file_suppression_is_reported_at_line_one(
    tmp_path: Path,
) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "# reprolint: disable-file=RL101\nCAP = 1.0\n", encoding="utf-8"
    )
    result = run([target], warn_unused=True)
    assert [(d.rule_id, d.line) for d in result.diagnostics] == [
        (USELESS_SUPPRESSION_ID, 1)
    ]


def test_suppression_outside_selection_is_not_judged(tmp_path: Path) -> None:
    """A narrow --select must not flag suppressions for rules it never ran."""
    target = tmp_path / "mod.py"
    target.write_text(
        "CAP = 40.0  # reprolint: disable=RL203\n", encoding="utf-8"
    )
    result = run([target], select=["RL101"], warn_unused=True)
    assert result.diagnostics == []


def test_unused_star_suppression_is_reported(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "CAP = 1.0  # reprolint: disable=all\n", encoding="utf-8"
    )
    result = run([target], warn_unused=True)
    assert [d.rule_id for d in result.diagnostics] == [USELESS_SUPPRESSION_ID]
    assert "any rule" in result.diagnostics[0].message


def test_warn_unused_flag_via_cli(tmp_path: Path, capsys) -> None:
    target = tmp_path / "mod.py"
    target.write_text(
        "CAP = 40.0  # reprolint: disable=RL203\n", encoding="utf-8"
    )
    assert main([str(target)]) == EXIT_CLEAN
    capsys.readouterr()
    assert main([str(target), "--warn-unused-suppressions"]) == (
        EXIT_DIAGNOSTICS
    )
    assert USELESS_SUPPRESSION_ID in capsys.readouterr().out


# ----------------------------------------------------------------------
# --statistics-json artifact
# ----------------------------------------------------------------------
def test_statistics_json_artifact(tmp_path: Path, capsys) -> None:
    stats = tmp_path / "stats.json"
    code = main(
        [
            str(FLOW / "rl501_bad"),
            "--select=RL5",
            f"--statistics-json={stats}",
        ]
    )
    capsys.readouterr()
    assert code == EXIT_DIAGNOSTICS
    payload = json.loads(stats.read_text(encoding="utf-8"))
    assert payload["rule_counts"]["RL501"] == 2
    # Selected-but-clean rules appear explicitly as zero, so a budget
    # check can tell "ran and found nothing" from "did not run".
    assert payload["rule_counts"]["RL502"] == 0
    assert payload["files_checked"] == 2
    assert payload["parse_errors"] == 0
    assert set(payload["cache"]) == {"hits", "misses"}


# ----------------------------------------------------------------------
# Whole-program CLI switches
# ----------------------------------------------------------------------
def test_select_prefix_expands_to_family(capsys) -> None:
    assert main([str(FLOW / "rl501_bad"), "--select=RL5"]) == (
        EXIT_DIAGNOSTICS
    )
    out = capsys.readouterr().out
    assert "RL501" in out


def test_no_flow_skips_whole_program_rules(capsys) -> None:
    assert main([str(FLOW / "rl501_bad"), "--no-flow"]) == EXIT_CLEAN
    capsys.readouterr()


def test_flow_cache_round_trip(tmp_path: Path, capsys) -> None:
    cache = tmp_path / "cache.json"
    target = str(FLOW / "rl504_bad")
    stats_cold = tmp_path / "cold.json"
    stats_warm = tmp_path / "warm.json"
    main([target, f"--flow-cache={cache}", f"--statistics-json={stats_cold}"])
    main([target, f"--flow-cache={cache}", f"--statistics-json={stats_warm}"])
    capsys.readouterr()
    cold = json.loads(stats_cold.read_text(encoding="utf-8"))
    warm = json.loads(stats_warm.read_text(encoding="utf-8"))
    assert cold["cache"] == {"hits": 0, "misses": 2}
    assert warm["cache"] == {"hits": 2, "misses": 0}
    # Cached and fresh summaries produce identical findings.
    assert warm["rule_counts"] == cold["rule_counts"]
    assert warm["rule_counts"]["RL504"] == 2
