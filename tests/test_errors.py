"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_configuration_error_is_value_error():
    """Config mistakes should be catchable as plain ValueError too."""
    assert issubclass(errors.ConfigurationError, ValueError)
    assert issubclass(errors.WorkloadError, ValueError)
    assert issubclass(errors.MetricError, ValueError)


def test_runtime_family():
    for exc in (
        errors.SimulationError,
        errors.SchedulingError,
        errors.PowerManagementError,
        errors.TelemetryError,
    ):
        assert issubclass(exc, RuntimeError)


def test_specialisations():
    assert issubclass(errors.AllocationError, errors.SchedulingError)
    assert issubclass(errors.PolicyError, errors.PowerManagementError)


def test_one_except_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.AllocationError("x")
    with pytest.raises(errors.ReproError):
        raise errors.MetricError("y")


def test_fault_injection_error_is_configuration_error():
    """Bad fault scenarios are config mistakes: ValueError-compatible."""
    assert issubclass(errors.FaultInjectionError, errors.ConfigurationError)
    assert issubclass(errors.FaultInjectionError, ValueError)


def test_degraded_mode_error_is_power_management_error():
    """Losing the last estimation basis is a runtime control failure."""
    assert issubclass(errors.DegradedModeError, errors.PowerManagementError)
    assert issubclass(errors.DegradedModeError, RuntimeError)
    with pytest.raises(errors.PowerManagementError):
        raise errors.DegradedModeError("no power signal")
