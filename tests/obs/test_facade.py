"""Unit tests for ObsConfig and the Observability facade."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    NULL_FLIGHT_RECORDER,
    NULL_REGISTRY,
    NULL_TRACER,
    Observability,
    ObsConfig,
    resolve_obs,
)


class TestObsConfig:
    def test_default_is_everything_off(self):
        cfg = ObsConfig()
        assert not cfg.trace and not cfg.metrics
        assert cfg.flight_recorder_cycles == 0
        assert not cfg.tracing and not cfg.enabled
        assert ObsConfig.off() == cfg

    def test_flight_recorder_implies_tracing(self):
        cfg = ObsConfig(flight_recorder_cycles=8)
        assert cfg.tracing and cfg.enabled and not cfg.trace

    def test_metrics_alone_enables_without_tracing(self):
        cfg = ObsConfig(metrics=True)
        assert cfg.enabled and not cfg.tracing

    def test_paths_require_their_instrument(self):
        with pytest.raises(ConfigurationError):
            ObsConfig(trace_path="t.jsonl")
        with pytest.raises(ConfigurationError):
            ObsConfig(metrics_path="m.prom")
        with pytest.raises(ConfigurationError):
            ObsConfig(flight_path="f.jsonl")
        with pytest.raises(ConfigurationError):
            ObsConfig(flight_recorder_cycles=-1)

    def test_full_turns_everything_on(self):
        cfg = ObsConfig.full()
        assert cfg.trace and cfg.metrics and cfg.flight_recorder_cycles > 0


class TestObservability:
    def test_disabled_facade_is_shared_nulls(self):
        obs = Observability.disabled()
        assert obs is Observability.disabled()
        assert obs is resolve_obs(None)
        assert obs.tracer is NULL_TRACER
        assert obs.metrics is NULL_REGISTRY
        assert obs.flight is NULL_FLIGHT_RECORDER
        assert not obs.enabled and not obs.tracing and not obs.metrics_on

    def test_resolve_obs_passes_through(self):
        obs = Observability(ObsConfig(metrics=True))
        assert resolve_obs(obs) is obs

    def test_trace_collects_cycle_spans(self):
        obs = Observability(ObsConfig(trace=True))
        obs.tracer.begin_cycle(30.0)
        obs.tracer.end_cycle()
        assert len(obs.spans) == 1
        assert obs.spans[0].time == pytest.approx(30.0)

    def test_flight_sink_records_serialized_cycles(self):
        obs = Observability(ObsConfig(flight_recorder_cycles=4))
        assert obs.tracing  # the ring needs span trees
        obs.tracer.begin_cycle(30.0)
        obs.tracer.end_cycle()
        assert obs.spans == []  # whole-run trace stays off
        assert len(obs.flight) == 1
        assert obs.flight.snapshot()[0]["t"] == pytest.approx(30.0)

    def test_trip_is_noop_without_recorder(self):
        obs = Observability(ObsConfig(trace=True))
        assert obs.trip("red_state_entry", 30.0) is None

    def test_trip_dumps_buffered_cycles(self):
        obs = Observability(ObsConfig(flight_recorder_cycles=4))
        obs.tracer.begin_cycle(30.0)
        obs.tracer.end_cycle()
        dump = obs.trip("red_state_entry", 30.0)
        assert dump is not None and len(dump.records) == 1

    def test_export_writes_all_configured_paths(self, tmp_path):
        cfg = ObsConfig(
            trace=True,
            metrics=True,
            flight_recorder_cycles=4,
            trace_path=str(tmp_path / "trace.jsonl"),
            metrics_path=str(tmp_path / "metrics.prom"),
            flight_path=str(tmp_path / "flight.jsonl"),
        )
        obs = Observability(cfg)
        obs.tracer.begin_cycle(30.0)
        obs.tracer.end_cycle()
        obs.metrics.counter("c_total", "help").inc()
        obs.trip("run_end", 30.0)
        written = obs.export()
        assert written == [cfg.trace_path, cfg.metrics_path, cfg.flight_path]
        for path in written:
            assert (tmp_path / path).exists() or path  # absolute paths
        assert (tmp_path / "trace.jsonl").read_text().count("\n") == 1
        assert "c_total 1" in (tmp_path / "metrics.prom").read_text()
        assert '"reason":"run_end"' in (tmp_path / "flight.jsonl").read_text()

    def test_export_without_paths_writes_nothing(self):
        obs = Observability(ObsConfig(trace=True, metrics=True))
        assert obs.export() == []
