"""Unit tests for the flight-recorder ring buffer."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import NULL_FLIGHT_RECORDER, FlightRecorder


def _cycle(i):
    return {"name": "cycle", "t": float(i), "seq": i}


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(0)
        with pytest.raises(ConfigurationError):
            FlightRecorder(-3)

    def test_ring_never_exceeds_capacity(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.record(_cycle(i))
            assert len(rec) <= rec.capacity
        assert rec.recorded_total == 10
        # Oldest-first, only the last three survive.
        assert [r["seq"] for r in rec.snapshot()] == [7, 8, 9]

    def test_trip_snapshots_without_clearing(self):
        rec = FlightRecorder(capacity=4)
        rec.record(_cycle(0))
        rec.record(_cycle(1))
        dump = rec.trip("red_state_entry", now=30.0)
        assert dump.reason == "red_state_entry"
        assert dump.time == pytest.approx(30.0)
        assert [r["seq"] for r in dump.records] == [0, 1]
        # The ring keeps recording through the dump.
        rec.record(_cycle(2))
        assert len(rec) == 3
        assert rec.dumps == (dump,)

    def test_back_to_back_trips_see_their_own_past(self):
        rec = FlightRecorder(capacity=2)
        rec.record(_cycle(0))
        first = rec.trip("meter_outage", now=10.0)
        rec.record(_cycle(1))
        rec.record(_cycle(2))
        second = rec.trip("failover", now=20.0)
        assert [r["seq"] for r in first.records] == [0]
        assert [r["seq"] for r in second.records] == [1, 2]
        assert [d.reason for d in rec.dumps] == ["meter_outage", "failover"]

    def test_dump_records_are_immutable_snapshots(self):
        rec = FlightRecorder(capacity=2)
        rec.record(_cycle(0))
        dump = rec.trip("run_end", now=0.0)
        assert isinstance(dump.records, tuple)
        rec.record(_cycle(1))
        rec.record(_cycle(2))
        assert [r["seq"] for r in dump.records] == [0]


class TestNullFlightRecorder:
    def test_disabled_flag(self):
        assert NULL_FLIGHT_RECORDER.enabled is False

    def test_records_nothing(self):
        NULL_FLIGHT_RECORDER.record(_cycle(0))
        assert len(NULL_FLIGHT_RECORDER) == 0
        assert NULL_FLIGHT_RECORDER.recorded_total == 0

    def test_trip_returns_empty_dump_and_keeps_none(self):
        dump = NULL_FLIGHT_RECORDER.trip("whatever", now=1.0)
        assert dump.records == ()
        assert NULL_FLIGHT_RECORDER.dumps == ()
