"""Unit tests for the cycle tracer and span trees."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_SPAN, CycleTracer, Span
from repro.obs.trace import _NULL_HANDLE


class TestSpan:
    def test_to_dict_orders_keys_deterministically(self):
        span = Span("cycle", 3.0, 0)
        span.set("b", 1)
        span.set("a", 2)
        record = span.to_dict()
        assert list(record) == ["name", "t", "seq", "attrs"]
        # Attribute order is insertion order, not alphabetical.
        assert list(record["attrs"]) == ["b", "a"]

    def test_to_dict_omits_empty_attrs_and_children(self):
        record = Span("cycle", 0.0, 0).to_dict()
        assert "attrs" not in record
        assert "children" not in record

    def test_set_many_updates_in_order(self):
        span = Span("x", 0.0, 0)
        span.set_many(p=1, q=2)
        assert span.attrs == {"p": 1, "q": 2}

    def test_walk_is_depth_first_preorder(self):
        tracer = CycleTracer()
        root = tracer.begin_cycle(0.0)
        with tracer.span("a"):
            with tracer.span("a1"):
                pass
        with tracer.span("b"):
            pass
        tracer.end_cycle()
        assert [s.name for s in root.walk()] == ["cycle", "a", "a1", "b"]


class TestCycleTracer:
    def test_nested_spans_close_and_attach(self):
        tracer = CycleTracer()
        root = tracer.begin_cycle(1.0)
        with tracer.span("collect") as sp:
            sp.set("coverage", 1.0)
        assert tracer.depth == 1  # only the root remains open
        done = tracer.end_cycle()
        assert done is root
        assert not root.open
        assert [c.name for c in root.children] == ["collect"]
        assert tracer.cycles_traced == 1

    def test_seq_is_monotone_across_cycles(self):
        tracer = CycleTracer()
        seqs = []
        for t in (1.0, 2.0):
            root = tracer.begin_cycle(t)
            with tracer.span("a") as sp:
                seqs.append(sp.seq)
            seqs.append(root.seq)
            tracer.end_cycle()
        assert sorted(seqs) == sorted(set(seqs))

    def test_child_spans_share_cycle_time(self):
        tracer = CycleTracer()
        tracer.begin_cycle(7.5)
        with tracer.span("a") as sp:
            assert sp.time == pytest.approx(7.5)
        tracer.end_cycle()

    def test_sinks_receive_completed_root(self):
        seen = []
        tracer = CycleTracer(sinks=(seen.append,))
        tracer.begin_cycle(0.0)
        tracer.end_cycle()
        assert len(seen) == 1 and seen[0].name == "cycle"

    def test_begin_with_open_cycle_raises(self):
        tracer = CycleTracer()
        tracer.begin_cycle(0.0)
        with pytest.raises(ObservabilityError):
            tracer.begin_cycle(1.0)

    def test_span_outside_cycle_raises(self):
        tracer = CycleTracer()
        with pytest.raises(ObservabilityError):
            tracer.span("orphan")

    def test_out_of_order_end_raises(self):
        tracer = CycleTracer()
        tracer.begin_cycle(0.0)
        outer = tracer.span("outer").__enter__()
        tracer.span("inner").__enter__()
        with pytest.raises(ObservabilityError):
            tracer.end_span(outer)

    def test_end_cycle_with_open_children_raises(self):
        tracer = CycleTracer()
        tracer.begin_cycle(0.0)
        tracer.span("left-open").__enter__()
        with pytest.raises(ObservabilityError):
            tracer.end_cycle()

    def test_end_cycle_without_begin_raises(self):
        with pytest.raises(ObservabilityError):
            CycleTracer().end_cycle()

    def test_abort_cycle_discards_and_recovers(self):
        seen = []
        tracer = CycleTracer(sinks=(seen.append,))
        tracer.begin_cycle(0.0)
        tracer.span("partial").__enter__()
        tracer.abort_cycle()
        assert tracer.depth == 0
        assert seen == []
        assert tracer.cycles_traced == 0
        # The tracer is usable again after the abort.
        tracer.begin_cycle(1.0)
        tracer.end_cycle()
        assert len(seen) == 1


class TestDisabledTracer:
    def test_disabled_hands_out_shared_nulls(self):
        tracer = CycleTracer(enabled=False)
        assert tracer.begin_cycle(0.0) is NULL_SPAN
        assert tracer.span("x") is _NULL_HANDLE
        assert tracer.end_cycle() is None
        assert tracer.cycles_traced == 0

    def test_null_span_ignores_attributes(self):
        NULL_SPAN.set("k", 1)
        NULL_SPAN.set_many(a=2)
        assert NULL_SPAN.attrs == {}
