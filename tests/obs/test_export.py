"""Unit tests for the JSONL and Prometheus exporters."""

import json

import pytest

from repro.obs import (
    CycleTracer,
    FlightDump,
    MetricRegistry,
    flight_jsonl_lines,
    jsonl_line,
    trace_jsonl_lines,
    write_flight_jsonl,
    write_metrics_prometheus,
    write_trace_jsonl,
)


def _trace_two_cycles():
    tracer = CycleTracer()
    spans = []
    tracer.add_sink(spans.append)
    for t in (30.0, 60.0):
        tracer.begin_cycle(t)
        with tracer.span("collect") as sp:
            sp.set("size", 128)
        tracer.end_cycle()
    return spans


class TestJsonlLine:
    def test_compact_separators_and_insertion_order(self):
        line = jsonl_line({"b": 1, "a": [1, 2]})
        assert line == '{"b":1,"a":[1,2]}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            jsonl_line({"x": float("nan")})


class TestTraceJsonl:
    def test_one_line_per_cycle(self):
        lines = trace_jsonl_lines(_trace_two_cycles())
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "cycle"
        assert first["t"] == pytest.approx(30.0)
        assert first["children"][0]["name"] == "collect"
        assert first["children"][0]["attrs"] == {"size": 128}

    def test_write_returns_line_count_and_uses_lf(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_trace_jsonl(_trace_two_cycles(), path)
        assert n == 2
        raw = path.read_bytes()
        assert raw.count(b"\n") == 2
        assert b"\r" not in raw

    def test_byte_identical_across_writes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace_jsonl(_trace_two_cycles(), a)
        write_trace_jsonl(_trace_two_cycles(), b)
        assert a.read_bytes() == b.read_bytes()


class TestFlightJsonl:
    def test_header_then_cycles(self):
        dump = FlightDump(
            reason="red_state_entry",
            time=90.0,
            records=({"name": "cycle", "t": 30.0}, {"name": "cycle", "t": 60.0}),
        )
        lines = flight_jsonl_lines([dump])
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header == {
            "event": "dump",
            "reason": "red_state_entry",
            "t": 90.0,
            "cycles": 2,
        }
        cycle = json.loads(lines[1])
        assert cycle["event"] == "cycle"
        assert cycle["t"] == pytest.approx(30.0)

    def test_write_empty_dump_list(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        assert write_flight_jsonl([], path) == 0
        assert path.read_text() == ""


class TestMetricsFile:
    def test_write_prometheus_text(self, tmp_path):
        reg = MetricRegistry()
        reg.counter("repro_cycles_total", "cycles").inc(5)
        path = tmp_path / "metrics.prom"
        write_metrics_prometheus(reg, path)
        text = path.read_text()
        assert text.endswith("\n")
        assert "repro_cycles_total 5" in text
