"""Unit tests for the metric registry and its instruments."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricRegistry, NULL_REGISTRY
from repro.obs.metrics import _NULL_COUNTER, _NULL_GAUGE, _NULL_HISTOGRAM


class TestInstruments:
    def test_counter_is_monotone(self):
        reg = MetricRegistry()
        c = reg.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ObservabilityError):
            c.inc(-1.0)

    def test_gauge_goes_both_ways(self):
        reg = MetricRegistry()
        g = reg.gauge("g", "help")
        g.set(4.0)
        g.set(-2.0)
        assert g.value == pytest.approx(-2.0)

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricRegistry()
        h = reg.histogram("h", "help", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 3.0, 7.0, 42.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(52.5)
        assert h.cumulative_counts() == (1, 2, 3, 4)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("empty", "help", buckets=())
        with pytest.raises(ObservabilityError):
            reg.histogram("unsorted", "help", buckets=(5.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        a = reg.counter("x_total", "help", labels={"k": "v"})
        b = reg.counter("x_total", "help", labels={"k": "v"})
        assert a is b

    def test_label_order_does_not_split_series(self):
        reg = MetricRegistry()
        a = reg.gauge("g", "help", labels={"a": "1", "b": "2"})
        b = reg.gauge("g", "help", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("x", "help")
        with pytest.raises(ObservabilityError):
            reg.gauge("x", "help")

    def test_inline_vs_collected_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("a", "help")
        with pytest.raises(ObservabilityError):
            reg.counter_func("a", "help", lambda: 1.0)
        reg.gauge_func("b", "help", lambda: 0.0)
        with pytest.raises(ObservabilityError):
            reg.gauge("b", "help")

    def test_collected_series_rebinds(self):
        # The HA layer re-registers a successor's subsystems after
        # failover, so a second registration must win.
        reg = MetricRegistry()
        reg.counter_func("c", "help", lambda: 1.0)
        reg.counter_func("c", "help", lambda: 9.0)
        assert reg.value_of("c") == pytest.approx(9.0)

    def test_value_of_unknown_series_raises(self):
        reg = MetricRegistry()
        reg.histogram("h", "help", buckets=(1.0,))
        with pytest.raises(ObservabilityError):
            reg.value_of("nope")
        with pytest.raises(ObservabilityError):
            reg.value_of("h")  # histograms have no scalar value

    def test_collect_merges_inline_and_collected(self):
        reg = MetricRegistry()
        reg.counter("c", "help", labels={"k": "a"}).inc(3)
        reg.gauge_func("g", "help", lambda: 7.0)
        snap = reg.collect()
        assert snap["c"][(("k", "a"),)] == pytest.approx(3.0)
        assert snap["g"][()] == pytest.approx(7.0)

    def test_names_are_sorted(self):
        reg = MetricRegistry()
        reg.counter("zz", "help")
        reg.gauge("aa", "help")
        assert reg.names() == ["aa", "zz"]
        assert reg.kind("zz") == "counter"
        assert reg.kind("missing") is None


class TestPrometheusText:
    def test_families_sorted_with_help_and_type(self):
        reg = MetricRegistry()
        reg.counter("b_total", "b count").inc(2)
        reg.gauge("a_level", "a level").set(1.5)
        text = reg.to_prometheus_text()
        assert text.index("a_level") < text.index("b_total")
        assert "# HELP a_level a level" in text
        assert "# TYPE b_total counter" in text
        assert "b_total 2\n" in text
        assert "a_level 1.5\n" in text

    def test_labels_rendered_and_escaped(self):
        reg = MetricRegistry()
        reg.counter("c", "help", labels={"k": 'say "hi"\n'}).inc()
        text = reg.to_prometheus_text()
        assert 'c{k="say \\"hi\\"\\n"} 1' in text

    def test_histogram_exposition(self):
        reg = MetricRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus_text()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 5.5" in text
        assert "lat_count 2" in text

    def test_export_is_deterministic(self):
        def build():
            reg = MetricRegistry()
            reg.counter("c", "help", labels={"s": "x"}).inc(3)
            reg.gauge("g", "help").set(2.25)
            reg.histogram("h", "help", buckets=(1.0,)).observe(0.1)
            return reg.to_prometheus_text()

        assert build() == build()

    def test_empty_registry_exports_empty_string(self):
        assert MetricRegistry().to_prometheus_text() == ""


class TestDisabledRegistry:
    def test_hands_out_shared_null_instruments(self):
        assert NULL_REGISTRY.counter("c", "help") is _NULL_COUNTER
        assert NULL_REGISTRY.gauge("g", "help") is _NULL_GAUGE
        assert (
            NULL_REGISTRY.histogram("h", "help", buckets=(1.0,))
            is _NULL_HISTOGRAM
        )

    def test_null_instruments_ignore_updates(self):
        _NULL_COUNTER.inc(5)
        _NULL_GAUGE.set(5)
        _NULL_HISTOGRAM.observe(5)
        assert _NULL_COUNTER.value == 0
        assert _NULL_GAUGE.value == 0
        assert _NULL_HISTOGRAM.count == 0

    def test_ignores_callbacks_and_registers_nothing(self):
        NULL_REGISTRY.counter_func("c", "help", lambda: 1.0)
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.to_prometheus_text() == ""
