"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_empty_queue_is_falsy():
    q = EventQueue()
    assert len(q) == 0
    assert not q


def test_push_returns_handle_and_counts():
    q = EventQueue()
    e = q.push(1.0, lambda: None, label="x")
    assert len(q) == 1
    assert e.time == 1.0
    assert e.label == "x"
    assert not e.cancelled


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append(3))
    q.push(1.0, lambda: fired.append(1))
    q.push(2.0, lambda: fired.append(2))
    while q:
        q.pop().callback()
    assert fired == [1, 2, 3]


def test_same_time_events_fire_fifo():
    q = EventQueue()
    fired = []
    for i in range(10):
        q.push(5.0, lambda i=i: fired.append(i))
    while q:
        q.pop().callback()
    assert fired == list(range(10))


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.pop()


def test_peek_time():
    q = EventQueue()
    q.push(4.0, lambda: None)
    q.push(2.0, lambda: None)
    assert q.peek_time() == 2.0
    assert len(q) == 2  # peek does not remove


def test_peek_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().peek_time()


def test_cancel_via_queue():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.cancel(e)
    assert e.cancelled
    assert len(q) == 0
    with pytest.raises(SimulationError):
        q.pop()


def test_cancel_via_event_handle_updates_queue_len():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    e.cancel()
    assert len(q) == 0


def test_cancel_idempotent():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    e.cancel()
    e.cancel()
    q.cancel(e)
    assert len(q) == 0


def test_cancelled_events_skipped_on_pop():
    q = EventQueue()
    e1 = q.push(1.0, lambda: "a")
    e2 = q.push(2.0, lambda: "b")
    q.cancel(e1)
    assert q.pop() is e2


def test_cancel_after_pop_is_noop():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    popped = q.pop()
    assert popped is e
    e.cancel()  # should not corrupt the (now empty) queue
    assert len(q) == 0


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_clear():
    q = EventQueue()
    for i in range(5):
        q.push(float(i), lambda: None)
    q.clear()
    assert len(q) == 0


def test_iter_pending_excludes_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(e1)
    assert sum(1 for _ in q.iter_pending()) == 1
