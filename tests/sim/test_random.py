"""Unit tests for reproducible random-stream management."""

import numpy as np
import pytest

from repro.sim import RandomSource


def test_same_seed_same_draws():
    a = RandomSource(seed=7).stream("x").random(100)
    b = RandomSource(seed=7).stream("x").random(100)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    a = RandomSource(seed=7).stream("x").random(100)
    b = RandomSource(seed=8).stream("x").random(100)
    assert not np.array_equal(a, b)


def test_different_names_independent():
    src = RandomSource(seed=7)
    a = src.stream("a").random(100)
    b = src.stream("b").random(100)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    src = RandomSource(seed=7)
    assert src.stream("x") is src.stream("x")


def test_composition_insensitivity():
    """Adding a new consumer must not perturb existing streams."""
    src1 = RandomSource(seed=7)
    a1 = src1.stream("a").random(10)

    src2 = RandomSource(seed=7)
    src2.stream("zzz").random(5)  # extra consumer created first
    a2 = src2.stream("a").random(10)
    np.testing.assert_array_equal(a1, a2)


def test_fork_independent_and_deterministic():
    child1 = RandomSource(seed=7).fork("rep0")
    child2 = RandomSource(seed=7).fork("rep0")
    assert child1.seed == child2.seed
    other = RandomSource(seed=7).fork("rep1")
    assert other.seed != child1.seed


def test_seed_property():
    assert RandomSource(seed=42).seed == 42


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RandomSource(seed="nope")  # type: ignore[arg-type]


def test_numpy_integer_seed_accepted():
    src = RandomSource(seed=np.int64(5))
    assert src.seed == 5
