"""Unit tests for the simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimulationEngine


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_custom_start_time():
    assert SimulationEngine(start_time=10.0).now == 10.0


def test_negative_start_time_rejected():
    with pytest.raises(SimulationError):
        SimulationEngine(start_time=-1.0)


def test_schedule_and_run(engine):
    fired = []
    engine.schedule(5.0, lambda: fired.append(engine.now))
    engine.run_until_idle()
    assert fired == [5.0]
    assert engine.now == 5.0


def test_schedule_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(engine):
    engine.schedule(1.0, lambda: None)
    engine.run_until_idle()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_zero_delay_fires_after_current(engine):
    order = []

    def first():
        order.append("first")
        engine.schedule(0.0, lambda: order.append("nested"))
        order.append("after-schedule")

    engine.schedule(1.0, first)
    engine.schedule(1.0, lambda: order.append("second"))
    engine.run_until_idle()
    assert order == ["first", "after-schedule", "second", "nested"]


def test_run_until_bound_advances_clock_to_bound(engine):
    engine.schedule(2.0, lambda: None)
    processed = engine.run(until=10.0)
    assert processed == 1
    assert engine.now == 10.0


def test_run_until_excludes_later_events(engine):
    fired = []
    engine.schedule(2.0, lambda: fired.append(2))
    engine.schedule(20.0, lambda: fired.append(20))
    engine.run(until=10.0)
    assert fired == [2]
    assert engine.pending_events == 1


def test_event_at_exact_until_fires(engine):
    fired = []
    engine.schedule(10.0, lambda: fired.append(10))
    engine.run(until=10.0)
    assert fired == [10]


def test_run_until_before_now_rejected(engine):
    engine.schedule(5.0, lambda: None)
    engine.run_until_idle()
    with pytest.raises(SimulationError):
        engine.run(until=1.0)


def test_max_events(engine):
    for i in range(10):
        engine.schedule(float(i + 1), lambda: None)
    processed = engine.run(max_events=3)
    assert processed == 3
    assert engine.pending_events == 7


def test_step_raises_on_empty(engine):
    with pytest.raises(SimulationError):
        engine.step()


def test_reentrant_run_rejected(engine):
    def recurse():
        engine.run_until_idle()

    engine.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        engine.run_until_idle()


def test_events_processed_counter(engine):
    for i in range(4):
        engine.schedule(float(i), lambda: None)
    engine.run_until_idle()
    assert engine.events_processed == 4


def test_callbacks_can_chain(engine):
    fired = []

    def step(n: int):
        fired.append(n)
        if n < 5:
            engine.schedule(1.0, lambda: step(n + 1))

    engine.schedule(1.0, lambda: step(1))
    engine.run_until_idle()
    assert fired == [1, 2, 3, 4, 5]
    assert engine.now == 5.0


def test_reset(engine):
    engine.schedule(1.0, lambda: None)
    engine.run_until_idle()
    engine.reset()
    assert engine.now == 0.0
    assert engine.pending_events == 0
    assert engine.events_processed == 0


def test_cancelled_event_does_not_fire(engine):
    fired = []
    handle = engine.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    engine.run_until_idle()
    assert fired == []
