"""Unit tests for periodic tasks and one-shot timers."""

import pytest

from repro.errors import SimulationError
from repro.sim import OneShotTimer, PeriodicTask


def test_periodic_fires_at_period_multiples(engine):
    times = []
    task = PeriodicTask(engine, 2.0, lambda i: times.append(engine.now))
    task.start()
    engine.run(until=10.0)
    assert times == [2.0, 4.0, 6.0, 8.0, 10.0]
    assert task.fire_count == 5


def test_periodic_custom_start_delay(engine):
    times = []
    task = PeriodicTask(engine, 2.0, lambda i: times.append(engine.now), start_delay=0.0)
    task.start()
    engine.run(until=4.0)
    assert times == [0.0, 2.0, 4.0]


def test_periodic_passes_fire_index(engine):
    indices = []
    task = PeriodicTask(engine, 1.0, indices.append)
    task.start()
    engine.run(until=3.0)
    assert indices == [0, 1, 2]


def test_periodic_stop(engine):
    times = []
    task = PeriodicTask(engine, 1.0, lambda i: times.append(engine.now))
    task.start()
    engine.run(until=2.0)
    task.stop()
    engine.run(until=5.0)
    assert times == [1.0, 2.0]
    assert not task.active


def test_periodic_stop_from_callback(engine):
    times = []
    task = PeriodicTask(engine, 1.0, lambda i: (times.append(i), task.stop()))
    task.start()
    engine.run(until=10.0)
    assert times == [0]


def test_periodic_restart_after_stop(engine):
    count = []
    task = PeriodicTask(engine, 1.0, count.append)
    task.start()
    engine.run(until=1.0)
    task.stop()
    task.start()
    engine.run(until=3.0)
    assert len(count) == 3  # 1 before stop + 2 after restart


def test_periodic_start_idempotent(engine):
    fired = []
    task = PeriodicTask(engine, 1.0, fired.append)
    task.start()
    task.start()
    engine.run(until=2.0)
    assert fired == [0, 1]  # not doubled


def test_periodic_invalid_period(engine):
    with pytest.raises(SimulationError):
        PeriodicTask(engine, 0.0, lambda i: None)
    with pytest.raises(SimulationError):
        PeriodicTask(engine, -1.0, lambda i: None)


def test_periodic_negative_start_delay(engine):
    with pytest.raises(SimulationError):
        PeriodicTask(engine, 1.0, lambda i: None, start_delay=-1.0)


def test_oneshot_fires_once(engine):
    fired = []
    timer = OneShotTimer(engine, 3.0, lambda: fired.append(engine.now))
    timer.start()
    engine.run(until=10.0)
    assert fired == [3.0]
    assert timer.fired
    assert not timer.pending


def test_oneshot_cancel(engine):
    fired = []
    timer = OneShotTimer(engine, 3.0, lambda: fired.append(1))
    timer.start()
    timer.cancel()
    engine.run(until=10.0)
    assert fired == []
    assert not timer.fired


def test_oneshot_restart_resets_deadline(engine):
    fired = []
    timer = OneShotTimer(engine, 3.0, lambda: fired.append(engine.now))
    timer.start()
    engine.run(until=2.0)
    timer.start()  # re-arm at t=2: fires at t=5
    engine.run(until=10.0)
    assert fired == [5.0]


def test_oneshot_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        OneShotTimer(engine, -1.0, lambda: None)


def test_oneshot_pending_state(engine):
    timer = OneShotTimer(engine, 1.0, lambda: None)
    assert not timer.pending
    timer.start()
    assert timer.pending
    engine.run(until=1.0)
    assert not timer.pending
