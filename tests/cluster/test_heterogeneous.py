"""Tests for heterogeneous-cluster support (paper: Algorithm 1 works on
heterogeneous systems with discrete power states)."""

import numpy as np
import pytest

from repro.cluster import Cluster, DvfsTable, MemorySpec, NicSpec, NodeSpec
from repro.cluster.cpu import ProcessorSpec
from repro.errors import ConfigurationError
from repro.power import HeterogeneousPowerModel, PowerModel, make_power_model
from repro.units import gib


def _low_power_spec() -> NodeSpec:
    """A lower-power node type sharing ladder depth and cores with the
    Tianhe blade (e.g. a reduced-TDP SKU)."""
    cpu = ProcessorSpec(
        name="lp-sku",
        cores=6,
        dvfs=DvfsTable.linear(10, 1.2e9, 2.2e9),
        max_power_w=60.0,
        idle_power_top_w=20.0,
        idle_power_bottom_w=12.0,
    )
    return NodeSpec(
        processor=cpu,
        sockets=2,
        memory=MemorySpec(8, gib(4), 2.5, 1.2),
        nic=NicSpec(10e9, 10.0, 6.0),
        board_power_w=50.0,
    )


@pytest.fixture
def hetero_cluster() -> Cluster:
    """8 Tianhe blades + 8 low-power blades."""
    return Cluster.heterogeneous(
        [(NodeSpec.tianhe_1a(), 8), (_low_power_spec(), 8)]
    )


def test_construction_and_identity(hetero_cluster):
    assert hetero_cluster.num_nodes == 16
    assert hetero_cluster.is_heterogeneous
    assert hetero_cluster.spec_of(0).processor.name == "Intel Xeon X5670"
    assert hetero_cluster.spec_of(8).processor.name == "lp-sku"
    np.testing.assert_array_equal(
        hetero_cluster.state.spec_index, [0] * 8 + [1] * 8
    )


def test_homogeneous_cluster_reports_single_type(small_cluster):
    assert not small_cluster.is_heterogeneous
    assert small_cluster.state.spec_of(0) is small_cluster.spec


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        Cluster.heterogeneous([])
    with pytest.raises(ConfigurationError):
        Cluster.heterogeneous([(NodeSpec.tianhe_1a(), 0)])
    # Different ladder depth rejected.
    shallow_cpu = ProcessorSpec(
        "shallow", 6, DvfsTable.linear(5, 1.2e9, 2.2e9), 60.0, 20.0, 12.0
    )
    shallow = NodeSpec(shallow_cpu, 2, MemorySpec(8, gib(4), 2.5, 1.2),
                       NicSpec(10e9, 10.0, 6.0), 50.0)
    with pytest.raises(ConfigurationError):
        Cluster.heterogeneous([(NodeSpec.tianhe_1a(), 2), (shallow, 2)])
    # Different core count rejected.
    fat_cpu = ProcessorSpec(
        "fat", 8, DvfsTable.linear(10, 1.2e9, 2.2e9), 60.0, 20.0, 12.0
    )
    fat = NodeSpec(fat_cpu, 2, MemorySpec(8, gib(4), 2.5, 1.2),
                   NicSpec(10e9, 10.0, 6.0), 50.0)
    with pytest.raises(ConfigurationError):
        Cluster.heterogeneous([(NodeSpec.tianhe_1a(), 2), (fat, 2)])


def test_power_model_factory(hetero_cluster, small_cluster):
    assert isinstance(make_power_model(hetero_cluster), HeterogeneousPowerModel)
    assert isinstance(make_power_model(small_cluster), PowerModel)


def test_hetero_power_matches_per_group_models(hetero_cluster):
    """Per-node power must equal what each group's homogeneous model says."""
    state = hetero_cluster.state
    rng = np.random.default_rng(0)
    state.level[:] = rng.integers(0, 10, 16)
    state.cpu_util[:] = rng.random(16)
    state.mem_frac[:] = rng.random(16)
    state.nic_frac[:] = rng.random(16)

    hetero = HeterogeneousPowerModel(state)
    per_node = hetero.node_power(state)
    for group, spec in enumerate(state.specs):
        homo = PowerModel(spec)
        ids = np.flatnonzero(state.spec_index == group)
        expected = homo.evaluate(
            state.level[ids], state.cpu_util[ids],
            state.mem_frac[ids], state.nic_frac[ids],
        )
        np.testing.assert_allclose(per_node[ids], expected)
    assert hetero.system_power(state) == pytest.approx(per_node.sum())


def test_same_level_different_watts(hetero_cluster):
    """The same DVFS level draws different power on different types."""
    model = make_power_model(hetero_cluster)
    big = model.evaluate_for_nodes(np.array([0]), 9, 0.9, 0.5, 0.2)
    small = model.evaluate_for_nodes(np.array([8]), 9, 0.9, 0.5, 0.2)
    assert big[0] > small[0]


def test_evaluate_for_nodes_matrix_broadcast(hetero_cluster):
    model = make_power_model(hetero_cluster)
    levels = np.arange(10, dtype=np.int64)
    ids = np.arange(16, dtype=np.int64)
    matrix = model.evaluate_for_nodes(
        ids, levels[:, None], 0.5, 0.3, 0.1
    )
    assert matrix.shape == (10, 16)
    assert np.all(np.diff(matrix, axis=0) > 0)  # monotone in level


def test_theoretical_and_minimum_power_mixed(hetero_cluster):
    state = hetero_cluster.state
    expected_max = 8 * state.specs[0].max_power() + 8 * state.specs[1].max_power()
    assert hetero_cluster.theoretical_max_power() == pytest.approx(expected_max)
    expected_min = 8 * state.specs[0].min_power() + 8 * state.specs[1].min_power()
    assert hetero_cluster.minimum_power() == pytest.approx(expected_min)


def test_speed_of_uses_each_nodes_ladder(hetero_cluster):
    state = hetero_cluster.state
    state.set_levels(np.array([0, 8]), 0)
    speeds = state.speed_of(np.array([0, 8]))
    assert speeds[0] == pytest.approx(1.60 / 2.93, rel=1e-6)
    assert speeds[1] == pytest.approx(1.2 / 2.2, rel=1e-6)


def test_degrade_savings_hetero(hetero_cluster):
    state = hetero_cluster.state
    state.set_load(np.arange(16), 0.9, 0.5, 0.2)
    model = HeterogeneousPowerModel(state)
    savings = model.degrade_savings(state, np.arange(16))
    assert np.all(savings > 0)
    # The hotter type saves more watts per level step.
    assert savings[:8].mean() > savings[8:].mean()


def test_full_capping_loop_on_hetero_cluster(hetero_cluster):
    """Algorithm 1 + MPC runs end to end on a mixed machine."""
    from repro.core import NodeSets, PowerManager, ThresholdController
    from repro.core.policies import make_policy
    from repro.power import SystemPowerMeter

    state = hetero_cluster.state
    state.assign_job(np.arange(0, 6), 0)
    state.set_load(np.arange(0, 6), 0.9, 0.5, 0.3)
    state.assign_job(np.arange(8, 14), 1)
    state.set_load(np.arange(8, 14), 0.9, 0.5, 0.3)

    model = make_power_model(hetero_cluster)
    meter = SystemPowerMeter(model, state)
    current = meter.true_power()
    manager = PowerManager(
        hetero_cluster,
        NodeSets(hetero_cluster),
        meter,
        ThresholdController.fixed(p_low=current * 0.9, p_high=current * 1.5),
        make_policy("mpc"),
    )
    report = manager.control_cycle(1.0)
    assert report.acted
    # MPC picks the high-power job (type-0 nodes draw more watts).
    assert np.all(state.level[0:6] == hetero_cluster.spec.top_level - 1)
    assert np.all(state.level[8:14] == hetero_cluster.spec.top_level)
