"""Unit tests for the structure-of-arrays cluster state."""

import numpy as np
import pytest

from repro.cluster import ClusterState
from repro.cluster.state import IDLE_MEM_FRACTION
from repro.errors import ConfigurationError


def test_initial_state(node_spec):
    s = ClusterState(node_spec, 8)
    assert s.num_nodes == 8
    assert np.all(s.level == node_spec.top_level)
    assert np.all(s.cpu_util == 0.0)
    assert np.all(s.mem_frac == IDLE_MEM_FRACTION)
    assert np.all(s.job_id == -1)
    assert np.all(s.controllable)


def test_initial_level_override(node_spec):
    s = ClusterState(node_spec, 4, initial_level=0)
    assert np.all(s.level == 0)


def test_invalid_construction(node_spec):
    with pytest.raises(ConfigurationError):
        ClusterState(node_spec, 0)
    with pytest.raises(ConfigurationError):
        ClusterState(node_spec, 4, initial_level=99)


def test_set_level_validates(node_spec):
    s = ClusterState(node_spec, 4)
    s.set_level(2, 5)
    assert s.level[2] == 5
    with pytest.raises(ConfigurationError):
        s.set_level(9, 5)
    with pytest.raises(ConfigurationError):
        s.set_level(0, 10)


def test_set_levels_vectorised(node_spec):
    s = ClusterState(node_spec, 8)
    s.set_levels(np.array([1, 3, 5]), np.array([0, 2, 4]))
    assert s.level[1] == 0 and s.level[3] == 2 and s.level[5] == 4


def test_set_levels_broadcast_scalar(node_spec):
    s = ClusterState(node_spec, 8)
    s.set_levels(np.array([0, 1]), 3)
    assert s.level[0] == 3 and s.level[1] == 3


def test_set_levels_validates(node_spec):
    s = ClusterState(node_spec, 4)
    with pytest.raises(ConfigurationError):
        s.set_levels(np.array([99]), 0)
    with pytest.raises(ConfigurationError):
        s.set_levels(np.array([0]), 42)


def test_degrade_floors_at_zero(node_spec):
    s = ClusterState(node_spec, 4)
    ids = np.array([0, 1])
    s.set_levels(ids, np.array([1, 5]))
    s.degrade(ids, steps=3)
    assert s.level[0] == 0
    assert s.level[1] == 2


def test_upgrade_caps_at_top(node_spec):
    s = ClusterState(node_spec, 4)
    ids = np.array([0, 1])
    s.set_levels(ids, np.array([8, 3]))
    s.upgrade(ids, steps=4)
    assert s.level[0] == node_spec.top_level
    assert s.level[1] == 7


def test_assign_and_release_job(node_spec):
    s = ClusterState(node_spec, 8)
    ids = np.array([2, 3, 4])
    s.assign_job(ids, 11)
    assert np.all(s.job_id[ids] == 11)
    s.set_load(ids, 0.9, 0.5, 0.2)
    s.release_job(ids)
    assert np.all(s.job_id[ids] == -1)
    assert np.all(s.cpu_util[ids] == 0.0)
    assert np.all(s.mem_frac[ids] == IDLE_MEM_FRACTION)
    assert np.all(s.nic_frac[ids] == 0.0)


def test_double_assignment_rejected(node_spec):
    s = ClusterState(node_spec, 8)
    s.assign_job(np.array([2]), 1)
    with pytest.raises(ConfigurationError):
        s.assign_job(np.array([2]), 2)


def test_set_load_clips(node_spec):
    s = ClusterState(node_spec, 4)
    s.set_load(np.array([0]), 1.7, -0.2, 0.5)
    assert s.cpu_util[0] == 1.0
    assert s.mem_frac[0] == 0.0
    assert s.nic_frac[0] == 0.5


def test_masks_and_queries(node_spec):
    s = ClusterState(node_spec, 6)
    s.assign_job(np.array([0, 1]), 5)
    s.assign_job(np.array([4]), 9)
    assert list(s.idle_nodes()) == [2, 3, 5]
    assert list(s.nodes_of_job(5)) == [0, 1]
    assert list(s.nodes_of_job(404)) == []
    assert list(s.running_job_ids()) == [5, 9]
    assert s.busy_mask().sum() == 3


def test_privileged_marking(node_spec):
    s = ClusterState(node_spec, 4)
    s.set_privileged(np.array([1, 2]))
    assert not s.controllable[1]
    s.set_privileged(np.array([1]), privileged=False)
    assert s.controllable[1]


def test_copy_is_deep(node_spec):
    s = ClusterState(node_spec, 4)
    clone = s.copy()
    s.set_level(0, 0)
    s.assign_job(np.array([1]), 3)
    assert clone.level[0] == node_spec.top_level
    assert clone.job_id[1] == -1


def test_node_view_bounds(node_spec):
    s = ClusterState(node_spec, 4)
    with pytest.raises(ConfigurationError):
        s.node(4)
    assert len(s.nodes()) == 4
