"""Unit tests for processor, memory and NIC specifications."""

import numpy as np
import pytest

from repro.cluster import DvfsTable, MemorySpec, NicSpec, ProcessorSpec
from repro.errors import ConfigurationError
from repro.units import gib


# ----------------------------------------------------------------------
# ProcessorSpec
# ----------------------------------------------------------------------
def test_xeon_spec_figures():
    cpu = ProcessorSpec.xeon_x5670()
    assert cpu.cores == 6
    assert cpu.max_power_w == pytest.approx(95.0)
    assert cpu.dvfs.num_levels == 10


def test_idle_power_per_level_monotone_and_bounded():
    cpu = ProcessorSpec.xeon_x5670()
    idle = cpu.idle_power_per_level()
    assert idle[0] == pytest.approx(cpu.idle_power_bottom_w)
    assert idle[-1] == pytest.approx(cpu.idle_power_top_w)
    assert np.all(np.diff(idle) >= 0)


def test_dynamic_power_top_is_max_minus_idle():
    cpu = ProcessorSpec.xeon_x5670()
    dyn = cpu.dynamic_power_per_level()
    assert dyn[-1] == pytest.approx(cpu.max_power_w - cpu.idle_power_top_w)
    assert np.all(np.diff(dyn) > 0)


def test_max_power_per_level_top_equals_tdp():
    cpu = ProcessorSpec.xeon_x5670()
    assert cpu.max_power_per_level()[-1] == pytest.approx(cpu.max_power_w)


def test_processor_validation():
    dvfs = DvfsTable.xeon_x5670()
    with pytest.raises(ConfigurationError):
        ProcessorSpec("x", 0, dvfs, 95.0, 32.0, 20.0)
    with pytest.raises(ConfigurationError):
        ProcessorSpec("x", 6, dvfs, -1.0, 32.0, 20.0)
    with pytest.raises(ConfigurationError):
        ProcessorSpec("x", 6, dvfs, 95.0, 20.0, 32.0)  # bottom > top
    with pytest.raises(ConfigurationError):
        ProcessorSpec("x", 6, dvfs, 95.0, 96.0, 20.0)  # idle >= max


# ----------------------------------------------------------------------
# MemorySpec
# ----------------------------------------------------------------------
def test_tianhe_memory_capacity():
    mem = MemorySpec.tianhe_ddr3()
    assert mem.devices == 12
    assert mem.total_capacity_bytes == gib(48)


def test_memory_power_aggregates():
    mem = MemorySpec.tianhe_ddr3()
    assert mem.max_dynamic_power_w == pytest.approx(12 * 3.0)
    assert mem.total_idle_power_w == pytest.approx(12 * 1.5)


def test_memory_dynamic_power_level_coupling():
    mem = MemorySpec.tianhe_ddr3()
    dvfs = DvfsTable.xeon_x5670()
    p = mem.dynamic_power_per_level(dvfs)
    assert p[-1] == pytest.approx(mem.max_dynamic_power_w)
    assert np.all(np.diff(p) > 0)  # coupled part rises with speed
    # At coupling c, bottom = max·((1-c) + c·s0).
    s0 = dvfs.speed(0)
    expected = mem.max_dynamic_power_w * ((1 - 0.4) + 0.4 * s0)
    assert p[0] == pytest.approx(expected)


def test_memory_zero_coupling_is_flat():
    mem = MemorySpec(
        devices=2,
        capacity_per_device_bytes=gib(4),
        max_dynamic_power_per_device_w=3.0,
        idle_power_per_device_w=1.0,
        dvfs_coupling=0.0,
    )
    p = mem.dynamic_power_per_level(DvfsTable.xeon_x5670())
    assert np.allclose(p, p[0])


def test_memory_validation():
    with pytest.raises(ConfigurationError):
        MemorySpec(0, gib(4), 3.0, 1.0)
    with pytest.raises(ConfigurationError):
        MemorySpec(2, 0, 3.0, 1.0)
    with pytest.raises(ConfigurationError):
        MemorySpec(2, gib(4), -1.0, 1.0)
    with pytest.raises(ConfigurationError):
        MemorySpec(2, gib(4), 3.0, 1.0, dvfs_coupling=1.5)


# ----------------------------------------------------------------------
# NicSpec
# ----------------------------------------------------------------------
def test_tianhe_nic_figures():
    nic = NicSpec.tianhe_interconnect()
    assert nic.bandwidth_bytes_per_s == pytest.approx(20e9)


def test_nic_utilisation_formula():
    nic = NicSpec.tianhe_interconnect()
    # Half the link's capacity over a 2-second interval.
    assert nic.utilisation(20e9, 2.0) == pytest.approx(0.5)


def test_nic_utilisation_clamped():
    nic = NicSpec.tianhe_interconnect()
    assert nic.utilisation(1e15, 1.0) == 1.0
    assert nic.utilisation(0.0, 1.0) == 0.0


def test_nic_utilisation_invalid_interval():
    nic = NicSpec.tianhe_interconnect()
    with pytest.raises(ConfigurationError):
        nic.utilisation(1e9, 0.0)


def test_nic_dynamic_power_per_level():
    nic = NicSpec.tianhe_interconnect()
    p = nic.dynamic_power_per_level(DvfsTable.xeon_x5670())
    assert p[-1] == pytest.approx(nic.max_dynamic_power_w)
    assert np.all(p > 0)


def test_nic_validation():
    with pytest.raises(ConfigurationError):
        NicSpec(0.0, 15.0, 10.0)
    with pytest.raises(ConfigurationError):
        NicSpec(1e9, -1.0, 10.0)
    with pytest.raises(ConfigurationError):
        NicSpec(1e9, 15.0, -1.0)
    with pytest.raises(ConfigurationError):
        NicSpec(1e9, 15.0, 10.0, dvfs_coupling=2.0)
