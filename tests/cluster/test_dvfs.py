"""Unit tests for DVFS tables."""

import numpy as np
import pytest

from repro.cluster import DvfsTable
from repro.errors import ConfigurationError
from repro.units import ghz


def test_xeon_table_has_ten_levels():
    t = DvfsTable.xeon_x5670()
    assert t.num_levels == 10
    assert t.top_level == 9


def test_xeon_frequency_range():
    t = DvfsTable.xeon_x5670()
    assert t.frequency(0) == pytest.approx(ghz(1.60))
    assert t.frequency(9) == pytest.approx(ghz(2.93))


def test_frequencies_strictly_increasing():
    t = DvfsTable.xeon_x5670()
    freqs = [t.frequency(l) for l in range(t.num_levels)]
    assert all(b > a for a, b in zip(freqs, freqs[1:]))


def test_speed_normalised_at_top():
    t = DvfsTable.xeon_x5670()
    assert t.speed(t.top_level) == pytest.approx(1.0)
    assert t.speed(0) == pytest.approx(1.60 / 2.93, rel=1e-6)


def test_dynamic_scale_normalised_and_monotone():
    t = DvfsTable.xeon_x5670()
    scales = np.asarray(t.dynamic_scale(np.arange(10)))
    assert scales[-1] == pytest.approx(1.0)
    assert np.all(np.diff(scales) > 0)
    # f·V² at the bottom: (1.6·0.85²)/(2.93·1.25²)
    assert scales[0] == pytest.approx((1.6 * 0.85**2) / (2.93 * 1.25**2), rel=1e-6)


def test_vectorised_speed_matches_scalar():
    t = DvfsTable.xeon_x5670()
    levels = np.array([0, 3, 9])
    vec = np.asarray(t.speed(levels))
    for i, l in enumerate(levels):
        assert vec[i] == pytest.approx(t.speed(int(l)))


def test_clamp():
    t = DvfsTable.xeon_x5670()
    assert t.clamp(-3) == 0
    assert t.clamp(100) == 9
    assert t.clamp(4) == 4


def test_level_bounds_checked():
    t = DvfsTable.xeon_x5670()
    with pytest.raises(ConfigurationError):
        t.frequency(10)
    with pytest.raises(ConfigurationError):
        t.voltage(-1)


def test_linear_builder():
    t = DvfsTable.linear(5, 1e9, 2e9)
    assert t.num_levels == 5
    assert t.frequency(0) == pytest.approx(1e9)
    assert t.frequency(4) == pytest.approx(2e9)


def test_linear_single_level():
    t = DvfsTable.linear(1, 1e9, 2e9)
    assert t.num_levels == 1
    assert t.speed(0) == pytest.approx(1.0)


def test_linear_invalid():
    with pytest.raises(ConfigurationError):
        DvfsTable.linear(0, 1e9, 2e9)
    with pytest.raises(ConfigurationError):
        DvfsTable.linear(3, 2e9, 1e9)


def test_validation_rejects_bad_tables():
    with pytest.raises(ConfigurationError):
        DvfsTable(frequencies_hz=(), voltages_v=())
    with pytest.raises(ConfigurationError):
        DvfsTable(frequencies_hz=(1e9, 2e9), voltages_v=(1.0,))
    with pytest.raises(ConfigurationError):
        DvfsTable(frequencies_hz=(2e9, 1e9), voltages_v=(1.0, 1.1))
    with pytest.raises(ConfigurationError):
        DvfsTable(frequencies_hz=(1e9, 2e9), voltages_v=(1.1, 1.0))
    with pytest.raises(ConfigurationError):
        DvfsTable(frequencies_hz=(-1e9, 2e9), voltages_v=(1.0, 1.1))
