"""Unit tests for NodeSpec and the ComputeNode view."""

import numpy as np
import pytest

from repro.cluster import Cluster, NodeSpec
from repro.cluster.cpu import ProcessorSpec
from repro.cluster.memory import MemorySpec
from repro.cluster.nic import NicSpec
from repro.errors import ConfigurationError


def test_tianhe_node_shape(node_spec):
    assert node_spec.sockets == 2
    assert node_spec.cores == 12
    assert node_spec.num_levels == 10
    assert node_spec.top_level == 9


def test_idle_power_composition(node_spec):
    expected_top = (
        node_spec.board_power_w
        + 2 * node_spec.processor.idle_power_per_level()[-1]
        + node_spec.memory.total_idle_power_w
        + node_spec.nic.idle_power_w
    )
    assert node_spec.idle_power_per_level[-1] == pytest.approx(expected_top)


def test_max_power_is_sum_of_components(node_spec):
    l = node_spec.top_level
    expected = (
        node_spec.idle_power_per_level[l]
        + node_spec.cpu_dynamic_per_level[l]
        + node_spec.mem_dynamic_per_level[l]
        + node_spec.nic_dynamic_per_level[l]
    )
    assert node_spec.max_power() == pytest.approx(expected)


def test_max_power_monotone_in_level(node_spec):
    powers = [node_spec.max_power(l) for l in range(node_spec.num_levels)]
    assert all(b > a for a, b in zip(powers, powers[1:]))


def test_min_power_is_idle_at_bottom(node_spec):
    assert node_spec.min_power() == pytest.approx(node_spec.idle_power_per_level[0])


def test_realistic_magnitudes(node_spec):
    """Blade-level sanity: idle in 120-220 W, peak in 280-450 W."""
    assert 120 <= node_spec.min_power() <= 220
    assert 280 <= node_spec.max_power() <= 450


def test_coefficient_arrays_read_only(node_spec):
    with pytest.raises(ValueError):
        node_spec.idle_power_per_level[0] = 0.0


def test_node_spec_validation():
    cpu = ProcessorSpec.xeon_x5670()
    mem = MemorySpec.tianhe_ddr3()
    nic = NicSpec.tianhe_interconnect()
    with pytest.raises(ConfigurationError):
        NodeSpec(cpu, 0, mem, nic, 70.0)
    with pytest.raises(ConfigurationError):
        NodeSpec(cpu, 2, mem, nic, -1.0)


def test_compute_node_view_reflects_state(small_cluster):
    node = small_cluster.node(3)
    assert node.node_id == 3
    assert node.level == small_cluster.spec.top_level
    assert node.job_id is None
    assert node.controllable

    node.level = 2
    assert small_cluster.state.level[3] == 2
    assert node.frequency == pytest.approx(
        small_cluster.spec.dvfs.frequency(2)
    )


def test_compute_node_shows_job(small_cluster):
    small_cluster.state.assign_job(np.array([3]), 77)
    small_cluster.state.set_load(np.array([3]), 0.5, 0.4, 0.1)
    node = small_cluster.node(3)
    assert node.job_id == 77
    assert node.cpu_utilisation == pytest.approx(0.5)
    assert node.memory_fraction == pytest.approx(0.4)
    assert node.nic_utilisation == pytest.approx(0.1)


def test_cluster_capacity_queries(small_cluster):
    assert small_cluster.num_nodes == 16
    assert small_cluster.cores_per_node == 12
    assert small_cluster.total_cores == 192
    assert small_cluster.nodes_for_processes(1) == 1
    assert small_cluster.nodes_for_processes(12) == 1
    assert small_cluster.nodes_for_processes(13) == 2
    assert small_cluster.nodes_for_processes(256) == 22


def test_nodes_for_processes_invalid(small_cluster):
    with pytest.raises(ConfigurationError):
        small_cluster.nodes_for_processes(0)


def test_theoretical_max_power(small_cluster):
    expected = 16 * small_cluster.spec.max_power()
    assert small_cluster.theoretical_max_power() == pytest.approx(expected)


def test_set_privileged_nodes(small_cluster):
    small_cluster.set_privileged_nodes([0, 1])
    assert not small_cluster.state.controllable[0]
    assert not small_cluster.state.controllable[1]
    assert small_cluster.state.controllable[2]
    # Re-declaring replaces the old set.
    small_cluster.set_privileged_nodes([5])
    assert small_cluster.state.controllable[0]
    assert not small_cluster.state.controllable[5]


def test_tianhe_default_size():
    assert Cluster.tianhe_1a().num_nodes == 128
