"""Tests for the telemetry validation/trust/quarantine pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    IntegrityConfig,
    MeterIntegrityMonitor,
    TelemetryValidator,
)

N = 4


def _validator(estimator, node_spec, config=None):
    return TelemetryValidator(
        config or IntegrityConfig(),
        estimator,
        np.arange(N, dtype=np.int64),
        node_spec.top_level,
    )


def _sweep(validator, node_spec, cpu=0.5, mem=0.3, nic=0.1, fresh=True, busy=True):
    """Validate one uniform sweep, with optional per-node overrides."""
    top = node_spec.top_level
    level = np.full(N, top, dtype=np.int64)
    cpu_util = np.asarray(cpu, dtype=np.float64) * np.ones(N)
    mem_frac = np.asarray(mem, dtype=np.float64) * np.ones(N)
    nic_frac = np.asarray(nic, dtype=np.float64) * np.ones(N)
    job_id = np.where(busy, 0, -1) * np.ones(N, dtype=np.int64)
    fresh_mask = np.asarray(fresh, dtype=bool) & np.ones(N, dtype=bool)
    return validator.validate(
        level, cpu_util, mem_frac, nic_frac, job_id, fresh_mask
    )


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_inverted_hysteresis_rejected():
    with pytest.raises(ConfigurationError):
        IntegrityConfig(quarantine_trust=0.9, release_trust=0.5)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"range_margin": -0.1},
        {"hard_penalty": 1.5},
        {"quarantine_trust": 0.0},
        {"stuck_window": 1},
        {"min_quarantine_cycles": 0},
        {"meter_residual_fraction": 0.0},
        {"meter_distrust_cycles": 0},
    ],
)
def test_bad_knobs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        IntegrityConfig(**kwargs)


# ----------------------------------------------------------------------
# Stage 1: garbage
# ----------------------------------------------------------------------
def test_clean_sweeps_reject_nothing_and_keep_full_trust(estimator, node_spec):
    v = _validator(estimator, node_spec)
    for k in range(20):
        # Honest telemetry jitters a little every cycle.
        result = _sweep(v, node_spec, cpu=0.45 + 0.001 * k)
        assert not result.rejected.any()
        assert not result.quarantined.any()
    np.testing.assert_allclose(v.trust, 1.0)
    assert v.rejected_samples == 0


def test_nan_sample_is_hard_rejected(estimator, node_spec):
    v = _validator(estimator, node_spec)
    cpu = np.full(N, 0.5)
    cpu[1] = np.nan
    result = _sweep(v, node_spec, cpu=cpu)
    np.testing.assert_array_equal(result.rejected, [False, True, False, False])
    assert v.rejected_samples == 1
    assert v.trust[1] == pytest.approx(1.0 - IntegrityConfig().hard_penalty)


def test_negative_and_superunity_samples_are_hard_rejected(estimator, node_spec):
    v = _validator(estimator, node_spec)
    cpu = np.array([0.5, -0.4, 1.5, 0.5])
    result = _sweep(v, node_spec, cpu=cpu)
    np.testing.assert_array_equal(result.rejected, [False, True, True, False])


def test_stale_rows_are_never_charged(estimator, node_spec):
    v = _validator(estimator, node_spec)
    cpu = np.full(N, np.nan)  # garbage, but not fresh
    result = _sweep(v, node_spec, cpu=cpu, fresh=False)
    assert not result.rejected.any()
    np.testing.assert_allclose(v.trust, 1.0)


# ----------------------------------------------------------------------
# Stage 2: DVFS power-envelope cross-check
# ----------------------------------------------------------------------
def test_envelope_breach_is_hard_rejected(estimator, node_spec):
    # Wide range margin lets the sample through stage 1; a zero envelope
    # margin then catches the impossible predicted power.
    cfg = IntegrityConfig(range_margin=0.30, envelope_margin=0.0)
    v = _validator(estimator, node_spec, cfg)
    cpu = np.array([0.5, 1.25, 0.5, 0.5])
    mem = np.array([0.3, 1.25, 0.3, 0.3])
    nic = np.array([0.1, 1.25, 0.1, 0.1])
    result = _sweep(v, node_spec, cpu=cpu, mem=mem, nic=nic)
    np.testing.assert_array_equal(result.rejected, [False, True, False, False])


# ----------------------------------------------------------------------
# Stage 3: rate-of-change (soft)
# ----------------------------------------------------------------------
def test_spike_charges_soft_penalty_without_rejecting(estimator, node_spec):
    v = _validator(estimator, node_spec)
    _sweep(v, node_spec, cpu=0.2)
    cpu = np.array([0.2, 0.95, 0.2, 0.2])  # node 1 jumps by 0.75
    result = _sweep(v, node_spec, cpu=cpu)
    assert not result.rejected.any()
    cfg = IntegrityConfig()
    assert v.trust[1] == pytest.approx(1.0 - cfg.soft_penalty)
    assert v.trust[0] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Stage 4: stuck-at (soft)
# ----------------------------------------------------------------------
def test_frozen_busy_sensor_bleeds_trust(estimator, node_spec):
    cfg = IntegrityConfig(stuck_window=3)
    v = _validator(estimator, node_spec, cfg)
    for _ in range(6):  # bit-identical busy readings, cycle after cycle
        _sweep(v, node_spec, cpu=0.5)
    # Runs of 3..5 repeats each charged the stuck penalty.
    assert v.trust[0] == pytest.approx(1.0 - 3 * cfg.stuck_penalty)


def test_saturated_sensor_is_exempt_from_stuck_detection(estimator, node_spec):
    cfg = IntegrityConfig(stuck_window=3)
    v = _validator(estimator, node_spec, cfg)
    for _ in range(8):  # pinned at the ceiling: clipping, not corruption
        _sweep(v, node_spec, cpu=1.0)
    np.testing.assert_allclose(v.trust, 1.0)


def test_idle_node_is_exempt_from_stuck_detection(estimator, node_spec):
    cfg = IntegrityConfig(stuck_window=3)
    v = _validator(estimator, node_spec, cfg)
    for _ in range(8):  # idle nodes legitimately sit at a constant floor
        _sweep(v, node_spec, cpu=0.02, busy=False)
    np.testing.assert_allclose(v.trust, 1.0)


# ----------------------------------------------------------------------
# Quarantine state machine
# ----------------------------------------------------------------------
def test_quarantine_entry_release_and_hysteresis(estimator, node_spec):
    cfg = IntegrityConfig(min_quarantine_cycles=3, trust_recovery=0.25)
    v = _validator(estimator, node_spec, cfg)
    bad = np.array([0.5, np.nan, 0.5, 0.5])
    result = _sweep(v, node_spec, cpu=bad)
    assert not result.quarantined.any()  # trust 0.65: suspicious, not out
    result = _sweep(v, node_spec, cpu=bad)
    result = _sweep(v, node_spec, cpu=bad)  # trust hits 0 -> quarantined
    np.testing.assert_array_equal(
        result.quarantined, [False, True, False, False]
    )
    assert v.quarantine_entries == 1
    assert v.any_quarantined

    # Clean data heals trust, but release also needs the minimum dwell.
    result = _sweep(v, node_spec, cpu=0.40)
    assert result.quarantined[1]
    for k in range(3):
        result = _sweep(v, node_spec, cpu=0.41 + 0.001 * k)
    assert not result.quarantined.any()
    assert v.quarantined_node_cycles >= 3


def test_release_requires_trust_above_hysteresis(estimator, node_spec):
    cfg = IntegrityConfig(min_quarantine_cycles=1, trust_recovery=0.01)
    v = _validator(estimator, node_spec, cfg)
    bad = np.array([0.5, np.nan, 0.5, 0.5])
    for _ in range(3):
        _sweep(v, node_spec, cpu=bad)
    assert v.any_quarantined
    # 0.01/cycle cannot clear release_trust=0.9 in a handful of cycles.
    for k in range(10):
        result = _sweep(v, node_spec, cpu=0.45 + 0.001 * k)
    assert result.quarantined[1]


# ----------------------------------------------------------------------
# Meter integrity monitor
# ----------------------------------------------------------------------
def test_meter_distrust_needs_a_persistent_residual():
    cfg = IntegrityConfig(meter_distrust_cycles=3, meter_recovery_cycles=2)
    mon = MeterIntegrityMonitor(cfg)
    # One bad cycle is noise, not byzantine behaviour.
    assert mon.filter(500.0, 1000.0, 1.0) == 500.0
    assert mon.filter(1000.0, 1000.0, 2.0) == 1000.0
    assert not mon.distrusted
    # Three consecutive high-residual cycles flip it.
    for t in (3.0, 4.0):
        assert mon.filter(500.0, 1000.0, t) == 500.0
    assert mon.filter(500.0, 1000.0, 5.0) == 1000.0  # distrusted: max()
    assert mon.distrusted
    assert mon.distrust_events == 1


def test_distrusted_meter_recovers_after_clean_streak():
    cfg = IntegrityConfig(meter_distrust_cycles=2, meter_recovery_cycles=2)
    mon = MeterIntegrityMonitor(cfg)
    for t in (1.0, 2.0):
        mon.filter(500.0, 1000.0, t)
    assert mon.distrusted
    # While distrusted the returned power never under-estimates.
    assert mon.filter(980.0, 1000.0, 3.0) == 1000.0
    assert mon.filter(1005.0, 1000.0, 4.0) == 1005.0
    assert not mon.distrusted
    # Counted: the entry cycle and the first recovery-streak cycle.
    assert mon.distrusted_cycles == 2
    assert mon.filter(980.0, 1000.0, 5.0) == 980.0
