"""Unit tests for the management-cost model and the series recorder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MetricError
from repro.telemetry import ManagementCostModel, TimeSeriesRecorder


# ----------------------------------------------------------------------
# ManagementCostModel
# ----------------------------------------------------------------------
def test_cost_zero_nodes_is_fixed_only():
    model = ManagementCostModel(fixed_ms=5.0, per_node_ms=1.0, pairwise_us=10.0)
    assert model.cycle_cost_s(0) == pytest.approx(0.005)


def test_cost_composition():
    model = ManagementCostModel(fixed_ms=5.0, per_node_ms=1.0, pairwise_us=10.0)
    # 5 ms + 100 ms + 10us·100² = 5ms + 100ms + 100ms
    assert model.cycle_cost_s(100) == pytest.approx(0.005 + 0.1 + 0.1)


def test_cost_superlinear():
    """Figure 5's observation: per-node cost grows with the set size."""
    model = ManagementCostModel()
    per_node_small = model.cycle_cost_s(8) / 8
    per_node_large = model.cycle_cost_s(128) / 128
    assert per_node_large > per_node_small


def test_cpu_utilization_clamped():
    model = ManagementCostModel(cycle_period_s=0.01)
    assert model.cpu_utilization(1000) == 1.0


def test_cpu_utilization_vectorised():
    model = ManagementCostModel()
    sizes = np.array([0, 8, 128])
    out = np.asarray(model.cpu_utilization(sizes))
    assert out.shape == (3,)
    assert np.all(np.diff(out) > 0)


def test_saturation_size():
    model = ManagementCostModel(
        fixed_ms=0.0, per_node_ms=0.0, pairwise_us=100.0, cycle_period_s=1.0
    )
    # 100us·n² >= 1s ⇒ n >= 100
    assert model.saturation_size() == 100


def test_saturation_size_linear_only():
    model = ManagementCostModel(
        fixed_ms=0.0, per_node_ms=10.0, pairwise_us=0.0, cycle_period_s=1.0
    )
    assert model.saturation_size() == 100


def test_cost_validation():
    with pytest.raises(ConfigurationError):
        ManagementCostModel(fixed_ms=-1.0)
    with pytest.raises(ConfigurationError):
        ManagementCostModel(cycle_period_s=0.0)
    with pytest.raises(ConfigurationError):
        ManagementCostModel().cycle_cost_s(-1)


# ----------------------------------------------------------------------
# TimeSeriesRecorder
# ----------------------------------------------------------------------
def test_record_and_read_back():
    rec = TimeSeriesRecorder()
    rec.record("p", 0.0, 10.0)
    rec.record("p", 1.0, 20.0)
    times, values = rec.arrays("p")
    np.testing.assert_array_equal(times, [0.0, 1.0])
    np.testing.assert_array_equal(values, [10.0, 20.0])


def test_multiple_series():
    rec = TimeSeriesRecorder()
    rec.record("a", 0.0, 1.0)
    rec.record("b", 0.0, 2.0)
    assert rec.series_names() == ["a", "b"]
    assert "a" in rec and "c" not in rec
    assert rec.length("a") == 1
    assert rec.length("missing") == 0


def test_times_must_be_monotone():
    rec = TimeSeriesRecorder()
    rec.record("p", 5.0, 1.0)
    with pytest.raises(MetricError):
        rec.record("p", 4.0, 1.0)
    rec.record("p", 5.0, 2.0)  # equal times allowed


def test_missing_series_raises():
    rec = TimeSeriesRecorder()
    with pytest.raises(MetricError):
        rec.arrays("nope")
    with pytest.raises(MetricError):
        rec.last("nope")


def test_last_and_maximum():
    rec = TimeSeriesRecorder()
    for t, v in [(0.0, 3.0), (1.0, 7.0), (2.0, 5.0)]:
        rec.record("p", t, v)
    assert rec.last("p") == 5.0
    assert rec.maximum("p") == 7.0


def test_cache_invalidated_on_append():
    rec = TimeSeriesRecorder()
    rec.record("p", 0.0, 1.0)
    first = rec.values("p")
    assert len(first) == 1
    rec.record("p", 1.0, 2.0)
    assert len(rec.values("p")) == 2


def test_cost_rejects_negative_node_counts():
    model = ManagementCostModel()
    with pytest.raises(ConfigurationError):
        model.cycle_cost_s(-1)
    with pytest.raises(ConfigurationError):
        model.cycle_cost_s(np.array([0, 4, -2]))


def test_cycle_cost_array_path_matches_scalars():
    model = ManagementCostModel(fixed_ms=2.0, per_node_ms=0.5, pairwise_us=7.0)
    sizes = np.array([0, 1, 16, 128])
    vec = model.cycle_cost_s(sizes)
    assert isinstance(vec, np.ndarray)
    for i, n in enumerate(sizes):
        assert vec[i] == pytest.approx(model.cycle_cost_s(int(n)))


def test_saturation_size_with_all_zero_coefficients():
    # Fixed cost alone already saturates the node: size 0.
    model = ManagementCostModel(
        fixed_ms=2000.0, per_node_ms=0.0, pairwise_us=0.0, cycle_period_s=1.0
    )
    assert model.saturation_size() == 0
    # Nothing ever saturates: effectively infinite.
    never = ManagementCostModel(
        fixed_ms=1.0, per_node_ms=0.0, pairwise_us=0.0, cycle_period_s=1.0
    )
    assert never.saturation_size() > 10**9


def test_saturation_size_is_tight():
    model = ManagementCostModel()
    n = model.saturation_size()
    assert model.cycle_cost_s(n) >= model.cycle_period_s - 1e-9
    if n > 0:
        assert model.cycle_cost_s(n - 1) < model.cycle_period_s
