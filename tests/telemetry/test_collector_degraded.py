"""Tests for the collector's last-known-good cache and staleness signals."""

import numpy as np
import pytest

from repro.core import NodeSets
from repro.errors import TelemetryError
from repro.telemetry import TelemetryCollector
from repro.telemetry.collector import TelemetrySnapshot


class _ScriptedDrops:
    """Fault-injector stand-in: a queue of per-sweep drop masks."""

    def __init__(self, masks):
        self._masks = list(masks)

    def telemetry_drop_mask(self, node_ids):
        if self._masks:
            return np.asarray(self._masks.pop(0), dtype=bool)
        return np.zeros(len(node_ids), dtype=bool)

    def corrupt_telemetry(self, node_ids, cpu_util, mem_frac, nic_frac):
        return np.zeros(len(node_ids), dtype=bool)


def _collector(cluster, injector=None):
    sets = NodeSets(cluster)
    return TelemetryCollector(cluster.state, sets.candidates, None, injector)


def test_snapshot_defaults_are_fault_free():
    snap = TelemetrySnapshot(
        time=0.0,
        node_ids=np.array([0, 1]),
        level=np.array([9, 9]),
        cpu_util=np.array([0.5, 0.5]),
        mem_frac=np.array([0.2, 0.2]),
        nic_frac=np.array([0.1, 0.1]),
        job_id=np.array([0, 0]),
    )
    np.testing.assert_array_equal(snap.age, np.zeros(2))
    assert snap.coverage == 1.0
    assert not snap.stale_mask(0.5).any()


def test_snapshot_age_misalignment_rejected():
    with pytest.raises(TelemetryError):
        TelemetrySnapshot(
            time=0.0,
            node_ids=np.array([0, 1]),
            level=np.array([9, 9]),
            cpu_util=np.array([0.5, 0.5]),
            mem_frac=np.array([0.2, 0.2]),
            nic_frac=np.array([0.1, 0.1]),
            job_id=np.array([0, 0]),
            age=np.zeros(3),
        )


def test_snapshot_coverage_validated():
    with pytest.raises(TelemetryError):
        TelemetrySnapshot(
            time=0.0,
            node_ids=np.array([0]),
            level=np.array([9]),
            cpu_util=np.array([0.5]),
            mem_frac=np.array([0.2]),
            nic_frac=np.array([0.1]),
            job_id=np.array([0]),
            coverage=1.5,
        )


def test_empty_snapshot_coverage_is_vacuously_full():
    snap = TelemetrySnapshot(
        time=0.0,
        node_ids=np.array([], dtype=np.int64),
        level=np.array([], dtype=np.int64),
        cpu_util=np.array([]),
        mem_frac=np.array([]),
        nic_frac=np.array([]),
        job_id=np.array([], dtype=np.int64),
    )
    assert snap.size == 0
    assert snap.coverage == 1.0
    assert not snap.stale_mask(0.0).any()


class _ForbiddenDrops:
    """Injector stand-in that must never be consulted."""

    def telemetry_drop_mask(self, node_ids):
        raise AssertionError("drop mask requested for an empty candidate set")


def test_empty_candidate_set_has_full_coverage_under_faults(busy_cluster):
    # Convention under test: an empty candidate set is vacuously fully
    # covered (coverage 1.0, no ages), and the injector is never asked
    # for a drop mask — so the manager's forced-red blackout rung can
    # never fire on the *absence* of candidates, only on dark ones.
    collector = TelemetryCollector(
        busy_cluster.state,
        np.array([], dtype=np.int64),
        None,
        _ForbiddenDrops(),
    )
    for t in (1.0, 2.0, 3.0):
        snap = collector.collect(t)
    assert snap.size == 0
    assert snap.coverage == 1.0
    assert snap.age.shape == (0,)
    assert collector.dropped_samples == 0
    assert collector.collections == 3


def test_collect_without_injector_is_fresh(busy_cluster):
    collector = _collector(busy_cluster)
    snap = collector.collect(1.0)
    assert snap.coverage == 1.0
    np.testing.assert_array_equal(snap.age, np.zeros(snap.size))
    assert collector.dropped_samples == 0


def test_dropped_sample_served_from_last_known_good(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop_node3 = np.zeros(n, dtype=bool)
    drop_node3[3] = True
    collector = _collector(
        busy_cluster, _ScriptedDrops([np.zeros(n, dtype=bool), drop_node3])
    )
    first = collector.collect(1.0)
    # Change node 3's true load, then drop its sample: the snapshot must
    # still show the old (cached) values.
    busy_cluster.state.set_load(np.array([3]), 0.99, 0.88, 0.77)
    second = collector.collect(2.0)
    assert second.cpu_util[3] == first.cpu_util[3] != 0.99
    assert second.age[3] == pytest.approx(1.0)
    assert second.age[0] == 0.0
    assert second.coverage == pytest.approx((n - 1) / n)
    assert collector.dropped_samples == 1


def test_age_accumulates_over_consecutive_drops(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop5 = np.zeros(n, dtype=bool)
    drop5[5] = True
    collector = _collector(
        busy_cluster,
        _ScriptedDrops([np.zeros(n, dtype=bool)] + [drop5.copy()] * 3),
    )
    collector.collect(0.0)
    for t in (1.0, 2.0, 3.0):
        snap = collector.collect(t)
    assert snap.age[5] == pytest.approx(3.0)
    assert snap.stale_mask(2.5)[5]
    assert not snap.stale_mask(2.5)[0]


def test_node_dropped_on_first_sweep_is_infinitely_stale(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop0 = np.zeros(n, dtype=bool)
    drop0[0] = True
    collector = _collector(busy_cluster, _ScriptedDrops([drop0]))
    snap = collector.collect(5.0)
    assert np.isinf(snap.age[0])
    assert snap.stale_mask(1e9)[0]
    # The primed deploy-time cache still provides a plausible row.
    assert snap.level[0] == busy_cluster.state.level[0]


def test_fresh_report_resets_age(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop7 = np.zeros(n, dtype=bool)
    drop7[7] = True
    collector = _collector(
        busy_cluster,
        _ScriptedDrops([drop7.copy(), drop7.copy(), np.zeros(n, dtype=bool)]),
    )
    collector.collect(1.0)
    collector.collect(2.0)
    snap = collector.collect(3.0)
    assert snap.age[7] == 0.0
    assert snap.coverage == 1.0


def test_restore_state_rebuilds_lkg_cache(busy_cluster):
    """A successor collector restored from a journaled snapshot behaves
    exactly like the crashed one: cached rows, ages, and the previous/
    current chaining all line up."""
    n = busy_cluster.state.num_nodes
    drop3 = np.zeros(n, dtype=bool)
    drop3[3] = True
    primary = _collector(
        busy_cluster, _ScriptedDrops([np.zeros(n, dtype=bool), drop3])
    )
    primary.collect(1.0)
    last = primary.collect(2.0)

    successor = _collector(
        busy_cluster, _ScriptedDrops([drop3.copy()])
    )
    successor.restore_state(
        last,
        collections=primary.collections,
        dropped_samples=primary.dropped_samples,
        accumulated_cost_s=primary.accumulated_cost_s,
    )
    assert successor.collections == 2
    assert successor.dropped_samples == 1
    assert successor.current is last
    assert successor.previous is None

    # Node 3 drops again on the first post-recovery sweep: it must be
    # served from the journal-reconstructed cache with age measured from
    # its *original* last report (t=1.0), not from the recovery point.
    snap = successor.collect(4.0)
    assert snap.cpu_util[3] == last.cpu_util[3]
    assert snap.age[3] == pytest.approx(3.0)
    assert successor.previous is last


def test_restore_state_rejects_foreign_candidate_set(busy_cluster):
    primary = _collector(busy_cluster, _ScriptedDrops([]))
    last = primary.collect(1.0)
    sets = NodeSets(busy_cluster)
    other = TelemetryCollector(
        busy_cluster.state, sets.candidates[:4], None, _ScriptedDrops([])
    )
    with pytest.raises(TelemetryError):
        other.restore_state(last)


def test_restore_state_with_no_snapshot_keeps_deploy_priming(busy_cluster):
    collector = _collector(busy_cluster, _ScriptedDrops([]))
    collector.restore_state(None, collections=0)
    assert collector.current is None
    snap = collector.collect(1.0)
    assert snap.coverage == 1.0
