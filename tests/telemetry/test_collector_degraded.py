"""Tests for the collector's last-known-good cache and staleness signals."""

import numpy as np
import pytest

from repro.core import NodeSets
from repro.errors import TelemetryError
from repro.telemetry import TelemetryCollector
from repro.telemetry.collector import TelemetrySnapshot


class _ScriptedDrops:
    """Fault-injector stand-in: a queue of per-sweep drop masks."""

    def __init__(self, masks):
        self._masks = list(masks)

    def telemetry_drop_mask(self, node_ids):
        if self._masks:
            return np.asarray(self._masks.pop(0), dtype=bool)
        return np.zeros(len(node_ids), dtype=bool)


def _collector(cluster, injector=None):
    sets = NodeSets(cluster)
    return TelemetryCollector(cluster.state, sets.candidates, None, injector)


def test_snapshot_defaults_are_fault_free():
    snap = TelemetrySnapshot(
        time=0.0,
        node_ids=np.array([0, 1]),
        level=np.array([9, 9]),
        cpu_util=np.array([0.5, 0.5]),
        mem_frac=np.array([0.2, 0.2]),
        nic_frac=np.array([0.1, 0.1]),
        job_id=np.array([0, 0]),
    )
    np.testing.assert_array_equal(snap.age, np.zeros(2))
    assert snap.coverage == 1.0
    assert not snap.stale_mask(0.5).any()


def test_snapshot_age_misalignment_rejected():
    with pytest.raises(TelemetryError):
        TelemetrySnapshot(
            time=0.0,
            node_ids=np.array([0, 1]),
            level=np.array([9, 9]),
            cpu_util=np.array([0.5, 0.5]),
            mem_frac=np.array([0.2, 0.2]),
            nic_frac=np.array([0.1, 0.1]),
            job_id=np.array([0, 0]),
            age=np.zeros(3),
        )


def test_snapshot_coverage_validated():
    with pytest.raises(TelemetryError):
        TelemetrySnapshot(
            time=0.0,
            node_ids=np.array([0]),
            level=np.array([9]),
            cpu_util=np.array([0.5]),
            mem_frac=np.array([0.2]),
            nic_frac=np.array([0.1]),
            job_id=np.array([0]),
            coverage=1.5,
        )


def test_collect_without_injector_is_fresh(busy_cluster):
    collector = _collector(busy_cluster)
    snap = collector.collect(1.0)
    assert snap.coverage == 1.0
    np.testing.assert_array_equal(snap.age, np.zeros(snap.size))
    assert collector.dropped_samples == 0


def test_dropped_sample_served_from_last_known_good(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop_node3 = np.zeros(n, dtype=bool)
    drop_node3[3] = True
    collector = _collector(
        busy_cluster, _ScriptedDrops([np.zeros(n, dtype=bool), drop_node3])
    )
    first = collector.collect(1.0)
    # Change node 3's true load, then drop its sample: the snapshot must
    # still show the old (cached) values.
    busy_cluster.state.set_load(np.array([3]), 0.99, 0.88, 0.77)
    second = collector.collect(2.0)
    assert second.cpu_util[3] == first.cpu_util[3] != 0.99
    assert second.age[3] == pytest.approx(1.0)
    assert second.age[0] == 0.0
    assert second.coverage == pytest.approx((n - 1) / n)
    assert collector.dropped_samples == 1


def test_age_accumulates_over_consecutive_drops(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop5 = np.zeros(n, dtype=bool)
    drop5[5] = True
    collector = _collector(
        busy_cluster,
        _ScriptedDrops([np.zeros(n, dtype=bool)] + [drop5.copy()] * 3),
    )
    collector.collect(0.0)
    for t in (1.0, 2.0, 3.0):
        snap = collector.collect(t)
    assert snap.age[5] == pytest.approx(3.0)
    assert snap.stale_mask(2.5)[5]
    assert not snap.stale_mask(2.5)[0]


def test_node_dropped_on_first_sweep_is_infinitely_stale(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop0 = np.zeros(n, dtype=bool)
    drop0[0] = True
    collector = _collector(busy_cluster, _ScriptedDrops([drop0]))
    snap = collector.collect(5.0)
    assert np.isinf(snap.age[0])
    assert snap.stale_mask(1e9)[0]
    # The primed deploy-time cache still provides a plausible row.
    assert snap.level[0] == busy_cluster.state.level[0]


def test_fresh_report_resets_age(busy_cluster):
    n = busy_cluster.state.num_nodes
    drop7 = np.zeros(n, dtype=bool)
    drop7[7] = True
    collector = _collector(
        busy_cluster,
        _ScriptedDrops([drop7.copy(), drop7.copy(), np.zeros(n, dtype=bool)]),
    )
    collector.collect(1.0)
    collector.collect(2.0)
    snap = collector.collect(3.0)
    assert snap.age[7] == 0.0
    assert snap.coverage == 1.0
