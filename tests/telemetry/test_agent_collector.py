"""Unit tests for profiling agents and the central collector."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    AgentPool,
    ManagementCostModel,
    ProfilingAgent,
    TelemetryCollector,
)


# ----------------------------------------------------------------------
# ProfilingAgent
# ----------------------------------------------------------------------
def test_agent_samples_node_state(busy_cluster):
    agent = ProfilingAgent(busy_cluster.state, 5)
    sample = agent.sample(now=10.0)
    assert sample.node_id == 5
    assert sample.time == 10.0
    assert sample.job_id == 1
    assert sample.cpu_util == pytest.approx(0.9)
    assert sample.level == busy_cluster.spec.top_level
    assert agent.samples_taken == 1
    assert agent.last_sample is sample


def test_agent_idle_node(busy_cluster):
    sample = ProfilingAgent(busy_cluster.state, 15).sample(0.0)
    assert sample.job_id == -1
    assert sample.cpu_util == 0.0


def test_agent_bad_node_rejected(busy_cluster):
    with pytest.raises(TelemetryError):
        ProfilingAgent(busy_cluster.state, 99)


# ----------------------------------------------------------------------
# AgentPool
# ----------------------------------------------------------------------
def test_pool_samples_all_agents(busy_cluster):
    pool = AgentPool(busy_cluster.state, np.arange(16))
    level, cpu, mem, nic, job = pool.sample_arrays(0.0)
    assert level.shape == (16,)
    assert job[4] == 1 and job[15] == -1
    assert pool.samples_taken == 1


def test_pool_arrays_are_snapshots(busy_cluster):
    pool = AgentPool(busy_cluster.state, np.arange(16))
    level, *_ = pool.sample_arrays(0.0)
    busy_cluster.state.set_level(0, 0)
    assert level[0] == busy_cluster.spec.top_level  # unaffected


def test_pool_validation(busy_cluster):
    with pytest.raises(TelemetryError):
        AgentPool(busy_cluster.state, np.array([99]))
    with pytest.raises(TelemetryError):
        AgentPool(busy_cluster.state, np.array([1, 1]))


def test_pool_subset(busy_cluster):
    pool = AgentPool(busy_cluster.state, np.array([4, 5, 6]))
    assert pool.size == 3
    _, cpu, *_ = pool.sample_arrays(0.0)
    np.testing.assert_allclose(cpu, 0.9)


# ----------------------------------------------------------------------
# TelemetryCollector
# ----------------------------------------------------------------------
def test_collector_snapshot_contents(busy_cluster):
    collector = TelemetryCollector(busy_cluster.state, np.arange(16))
    snap = collector.collect(5.0)
    assert snap.time == 5.0
    assert snap.size == 16
    assert snap.busy_mask().sum() == 14
    assert snap.index_of(10) == 10


def test_collector_keeps_previous(busy_cluster):
    collector = TelemetryCollector(busy_cluster.state, np.arange(16))
    first = collector.collect(1.0)
    assert collector.previous is None
    busy_cluster.state.set_load(np.arange(0, 4), 0.99, 0.2, 0.1)
    second = collector.collect(2.0)
    assert collector.previous is first
    assert collector.current is second
    assert first.cpu_util[0] == pytest.approx(0.3)
    assert second.cpu_util[0] == pytest.approx(0.99)


def test_snapshot_immutable(busy_cluster):
    collector = TelemetryCollector(busy_cluster.state, np.arange(16))
    snap = collector.collect(0.0)
    with pytest.raises(ValueError):
        snap.level[0] = 3


def test_snapshot_index_of_missing(busy_cluster):
    collector = TelemetryCollector(busy_cluster.state, np.array([0, 1]))
    snap = collector.collect(0.0)
    with pytest.raises(TelemetryError):
        snap.index_of(9)


def test_collector_cost_accounting(busy_cluster):
    cost = ManagementCostModel()
    collector = TelemetryCollector(busy_cluster.state, np.arange(16), cost)
    collector.collect(0.0)
    collector.collect(1.0)
    assert collector.collections == 2
    expected = 2 * cost.cycle_cost_s(16)
    assert collector.accumulated_cost_s == pytest.approx(expected)
    assert collector.management_cpu_utilization() == pytest.approx(
        cost.cpu_utilization(16)
    )


def test_collector_without_cost_model(busy_cluster):
    collector = TelemetryCollector(busy_cluster.state, np.arange(4))
    collector.collect(0.0)
    assert collector.accumulated_cost_s == 0.0
    assert collector.management_cpu_utilization() == 0.0


def test_empty_candidate_set(busy_cluster):
    collector = TelemetryCollector(busy_cluster.state, np.empty(0, dtype=np.int64))
    snap = collector.collect(0.0)
    assert snap.size == 0
    assert snap.busy_mask().sum() == 0
