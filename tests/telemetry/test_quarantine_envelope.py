"""Quarantine-envelope substitution in the collector, on both engines.

When the integrity validator quarantines a node, the collector replaces
its telemetry row with the conservative worst-case envelope: full
utilisation at the node's known DVFS level, age pinned to infinity.  The
substitution happens *after* the engine's telemetry sweep, so it must be
byte-identical regardless of which engine gathered the raw samples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.power import NodePowerEstimator, PowerModel
from repro.telemetry import (
    IntegrityConfig,
    TelemetryCollector,
    TelemetryValidator,
)

#: One hard failure must push trust below the quarantine line:
#: 1.0 - 0.8 = 0.2 < quarantine_trust (0.30 default).
_CFG = IntegrityConfig(hard_penalty=0.8)

_BAD_NODE = 3


def _make_collector(engine: str) -> tuple[Cluster, TelemetryCollector]:
    cluster = Cluster.tianhe_1a(num_nodes=8, engine=engine)
    ids = np.arange(8)
    cluster.state.set_load(ids, cpu_util=0.5, mem_frac=0.3, nic_frac=0.1)
    estimator = NodePowerEstimator(PowerModel(cluster.spec), engine=engine)
    validator = TelemetryValidator(_CFG, estimator, ids, cluster.spec.top_level)
    collector = TelemetryCollector(
        cluster.state, ids, validator=validator, engine=engine
    )
    return cluster, collector


def _poison(cluster: Cluster) -> None:
    # A superunity CPU reading is a stage-1 hard failure.
    cluster.state.cpu_util[_BAD_NODE] = 1.7


@pytest.mark.parametrize("engine", ["vector", "object"])
def test_quarantined_row_becomes_worst_case_envelope(engine: str) -> None:
    cluster, collector = _make_collector(engine)
    known_level = int(cluster.state.level[_BAD_NODE])
    _poison(cluster)
    snapshot = collector.collect(1.0)

    assert collector.validator is not None
    assert collector.validator.quarantined[_BAD_NODE]
    assert snapshot.level[_BAD_NODE] == known_level
    assert snapshot.cpu_util[_BAD_NODE] == 1.0
    assert snapshot.mem_frac[_BAD_NODE] == 1.0
    assert snapshot.nic_frac[_BAD_NODE] == 1.0
    assert snapshot.age[_BAD_NODE] == np.inf


@pytest.mark.parametrize("engine", ["vector", "object"])
def test_healthy_rows_are_untouched_by_the_envelope(engine: str) -> None:
    cluster, collector = _make_collector(engine)
    _poison(cluster)
    snapshot = collector.collect(1.0)
    healthy = np.arange(8) != _BAD_NODE
    np.testing.assert_array_equal(
        snapshot.cpu_util[healthy], cluster.state.cpu_util[healthy]
    )
    np.testing.assert_array_equal(snapshot.age[healthy], np.zeros(7))
    assert snapshot.coverage == pytest.approx(7 / 8)


def test_envelope_snapshots_bit_identical_across_engines() -> None:
    snapshots = {}
    for engine in ("vector", "object"):
        cluster, collector = _make_collector(engine)
        _poison(cluster)
        collector.collect(1.0)
        # A second sweep: the quarantined node keeps the envelope while
        # its trust recovers, the rest refresh normally.
        snapshots[engine] = collector.collect(2.0)
    v, o = snapshots["vector"], snapshots["object"]
    for field in ("node_ids", "level", "cpu_util", "mem_frac", "nic_frac", "job_id", "age"):
        a, b = getattr(v, field), getattr(o, field)
        assert a.dtype == b.dtype and np.array_equal(a, b, equal_nan=True), field
    assert repr(v.coverage) == repr(o.coverage)
