"""Unit tests for the tick-driven batch scheduler and feeders."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.scheduler import (
    BatchScheduler,
    KeepQueueFilledFeeder,
    ListFeeder,
    TraceFeeder,
)
from repro.sim import RandomSource
from repro.workload import (
    Job,
    JobExecutor,
    JobState,
    JobTrace,
    RandomJobGenerator,
    TraceRecord,
    get_application,
)


def _executor(cluster):
    return JobExecutor(
        cluster.state,
        RandomSource(seed=3).stream("exec"),
        util_jitter_std=0.0,
        node_noise_std=0.0,
        modulation_std=0.0,
    )


def _job(job_id, nprocs=12, submit=0.0, app="EP"):
    return Job(
        job_id=job_id, app=get_application(app), nprocs=nprocs, submit_time=submit
    )


def _scheduler_with_jobs(cluster, jobs):
    return BatchScheduler(cluster, _executor(cluster), ListFeeder(jobs))


def test_job_starts_when_nodes_available(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [_job(0, nprocs=24)])
    sched.tick(1.0, 1.0)
    assert sched.started_count == 1
    job = sched.running_job(0)
    assert job.state is JobState.RUNNING
    assert list(job.nodes) == [0, 1]
    assert np.all(small_cluster.state.job_id[[0, 1]] == 0)


def test_fcfs_head_blocks_queue(small_cluster):
    # Job 0 takes 15 nodes; job 1 needs 2 (doesn't fit); job 2 needs 1
    # but FCFS must NOT let it jump the queue.
    jobs = [_job(0, nprocs=15 * 12), _job(1, nprocs=24), _job(2, nprocs=12)]
    sched = _scheduler_with_jobs(small_cluster, jobs)
    sched.tick(1.0, 1.0)
    assert sched.started_count == 1
    assert len(sched.queue) == 2
    assert sched.queue.peek().job_id == 1


def test_completion_releases_nodes_and_starts_next(small_cluster):
    short = _job(0, nprocs=16 * 12)  # whole machine
    short.progress_s = short.nominal_runtime_s - 0.5  # nearly done at start
    jobs = [short, _job(1, nprocs=12)]
    sched = _scheduler_with_jobs(small_cluster, jobs)
    sched.tick(1.0, 1.0)  # job 0 starts
    assert sched.started_count == 1
    sched.tick(2.0, 1.0)  # job 0 finishes, job 1 starts
    assert [j.job_id for j in sched.finished_jobs] == [0]
    assert sched.running_job(1).state is JobState.RUNNING
    assert small_cluster.state.idle_mask().sum() == 15


def test_finish_time_interpolated(small_cluster):
    job = _job(0, nprocs=12)
    job.progress_s = job.nominal_runtime_s - 0.25
    sched = _scheduler_with_jobs(small_cluster, [job])
    sched.tick(1.0, 1.0)
    finished = sched.tick(2.0, 1.0)
    assert len(finished) == 1
    assert finished[0].finish_time == pytest.approx(1.25)
    assert finished[0].actual_runtime_s == pytest.approx(0.25)


def test_keep_queue_filled_feeder_generates_on_empty(small_cluster):
    gen = RandomJobGenerator(
        RandomSource(seed=9).stream("gen"),
        runtime_scale=0.01,
        nprocs_choices=(8, 16, 32),  # jobs must fit the 16-node cluster
    )
    sched = BatchScheduler(small_cluster, _executor(small_cluster), KeepQueueFilledFeeder(gen))
    for t in range(1, 50):
        sched.tick(float(t), 1.0)
    # The feeder keeps work coming: something started, machine is in use.
    assert sched.started_count >= 1
    assert not sched.idle()


def test_trace_feeder_releases_at_submit_times(small_cluster):
    trace = JobTrace(
        [TraceRecord(0.0, "EP", 12), TraceRecord(5.0, "EP", 12)]
    )
    feeder = TraceFeeder(trace, runtime_scale=0.001)
    sched = BatchScheduler(small_cluster, _executor(small_cluster), feeder)
    sched.tick(1.0, 1.0)
    assert sched.started_count == 1
    assert feeder.remaining == 1
    sched.tick(5.0, 4.0)
    assert sched.started_count == 2
    assert feeder.exhausted()


def test_list_feeder_exhausts(small_cluster):
    job = _job(0, nprocs=12)
    job.progress_s = job.nominal_runtime_s - 0.1
    sched = _scheduler_with_jobs(small_cluster, [job])
    sched.tick(1.0, 1.0)
    sched.tick(2.0, 1.0)
    assert sched.idle()


def test_running_job_lookup_errors(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [])
    with pytest.raises(SchedulingError):
        sched.running_job(42)
    with pytest.raises(SchedulingError):
        sched.job_nodes(42)


def test_all_jobs_view(small_cluster):
    jobs = [_job(0, nprocs=12), _job(1, nprocs=16 * 12)]
    sched = _scheduler_with_jobs(small_cluster, jobs)
    sched.tick(1.0, 1.0)
    everything = sched.all_jobs()
    assert {j.job_id for j in everything} == {0, 1}


def test_multiple_jobs_coexist(small_cluster):
    jobs = [_job(i, nprocs=36) for i in range(4)]  # 3 nodes each
    sched = _scheduler_with_jobs(small_cluster, jobs)
    sched.tick(1.0, 1.0)
    assert sched.started_count == 4
    assert small_cluster.state.busy_mask().sum() == 12
    # Jobs own disjoint node sets.
    owned = np.concatenate([sched.job_nodes(i) for i in range(4)])
    assert len(np.unique(owned)) == 12


# ----------------------------------------------------------------------
# Power-emergency transitions (driven by repro.provision.emergency)
# ----------------------------------------------------------------------
def test_suspend_freezes_job_and_zeroes_load(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [_job(0, nprocs=24)])
    sched.tick(1.0, 1.0)
    sched.tick(2.0, 1.0)  # executor applies the load one tick after start
    nodes = sched.job_nodes(0)
    assert small_cluster.state.cpu_util[nodes].sum() > 0.0
    sched.suspend_job(0, 3.0)
    job = sched.running_job(0)
    assert job.state is JobState.SUSPENDED
    assert sched.suspend_count == 1
    assert [j.job_id for j in sched.suspended_jobs] == [0]
    # Load dropped to idle, but the nodes stay assigned to the job.
    assert small_cluster.state.cpu_util[nodes].sum() == 0.0
    np.testing.assert_array_equal(small_cluster.state.job_id[nodes], 0)
    before = job.progress_s
    sched.tick(4.0, 1.0)
    assert sched.running_job(0).progress_s == before  # progress frozen


def test_resume_restores_running_and_reapplies_load(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [_job(0, nprocs=24)])
    sched.tick(1.0, 1.0)
    sched.suspend_job(0, 2.0)
    assert sched.resume_job(0, 3.0) is True
    assert sched.running_job(0).state is JobState.RUNNING
    assert sched.resume_count == 1
    before = sched.running_job(0).progress_s
    sched.tick(4.0, 1.0)
    assert sched.running_job(0).progress_s > before


def test_resume_is_noop_for_missing_or_running_jobs(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [_job(0)])
    sched.tick(1.0, 1.0)
    assert sched.resume_job(42, 2.0) is False  # no such job
    assert sched.resume_job(0, 2.0) is False  # not suspended
    assert sched.resume_count == 0


def test_resume_refused_while_nodes_fenced_offline(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [_job(0)])
    sched.tick(1.0, 1.0)
    sched.suspend_job(0, 2.0)
    sched.take_offline(sched.job_nodes(0), 3.0)
    assert sched.resume_job(0, 4.0) is False
    sched.bring_online(sched.job_nodes(0))
    assert sched.resume_job(0, 5.0) is True


def test_kill_releases_nodes_without_finishing(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [_job(0, nprocs=24)])
    sched.tick(1.0, 1.0)
    nodes = sched.job_nodes(0)
    sched.kill_job(0, 2.0)
    assert [j.job_id for j in sched.killed_jobs] == [0]
    assert sched.finished_jobs == []
    assert small_cluster.state.idle_mask()[nodes].all()
    with pytest.raises(SchedulingError):
        sched.running_job(0)


def test_suspend_and_kill_require_active_job(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [])
    with pytest.raises(SchedulingError):
        sched.suspend_job(7, 1.0)
    with pytest.raises(SchedulingError):
        sched.kill_job(7, 1.0)


def test_offline_nodes_are_fenced_out_of_allocation(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [_job(0, nprocs=15 * 12)])
    sched.take_offline(np.arange(4), 0.0)
    sched.tick(1.0, 1.0)
    # 15 nodes needed, only 12 admissible: the job must wait.
    assert sched.started_count == 0
    sched.bring_online(np.arange(4))
    sched.tick(2.0, 1.0)
    assert sched.started_count == 1


def test_offline_mask_is_a_copy(small_cluster):
    sched = _scheduler_with_jobs(small_cluster, [])
    mask = sched.offline_mask
    mask[:] = True
    assert not sched.offline_mask.any()
