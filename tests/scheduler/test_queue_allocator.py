"""Unit tests for the job queue and the first-fit allocator."""

import numpy as np
import pytest

from repro.errors import AllocationError, SchedulingError
from repro.scheduler import JobQueue, NodeAllocator
from repro.workload import Job, get_application


def _job(job_id=0, nprocs=8, submit=0.0):
    return Job(job_id=job_id, app=get_application("EP"), nprocs=nprocs, submit_time=submit)


# ----------------------------------------------------------------------
# JobQueue
# ----------------------------------------------------------------------
def test_fifo_order():
    q = JobQueue()
    for i in range(3):
        q.push(_job(i))
    assert [q.pop().job_id for _ in range(3)] == [0, 1, 2]


def test_peek_does_not_remove():
    q = JobQueue()
    q.push(_job(7))
    assert q.peek().job_id == 7
    assert len(q) == 1


def test_empty_queue_operations_raise():
    q = JobQueue()
    with pytest.raises(SchedulingError):
        q.pop()
    with pytest.raises(SchedulingError):
        q.peek()


def test_duplicate_rejected():
    q = JobQueue()
    job = _job(1)
    q.push(job)
    with pytest.raises(SchedulingError):
        q.push(job)


def test_id_reusable_after_pop():
    q = JobQueue()
    job = _job(1)
    q.push(job)
    q.pop()
    q.push(job)  # fine: no longer queued
    assert len(q) == 1


def test_non_pending_rejected():
    q = JobQueue()
    job = _job(1)
    job.start(0.0, np.array([0]))
    with pytest.raises(SchedulingError):
        q.push(job)


def test_total_enqueued_counter():
    q = JobQueue()
    q.push(_job(0))
    q.push(_job(1))
    q.pop()
    assert q.total_enqueued == 2


def test_iteration_head_first():
    q = JobQueue()
    q.push(_job(0))
    q.push(_job(1))
    assert [j.job_id for j in q] == [0, 1]


# ----------------------------------------------------------------------
# NodeAllocator
# ----------------------------------------------------------------------
def test_allocates_lowest_numbered_idle_nodes(small_cluster):
    alloc = NodeAllocator(small_cluster)
    nodes = alloc.try_allocate(24)  # 2 nodes of 12 cores
    assert list(nodes) == [0, 1]


def test_allocation_skips_busy_nodes(small_cluster):
    alloc = NodeAllocator(small_cluster)
    small_cluster.state.assign_job(np.array([0, 2]), 9)
    nodes = alloc.try_allocate(24)
    assert list(nodes) == [1, 3]


def test_returns_none_when_insufficient(small_cluster):
    alloc = NodeAllocator(small_cluster)
    small_cluster.state.assign_job(np.arange(15), 1)
    assert alloc.try_allocate(24) is None  # needs 2, only 1 idle


def test_impossible_request_raises(small_cluster):
    alloc = NodeAllocator(small_cluster)
    with pytest.raises(AllocationError):
        alloc.try_allocate(16 * 12 + 1)


def test_can_ever_fit(small_cluster):
    alloc = NodeAllocator(small_cluster)
    assert alloc.can_ever_fit(16 * 12)
    assert not alloc.can_ever_fit(16 * 12 + 1)


def test_free_nodes(small_cluster):
    alloc = NodeAllocator(small_cluster)
    assert alloc.free_nodes() == 16
    small_cluster.state.assign_job(np.array([0]), 1)
    assert alloc.free_nodes() == 15


def test_nodes_needed_ceiling(small_cluster):
    alloc = NodeAllocator(small_cluster)
    assert alloc.nodes_needed(1) == 1
    assert alloc.nodes_needed(12) == 1
    assert alloc.nodes_needed(13) == 2
