"""Unit tests for the EASY backfill scheduler."""

import numpy as np
import pytest

from repro.scheduler import BackfillScheduler, JobQueue, ListFeeder
from repro.sim import RandomSource
from repro.workload import Job, JobExecutor, get_application


def _executor(cluster):
    return JobExecutor(
        cluster.state,
        RandomSource(seed=3).stream("exec"),
        util_jitter_std=0.0,
        node_noise_std=0.0,
        modulation_std=0.0,
    )


def _job(job_id, nprocs, submit=0.0, app="EP"):
    return Job(
        job_id=job_id, app=get_application(app), nprocs=nprocs, submit_time=submit
    )


def _scheduler(cluster, jobs):
    return BackfillScheduler(cluster, _executor(cluster), ListFeeder(jobs))


def test_backfills_short_job_behind_wide_head(small_cluster):
    # Job 0 takes 10 nodes (long); job 1 needs 10 (blocked head);
    # job 2 needs 2 nodes and is SHORT: it finishes before job 0 frees
    # the head's nodes, so it may jump the queue.
    long_job = _job(0, nprocs=10 * 12)
    head = _job(1, nprocs=10 * 12)
    short = _job(2, nprocs=2 * 12)
    short.progress_s = short.nominal_runtime_s - 1.0  # ~1 s remaining
    sched = _scheduler(small_cluster, [long_job, head, short])
    sched.tick(1.0, 1.0)
    assert long_job.state.value == "running"
    assert head.state.value == "pending"
    assert short.state.value == "running"  # backfilled
    assert sched.backfilled_count == 1


def test_backfill_respects_head_reservation(small_cluster):
    """A long narrow job that would delay the head must NOT backfill."""
    long_job = _job(0, nprocs=10 * 12)  # runs long on 10 nodes
    head = _job(1, nprocs=10 * 12)  # needs 10 nodes: reservation = job0 end
    # Job 2 needs 8 nodes: more than the 6 spare, and it is long — it
    # would steal nodes the head needs at the reservation time.
    narrow_long = _job(2, nprocs=8 * 12)
    sched = _scheduler(small_cluster, [long_job, head, narrow_long])
    sched.tick(1.0, 1.0)
    assert narrow_long.state.value == "pending"
    assert sched.backfilled_count == 0


def test_backfill_on_spare_nodes_regardless_of_length(small_cluster):
    """A long job that fits beside the head's future allocation may
    backfill (spare-node rule)."""
    long_job = _job(0, nprocs=10 * 12)
    head = _job(1, nprocs=4 * 12)  # head will need only 4 of 6 idle
    spare_long = _job(2, nprocs=2 * 12)  # fits in the 2 spare nodes
    sched = _scheduler(small_cluster, [long_job, head, spare_long])
    sched.tick(1.0, 1.0)
    # Head itself started immediately (6 idle >= 4 needed), so job 2
    # also starts FCFS — force the blocking case instead:
    assert head.state.value == "running"


def test_backfill_blocked_head_spare_rule(small_cluster):
    long_job = _job(0, nprocs=12 * 12)  # 12 nodes busy, 4 idle
    head = _job(1, nprocs=6 * 12)  # needs 6: blocked
    spare = _job(2, nprocs=2 * 12)  # long, but head's reservation keeps
    # 4 idle + 12 freed = 16 >= 6; spare uses 2 of the 4 idle "now";
    # spare_now = 4 - 6 < 0, so the count rule fails; but it finishes
    # within the reservation only if short — make it short.
    spare.progress_s = spare.nominal_runtime_s - 0.5
    sched = _scheduler(small_cluster, [long_job, head, spare])
    sched.tick(1.0, 1.0)
    assert spare.state.value == "running"
    assert sched.backfilled_count == 1


def test_fifo_restored_after_backfill(small_cluster):
    """The backfilled job is removed cleanly; the head keeps its place."""
    long_job = _job(0, nprocs=15 * 12)
    head = _job(1, nprocs=4 * 12)
    short = _job(2, nprocs=12)
    short.progress_s = short.nominal_runtime_s - 0.5
    sched = _scheduler(small_cluster, [long_job, head, short])
    sched.tick(1.0, 1.0)
    assert short.state.value == "running"
    assert sched.queue.peek().job_id == 1  # head unchanged


def test_backfill_throughput_at_least_fcfs(small_cluster):
    """On a closed job list, backfill finishes no fewer jobs than FCFS
    over the same horizon."""
    from repro.scheduler import BatchScheduler

    def run(cls):
        import copy

        from repro.cluster import Cluster

        cluster = Cluster.tianhe_1a(num_nodes=16)
        jobs = []
        rng = np.random.default_rng(7)
        for i in range(30):
            nprocs = int(rng.choice([12, 48, 96, 144]))
            job = Job(
                job_id=i,
                app=get_application(["EP", "CG", "LU"][i % 3]),
                nprocs=nprocs,
                submit_time=0.0,
            )
            job.progress_s = max(0.0, job.nominal_runtime_s - rng.uniform(5, 60))
            jobs.append(job)
        sched = cls(cluster, _executor(cluster), ListFeeder(jobs))
        for t in range(1, 301):
            sched.tick(float(t), 1.0)
        return len(sched.finished_jobs)

    assert run(BackfillScheduler) >= run(BatchScheduler)


def test_queue_remove(small_cluster):
    q = JobQueue()
    jobs = [_job(i, nprocs=8) for i in range(3)]
    for j in jobs:
        q.push(j)
    removed = q.remove(1)
    assert removed.job_id == 1
    assert [j.job_id for j in q] == [0, 2]
    from repro.errors import SchedulingError

    with pytest.raises(SchedulingError):
        q.remove(99)
