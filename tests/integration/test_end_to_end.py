"""Integration tests: the whole stack wired together by hand.

These build the full pipeline the way ``run_experiment`` does — cluster,
scheduler, workload, manager — but drive it explicitly so each coupling
(executor↔state, manager↔actuator, scheduler↔allocator) is exercised and
observable from the outside.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import (
    NodeSets,
    PowerManager,
    PowerState,
    ThresholdController,
)
from repro.core.policies import make_policy
from repro.power import PowerModel, SystemPowerMeter
from repro.scheduler import BatchScheduler, KeepQueueFilledFeeder
from repro.sim import RandomSource, SimulationEngine, PeriodicTask
from repro.workload import JobExecutor, RandomJobGenerator


def _build_world(seed=11, num_nodes=32):
    rng = RandomSource(seed=seed)
    cluster = Cluster.tianhe_1a(num_nodes=num_nodes)
    model = PowerModel(cluster.spec)
    generator = RandomJobGenerator(
        rng.stream("gen"), runtime_scale=0.01, nprocs_choices=(8, 16, 32, 64)
    )
    executor = JobExecutor(cluster.state, rng.stream("exec"))
    scheduler = BatchScheduler(cluster, executor, KeepQueueFilledFeeder(generator))
    return cluster, model, scheduler


def test_cluster_fills_and_completes_jobs():
    cluster, model, scheduler = _build_world()
    for t in range(1, 301):
        scheduler.tick(float(t), 1.0)
    assert len(scheduler.finished_jobs) > 10
    assert cluster.state.busy_mask().sum() > 0
    # Power stays inside physical bounds throughout.
    power = model.system_power(cluster.state)
    assert cluster.minimum_power() <= power <= cluster.theoretical_max_power()


def test_manager_keeps_power_under_control():
    cluster, model, scheduler = _build_world()
    # Uncapped warmup to find the peak.
    peak = 0.0
    for t in range(1, 201):
        scheduler.tick(float(t), 1.0)
        peak = max(peak, model.system_power(cluster.state))

    sets = NodeSets(cluster)
    meter = SystemPowerMeter(model, cluster.state)
    thresholds = ThresholdController.from_training(peak)
    manager = PowerManager(
        cluster, sets, meter, thresholds, make_policy("mpc"), steady_green_cycles=5
    )
    for t in range(201, 801):
        scheduler.tick(float(t), 1.0)
        manager.control_cycle(float(t))

    power = manager.recorder.values("power_w")
    # Yellow-state control engaged at least once and degraded something.
    assert manager.state_count(PowerState.YELLOW) > 0
    assert manager.actuator.levels_lowered > 0
    # The capped trajectory respects physics.
    assert power.max() <= cluster.theoretical_max_power()


def test_degraded_jobs_actually_slow_down():
    cluster, model, scheduler = _build_world()
    for t in range(1, 61):
        scheduler.tick(float(t), 1.0)
    running = scheduler.running_jobs
    assert running
    # Force-degrade one running job's nodes to the floor.
    victim = running[0]
    cluster.state.set_levels(victim.nodes, 0)
    before = victim.progress_s
    scheduler.tick(61.0, 1.0)
    step = victim.progress_s - before
    if victim.state.value == "running":
        assert step < 1.0  # strictly slower than real time


def test_event_driven_composition():
    """Wire scheduler and manager as periodic tasks on the sim engine —
    the discrete-event composition used by the examples."""
    cluster, model, scheduler = _build_world(seed=3)
    engine = SimulationEngine()
    sets = NodeSets(cluster)
    meter = SystemPowerMeter(model, cluster.state)
    thresholds = ThresholdController.fixed(
        p_low=0.80 * cluster.theoretical_max_power(),
        p_high=0.90 * cluster.theoretical_max_power(),
    )
    manager = PowerManager(cluster, sets, meter, thresholds, make_policy("mpc-c"))

    sched_task = PeriodicTask(
        engine, 1.0, lambda i: scheduler.tick(engine.now, 1.0), label="sched"
    )
    mgmt_task = PeriodicTask(
        engine, 1.0, lambda i: manager.control_cycle(engine.now), label="mgmt"
    )
    sched_task.start()
    mgmt_task.start()
    engine.run(until=300.0)

    assert manager.cycles == 300
    assert scheduler.started_count > 0
    assert manager.recorder.length("power_w") == 300


def test_privileged_nodes_never_touched():
    cluster, model, scheduler = _build_world(seed=4)
    privileged = np.array([0, 1, 2, 3])
    cluster.set_privileged_nodes(privileged)
    sets = NodeSets(cluster)
    meter = SystemPowerMeter(model, cluster.state)
    # Thresholds so low the manager is always in red: maximal throttling.
    thresholds = ThresholdController.fixed(p_low=1.0, p_high=2.0)
    manager = PowerManager(cluster, sets, meter, thresholds, make_policy("mpc"))
    top = cluster.spec.top_level
    for t in range(1, 101):
        scheduler.tick(float(t), 1.0)
        manager.control_cycle(float(t))
    # Privileged nodes stay at the top level; candidates are floored.
    assert np.all(cluster.state.level[privileged] == top)
    assert np.all(cluster.state.level[4:] == 0)
    assert manager.ever_entered_red()
