"""Determinism guarantees: identical seeds reproduce whole runs bit-for-bit."""

import numpy as np

from repro.cluster import Cluster
from repro.core import NodeSets, PowerManager, ThresholdController
from repro.core.policies import make_policy
from repro.power import PowerModel, SystemPowerMeter
from repro.scheduler import BatchScheduler, KeepQueueFilledFeeder
from repro.sim import RandomSource
from repro.workload import JobExecutor, RandomJobGenerator


def _run_once(seed: int, policy: str):
    rng = RandomSource(seed=seed)
    cluster = Cluster.tianhe_1a(num_nodes=32)
    model = PowerModel(cluster.spec)
    generator = RandomJobGenerator(
        rng.stream("gen"), runtime_scale=0.01, nprocs_choices=(8, 16, 32)
    )
    executor = JobExecutor(cluster.state, rng.stream("exec"))
    scheduler = BatchScheduler(cluster, executor, KeepQueueFilledFeeder(generator))

    sets = NodeSets(cluster)
    meter = SystemPowerMeter(model, cluster.state)
    thresholds = ThresholdController.fixed(
        p_low=0.75 * cluster.theoretical_max_power(),
        p_high=0.85 * cluster.theoretical_max_power(),
    )
    manager = PowerManager(cluster, sets, meter, thresholds, make_policy(policy))
    trace = []
    for t in range(1, 301):
        scheduler.tick(float(t), 1.0)
        report = manager.control_cycle(float(t))
        trace.append(
            (report.power_w, report.state.value, report.decision.num_targets)
        )
    finished = [(j.job_id, j.app.name, j.finish_time) for j in scheduler.finished_jobs]
    levels = cluster.state.level.copy()
    return trace, finished, levels


def test_identical_seed_identical_run():
    for policy in ("mpc", "hri", "mpc-c"):
        t1, f1, l1 = _run_once(99, policy)
        t2, f2, l2 = _run_once(99, policy)
        assert t1 == t2
        assert f1 == f2
        np.testing.assert_array_equal(l1, l2)


def test_different_seed_different_run():
    t1, _, _ = _run_once(99, "mpc")
    t2, _, _ = _run_once(100, "mpc")
    assert t1 != t2


def test_job_stream_identical_across_policies():
    """The k-th generated job is the same (app, nprocs) tuple regardless
    of which policy manages power — the controlled-comparison property
    experiment harnesses rely on."""
    _, f_mpc, _ = _run_once(7, "mpc")
    _, f_hri, _ = _run_once(7, "hri")
    by_id_mpc = {j[0]: j[1] for j in f_mpc}
    by_id_hri = {j[0]: j[1] for j in f_hri}
    common = set(by_id_mpc) & set(by_id_hri)
    assert common
    for job_id in common:
        assert by_id_mpc[job_id] == by_id_hri[job_id]
