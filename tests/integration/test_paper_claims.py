"""Integration tests asserting the paper's qualitative claims.

These run the real experiment protocol at a compressed scale and check
the *shape* of the paper's §V.D findings — who wins, in which direction,
within generous bands.  The benchmark suite (benchmarks/) reproduces the
quantitative figures at the calibrated scale; these tests guard the
qualitative behaviour in the ordinary test run.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_experiment, run_fig5
from repro.metrics import compare_runs


@pytest.fixture(scope="module")
def runs():
    """One shared baseline + MPC + HRI trio (module-scoped: ~6 s)."""
    config = ExperimentConfig(
        seed=2012,
        runtime_scale=0.05,
        training_duration_s=900.0,
        run_duration_s=1200.0,
        adjust_every_cycles=300,
    )
    baseline = run_experiment(config, None)
    mpc = run_experiment(config, "mpc")
    hri = run_experiment(config, "hri")
    return baseline, mpc, hri


def test_capping_reduces_peak_power(runs):
    baseline, mpc, hri = runs
    for capped in (mpc, hri):
        c = compare_runs(capped.metrics, baseline.metrics)
        assert c.p_max_ratio < 1.0


def test_capping_reduces_overspend_substantially(runs):
    """§V.D: ΔP×T drops by tens of percent under either policy."""
    baseline, mpc, hri = runs
    assert baseline.metrics.overspend > 0  # uncapped system overspends
    for capped in (mpc, hri):
        c = compare_runs(capped.metrics, baseline.metrics)
        assert c.overspend_reduction > 0.3


def test_mpc_beats_hri_on_overspend(runs):
    """§V.D: MPC reduced ΔP×T more than HRI (73% vs 66%)."""
    baseline, mpc, hri = runs
    mpc_red = compare_runs(mpc.metrics, baseline.metrics).overspend_reduction
    hri_red = compare_runs(hri.metrics, baseline.metrics).overspend_reduction
    assert mpc_red > hri_red


def test_mpc_has_more_lossless_jobs(runs):
    """§V.D: CPLJ(MPC) > CPLJ(HRI)."""
    _, mpc, hri = runs
    assert mpc.metrics.cplj_fraction > hri.metrics.cplj_fraction


def test_performance_loss_is_small(runs):
    """§V.D: performance loss is small (paper ~2%; compressed runs are
    harsher on jobs, so allow up to ~8%)."""
    _, mpc, hri = runs
    for capped in (mpc, hri):
        assert capped.metrics.performance > 0.92


def test_capped_system_power_stays_below_p_high(runs):
    """§V.D: "system power is always below P_H … never entered the red
    critical state" — allow at most a stray cycle at this compressed
    scale (excursions are relatively faster than at paper scale)."""
    _, mpc, hri = runs
    for capped in (mpc, hri):
        red_cycles = capped.state_cycles.get("red", 0)
        assert red_cycles <= 2


def test_uncapped_baseline_is_lossless(runs):
    baseline, _, _ = runs
    assert baseline.metrics.performance == pytest.approx(1.0)
    assert baseline.metrics.cplj == baseline.metrics.finished_jobs


def test_fig5_management_cost_grows_nonlinearly():
    result = run_fig5(sizes=(8, 16, 32, 64, 128), measure=False)
    cpu = result.modelled_cpu
    # The *marginal* cost of each additional monitored node increases —
    # the superlinearity Figure 5 demonstrates.  (Raw per-node cost first
    # falls while the fixed overhead amortises, so test the marginals.)
    marginal = np.diff(cpu) / np.diff(result.sizes)
    assert np.all(np.diff(marginal) > 0)
    assert cpu[-1] / result.sizes[-1] > cpu[0] / result.sizes[0]
