"""Robustness and fidelity checks across the sensing chain."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import compare_runs


def _config(**overrides):
    defaults = dict(
        seed=13,
        runtime_scale=0.02,
        training_duration_s=240.0,
        run_duration_s=400.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_estimator_matches_ground_truth_during_run():
    """The manager's per-node estimates, summed over all nodes, equal
    the meter's noise-free reading: Formula (1) is both ground truth
    and estimation basis, so the only possible divergence is a wiring
    bug (stale snapshots, wrong coefficients)."""
    from repro.cluster import Cluster
    from repro.core import NodeSets, PowerManager, ThresholdController
    from repro.core.policies import make_policy
    from repro.power import SystemPowerMeter, make_power_model
    from repro.scheduler import BatchScheduler, KeepQueueFilledFeeder
    from repro.sim import RandomSource
    from repro.workload import JobExecutor, RandomJobGenerator
    from repro.power import NodePowerEstimator

    rng = RandomSource(seed=21)
    cluster = Cluster.tianhe_1a(num_nodes=32)
    model = make_power_model(cluster)
    generator = RandomJobGenerator(
        rng.stream("gen"), runtime_scale=0.01, nprocs_choices=(8, 32, 64)
    )
    executor = JobExecutor(cluster.state, rng.stream("exec"))
    scheduler = BatchScheduler(cluster, executor, KeepQueueFilledFeeder(generator))
    meter = SystemPowerMeter(model, cluster.state)
    estimator = NodePowerEstimator(model)
    manager = PowerManager(
        cluster,
        NodeSets(cluster),
        meter,
        ThresholdController.from_training(cluster.theoretical_max_power()),
        make_policy("mpc"),
    )
    for t in range(1, 101):
        scheduler.tick(float(t), 1.0)
        report = manager.control_cycle(float(t))
        # The snapshot and the meter reading describe the same instant
        # (before this cycle's actuation), so the estimates must sum to
        # exactly the metered power.
        snap = manager.collector.current
        estimated = estimator.estimate_nodes(
            snap.level, snap.cpu_util, snap.mem_frac, snap.nic_frac,
            node_ids=snap.node_ids,
        ).sum()
        assert estimated == pytest.approx(report.power_w, rel=1e-9)


def test_capping_robust_to_meter_noise():
    """With 2% gaussian meter noise the architecture still caps: the
    peak and overspend drop relative to the noisy-uncapped baseline.
    (The paper assumes an accurate meter; this checks graceful
    degradation rather than a paper claim.)"""
    noisy = _config(meter_noise_fraction=0.02)
    baseline = run_experiment(noisy, None)
    capped = run_experiment(noisy, "mpc")
    c = compare_runs(capped.metrics, baseline.metrics)
    assert c.p_max_ratio < 1.0
    assert c.overspend_reduction > 0.3
    assert c.performance > 0.85


def test_metrics_insensitive_to_provision_label():
    """Re-scoring the same trace against a different threshold uses the
    exported artifacts round-trip (the workflow EXPERIMENTS.md
    suggests)."""
    from repro.analysis import load_power_trace, power_trace_csv
    from repro.metrics.power import accumulated_overspend

    result = run_experiment(_config(), None)
    import tempfile, pathlib

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "trace.csv"
        path.write_text(power_trace_csv(result.times, result.power_w))
        times, power = load_power_trace(path)
    original = accumulated_overspend(times, power, result.provision_w)
    assert original == pytest.approx(result.metrics.overspend)
    stricter = accumulated_overspend(times, power, result.provision_w * 0.95)
    assert stricter > original
