"""Unit tests for tables, ASCII charts and statistics."""

import numpy as np
import pytest

from repro.analysis import (
    Table,
    ascii_chart,
    ascii_histogram,
    bootstrap_ci,
    summarize,
)
from repro.errors import MetricError


# ----------------------------------------------------------------------
# Table
# ----------------------------------------------------------------------
def test_table_renders_aligned():
    table = Table(["name", "value"])
    table.add_row("alpha", 1)
    table.add_row("b", 23456)
    text = table.render()
    lines = text.splitlines()
    assert len(lines) == 4  # header, separator, 2 rows
    assert lines[0].startswith("name")
    assert "23456" in lines[3]
    # All lines align to the same width structure.
    assert lines[1].startswith("-")


def test_table_row_width_validation():
    table = Table(["a", "b"])
    with pytest.raises(MetricError):
        table.add_row(1)


def test_table_empty_headers_rejected():
    with pytest.raises(MetricError):
        Table([])


def test_table_align_validation():
    with pytest.raises(MetricError):
        Table(["a"], align=["^"])
    with pytest.raises(MetricError):
        Table(["a", "b"], align=["<"])


def test_table_str_matches_render():
    table = Table(["x"])
    table.add_row(5)
    assert str(table) == table.render()


# ----------------------------------------------------------------------
# ASCII charts
# ----------------------------------------------------------------------
def test_ascii_chart_contains_series_markers():
    x = np.arange(10, dtype=float)
    text = ascii_chart(x, {"up": x, "down": x[::-1]}, title="test chart")
    assert "test chart" in text
    assert "* up" in text
    assert "o down" in text


def test_ascii_chart_flat_series_ok():
    x = np.arange(3, dtype=float)
    text = ascii_chart(x, {"flat": np.ones(3)})
    assert "flat" in text


def test_ascii_chart_validation():
    with pytest.raises(MetricError):
        ascii_chart(np.array([]), {"a": np.array([])})
    with pytest.raises(MetricError):
        ascii_chart(np.arange(3.0), {})
    with pytest.raises(MetricError):
        ascii_chart(np.arange(3.0), {"a": np.arange(4.0)})


def test_ascii_histogram():
    values = np.concatenate([np.zeros(10), np.ones(30)])
    text = ascii_histogram(values, bins=2, title="hist")
    assert "hist" in text
    assert "30" in text and "10" in text


def test_ascii_histogram_validation():
    with pytest.raises(MetricError):
        ascii_histogram(np.array([]))
    with pytest.raises(MetricError):
        ascii_histogram(np.ones(3), bins=0)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_summarize():
    s = summarize(np.arange(1, 101, dtype=float))
    assert s.count == 100
    assert s.mean == pytest.approx(50.5)
    assert s.minimum == 1.0 and s.maximum == 100.0
    assert s.median == pytest.approx(50.5)
    assert "n=100" in str(s)


def test_summarize_single_value():
    s = summarize(np.array([3.0]))
    assert s.std == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(MetricError):
        summarize(np.array([]))


def test_bootstrap_ci_contains_mean():
    rng = np.random.default_rng(0)
    sample = rng.normal(10.0, 1.0, size=200)
    point, lo, hi = bootstrap_ci(sample, rng=np.random.default_rng(1))
    assert lo < point < hi
    assert lo < 10.0 < hi
    assert hi - lo < 0.6  # reasonably tight at n=200


def test_bootstrap_ci_deterministic_with_rng():
    sample = np.arange(50, dtype=float)
    a = bootstrap_ci(sample, rng=np.random.default_rng(7))
    b = bootstrap_ci(sample, rng=np.random.default_rng(7))
    assert a == b


def test_bootstrap_ci_validation():
    with pytest.raises(MetricError):
        bootstrap_ci(np.array([]))
    with pytest.raises(MetricError):
        bootstrap_ci(np.ones(3), confidence=1.5)
    with pytest.raises(MetricError):
        bootstrap_ci(np.ones(3), resamples=0)


def test_ascii_chart_title_and_axis_labels():
    x = np.array([0.0, 10.0])
    out = ascii_chart(x, {"s": np.array([1.0, 2.0])}, title="my chart")
    lines = out.splitlines()
    assert lines[0] == "my chart"
    assert "10" in lines[-2]  # x-axis extremes under the frame
    assert "* s" in lines[-1]  # legend carries the marker


def test_ascii_chart_single_point_degenerate_ranges():
    out = ascii_chart(np.array([5.0]), {"s": np.array([3.0])})
    assert "*" in out  # both axes had zero span and were widened


def test_ascii_chart_marker_wraps_past_eight_series():
    x = np.array([0.0, 1.0])
    series = {f"s{i}": np.array([float(i), float(i)]) for i in range(9)}
    out = ascii_chart(x, series)
    legend = out.splitlines()[-1]
    # Ninth series reuses the first marker.
    assert legend.count("* ") == 2


def test_ascii_histogram_title_and_counts():
    out = ascii_histogram(np.array([1.0, 1.0, 2.0]), bins=2, title="hist")
    lines = out.splitlines()
    assert lines[0] == "hist"
    assert lines[1].endswith(" 2")
    assert lines[2].endswith(" 1")


def test_ascii_histogram_identical_values():
    out = ascii_histogram(np.full(4, 7.0), bins=3)
    assert " 4" in out
