"""Tests for the Markdown report renderer."""

import pytest

from repro.analysis import render_run_report
from repro.errors import MetricError
from repro.experiments import ExperimentConfig, run_experiment


@pytest.fixture(scope="module")
def report_runs():
    config = ExperimentConfig(
        seed=8,
        runtime_scale=0.02,
        training_duration_s=150.0,
        run_duration_s=200.0,
        track_thermal=True,
    )
    baseline = run_experiment(config, None)
    capped = run_experiment(config, "mpc")
    return baseline, capped


def test_report_contains_all_sections(report_runs):
    baseline, capped = report_runs
    text = render_run_report([baseline, capped], title="My report")
    assert text.startswith("# My report")
    for heading in (
        "## Configuration",
        "## Metrics",
        "## Normalised against `uncapped`",
        "## Power trajectory",
        "## Per-application Performance(cap)",
        "## Thermal / reliability",
    ):
        assert heading in text, heading


def test_report_mentions_runs_and_thresholds(report_runs):
    baseline, capped = report_runs
    text = render_run_report([baseline, capped])
    assert "uncapped" in text and "mpc" in text
    assert "P_L" in text and "P_H" in text
    assert "128 Tianhe-1A nodes" in text


def test_report_without_baseline_skips_comparison(report_runs):
    _, capped = report_runs
    text = render_run_report([capped])
    assert "## Normalised" not in text
    assert "## Metrics" in text


def test_report_without_thermal_skips_section():
    config = ExperimentConfig(
        seed=8, runtime_scale=0.02, training_duration_s=150.0, run_duration_s=200.0
    )
    result = run_experiment(config, None)
    text = render_run_report([result])
    assert "## Thermal" not in text


def test_report_empty_rejected():
    with pytest.raises(MetricError):
        render_run_report([])


def test_report_is_valid_markdown_structure(report_runs):
    baseline, capped = report_runs
    text = render_run_report([baseline, capped])
    # Code fences balance.
    assert text.count("```") % 2 == 0
    # Exactly one H1.
    assert sum(1 for ln in text.splitlines() if ln.startswith("# ")) == 1
