"""Tests for CSV/JSON experiment-artifact export."""

import json

import numpy as np
import pytest

from repro.analysis import (
    export_result,
    jobs_csv,
    load_power_trace,
    metrics_json,
    power_trace_csv,
)
from repro.errors import MetricError
from repro.experiments import ExperimentConfig, run_experiment


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        seed=4, runtime_scale=0.02, training_duration_s=150.0, run_duration_s=200.0
    )
    return run_experiment(config, "mpc")


def test_power_trace_roundtrip(tmp_path):
    times = np.array([0.0, 1.0, 2.5])
    power = np.array([100.0, 150.5, 120.25])
    path = tmp_path / "trace.csv"
    path.write_text(power_trace_csv(times, power))
    t2, p2 = load_power_trace(path)
    np.testing.assert_array_equal(times, t2)
    np.testing.assert_array_equal(power, p2)


def test_power_trace_validation():
    with pytest.raises(MetricError):
        power_trace_csv(np.array([1.0]), np.array([1.0, 2.0]))


def test_load_power_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("nope\n1,2\n")
    with pytest.raises(MetricError):
        load_power_trace(path)


def test_jobs_csv_structure(result):
    text = jobs_csv(result.finished_jobs)
    lines = text.strip().splitlines()
    assert lines[0].startswith("job_id,app,nprocs")
    assert len(lines) == len(result.finished_jobs) + 1
    first = lines[1].split(",")
    assert first[1] in ("EP", "CG", "LU", "BT", "SP")
    assert float(first[8]) > 0  # actual runtime


def test_jobs_csv_skips_unfinished(result):
    from repro.workload import Job, get_application

    pending = Job(job_id=9999, app=get_application("EP"), nprocs=8, submit_time=0.0)
    text = jobs_csv(list(result.finished_jobs) + [pending])
    assert not any(ln.startswith("9999,") for ln in text.splitlines())


def test_metrics_json_contents(result):
    payload = json.loads(metrics_json(result))
    assert payload["label"] == "mpc"
    assert payload["num_nodes"] == 128
    assert payload["finished_jobs"] == result.metrics.finished_jobs
    assert payload["p_max_w"] == pytest.approx(result.metrics.p_max_w)
    assert "state_cycles" in payload


def test_export_result_writes_three_files(result, tmp_path):
    paths = export_result(result, tmp_path)
    assert [p.name for p in paths] == [
        "mpc.trace.csv",
        "mpc.jobs.csv",
        "mpc.metrics.json",
    ]
    for p in paths:
        assert p.exists() and p.stat().st_size > 0
    t, power = load_power_trace(paths[0])
    np.testing.assert_array_equal(t, result.times)
    np.testing.assert_array_equal(power, result.power_w)


def test_export_result_custom_stem(result, tmp_path):
    paths = export_result(result, tmp_path / "sub", stem="runA")
    assert paths[0].parent.name == "sub"
    assert paths[0].name == "runA.trace.csv"
