"""Append-only time-series recording.

Experiments record the system power trajectory (and any other scalar
series) every control cycle; the metrics in :mod:`repro.metrics.power`
then integrate over the arrays.  The recorder keeps plain Python lists
while recording (amortised O(1) append) and converts to numpy on demand,
caching the conversion until the next append.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError

__all__ = ["TimeSeriesRecorder"]


class TimeSeriesRecorder:
    """Named scalar time series with O(1) appends and numpy export."""

    def __init__(self) -> None:
        self._times: dict[str, list[float]] = {}
        self._values: dict[str, list[float]] = {}
        self._cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def record(self, series: str, time: float, value: float) -> None:
        """Append one ``(time, value)`` point to ``series``.

        Times within one series must be non-decreasing.
        """
        times = self._times.setdefault(series, [])
        if times and time < times[-1]:
            raise MetricError(
                f"series {series!r}: time {time} before last {times[-1]}"
            )
        times.append(float(time))
        self._values.setdefault(series, []).append(float(value))
        self._cache.pop(series, None)

    def series_names(self) -> list[str]:
        """Recorded series names, sorted."""
        return sorted(self._times)

    def __contains__(self, series: str) -> bool:
        return series in self._times

    def length(self, series: str) -> int:
        """Number of points in ``series`` (0 if absent)."""
        return len(self._times.get(series, ()))

    def arrays(self, series: str) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` arrays for ``series``.

        Raises:
            MetricError: if the series does not exist.
        """
        if series not in self._times:
            raise MetricError(f"no recorded series {series!r}")
        cached = self._cache.get(series)
        if cached is None:
            cached = (
                np.asarray(self._times[series], dtype=np.float64),
                np.asarray(self._values[series], dtype=np.float64),
            )
            self._cache[series] = cached
        return cached

    def values(self, series: str) -> np.ndarray:
        """Values array only."""
        return self.arrays(series)[1]

    def times(self, series: str) -> np.ndarray:
        """Times array only."""
        return self.arrays(series)[0]

    def last(self, series: str) -> float:
        """Most recent value of ``series``.

        Raises:
            MetricError: if the series is missing or empty.
        """
        vals = self._values.get(series)
        if not vals:
            raise MetricError(f"series {series!r} is empty")
        return vals[-1]

    def maximum(self, series: str) -> float:
        """Maximum value of ``series`` (e.g. observed ``P_max``)."""
        return float(self.values(series).max())
