"""Per-node profiling agents.

# reprolint: hot-path

On the real machine each agent reads ``Uti_cpu``, ``Mem_used``,
``Mem_total`` from the Linux ``/proc`` interface and ``Data_NIC`` from the
Tianhe-1A communication chipset's log (§V.A).  Here an agent reads the
same four operating-point quantities from the simulated cluster state.

Two access paths are provided:

* :class:`ProfilingAgent` — the one-node object of the paper's
  description, returning a :class:`NodeSample`; convenient in examples
  and tests;
* :class:`AgentPool` — sweeps many agents through a
  :class:`~repro.cluster.engine.ClusterEngine`; this is what the central
  collector uses.  With the default vector engine the sweep is one
  fancy-indexed gather; with the object engine it is a per-node loop,
  bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import ClusterEngine, get_engine
from repro.cluster.state import ClusterState
from repro.errors import TelemetryError

__all__ = ["NodeSample", "ProfilingAgent", "AgentPool"]


@dataclass(frozen=True)
class NodeSample:
    """One agent's reading of its node's operating point.

    Attributes mirror the inputs of Formula (1) plus identity/occupancy.
    """

    node_id: int
    time: float
    level: int
    cpu_util: float
    mem_frac: float
    nic_frac: float
    job_id: int  #: -1 when the node is idle


class ProfilingAgent:
    """The paper's per-node profiling agent.

    Args:
        state: The cluster state the agent's node lives in.
        node_id: The node this agent is deployed on.
    """

    def __init__(self, state: ClusterState, node_id: int) -> None:
        if not 0 <= node_id < state.num_nodes:
            raise TelemetryError(f"no node {node_id} to deploy an agent on")
        self._state = state
        self._node_id = int(node_id)
        self._samples_taken = 0
        self._last_sample: NodeSample | None = None

    @property
    def node_id(self) -> int:
        """The node this agent profiles."""
        return self._node_id

    @property
    def samples_taken(self) -> int:
        """Number of samples this agent has produced."""
        return self._samples_taken

    @property
    def last_sample(self) -> NodeSample | None:
        """Most recent sample (None before the first)."""
        return self._last_sample

    def sample(self, now: float) -> NodeSample:
        """Read the node's current operating point."""
        i = self._node_id
        s = self._state
        reading = NodeSample(
            node_id=i,
            time=float(now),
            level=int(s.level[i]),
            cpu_util=float(s.cpu_util[i]),
            mem_frac=float(s.mem_frac[i]),
            nic_frac=float(s.nic_frac[i]),
            job_id=int(s.job_id[i]),
        )
        self._samples_taken += 1
        self._last_sample = reading
        return reading


class AgentPool:
    """Vectorised sampling of a set of agents (one per candidate node).

    Args:
        state: The cluster state.
        node_ids: The candidate nodes agents are deployed on.
        engine: Hot-path engine performing the sweep (instance, registry
            name, or ``None`` for the default vector engine).
    """

    def __init__(
        self,
        state: ClusterState,
        node_ids: np.ndarray,
        engine: ClusterEngine | str | None = None,
    ) -> None:
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= state.num_nodes):
            raise TelemetryError("agent node id out of range")
        if len(np.unique(ids)) != len(ids):
            raise TelemetryError("duplicate agent node ids")
        self._state = state
        self._node_ids = ids.copy()
        self._node_ids.setflags(write=False)
        self._samples_taken = 0
        self._engine = get_engine(engine)

    @property
    def node_ids(self) -> np.ndarray:
        """The monitored nodes (read-only view)."""
        return self._node_ids

    @property
    def size(self) -> int:
        """Number of deployed agents."""
        return len(self._node_ids)

    @property
    def samples_taken(self) -> int:
        """Number of pool-wide sampling sweeps performed."""
        return self._samples_taken

    def sample_arrays(
        self, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample every agent at once.

        Returns:
            ``(level, cpu_util, mem_frac, nic_frac, job_id)`` arrays, one
            entry per monitored node in ``node_ids`` order.  Arrays are
            copies — the snapshot stays valid after the state mutates.
        """
        self._samples_taken += 1
        return self._engine.sample_telemetry(self._state, self._node_ids, now)
