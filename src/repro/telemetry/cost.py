"""The management-cost model behind Figure 5.

Figure 5 of the paper plots the CPU utilisation of the central management
node against the size of the candidate set and observes that it "increases
non-linearly", concluding that monitoring must be restricted to a subset
of nodes.

The cost of one control cycle on the management node decomposes as:

* a **fixed** part ``c0`` — control loop, meter read, threshold logic;
* a **linear** part ``c1·n`` — receiving and unmarshalling one sample per
  monitored node, evaluating Formula (1) per node;
* a **superlinear** part ``c2·n²`` — cross-node work: grouping nodes into
  jobs, ranking jobs against each other, and (on a real network) the
  incast contention of n simultaneous reports at the single collector.

``cpu_utilization(n)`` expresses that cost as a fraction of the
management node's capacity given the control-cycle period.  Defaults are
calibrated so the curve is gently linear below a few dozen nodes and
visibly superlinear by 128, matching the shape of Figure 5; see
EXPERIMENTS.md for the measured curve of our own collector, which the
benchmark suite records alongside the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ManagementCostModel"]


@dataclass(frozen=True)
class ManagementCostModel:
    """CPU cost of central power management vs. candidate-set size.

    Args:
        fixed_ms: Per-cycle fixed cost, milliseconds.
        per_node_ms: Cost per monitored node per cycle, milliseconds.
        pairwise_us: Cross-node (quadratic) coefficient, microseconds per
            node-pair per cycle.
        cycle_period_s: The control-cycle period the utilisation is
            normalised against.
    """

    fixed_ms: float = 5.0
    per_node_ms: float = 0.9
    pairwise_us: float = 18.0
    cycle_period_s: float = 1.0

    def __post_init__(self) -> None:
        if min(self.fixed_ms, self.per_node_ms, self.pairwise_us) < 0:
            raise ConfigurationError("cost coefficients must be non-negative")
        if self.cycle_period_s <= 0:
            raise ConfigurationError("cycle period must be positive")

    def cycle_cost_s(self, num_nodes: int | np.ndarray) -> float | np.ndarray:
        """Management-node CPU time consumed by one cycle, seconds."""
        n = np.asarray(num_nodes, dtype=np.float64)
        if np.any(n < 0):
            raise ConfigurationError("num_nodes must be non-negative")
        cost = (
            self.fixed_ms * 1e-3
            + self.per_node_ms * 1e-3 * n
            + self.pairwise_us * 1e-6 * n * n
        )
        if np.ndim(cost) == 0:
            return float(cost)
        return cost

    def cpu_utilization(self, num_nodes: int | np.ndarray) -> float | np.ndarray:
        """Fraction of the management node's CPU consumed, clamped to 1.

        This is the y-axis of Figure 5.
        """
        cost = np.asarray(self.cycle_cost_s(num_nodes)) / self.cycle_period_s
        clamped = np.minimum(cost, 1.0)
        if np.ndim(clamped) == 0:
            return float(clamped)
        return clamped

    def saturation_size(self) -> int:
        """Smallest candidate size that saturates the management node.

        Solves ``cycle_cost_s(n) >= cycle_period_s`` for integer n.
        """
        a = self.pairwise_us * 1e-6
        b = self.per_node_ms * 1e-3
        c = self.fixed_ms * 1e-3 - self.cycle_period_s
        if a == 0:
            if b == 0:
                return 0 if c >= 0 else int(1e18)
            n = -c / b
        else:
            disc = b * b - 4 * a * c
            n = (-b + disc**0.5) / (2 * a)
        # Guard against float noise pushing an exact root past the ceiling.
        return max(0, int(np.ceil(n - 1e-9)))
