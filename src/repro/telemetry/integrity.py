"""Telemetry-integrity defense: validation, trust, and quarantine.

The paper's Algorithm 1 trusts every profiling sample: Formula (1) turns
raw per-node readings straight into the cluster estimate that drives
green/yellow/red transitions and ``P_peak`` learning.  PR 1 hardened the
pipeline against *missing* data; this module hardens it against data
that keeps arriving but is **wrong** (:mod:`repro.faults.corruption`).

Every fresh sample passes a four-stage validation pipeline before it may
influence estimation:

1. **garbage** — NaN/inf, negative, or far-out-of-range utilizations
   (a utilization is physically confined to [0, 1]);
2. **DVFS power envelope** — the Formula (1) prediction for the sample
   at the node's known DVFS level must lie inside the physical envelope
   ``[P_idle(l), P_max(l)]`` (the model-residual cross-check: reported
   telemetry that predicts impossible power is lying);
3. **rate-of-change** — a per-cycle utilization step larger than any
   plausible workload transition;
4. **stuck-at** — a busy node whose readings repeat *exactly* over a
   sliding window (real utilization jitters every cycle; a frozen ADC
   does not).  Nodes pinned at the utilization ceiling are exempt —
   clipping at full scale is the one honest source of bit-identical
   readings, and a sensor latched there only over-reports power.

Stages 1–2 are **hard** failures: impossible on honest telemetry, so the
sample is rejected outright (the collector serves the node's last-known
-good row instead, and its staleness age grows).  Stages 3–4 are
**soft**: legitimate workloads occasionally step sharply, so these only
charge the node's *trust score*.  Hard failures charge a much larger
penalty; clean fresh samples slowly restore trust.

A node whose trust falls below the quarantine threshold is
**quarantined**: its rows in every snapshot are replaced by the
conservative worst-case envelope — full utilization at the node's known
DVFS level — so the cluster estimate can only *over*-estimate
(never-underestimate rule, the trust analogue of PR 1's
never-upgrade-on-stale clamp), its staleness is pinned to ``inf`` so the
degraded-mode ladder never upgrades it, and its inflated envelope power
ranks it first for degradation (force-eligible for target selection).
Release requires trust to recover above a hysteresis threshold and a
minimum quarantine dwell.

The :class:`MeterIntegrityMonitor` is the system-level analogue for the
byzantine *meter*: when the metered reading diverges from the validated
Formula (1) aggregate for several consecutive cycles, the meter is
distrusted and classification runs on ``max(meter, estimate)`` until the
residual closes again.  While the meter is distrusted — or any node is
quarantined — the threshold learner ignores ``P_peak`` observations:
thresholds learned from lying sensors would poison every later cycle.

Quarantine state is deliberately **not** journaled for crash recovery
(:mod:`repro.ha`): a restored manager re-earns trust from scratch, which
is conservative in exactly the same direction as its recovery hold.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.facade import Observability, resolve_obs
from repro.power.estimator import NodePowerEstimator
from repro.types import Seconds, Watts

__all__ = [
    "IntegrityConfig",
    "MeterIntegrityMonitor",
    "ScreenedPower",
    "TelemetryValidator",
    "ValidationResult",
    "screen_metered_power",
]

#: Guard against division by a vanishing estimate in residual fractions.
_TINY_W = 1e-9


@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs of the validation/trust/quarantine pipeline.

    The defaults are deliberately conservative in the false-positive
    direction: on honest telemetry under the default workload jitter no
    stage-1/2 check can fire at all, and the soft penalties are sized so
    occasional legitimate phase steps never drag a node anywhere near
    the quarantine threshold.

    Attributes:
        range_margin: Slack beyond [0, 1] a utilization may report
            before stage 1 calls it impossible (sensor quantisation).
        envelope_margin: Relative slack on the DVFS power envelope for
            the stage-2 model-residual cross-check.
        spike_delta: Per-cycle utilization step beyond which stage 3
            charges a soft penalty.
        stuck_window: Consecutive exactly-repeating busy samples before
            stage 4 starts charging penalties.
        stuck_epsilon: Repetition tolerance of stage 4 (bit-identical
            readings, allowing only float-noise).
        hard_penalty: Trust charged by a hard (stage 1–2) failure.
        soft_penalty: Trust charged by a stage-3 spike event.
        stuck_penalty: Trust charged per cycle a stage-4 stuck window
            persists.
        trust_recovery: Trust restored by one clean fresh sample.
        quarantine_trust: Trust below which a node is quarantined.
        release_trust: Trust a quarantined node must recover to be
            released (hysteresis; must exceed ``quarantine_trust``).
        min_quarantine_cycles: Minimum quarantine dwell, cycles.
        meter_residual_fraction: Relative meter-vs-estimate residual
            beyond which a cycle counts toward meter distrust.  Only
            meaningful when the candidate set covers (nearly) the whole
            machine — the aggregate estimate of a partial candidate set
            cannot vouch for unmonitored nodes.
        meter_distrust_cycles: Consecutive high-residual cycles before
            the meter is distrusted.
        meter_recovery_cycles: Consecutive low-residual cycles before a
            distrusted meter is trusted again.
    """

    range_margin: float = 0.05
    envelope_margin: float = 0.02
    spike_delta: float = 0.60
    stuck_window: int = 8
    stuck_epsilon: float = 1e-9
    hard_penalty: float = 0.35
    soft_penalty: float = 0.03
    stuck_penalty: float = 0.08
    trust_recovery: float = 0.02
    quarantine_trust: float = 0.30
    release_trust: float = 0.90
    min_quarantine_cycles: int = 30
    meter_residual_fraction: float = 0.10
    meter_distrust_cycles: int = 5
    meter_recovery_cycles: int = 10

    def __post_init__(self) -> None:
        for name in (
            "range_margin",
            "envelope_margin",
            "spike_delta",
            "stuck_epsilon",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be non-negative")
        for name in (
            "hard_penalty",
            "soft_penalty",
            "stuck_penalty",
            "trust_recovery",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        for name in ("quarantine_trust", "release_trust"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must lie in (0, 1]")
        if self.release_trust <= self.quarantine_trust:
            raise ConfigurationError(
                "release_trust must exceed quarantine_trust "
                "(the hysteresis band would be empty or inverted)"
            )
        if self.stuck_window < 2:
            raise ConfigurationError("stuck_window must be >= 2")
        if self.min_quarantine_cycles < 1:
            raise ConfigurationError("min_quarantine_cycles must be >= 1")
        if self.meter_residual_fraction <= 0.0:
            raise ConfigurationError("meter_residual_fraction must be > 0")
        if self.meter_distrust_cycles < 1 or self.meter_recovery_cycles < 1:
            raise ConfigurationError(
                "meter distrust/recovery cycle counts must be >= 1"
            )


@dataclass(frozen=True)
class ValidationResult:
    """What the validator decided about one telemetry sweep.

    Masks are aligned with the sweep's node arrays.

    Attributes:
        rejected: Fresh samples that failed a hard check this cycle;
            the collector must serve those nodes from the last-known
            -good cache instead.
        quarantined: Nodes currently quarantined (after this cycle's
            entries and releases); the collector must replace their
            rows with the conservative envelope.
    """

    rejected: np.ndarray
    quarantined: np.ndarray


class TelemetryValidator:
    """Per-node validation pipeline, trust scores, and quarantine.

    One instance per collector; state arrays are aligned with the
    collector's candidate positions (entry ``k`` describes
    ``candidate_ids[k]``).

    Args:
        config: Pipeline knobs.
        estimator: The Formula (1) evaluator used for the stage-2
            envelope cross-check (shared with the manager).
        candidate_ids: The monitored candidate set.
        top_level: The cluster's highest DVFS level (level-range check).
        obs: Observability facade; trust gauges and rejection counters
            are mirrored when metrics are on, and each quarantine entry
            trips the flight recorder.
    """

    def __init__(
        self,
        config: IntegrityConfig,
        estimator: NodePowerEstimator,
        candidate_ids: np.ndarray,
        top_level: int,
        obs: Observability | None = None,
    ) -> None:
        self.config = config
        self._estimator = estimator
        self._ids = np.asarray(candidate_ids, dtype=np.int64).copy()
        self._top_level = int(top_level)
        n = len(self._ids)
        self._trust = np.ones(n, dtype=np.float64)
        self._quarantined = np.zeros(n, dtype=bool)
        self._quarantine_entry_cycle = np.full(n, -1, dtype=np.int64)
        # Raw last fresh report per node, for the rate/stuck stages.
        self._last_cpu = np.full(n, np.nan)
        self._last_mem = np.full(n, np.nan)
        self._last_nic = np.full(n, np.nan)
        self._stuck_run = np.zeros(n, dtype=np.int64)
        self._cycle = -1
        self._rejected_samples = 0
        self._quarantine_entries = 0
        self._quarantined_node_cycles = 0
        self._obs = resolve_obs(obs)
        self._trips_on = self._obs.flight.enabled
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Mirror trust/quarantine state as collected metric series."""
        obs = self._obs
        if not obs.metrics_on:
            return
        reg = obs.metrics
        reg.counter_func(
            "repro_corrupt_samples_rejected_total",
            "Fresh telemetry samples rejected by the hard validation stages",
            lambda: float(self._rejected_samples),
        )
        reg.counter_func(
            "repro_quarantine_entries_total",
            "Node quarantine entries",
            lambda: float(self._quarantine_entries),
        )
        reg.counter_func(
            "repro_quarantined_node_cycles_total",
            "Sum over cycles of the quarantined node count",
            lambda: float(self._quarantined_node_cycles),
        )
        reg.gauge_func(
            "repro_quarantined_nodes",
            "Nodes currently quarantined",
            lambda: float(int(self._quarantined.sum())),
        )
        reg.gauge_func(
            "repro_trust_min",
            "Lowest per-node telemetry trust score",
            lambda: float(self._trust.min()) if len(self._trust) else 1.0,
        )
        reg.gauge_func(
            "repro_trust_mean",
            "Mean per-node telemetry trust score",
            lambda: float(self._trust.mean()) if len(self._trust) else 1.0,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def trust(self) -> np.ndarray:
        """Per-node trust scores in [0, 1] (candidate-aligned copy)."""
        return self._trust.copy()

    @property
    def quarantined(self) -> np.ndarray:
        """Current quarantine mask (candidate-aligned copy)."""
        return self._quarantined.copy()

    @property
    def any_quarantined(self) -> bool:
        """Whether any node is currently quarantined."""
        return bool(self._quarantined.any())

    @property
    def rejected_samples(self) -> int:
        """Fresh samples rejected by the hard stages so far."""
        return self._rejected_samples

    @property
    def quarantine_entries(self) -> int:
        """Quarantine entry events so far."""
        return self._quarantine_entries

    @property
    def quarantined_node_cycles(self) -> int:
        """Σ over cycles of the quarantined node count."""
        return self._quarantined_node_cycles

    # ------------------------------------------------------------------
    # The per-sweep pipeline
    # ------------------------------------------------------------------
    def validate(
        self,
        level: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
        job_id: np.ndarray,
        fresh: np.ndarray,
    ) -> ValidationResult:
        """Run one sweep's fresh samples through the pipeline.

        Arrays are candidate-aligned; ``fresh`` marks rows that carry a
        new sensor reading this cycle (cache-served rows are the
        *collector's* substitutes, not sensor output, and are never
        charged against a node's trust).

        Returns:
            The hard-rejection mask and the post-update quarantine mask.
        """
        self._cycle += 1
        cfg = self.config
        n = len(self._ids)
        rejected = np.zeros(n, dtype=bool)
        if n == 0:
            return ValidationResult(rejected=rejected, quarantined=self.quarantined)

        # Stage 1: garbage — NaN/inf or physically impossible readings.
        # (np.isfinite is the NaN guard for every comparison below.)
        finite = (
            np.isfinite(cpu_util) & np.isfinite(mem_frac) & np.isfinite(nic_frac)
        )
        lo = -cfg.range_margin
        hi = 1.0 + cfg.range_margin
        in_range = finite.copy()
        for values in (cpu_util, mem_frac, nic_frac):
            with np.errstate(invalid="ignore"):
                in_range &= (values >= lo) & (values <= hi)
        bad_level = (level < 0) | (level > self._top_level)
        hard = fresh & (~finite | ~in_range | bad_level)

        # Stage 2: DVFS power-envelope cross-check.  Evaluate Formula (1)
        # on the reported sample at the node's known level and require
        # the prediction inside [P_idle(l), P_max(l)] — telemetry that
        # predicts impossible power is lying even if each field alone
        # squeaks past stage 1.
        check = fresh & ~hard
        if check.any():
            lv = np.clip(np.asarray(level, dtype=np.int64), 0, self._top_level)
            ids = self._ids
            zeros = np.zeros(n)
            ones = np.ones(n)
            predicted = self._estimator.estimate_nodes(
                lv, cpu_util, mem_frac, nic_frac, node_ids=ids
            )
            env_lo = self._estimator.estimate_nodes(
                lv, zeros, zeros, zeros, node_ids=ids
            )
            env_hi = self._estimator.estimate_nodes(
                lv, ones, ones, ones, node_ids=ids
            )
            margin = cfg.envelope_margin
            with np.errstate(invalid="ignore"):
                outside = (predicted < env_lo * (1.0 - margin)) | (
                    predicted > env_hi * (1.0 + margin)
                )
            outside |= ~np.isfinite(predicted)
            hard |= check & outside

        # Stage 3 (soft): rate-of-change spikes vs the last fresh report.
        have_prev = np.isfinite(self._last_cpu)
        with np.errstate(invalid="ignore"):
            spike = (
                fresh
                & ~hard
                & have_prev
                & (np.abs(cpu_util - self._last_cpu) > cfg.spike_delta)
            )

        # Stage 4 (soft): stuck-at — a busy node repeating its readings
        # exactly.  Honest utilization jitters every cycle; cache-served
        # rows are excluded (``fresh`` gate), so repeats here come from
        # the sensor itself.
        eps = cfg.stuck_epsilon
        with np.errstate(invalid="ignore"):
            same = (
                have_prev
                & (np.abs(cpu_util - self._last_cpu) <= eps)
                & (np.abs(mem_frac - self._last_mem) <= eps)
                & (np.abs(nic_frac - self._last_nic) <= eps)
            )
        busy = np.asarray(job_id) >= 0
        # A busy node pinned at the utilization *ceiling* repeats
        # honestly: load jitter above full scale clips to exactly 1.0,
        # so saturation is the one clean state with bit-identical
        # readings (high-cpu phases ride it for many cycles).  Exclude
        # it from tracking — a sensor latched at full scale only
        # over-reports power, which is already the conservative
        # direction (and exactly what the quarantine envelope would
        # substitute anyway).
        with np.errstate(invalid="ignore"):
            saturated = cpu_util >= 1.0
        track = fresh & busy & ~saturated
        self._stuck_run[track & same] += 1
        self._stuck_run[track & ~same] = 0
        self._stuck_run[fresh & ~track] = 0
        stuck = track & (self._stuck_run >= cfg.stuck_window)

        # The raw fresh report (even a rejected one) becomes the
        # reference for the next cycle's rate/stuck stages: a stuck
        # sensor keeps repeating, and the pipeline must keep seeing it.
        self._last_cpu[fresh] = cpu_util[fresh]
        self._last_mem[fresh] = mem_frac[fresh]
        self._last_nic[fresh] = nic_frac[fresh]

        # Trust update: hard failures are near-certain corruption, soft
        # failures merely suspicious, clean fresh samples healing.
        penalty = (
            hard * cfg.hard_penalty
            + spike * cfg.soft_penalty
            + stuck * cfg.stuck_penalty
        )
        clean = fresh & ~hard & ~spike & ~stuck
        self._trust = np.clip(
            self._trust - penalty + clean * cfg.trust_recovery, 0.0, 1.0
        )

        # Quarantine state machine with hysteresis.
        entering = ~self._quarantined & (self._trust < cfg.quarantine_trust)
        if entering.any():
            self._quarantined[entering] = True
            self._quarantine_entry_cycle[entering] = self._cycle
            self._quarantine_entries += int(entering.sum())
            if self._trips_on:
                self._obs.trip("quarantine_entry", float(self._cycle))
        dwell = self._cycle - self._quarantine_entry_cycle
        releasing = (
            self._quarantined
            & (dwell >= cfg.min_quarantine_cycles)
            & (self._trust > cfg.release_trust)
        )
        if releasing.any():
            self._quarantined[releasing] = False
        self._quarantined_node_cycles += int(self._quarantined.sum())

        rejected = hard
        self._rejected_samples += int(rejected.sum())
        return ValidationResult(rejected=rejected, quarantined=self.quarantined)


class MeterIntegrityMonitor:
    """Cross-checks the system meter against the Formula (1) aggregate.

    The candidate aggregate is the only independent reference the
    manager has for the meter; when they diverge persistently the meter
    is distrusted and classification runs on ``max(meter, estimate)`` —
    the never-underestimate rule applied at system level.  The check is
    sharp only when the candidate set covers (nearly) the whole machine;
    a partial candidate set needs a wider ``meter_residual_fraction``.

    Args:
        config: Shared integrity knobs (the ``meter_*`` fields).
        obs: Observability facade; a distrust transition trips the
            flight recorder.
    """

    def __init__(
        self, config: IntegrityConfig, obs: Observability | None = None
    ) -> None:
        self.config = config
        self._distrusted = False
        self._bad_streak = 0
        self._good_streak = 0
        self._distrust_events = 0
        self._distrusted_cycles = 0
        self._obs = resolve_obs(obs)
        self._trips_on = self._obs.flight.enabled
        if self._obs.metrics_on:
            self._obs.metrics.gauge_func(
                "repro_meter_distrusted",
                "Whether the system meter is currently distrusted (0/1)",
                lambda: 1.0 if self._distrusted else 0.0,
            )
            self._obs.metrics.counter_func(
                "repro_meter_distrusted_cycles_total",
                "Cycles run with the system meter distrusted",
                lambda: float(self._distrusted_cycles),
            )

    @property
    def distrusted(self) -> bool:
        """Whether the meter is currently distrusted."""
        return self._distrusted

    @property
    def distrust_events(self) -> int:
        """Distinct distrust episodes entered so far."""
        return self._distrust_events

    @property
    def distrusted_cycles(self) -> int:
        """Cycles spent with the meter distrusted so far."""
        return self._distrusted_cycles

    def filter(self, metered_w: float, estimate_w: float, now: float) -> float:
        """Observe one metered cycle; return the power to act on.

        While the meter is trusted this returns ``metered_w`` unchanged
        (bit-identical to the undefended path); while distrusted it
        returns ``max(metered_w, estimate_w)``.
        """
        cfg = self.config
        basis = max(abs(estimate_w), _TINY_W)
        residual = abs(metered_w - estimate_w) / basis
        high = residual > cfg.meter_residual_fraction
        if not self._distrusted:
            self._bad_streak = self._bad_streak + 1 if high else 0
            if self._bad_streak >= cfg.meter_distrust_cycles:
                self._distrusted = True
                self._distrust_events += 1
                self._good_streak = 0
                if self._trips_on:
                    self._obs.trip("meter_distrust", now)
        else:
            self._good_streak = 0 if high else self._good_streak + 1
            if self._good_streak >= cfg.meter_recovery_cycles:
                self._distrusted = False
                self._bad_streak = 0
        if self._distrusted:
            self._distrusted_cycles += 1
            return max(metered_w, estimate_w)
        return metered_w


@dataclass(frozen=True)
class ScreenedPower:
    """Outcome of screening one metered reading through the integrity layer.

    Attributes:
        power_w: The power the manager may act on this cycle.
        meter_distrusted: Whether the meter monitor currently distrusts
            the system meter.
        learnable: Whether the reading may feed ``P_peak`` learning —
            false while the meter is distrusted or any node is
            quarantined, since thresholds learned from lying sensors
            would poison every later cycle.
    """

    power_w: Watts
    meter_distrusted: bool
    learnable: bool


def screen_metered_power(
    monitor: MeterIntegrityMonitor | None,
    metered_w: Watts,
    estimate_w: Callable[[], Watts],
    quarantine_active: bool,
    now: Seconds,
) -> ScreenedPower:
    """Screen one raw metered reading before it may drive control.

    This is the single trusted egress for system-meter readings (lint
    rule RL501): the manager hands the raw reading in and acts only on
    what comes out.  While the meter is trusted and nothing is
    quarantined the reading passes through bit-identically; with lying
    sensors in the aggregate the residual cross-check is meaningless, so
    the never-underestimate rule applies outright — act on whichever of
    meter and quarantine-inflated estimate is higher.

    Args:
        monitor: The meter's residual cross-check, or ``None`` when the
            run is undefended (no validator configured).
        metered_w: The raw (possibly byzantine) metered reading.
        estimate_w: Lazy Formula (1) candidate aggregate; only evaluated
            when a monitor is attached, so undefended runs skip the
            estimator sweep entirely.
        quarantine_active: Whether any node is currently quarantined.
        now: Simulated time, seconds.
    """
    power = metered_w
    distrusted = False
    if monitor is not None:
        if quarantine_active:
            # With lying sensors in the aggregate the residual can no
            # longer testify for or against the meter: the monitor's
            # streaks are frozen and the never-underestimate rule is
            # applied outright.  The envelope only inflates, so this can
            # over-cap but never under-cap.
            power = max(power, estimate_w())
        else:
            power = monitor.filter(power, estimate_w(), now)
        distrusted = monitor.distrusted
    return ScreenedPower(
        power_w=power,
        meter_distrusted=distrusted,
        learnable=not distrusted and not quarantine_active,
    )
