"""The central telemetry collection step.

Each control cycle, the global power manager "collects information about
the runtime behaviors and the power consumptions of all nodes in the
candidate set" (§V.D).  :class:`TelemetryCollector` performs that sweep:
it samples the agent pool, packages the result as an immutable
:class:`TelemetrySnapshot`, remembers the previous snapshot (change-based
policies need ``P^t`` *and* ``P^{t−1}``), and charges the
:class:`~repro.telemetry.cost.ManagementCostModel` for the sweep.

On a real machine agents fail to report: daemons hang, packets drop,
nodes go dark.  The collector therefore keeps a **last-known-good
cache** — one row per monitored node, primed at deploy time — and, when
a :class:`~repro.faults.injector.FaultInjector` marks samples as lost,
substitutes each lost node's cached row instead of crashing or silently
shipping garbage.  Every snapshot then carries two honesty signals
downstream consumers act on: the per-node staleness ``age`` (seconds
since that node last reported) and the sweep's ``coverage`` fraction.
Without an injector the fast path is exactly the original sweep and
every age is zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import ClusterEngine
from repro.cluster.state import ClusterState
from repro.errors import TelemetryError
from repro.faults.injector import FaultInjector
from repro.obs.facade import Observability, resolve_obs
from repro.telemetry.agent import AgentPool
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.integrity import TelemetryValidator

__all__ = ["TelemetrySnapshot", "TelemetryCollector"]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One cycle's view of every monitored node.

    Arrays are aligned: entry ``k`` of each array describes node
    ``node_ids[k]``.  All arrays are copies owned by the snapshot.

    ``age`` is the staleness of each entry in seconds: 0 for nodes whose
    agent reported this cycle, the time since the last successful report
    for nodes served from the last-known-good cache (``inf`` if a node
    has never reported).  ``coverage`` is the fraction of monitored
    nodes that reported fresh data this cycle; both default to the
    fault-free values so snapshots built by tests and fault-free runs
    are unchanged.

    **Empty-candidate convention:** when the monitored set itself is
    empty (``size == 0``) coverage is defined as 1.0 — vacuously full.
    A blackout means monitored nodes went dark, not that there is
    nothing to monitor, so downstream coverage-threshold logic (the
    manager's forced-red rung) must stay inert for an empty candidate
    set.
    """

    time: float
    node_ids: np.ndarray
    level: np.ndarray
    cpu_util: np.ndarray
    mem_frac: np.ndarray
    nic_frac: np.ndarray
    job_id: np.ndarray
    age: np.ndarray | None = None
    coverage: float = 1.0

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        if self.age is None:
            object.__setattr__(self, "age", np.zeros(n, dtype=np.float64))
        for name in ("level", "cpu_util", "mem_frac", "nic_frac", "job_id", "age"):
            if len(getattr(self, name)) != n:
                raise TelemetryError(f"snapshot array {name} misaligned")
        if not math.isfinite(self.coverage) or not 0.0 <= self.coverage <= 1.0:
            raise TelemetryError("snapshot coverage outside [0, 1]")
        for arr in (
            self.node_ids,
            self.level,
            self.cpu_util,
            self.mem_frac,
            self.nic_frac,
            self.job_id,
            self.age,
        ):
            arr.setflags(write=False)

    @property
    def size(self) -> int:
        """Number of monitored nodes in the snapshot."""
        return len(self.node_ids)

    def busy_mask(self) -> np.ndarray:
        """Mask of monitored nodes occupied by a job."""
        return self.job_id >= 0

    def stale_mask(self, max_age_s: float) -> np.ndarray:
        """Mask of entries older than ``max_age_s`` seconds.

        A non-finite age (``inf`` for never-reported or quarantined
        entries, NaN from any upstream defect) is always stale: a NaN
        would otherwise compare ``False`` and silently count as fresh —
        exactly the failure mode the never-upgrade clamp exists for.
        """
        age = np.asarray(self.age)
        return np.isnan(age) | (age > float(max_age_s))

    def index_of(self, node_id: int) -> int:
        """Position of ``node_id`` within the snapshot arrays.

        Raises:
            TelemetryError: if the node is not monitored.
        """
        hits = np.flatnonzero(self.node_ids == int(node_id))
        if len(hits) == 0:
            raise TelemetryError(f"node {node_id} is not in the snapshot")
        return int(hits[0])


class TelemetryCollector:
    """Central collection of candidate-node telemetry.

    Args:
        state: The cluster state to sample.
        candidate_ids: The candidate set ``A_candidate`` to monitor.
        cost_model: Accounting model for central management cost; pass
            ``None`` to skip accounting.
        fault_injector: Optional fault injector; when present, each
            sweep asks it which samples were lost and serves those nodes
            from the last-known-good cache.  When the injector carries a
            sensor-corruption model, the surviving fresh samples are
            corrupted *before* they reach the cache — the collector can
            only cache what the wire delivered.
        obs: Observability facade; when its metric registry is live the
            sweep statistics are mirrored as collected series and each
            sweep's worst cache age feeds a histogram.
        validator: Optional telemetry-integrity validator
            (:mod:`repro.telemetry.integrity`).  Fresh samples that fail
            its hard checks are served from the last-known-good cache
            exactly like dropped ones (and excluded from coverage);
            quarantined nodes' rows are replaced by the conservative
            worst-case envelope — full utilization at the node's known
            DVFS level, staleness pinned to ``inf``.
        engine: Hot-path engine the agent pool sweeps through (instance,
            registry name, or ``None`` for the default vector engine).
    """

    def __init__(
        self,
        state: ClusterState,
        candidate_ids: np.ndarray,
        cost_model: ManagementCostModel | None = None,
        fault_injector: FaultInjector | None = None,
        obs: Observability | None = None,
        validator: TelemetryValidator | None = None,
        engine: ClusterEngine | str | None = None,
    ) -> None:
        self._pool = AgentPool(state, candidate_ids, engine=engine)
        self._cost_model = cost_model
        self._injector = fault_injector
        self._validator = validator
        self._current: TelemetrySnapshot | None = None
        self._previous: TelemetrySnapshot | None = None
        self._accumulated_cost_s = 0.0
        self._collections = 0
        self._dropped_samples = 0
        # Last-known-good cache, primed at deploy time (each agent reads
        # its node once when installed), so a node dropped on the very
        # first sweep still has *some* row — marked infinitely stale
        # until its first successful report.
        ids = self._pool.node_ids
        self._lkg_level = state.level[ids].copy()
        self._lkg_cpu = state.cpu_util[ids].copy()
        self._lkg_mem = state.mem_frac[ids].copy()
        self._lkg_nic = state.nic_frac[ids].copy()
        self._lkg_job = state.job_id[ids].copy()
        self._lkg_time = np.full(len(ids), -np.inf)
        self._register_metrics(resolve_obs(obs))

    def _register_metrics(self, obs: Observability) -> None:
        """Mirror sweep statistics as collected metric series.

        Re-registration (a successor manager's fresh collector after
        failover) rebinds the callbacks to the live collector.
        """
        self._metrics_on = obs.metrics_on
        # Resolved once: the registry hands back the shared no-op
        # histogram when disabled, so collect() can call observe()
        # unconditionally under the _metrics_on guard.
        self._age_hist = obs.metrics.histogram(
            "repro_lkg_age_seconds",
            "Worst last-known-good cache age per sweep, seconds",
            buckets=(0.0, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0),
        )
        if not obs.metrics_on:
            return
        reg = obs.metrics
        reg.counter_func(
            "repro_telemetry_collections_total",
            "Telemetry sweeps performed",
            lambda: float(self._collections),
        )
        reg.counter_func(
            "repro_telemetry_dropped_samples_total",
            "Samples served from the last-known-good cache",
            lambda: float(self._dropped_samples),
        )
        reg.gauge_func(
            "repro_management_cost_seconds",
            "Modelled management-node CPU time spent, seconds",
            lambda: float(self._accumulated_cost_s),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def candidate_ids(self) -> np.ndarray:
        """The monitored candidate node set."""
        return self._pool.node_ids

    @property
    def size(self) -> int:
        """Number of monitored nodes."""
        return self._pool.size

    @property
    def current(self) -> TelemetrySnapshot | None:
        """Most recent snapshot (``P^t`` inputs)."""
        return self._current

    @property
    def previous(self) -> TelemetrySnapshot | None:
        """Snapshot before the most recent (``P^{t−1}`` inputs)."""
        return self._previous

    @property
    def collections(self) -> int:
        """Number of sweeps performed."""
        return self._collections

    @property
    def dropped_samples(self) -> int:
        """Samples served from the last-known-good cache so far."""
        return self._dropped_samples

    @property
    def validator(self) -> TelemetryValidator | None:
        """The attached integrity validator (None when undefended)."""
        return self._validator

    @property
    def accumulated_cost_s(self) -> float:
        """Total modelled management-node CPU time spent, seconds."""
        return self._accumulated_cost_s

    def management_cpu_utilization(self) -> float:
        """Modelled CPU utilisation of the management node (Figure 5 y-axis)."""
        if self._cost_model is None:
            return 0.0
        return float(self._cost_model.cpu_utilization(self.size))

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self, now: float) -> TelemetrySnapshot:
        """Sweep all agents and return the new current snapshot.

        Lost samples (when a fault injector is attached) are replaced by
        the node's last-known-good row; the snapshot's ``age`` and
        ``coverage`` report exactly which entries are substitutes.  With
        a validator attached, hard-rejected fresh samples are served the
        same way, and quarantined nodes' rows become the conservative
        worst-case envelope.
        """
        level, cpu, mem, nic, job = self._pool.sample_arrays(now)
        age: np.ndarray | None = None
        coverage = 1.0
        if self._injector is not None or self._validator is not None:
            ids = self._pool.node_ids
            if len(ids) == 0:
                # Convention: an empty candidate set has coverage 1.0
                # (vacuously full).  There is nothing to monitor, so a
                # blackout cannot be in progress and the manager's
                # forced-red rung must never fire on the absence of a
                # candidate set — only on a dark one.
                coverage = 1.0
                age = np.zeros(0, dtype=np.float64)
            else:
                if self._injector is not None:
                    # Corruption strikes at the sensor, before the wire
                    # can lose the sample; what the wire then delivers
                    # (corrupted or not) is all the collector ever sees.
                    self._injector.corrupt_telemetry(ids, cpu, mem, nic)
                    dropped = self._injector.telemetry_drop_mask(ids)
                else:
                    dropped = np.zeros(len(ids), dtype=bool)
                fresh = ~dropped
                quarantined: np.ndarray | None = None
                known_level: np.ndarray | None = None
                if self._validator is not None:
                    # The sampled level is ground truth in the simulator
                    # — standing in for the commanded level the manager
                    # knows from its own actuation history.
                    known_level = level.copy()
                    result = self._validator.validate(
                        level, cpu, mem, nic, job, fresh
                    )
                    quarantined = result.quarantined
                    fresh &= ~result.rejected
                unusable = ~fresh
                if unusable.any():
                    level[unusable] = self._lkg_level[unusable]
                    cpu[unusable] = self._lkg_cpu[unusable]
                    mem[unusable] = self._lkg_mem[unusable]
                    nic[unusable] = self._lkg_nic[unusable]
                    job[unusable] = self._lkg_job[unusable]
                    self._dropped_samples += int(unusable.sum())
                self._lkg_level[fresh] = level[fresh]
                self._lkg_cpu[fresh] = cpu[fresh]
                self._lkg_mem[fresh] = mem[fresh]
                self._lkg_nic[fresh] = nic[fresh]
                self._lkg_job[fresh] = job[fresh]
                self._lkg_time[fresh] = float(now)
                age = float(now) - self._lkg_time
                coverage = float(fresh.mean())
                if (
                    quarantined is not None
                    and known_level is not None
                    and quarantined.any()
                ):
                    # Conservative envelope: full utilization at the
                    # node's known DVFS level, so the cluster estimate
                    # can only over-estimate; age pinned to inf so the
                    # never-upgrade clamp holds the node down.
                    level[quarantined] = known_level[quarantined]
                    cpu[quarantined] = 1.0
                    mem[quarantined] = 1.0
                    nic[quarantined] = 1.0
                    age[quarantined] = np.inf
        snapshot = TelemetrySnapshot(
            time=float(now),
            node_ids=self._pool.node_ids.copy(),
            level=level,
            cpu_util=cpu,
            mem_frac=mem,
            nic_frac=nic,
            job_id=job,
            age=age,
            coverage=coverage,
        )
        self._previous = self._current
        self._current = snapshot
        self._collections += 1
        if self._cost_model is not None:
            self._accumulated_cost_s += float(self._cost_model.cycle_cost_s(self.size))
        if self._metrics_on and snapshot.size > 0:
            if self._injector is None:
                # Fault-free sweeps have age ≡ 0 by construction; skip
                # the reduction on the hot path.
                self._age_hist.observe(0.0)
            else:
                worst = float(snapshot.age.max())
                if math.isfinite(worst):
                    self._age_hist.observe(worst)
        return snapshot

    # ------------------------------------------------------------------
    # Crash recovery (repro.ha state journal)
    # ------------------------------------------------------------------
    def restore_state(
        self,
        snapshot: TelemetrySnapshot | None,
        collections: int = 0,
        dropped_samples: int = 0,
        accumulated_cost_s: float = 0.0,
    ) -> None:
        """Rebuild the collector of a crashed manager from its journal.

        The last journaled sweep carries everything the cache needs: its
        rows *are* the post-sweep last-known-good rows, and each node's
        last report time is exactly ``snapshot.time - age`` (``-inf``
        for a node that never reported).  The restored snapshot becomes
        ``current`` so the first post-recovery sweep sees it as
        ``previous`` — change-based policies resume on the same
        ``P^{t-1}`` an uncrashed manager would have used.

        Args:
            snapshot: The last pre-crash sweep (``None`` if the manager
                crashed before its first collection; the deploy-time
                cache priming then stands).
            collections: Journaled sweep count.
            dropped_samples: Journaled cache-substitution count.
            accumulated_cost_s: Journaled management-cost integral.

        Raises:
            TelemetryError: if the snapshot does not cover exactly this
                collector's candidate set (a journal from a different
                configuration must not be replayed onto this one).
        """
        self._collections = int(collections)
        self._dropped_samples = int(dropped_samples)
        self._accumulated_cost_s = float(accumulated_cost_s)
        self._previous = None
        if snapshot is None:
            self._current = None
            return
        if not np.array_equal(snapshot.node_ids, self._pool.node_ids):
            raise TelemetryError(
                "journaled snapshot does not cover this candidate set"
            )
        self._lkg_level = snapshot.level.astype(self._lkg_level.dtype).copy()
        self._lkg_cpu = snapshot.cpu_util.astype(np.float64).copy()
        self._lkg_mem = snapshot.mem_frac.astype(np.float64).copy()
        self._lkg_nic = snapshot.nic_frac.astype(np.float64).copy()
        self._lkg_job = snapshot.job_id.astype(self._lkg_job.dtype).copy()
        self._lkg_time = float(snapshot.time) - np.asarray(
            snapshot.age, dtype=np.float64
        )
        self._current = snapshot
