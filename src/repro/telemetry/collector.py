"""The central telemetry collection step.

Each control cycle, the global power manager "collects information about
the runtime behaviors and the power consumptions of all nodes in the
candidate set" (§V.D).  :class:`TelemetryCollector` performs that sweep:
it samples the agent pool, packages the result as an immutable
:class:`TelemetrySnapshot`, remembers the previous snapshot (change-based
policies need ``P^t`` *and* ``P^{t−1}``), and charges the
:class:`~repro.telemetry.cost.ManagementCostModel` for the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState
from repro.errors import TelemetryError
from repro.telemetry.agent import AgentPool
from repro.telemetry.cost import ManagementCostModel

__all__ = ["TelemetrySnapshot", "TelemetryCollector"]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One cycle's view of every monitored node.

    Arrays are aligned: entry ``k`` of each array describes node
    ``node_ids[k]``.  All arrays are copies owned by the snapshot.
    """

    time: float
    node_ids: np.ndarray
    level: np.ndarray
    cpu_util: np.ndarray
    mem_frac: np.ndarray
    nic_frac: np.ndarray
    job_id: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        for name in ("level", "cpu_util", "mem_frac", "nic_frac", "job_id"):
            if len(getattr(self, name)) != n:
                raise TelemetryError(f"snapshot array {name} misaligned")
        for arr in (
            self.node_ids,
            self.level,
            self.cpu_util,
            self.mem_frac,
            self.nic_frac,
            self.job_id,
        ):
            arr.setflags(write=False)

    @property
    def size(self) -> int:
        """Number of monitored nodes in the snapshot."""
        return len(self.node_ids)

    def busy_mask(self) -> np.ndarray:
        """Mask of monitored nodes occupied by a job."""
        return self.job_id >= 0

    def index_of(self, node_id: int) -> int:
        """Position of ``node_id`` within the snapshot arrays.

        Raises:
            TelemetryError: if the node is not monitored.
        """
        hits = np.flatnonzero(self.node_ids == int(node_id))
        if len(hits) == 0:
            raise TelemetryError(f"node {node_id} is not in the snapshot")
        return int(hits[0])


class TelemetryCollector:
    """Central collection of candidate-node telemetry.

    Args:
        state: The cluster state to sample.
        candidate_ids: The candidate set ``A_candidate`` to monitor.
        cost_model: Accounting model for central management cost; pass
            ``None`` to skip accounting.
    """

    def __init__(
        self,
        state: ClusterState,
        candidate_ids: np.ndarray,
        cost_model: ManagementCostModel | None = None,
    ) -> None:
        self._pool = AgentPool(state, candidate_ids)
        self._cost_model = cost_model
        self._current: TelemetrySnapshot | None = None
        self._previous: TelemetrySnapshot | None = None
        self._accumulated_cost_s = 0.0
        self._collections = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def candidate_ids(self) -> np.ndarray:
        """The monitored candidate node set."""
        return self._pool.node_ids

    @property
    def size(self) -> int:
        """Number of monitored nodes."""
        return self._pool.size

    @property
    def current(self) -> TelemetrySnapshot | None:
        """Most recent snapshot (``P^t`` inputs)."""
        return self._current

    @property
    def previous(self) -> TelemetrySnapshot | None:
        """Snapshot before the most recent (``P^{t−1}`` inputs)."""
        return self._previous

    @property
    def collections(self) -> int:
        """Number of sweeps performed."""
        return self._collections

    @property
    def accumulated_cost_s(self) -> float:
        """Total modelled management-node CPU time spent, seconds."""
        return self._accumulated_cost_s

    def management_cpu_utilization(self) -> float:
        """Modelled CPU utilisation of the management node (Figure 5 y-axis)."""
        if self._cost_model is None:
            return 0.0
        return float(self._cost_model.cpu_utilization(self.size))

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self, now: float) -> TelemetrySnapshot:
        """Sweep all agents and return the new current snapshot."""
        level, cpu, mem, nic, job = self._pool.sample_arrays(now)
        snapshot = TelemetrySnapshot(
            time=float(now),
            node_ids=self._pool.node_ids.copy(),
            level=level,
            cpu_util=cpu,
            mem_frac=mem,
            nic_frac=nic,
            job_id=job,
        )
        self._previous = self._current
        self._current = snapshot
        self._collections += 1
        if self._cost_model is not None:
            self._accumulated_cost_s += float(self._cost_model.cycle_cost_s(self.size))
        return snapshot
