"""Monitoring substrate: profiling agents, the central collector, and the
management-cost model behind the paper's Figure 5.

The architecture deploys "a profiling agent to each node in the candidate
set" (§II.C); the global power manager periodically collects every agent's
sample and estimates per-node and per-job power.  We expose both views:

* :class:`~repro.telemetry.agent.ProfilingAgent` — the per-node object
  the paper describes (reads one node's ``/proc``-equivalent state);
* :class:`~repro.telemetry.collector.TelemetryCollector` — the central
  collection step, which samples *all* candidate agents in one vectorised
  snapshot and charges the management-cost model;
* :class:`~repro.telemetry.cost.ManagementCostModel` — the CPU cost of
  central monitoring as a function of candidate-set size, the quantity
  Figure 5 plots to argue that monitoring must be restricted to a subset;
* :class:`~repro.telemetry.recorder.TimeSeriesRecorder` — lightweight
  append-only recording of power/metric series for post-processing;
* :mod:`repro.telemetry.integrity` — the telemetry-integrity defense:
  per-sample validation, per-node trust scores and quarantine, and the
  meter-residual cross-check (counterpart of
  :mod:`repro.faults.corruption`).
"""

from repro.telemetry.agent import AgentPool, NodeSample, ProfilingAgent
from repro.telemetry.collector import TelemetryCollector, TelemetrySnapshot
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.integrity import (
    IntegrityConfig,
    MeterIntegrityMonitor,
    TelemetryValidator,
    ValidationResult,
)
from repro.telemetry.recorder import TimeSeriesRecorder

__all__ = [
    "AgentPool",
    "IntegrityConfig",
    "ManagementCostModel",
    "MeterIntegrityMonitor",
    "NodeSample",
    "ProfilingAgent",
    "TelemetryCollector",
    "TelemetrySnapshot",
    "TelemetryValidator",
    "TimeSeriesRecorder",
    "ValidationResult",
]
