"""Argument parsing and command dispatch for ``python -m repro``.

Every command accepts ``--preset quick|calibrated|paper`` plus explicit
overrides of the most common :class:`~repro.experiments.common.
ExperimentConfig` fields, builds the configuration once, runs the
corresponding harness and prints the same tables the benchmark suite
prints.  ``--json`` switches the output to machine-readable JSON (used
by the CLI tests and handy for piping into other tools).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, replace
from typing import Any, Callable, Sequence

from repro.analysis import Table, format_fig6_table, format_fig7_table
from repro.cluster.engine import available_engines
from repro.core.policies import available_policies
from repro.errors import ConfigurationError, ReproError
from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    ResultCache,
    run_experiment,
    run_fig5,
    run_fig6,
    run_fig7,
)
from repro.experiments.ablations import policy_zoo
from repro.experiments.sweep import SweepCell, baseline_cell, run_sweep, validate_jobs
from repro.faults import CorruptionScenario, FaultScenario
from repro.ha import HaConfig
from repro.metrics import compare_runs
from repro.obs import ObsConfig
from repro.provision import ProvisionScenario
from repro.telemetry import IntegrityConfig
from repro.units import MICRO, fmt_power

__all__ = ["build_parser", "main", "metrics_dict"]

_PRESETS: dict[str, Callable[..., ExperimentConfig]] = {
    "quick": ExperimentConfig.quick,
    "calibrated": ExperimentConfig.calibrated,
    "paper": ExperimentConfig.paper,
}


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = _PRESETS[args.preset](seed=args.seed)
    overrides: dict[str, Any] = {}
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.candidate_size is not None:
        overrides["candidate_size"] = args.candidate_size
    if args.runtime_scale is not None:
        overrides["runtime_scale"] = args.runtime_scale
    if args.training is not None:
        overrides["training_duration_s"] = args.training
    if args.duration is not None:
        overrides["run_duration_s"] = args.duration
    if args.steady_green is not None:
        overrides["steady_green_cycles"] = args.steady_green
    if args.engine is not None:
        overrides["engine"] = args.engine
    scenario = _scenario_from_args(args)
    corruption = _corruption_from_args(args)
    if getattr(args, "no_faults", False):
        # --no-faults is the explicit "paper setting" assertion; a fault
        # or corruption scenario alongside it is a contradiction, not a
        # precedence question.
        if scenario.enabled:
            raise ConfigurationError(
                "--no-faults conflicts with the configured fault scenario "
                f"(--faults {getattr(args, 'faults', 'none')!r} or a fault-rate "
                "override); drop one of the two"
            )
        if corruption.enabled:
            raise ConfigurationError(
                "--no-faults conflicts with --corruption "
                f"{getattr(args, 'corruption', 'none')!r}; drop one of the two"
            )
    if scenario.enabled:
        overrides["faults"] = scenario
    if corruption.enabled:
        overrides["corruption"] = corruption
    provision, attach_provision = _provision_from_args(args)
    if getattr(args, "no_faults", False) and provision.enabled:
        raise ConfigurationError(
            "--no-faults conflicts with --provision "
            f"{getattr(args, 'provision', 'none')!r}; drop one of the two"
        )
    if attach_provision:
        overrides["provision"] = provision
        overrides["attach_provision"] = True
    integrity = _integrity_from_args(args)
    if integrity is not None:
        overrides["integrity"] = integrity
    ha = _ha_from_args(args)
    if ha is not None:
        overrides["ha"] = ha
    obs = _obs_from_args(args)
    if obs is not None:
        overrides["obs"] = obs
    return replace(config, **overrides) if overrides else config


def _scenario_from_args(args: argparse.Namespace) -> FaultScenario:
    # FaultScenario.preset rejects unknown names with the list of
    # available presets; main() turns that into a friendly exit.
    scenario = FaultScenario.preset(getattr(args, "faults", "none"))
    overrides: dict[str, Any] = {}
    if getattr(args, "telemetry_dropout", None) is not None:
        overrides["telemetry_dropout"] = args.telemetry_dropout
    if getattr(args, "command_loss", None) is not None:
        overrides["command_loss"] = args.command_loss
    if getattr(args, "meter_outage", None) is not None:
        overrides["meter_outage_rate"] = args.meter_outage
    if getattr(args, "crash_rate", None) is not None:
        overrides["controller_crash_rate"] = args.crash_rate
    return replace(scenario, **overrides) if overrides else scenario


def _corruption_from_args(args: argparse.Namespace) -> CorruptionScenario:
    # CorruptionScenario.preset rejects unknown names with the list of
    # available presets; main() turns that into a friendly exit.
    corruption = CorruptionScenario.preset(getattr(args, "corruption", "none"))
    onset = getattr(args, "corruption_onset", None)
    if onset is not None:
        if not corruption.enabled:
            raise ConfigurationError(
                "--corruption-onset requires --corruption PRESET"
            )
        corruption = replace(corruption, onset_cycle=onset)
    return corruption


def _provision_from_args(
    args: argparse.Namespace,
) -> tuple[ProvisionScenario, bool]:
    """The power-delivery scenario plus whether to attach the topology.

    ``--provision none`` is meaningful: it attaches a healthy delivery
    topology (proving the attachment itself changes nothing), so the
    second element distinguishes "explicitly requested" from the
    default.
    """
    raw = getattr(args, "provision", None)
    explicit = raw is not None
    # ProvisionScenario.preset rejects unknown names with the list of
    # available presets; main() turns that into a friendly exit.
    scenario = ProvisionScenario.preset(raw if explicit else "none")
    knobs: tuple[tuple[str, str, str], ...] = (
        ("feed_loss_at", "--feed-loss-at", "feed_loss_at_cycle"),
        ("feed_restore_after", "--feed-restore-after", "feed_restore_after_cycles"),
        ("cap_order_at", "--cap-order-at", "cap_order_at_cycle"),
        ("nodes_per_rack", "--nodes-per-rack", "nodes_per_rack"),
    )
    overrides: dict[str, Any] = {}
    for attr, flag, field_name in knobs:
        value = getattr(args, attr, None)
        if value is not None:
            if not explicit:
                raise ConfigurationError(f"{flag} requires --provision PRESET")
            overrides[field_name] = value
    if getattr(args, "no_defense", False):
        if not explicit:
            raise ConfigurationError("--no-defense requires --provision PRESET")
        overrides["defend"] = False
    if getattr(args, "no_branch_caps", False):
        if not explicit:
            raise ConfigurationError(
                "--no-branch-caps requires --provision PRESET"
            )
        overrides["branch_caps"] = False
    if overrides:
        scenario = replace(scenario, **overrides)
    return scenario, explicit


def _integrity_from_args(args: argparse.Namespace) -> IntegrityConfig | None:
    if not getattr(args, "quarantine", False):
        # Trust knobs without --quarantine would be silently ignored;
        # refuse so a run the user believes is defended actually is.
        for flag, name in (
            ("trust_quarantine", "--trust-quarantine"),
            ("trust_release", "--trust-release"),
            ("trust_recovery", "--trust-recovery"),
        ):
            if getattr(args, flag, None) is not None:
                raise ConfigurationError(f"{name} requires --quarantine")
        return None
    overrides: dict[str, Any] = {}
    if getattr(args, "trust_quarantine", None) is not None:
        overrides["quarantine_trust"] = args.trust_quarantine
    if getattr(args, "trust_release", None) is not None:
        overrides["release_trust"] = args.trust_release
    if getattr(args, "trust_recovery", None) is not None:
        overrides["trust_recovery"] = args.trust_recovery
    return IntegrityConfig(**overrides)


def _ha_from_args(args: argparse.Namespace) -> HaConfig | None:
    if not getattr(args, "ha", False):
        # HA knobs without --ha would be silently ignored; refuse so a
        # run the user believes is crashing actually is.
        for flag, name in (
            ("crash_at", "--crash-at"),
            ("lease_timeout", "--lease-timeout"),
            ("restart_cycles", "--restart-cycles"),
            ("cold_restart", "--cold-restart"),
        ):
            if getattr(args, flag, None):
                raise ConfigurationError(f"{name} requires --ha")
        return None
    overrides: dict[str, Any] = {}
    if getattr(args, "crash_at", None):
        overrides["crash_at_cycles"] = tuple(args.crash_at)
    if getattr(args, "lease_timeout", None) is not None:
        overrides["lease_timeout_cycles"] = args.lease_timeout
    if getattr(args, "restart_cycles", None) is not None:
        overrides["restart_cycles"] = args.restart_cycles
    if getattr(args, "cold_restart", False):
        return HaConfig.restart_only(**overrides)
    return HaConfig.warm(**overrides)


def _obs_from_args(args: argparse.Namespace) -> ObsConfig | None:
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    flight_cycles = getattr(args, "flight_recorder", None)
    flight_out = getattr(args, "flight_out", None)
    if flight_out is not None and not flight_cycles:
        raise ConfigurationError("--flight-out requires --flight-recorder N")
    if trace_out is None and metrics_out is None and not flight_cycles:
        return None
    if flight_cycles and flight_out is None:
        flight_out = "flight.jsonl"
    return ObsConfig(
        trace=trace_out is not None,
        metrics=metrics_out is not None,
        flight_recorder_cycles=int(flight_cycles or 0),
        trace_path=trace_out,
        metrics_path=metrics_out,
        flight_path=flight_out,
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("experiment configuration")
    group.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default="quick",
        help="base configuration (default: quick)",
    )
    group.add_argument("--seed", type=int, default=2012, help="root seed")
    group.add_argument("--nodes", type=int, default=None, help="cluster size")
    group.add_argument(
        "--candidate-size", type=int, default=None, help="|A_candidate|"
    )
    group.add_argument(
        "--runtime-scale", type=float, default=None, help="job runtime compression"
    )
    group.add_argument(
        "--training", type=float, default=None, help="training window, seconds"
    )
    group.add_argument(
        "--duration", type=float, default=None, help="evaluation window, seconds"
    )
    group.add_argument(
        "--steady-green", type=int, default=None, help="T_g in control cycles"
    )
    group.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help=(
            "hot-path engine: 'vector' (SoA fast path, default) or "
            "'object' (paper-literal per-node reference; bit-identical)"
        ),
    )
    faults = parser.add_argument_group("fault injection")
    faults.add_argument(
        "--faults",
        default="none",
        metavar="PRESET",
        help=(
            "fault scenario preset (default: none; available: "
            + ", ".join(FaultScenario.preset_names())
            + ")"
        ),
    )
    faults.add_argument(
        "--telemetry-dropout",
        type=float,
        default=None,
        help="per-node per-cycle telemetry sample loss probability",
    )
    faults.add_argument(
        "--command-loss",
        type=float,
        default=None,
        help="per-command DVFS loss probability",
    )
    faults.add_argument(
        "--meter-outage",
        type=float,
        default=None,
        help="per-cycle system-meter outage onset probability",
    )
    faults.add_argument(
        "--no-faults",
        action="store_true",
        help=(
            "assert the paper's fault-free setting; errors out if a "
            "fault or corruption scenario is also configured"
        ),
    )
    delivery = parser.add_argument_group("power delivery")
    delivery.add_argument(
        "--provision",
        default=None,
        metavar="PRESET",
        help=(
            "power-delivery scenario preset; 'none' attaches a healthy "
            "topology (available: "
            + ", ".join(ProvisionScenario.preset_names())
            + ")"
        ),
    )
    delivery.add_argument(
        "--feed-loss-at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="managed cycle at which a utility feed drops",
    )
    delivery.add_argument(
        "--feed-restore-after",
        type=int,
        default=None,
        metavar="CYCLES",
        help="cycles until lost feeds return (default: permanent)",
    )
    delivery.add_argument(
        "--cap-order-at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="managed cycle at which an operator cap order arrives",
    )
    delivery.add_argument(
        "--nodes-per-rack",
        type=int,
        default=None,
        metavar="N",
        help="nodes per branch circuit (default: 8)",
    )
    delivery.add_argument(
        "--no-defense",
        action="store_true",
        help=(
            "disable the emergency response (no renegotiation, no "
            "ladder) — the undefended comparison arm"
        ),
    )
    delivery.add_argument(
        "--no-branch-caps",
        action="store_true",
        help="disable per-branch capping while keeping the global defense",
    )
    integrity = parser.add_argument_group("telemetry integrity")
    integrity.add_argument(
        "--corruption",
        default="none",
        metavar="PRESET",
        help=(
            "sensor-corruption preset (default: none; available: "
            + ", ".join(CorruptionScenario.preset_names())
            + ")"
        ),
    )
    integrity.add_argument(
        "--corruption-onset",
        type=int,
        default=None,
        metavar="CYCLE",
        help="control cycle at which corruption switches on (default: 0)",
    )
    integrity.add_argument(
        "--quarantine",
        action="store_true",
        help=(
            "enable the telemetry-integrity defense "
            "(validation + trust/quarantine + meter cross-check)"
        ),
    )
    integrity.add_argument(
        "--trust-quarantine",
        type=float,
        default=None,
        metavar="T",
        help="trust below which a node is quarantined (default: 0.30)",
    )
    integrity.add_argument(
        "--trust-release",
        type=float,
        default=None,
        metavar="T",
        help="trust a quarantined node must recover to (default: 0.90)",
    )
    integrity.add_argument(
        "--trust-recovery",
        type=float,
        default=None,
        metavar="T",
        help="trust restored per clean fresh sample (default: 0.02)",
    )
    ha = parser.add_argument_group("controller high availability")
    ha.add_argument(
        "--ha",
        action="store_true",
        help="enable the crash-recovery layer (journal + failover + fencing)",
    )
    ha.add_argument(
        "--crash-at",
        type=int,
        nargs="+",
        default=None,
        metavar="CYCLE",
        help="crash the controller at these 1-based control cycles",
    )
    ha.add_argument(
        "--crash-rate",
        type=float,
        default=None,
        help="per-cycle stochastic controller-crash probability",
    )
    ha.add_argument(
        "--lease-timeout",
        type=int,
        default=None,
        help="warm-standby lease timeout, control cycles",
    )
    ha.add_argument(
        "--restart-cycles",
        type=int,
        default=None,
        help="cold-restart downtime, control cycles",
    )
    ha.add_argument(
        "--cold-restart",
        action="store_true",
        help="no warm standby: every crash costs a full restart",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the whole-run cycle trace as JSON lines to PATH",
    )
    obs.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write end-of-run metrics in Prometheus text format to PATH",
    )
    obs.add_argument(
        "--flight-recorder",
        type=int,
        default=None,
        metavar="N",
        help=(
            "arm a flight recorder holding the last N control cycles, "
            "dumped on fault onset, crash, failover, red-state entry "
            "and run end"
        ),
    )
    obs.add_argument(
        "--flight-out",
        default=None,
        metavar="PATH",
        help="flight-recorder dump path (default: flight.jsonl)",
    )
    sweep = parser.add_argument_group("parallel execution and caching")
    sweep.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help=(
            "worker processes for experiment grids (default: serial; "
            "results are bit-identical for every N)"
        ),
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "content-addressed result cache: unchanged cells are "
            "replayed from PATH instead of re-simulated"
        ),
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="assert no result caching (conflicts with --cache-dir)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of tables"
    )


def _sweep_from_args(
    args: argparse.Namespace,
) -> tuple[int, ResultCache | None]:
    """``(jobs, cache)`` from the shared sweep options.

    ``--jobs`` is validated here (not by argparse) so 0, negatives and
    non-integers get the same friendly ``error:`` exit as an unknown
    preset instead of an argparse usage dump.
    """
    jobs = validate_jobs(getattr(args, "jobs", None))
    cache_dir = getattr(args, "cache_dir", None)
    if getattr(args, "no_cache", False) and cache_dir is not None:
        raise ConfigurationError(
            "--no-cache conflicts with --cache-dir "
            f"{cache_dir!r}; drop one of the two"
        )
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return jobs, cache


def metrics_dict(result: ExperimentResult) -> dict[str, Any]:
    """The ``--json`` payload for one run (shared with the CI gates)."""
    m = result.metrics
    return {
        "label": result.label,
        "training_peak_w": result.training_peak_w,
        "provision_w": result.provision_w,
        "p_low_w": result.p_low_w,
        "p_high_w": result.p_high_w,
        "performance": m.performance,
        "cplj": m.cplj,
        "finished_jobs": m.finished_jobs,
        "p_max_w": m.p_max_w,
        "avg_power_w": m.avg_power_w,
        "energy_j": m.energy_j,
        "overspend": m.overspend,
        "state_cycles": result.state_cycles,
        "entered_red": result.entered_red,
        "commands_sent": result.commands_sent,
        "fault_stats": (
            asdict(result.fault_stats) if result.fault_stats is not None else None
        ),
        "ha_stats": (
            asdict(result.ha_stats) if result.ha_stats is not None else None
        ),
        "provision_stats": (
            result.provision_stats.as_dict()
            if result.provision_stats is not None
            else None
        ),
        "observability": (
            {
                "cycles_traced": result.observability.tracer.cycles_traced,
                "flight_dumps": [
                    d.reason for d in result.observability.flight.dumps
                ],
                "metric_families": result.observability.metrics.names(),
            }
            if result.observability is not None
            else None
        ),
    }


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    policy = None if args.policy in (None, "none") else args.policy
    jobs, cache = _sweep_from_args(args)
    if cache is not None and config.obs.enabled:
        raise ConfigurationError(
            "--cache-dir cannot replay observability outputs; drop "
            "--trace-out/--metrics-out/--flight-recorder or the cache"
        )
    if jobs == 1 and cache is None:
        result = run_experiment(config, policy)
    else:
        cell = SweepCell(config, policy)
        result = run_sweep([cell], jobs=jobs, cache=cache).result_for(cell)
    if args.json:
        print(json.dumps(metrics_dict(result), indent=2))
        return 0
    m = result.metrics
    table = Table(["metric", "value"])
    table.add_row("policy", result.label)
    table.add_row("training peak", fmt_power(result.training_peak_w))
    table.add_row("provision P_th", fmt_power(result.provision_w))
    table.add_row("P_L / P_H", f"{fmt_power(result.p_low_w)} / {fmt_power(result.p_high_w)}")
    table.add_row("observed P_max", fmt_power(m.p_max_w))
    table.add_row("average power", fmt_power(m.avg_power_w))
    table.add_row("Performance(cap)", f"{m.performance:.4f}")
    table.add_row("CPLJ", f"{m.cplj}/{m.finished_jobs}")
    table.add_row("dPxT overspend", f"{m.overspend:.5f}")
    if result.state_cycles:
        table.add_row(
            "green/yellow/red",
            "/".join(str(result.state_cycles[k]) for k in ("green", "yellow", "red")),
        )
        table.add_row("DVFS commands", result.commands_sent)
    fs = result.fault_stats
    if fs is not None:
        table.add_row("telemetry samples dropped", fs.dropped_samples)
        table.add_row("DVFS commands lost/retried", f"{fs.commands_lost}/{fs.commands_retried}")
        table.add_row("meter outage cycles", fs.meter_outage_cycles)
        table.add_row("estimated-power cycles", fs.estimated_power_cycles)
        table.add_row("forced-red cycles", fs.forced_red_cycles)
        if fs.corrupted_samples or fs.corrupted_meter_readings:
            table.add_row(
                "corrupted samples (node/meter)",
                f"{fs.corrupted_samples}/{fs.corrupted_meter_readings}",
            )
        if fs.corrupt_samples_rejected or fs.quarantine_entries:
            table.add_row("corrupt samples rejected", fs.corrupt_samples_rejected)
            table.add_row(
                "quarantine entries / node-cycles",
                f"{fs.quarantine_entries}/{fs.quarantined_node_cycles}",
            )
        if fs.meter_distrusted_cycles:
            table.add_row("meter distrusted cycles", fs.meter_distrusted_cycles)
    hs = result.ha_stats
    if hs is not None:
        table.add_row("controller crashes", hs.crashes)
        table.add_row(
            "failovers (warm/cold)",
            f"{hs.failovers} ({hs.warm_failovers}/{hs.cold_restarts})",
        )
        table.add_row(
            "downtime",
            f"{hs.downtime_cycles} cycles "
            f"({hs.downtime_cycles * result.config.control_period_s:.0f} s)",
        )
        table.add_row("fenced commands", hs.fenced_commands)
        table.add_row("epoch conflicts", hs.epoch_conflicts)
        table.add_row(
            "journal records/compactions",
            f"{hs.journal_records}/{hs.journal_compactions}",
        )
    ps = result.provision_stats
    if ps is not None:
        table.add_row(
            "delivery capacity (min/design)",
            f"{fmt_power(ps.min_capacity_w)} / {fmt_power(ps.design_capacity_w)}",
        )
        table.add_row(
            "capacity events (feed/pdu/order)",
            f"{ps.feed_losses}/{ps.pdu_failures}/{ps.cap_orders}",
        )
        table.add_row("breaker trips", ps.breaker_trips)
        table.add_row(
            "capacity lost", f"{ps.capacity_lost_w_seconds:.0f} W*s"
        )
        table.add_row(
            "branch violation", f"{ps.branch_cap_violation_seconds:.1f} s"
        )
        if ps.envelope_renegotiations or ps.emergency_red_cycles:
            table.add_row(
                "renegotiations / emergency red",
                f"{ps.envelope_renegotiations}/{ps.emergency_red_cycles}",
            )
        if ps.branch_cap_interventions:
            table.add_row("branch-cap interventions", ps.branch_cap_interventions)
        if ps.jobs_suspended or ps.jobs_killed or ps.nodes_shed:
            table.add_row(
                "ladder (susp/resume/kill)",
                f"{ps.jobs_suspended}/{ps.jobs_resumed}/{ps.jobs_killed}",
            )
            table.add_row(
                "nodes shed/readmitted",
                f"{ps.nodes_shed}/{ps.nodes_readmitted}",
            )
    o = result.observability
    if o is not None:
        if o.tracing:
            table.add_row("cycles traced", o.tracer.cycles_traced)
        if o.flight.enabled:
            table.add_row(
                "flight dumps",
                ", ".join(d.reason for d in o.flight.dumps) or "none",
            )
        for path in (
            config.obs.trace_path,
            config.obs.metrics_path,
            config.obs.flight_path,
        ):
            if path is not None:
                table.add_row("wrote", path)
    print(table.render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    jobs, cache = _sweep_from_args(args)
    result = run_fig7(
        config, policies=tuple(args.policies), jobs=jobs, cache=cache
    )
    if args.json:
        rows = [
            {
                "policy": o.policy,
                "performance": o.performance,
                "cplj_fraction": o.cplj_fraction,
                "p_max_ratio": o.p_max_ratio,
                "overspend_reduction": o.overspend_reduction,
                "entered_red": o.entered_red,
            }
            for o in result.outcomes
        ]
        print(json.dumps(rows, indent=2))
        return 0
    print(format_fig7_table(result))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    result = run_fig5(sizes=tuple(args.sizes), measure=not args.no_measure)
    if args.json:
        payload = {
            "sizes": result.sizes.tolist(),
            "modelled_cpu": result.modelled_cpu.tolist(),
            "measured_cycle_s": (
                result.measured_cycle_s.tolist()
                if result.measured_cycle_s is not None
                else None
            ),
        }
        print(json.dumps(payload, indent=2))
        return 0
    table = Table(["|A_candidate|", "modelled mgmt CPU", "measured cycle (us)"])
    for i, size in enumerate(result.sizes):
        measured = (
            f"{result.measured_cycle_s[i] / MICRO:.1f}"
            if result.measured_cycle_s is not None
            else "-"
        )
        table.add_row(int(size), f"{result.modelled_cpu[i]:.1%}", measured)
    print(table.render())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    jobs, cache = _sweep_from_args(args)
    result = run_fig6(
        config,
        sizes=tuple(args.sizes),
        policies=tuple(args.policies),
        jobs=jobs,
        cache=cache,
    )
    if args.json:
        rows = [
            {
                "policy": p.policy,
                "size": p.size,
                "p_max_ratio": p.p_max_ratio,
                "overspend_ratio": p.overspend_ratio,
                "performance": p.performance,
            }
            for p in result.points
        ]
        print(json.dumps(rows, indent=2))
        return 0
    print(format_fig6_table(result))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    args.policies = ["mpc", "hri"]
    return _cmd_compare(args)


def _cmd_zoo(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    jobs, cache = _sweep_from_args(args)
    result = policy_zoo(config, jobs=jobs, cache=cache)
    print(format_fig7_table(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import render_run_report

    config = _config_from_args(args)
    if args.thermal:
        config = replace(config, track_thermal=True)
    jobs, cache = _sweep_from_args(args)
    base = baseline_cell(config)
    policy_cells = [SweepCell(config, p) for p in args.policies]
    report = run_sweep([base, *policy_cells], jobs=jobs, cache=cache)
    results = [report.result_for(base)]
    results.extend(report.result_for(cell) for cell in policy_cells)
    text = render_run_report(
        results, title=f"Power capping report (seed {config.seed})"
    )
    if args.output == "-":
        print(text)
    else:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    return 0


#: The scenario families ``list-presets`` enumerates, in display order.
_PRESET_FAMILIES: tuple[tuple[str, str, type], ...] = (
    ("faults", "--faults", FaultScenario),
    ("corruption", "--corruption", CorruptionScenario),
    ("provision", "--provision", ProvisionScenario),
)


def _preset_catalogue() -> list[dict[str, str]]:
    """Every scenario preset with its family, flag and one-line blurb."""
    rows: list[dict[str, str]] = []
    for family, flag, cls in _PRESET_FAMILIES:
        for name in cls.preset_names():
            factory = getattr(cls, name.replace("-", "_"))
            doc = (factory.__doc__ or "").strip()
            blurb = " ".join(doc.split("\n\n")[0].split()) if doc else ""
            rows.append(
                {
                    "family": family,
                    "flag": flag,
                    "name": name,
                    "description": blurb,
                }
            )
    return rows


def _cmd_list_presets(args: argparse.Namespace) -> int:
    rows = _preset_catalogue()
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    table = Table(["family", "preset", "description"])
    for row in rows:
        table.add_row(
            f"{row['family']} ({row['flag']})", row["name"], row["description"]
        )
    print(table.render())
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(available_policies()))
        return 0
    for name in available_policies():
        print(name)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Power Provision and Capping Architecture "
            "for Large Scale Systems' (IPPS 2012)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment protocol")
    p_run.add_argument(
        "--policy",
        default="mpc",
        help="selection policy name, or 'none' for the unmanaged baseline",
    )
    _add_config_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="baseline + several policies")
    p_cmp.add_argument("policies", nargs="+", help="policy names to compare")
    _add_config_arguments(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_f5 = sub.add_parser("fig5", help="Figure 5: manager scalability")
    p_f5.add_argument(
        "--sizes", type=int, nargs="+", default=[0, 8, 16, 32, 48, 64, 96, 128]
    )
    p_f5.add_argument(
        "--no-measure", action="store_true", help="skip wall-clock measurement"
    )
    p_f5.add_argument("--json", action="store_true")
    p_f5.set_defaults(func=_cmd_fig5)

    p_f6 = sub.add_parser("fig6", help="Figure 6: effect vs candidate size")
    p_f6.add_argument(
        "--sizes", type=int, nargs="+", default=[0, 8, 16, 32, 48, 64, 96, 128]
    )
    p_f6.add_argument("--policies", nargs="+", default=["mpc", "hri"])
    _add_config_arguments(p_f6)
    p_f6.set_defaults(func=_cmd_fig6)

    p_f7 = sub.add_parser("fig7", help="Figure 7: MPC vs HRI")
    _add_config_arguments(p_f7)
    p_f7.set_defaults(func=_cmd_fig7)

    p_zoo = sub.add_parser("zoo", help="all registered policies")
    _add_config_arguments(p_zoo)
    p_zoo.set_defaults(func=_cmd_zoo)

    p_rep = sub.add_parser("report", help="write a Markdown experiment report")
    p_rep.add_argument(
        "policies", nargs="*", default=["mpc", "hri"],
        help="policies to include beside the baseline (default: mpc hri)",
    )
    p_rep.add_argument(
        "-o", "--output", default="report.md",
        help="output path, or '-' for stdout (default: report.md)",
    )
    p_rep.add_argument(
        "--thermal", action="store_true", help="include the thermal section"
    )
    _add_config_arguments(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_pol = sub.add_parser("policies", help="list selection policies")
    p_pol.add_argument("--json", action="store_true")
    p_pol.set_defaults(func=_cmd_policies)

    p_lp = sub.add_parser(
        "list-presets",
        help="catalogue of fault, corruption and provision presets",
    )
    p_lp.add_argument("--json", action="store_true")
    p_lp.set_defaults(func=_cmd_list_presets)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
