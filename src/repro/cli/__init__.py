"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's experiment harnesses so the whole
reproduction is drivable without writing Python:

* ``run``      — one §V.C protocol (baseline or a chosen policy);
* ``compare``  — baseline + several policies on the identical stream;
* ``fig5`` / ``fig6`` / ``fig7`` — regenerate a paper figure;
* ``zoo``      — the full policy ablation;
* ``policies`` — list registered selection policies.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
