"""repro: a reproduction of *A Power Provision and Capping Architecture
for Large Scale Systems* (Liu, Zhu, Lu & Liu, IPPS 2012).

The package simulates the paper's evaluation platform — a 128-node
Tianhe-1A variant running an NPB job mix — and implements its power
provision and capping architecture on top: node-set classification,
green/yellow/red thresholding with peak-derived learning, the power
capping algorithm (Algorithm 1), and the full zoo of target-set selection
policies (MPC, MPC-C, LPC, LPC-C, BFP, HRI, HRI-C plus extensions).

Quick start::

    from repro import ExperimentConfig, run_experiment
    from repro.metrics import compare_runs

    config = ExperimentConfig.quick(seed=1)
    baseline = run_experiment(config, None)      # unmanaged
    capped = run_experiment(config, "mpc")       # most-power-consuming job
    print(compare_runs(capped.metrics, baseline.metrics))

Subpackages
-----------

=====================  ====================================================
``repro.sim``          deterministic discrete-event kernel
``repro.cluster``      node/DVFS/device machine model
``repro.power``        Formula (1) power model, meter, provision
``repro.workload``     NPB phase profiles, jobs, generator, executor
``repro.scheduler``    FCFS queue, first-fit allocator, feeders
``repro.telemetry``    profiling agents, collector, cost model, recorder
``repro.core``         THE PAPER: sets, thresholds, Algorithm 1, policies
``repro.faults``       seeded fault injection + degraded-mode config
``repro.ha``           controller crash-recovery: journal, failover, fencing
``repro.obs``          cycle tracing, metric registry, flight recorder
``repro.metrics``      Performance(cap), CPLJ, P_max, ΔP×T, survey metrics
``repro.analysis``     tables, ASCII charts, statistics
``repro.experiments``  per-figure harnesses (Fig. 5/6/7, ablations)
=====================  ====================================================
"""

from repro.cluster import Cluster, NodeSpec
from repro.core import (
    NodeSets,
    PowerManager,
    PowerState,
    ThresholdController,
    available_policies,
    make_policy,
)
from repro.experiments import ExperimentConfig, ExperimentResult, run_experiment
from repro.faults import DegradedModeConfig, FaultInjector, FaultScenario, FaultStats
from repro.metrics import RunMetrics, compare_runs
from repro.obs import Observability, ObsConfig
from repro.power import PowerModel, PowerProvision, SystemPowerMeter
from repro.sim import RandomSource, SimulationEngine

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "DegradedModeConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultInjector",
    "FaultScenario",
    "FaultStats",
    "NodeSets",
    "NodeSpec",
    "ObsConfig",
    "Observability",
    "PowerManager",
    "PowerModel",
    "PowerProvision",
    "PowerState",
    "RandomSource",
    "RunMetrics",
    "SimulationEngine",
    "SystemPowerMeter",
    "ThresholdController",
    "available_policies",
    "compare_runs",
    "make_policy",
    "run_experiment",
    "__version__",
]
