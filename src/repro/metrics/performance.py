"""The paper's performance metrics: Performance(cap) and CPLJ (§V.C).

``Performance(cap) = (1/J) Σ_j T_j / T_cap,j`` where ``T_j`` is the time
to finish job ``j`` at full node performance without capping and
``T_cap,j`` the measured time under the capping policy.  In this
simulator the uncapped runtime of a job is *exactly* its nominal runtime
(the executor interpolates completions), so ``T_j`` is analytic and no
baseline run is required for the performance metrics — though experiment
harnesses still run baselines for the power metrics.

``CPLJ`` counts finished jobs whose capped runtime equals their uncapped
runtime.  Equality is taken up to a relative tolerance (default 10⁻⁶) to
absorb float accumulation; a job degraded only during frequency-
insensitive phases (β≈0) legitimately counts as lossless — the model
gives it the same runtime either way, matching the paper's observation
that most jobs lose nothing.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.errors import MetricError
from repro.workload.job import Job, JobState

__all__ = [
    "performance_metric",
    "count_performance_lossless_jobs",
    "mean_slowdown",
    "per_application_performance",
]


def _finished(jobs: Iterable[Job]) -> list[Job]:
    done = [j for j in jobs if j.state is JobState.FINISHED]
    if not done:
        raise MetricError("no finished jobs to evaluate")
    return done


def performance_metric(jobs: Sequence[Job]) -> float:
    """``Performance(cap)`` over the finished jobs in ``jobs``.

    1.0 means no performance loss; 0.98 means 2% average loss.

    Raises:
        MetricError: when no job has finished.
    """
    done = _finished(jobs)
    total = 0.0
    for job in done:
        t_cap = job.actual_runtime_s
        if t_cap <= 0:
            raise MetricError(f"job {job.job_id} has non-positive runtime")
        total += job.nominal_runtime_s / t_cap
    return total / len(done)


def count_performance_lossless_jobs(
    jobs: Sequence[Job], rel_tolerance: float = 1e-6
) -> int:
    """CPLJ: finished jobs whose capped runtime equals the uncapped one.

    Args:
        jobs: Jobs to evaluate (non-finished ones are ignored, but at
            least one finished job must exist).
        rel_tolerance: Relative equality tolerance on runtimes.
    """
    if rel_tolerance < 0:
        raise MetricError("rel_tolerance must be non-negative")
    done = _finished(jobs)
    count = 0
    for job in done:
        if job.actual_runtime_s <= job.nominal_runtime_s * (1.0 + rel_tolerance):
            count += 1
    return count


def mean_slowdown(jobs: Sequence[Job]) -> float:
    """Mean of ``T_cap,j / T_j`` (≥ 1; the reciprocal view of the paper's
    metric, often easier to read in ablation tables)."""
    done = _finished(jobs)
    return sum(j.actual_runtime_s / j.nominal_runtime_s for j in done) / len(done)


def per_application_performance(jobs: Sequence[Job]) -> dict[str, float]:
    """``Performance(cap)`` broken down by application name.

    Useful for checking the model's DVFS-sensitivity story: EP (compute
    bound) should lose more than CG (memory bound) under equal capping.
    """
    groups: dict[str, list[Job]] = defaultdict(list)
    for job in _finished(jobs):
        groups[job.app.name].append(job)
    return {
        name: performance_metric(group) for name, group in sorted(groups.items())
    }
