"""Telemetry-integrity metrics: quarantine exposure and estimate error.

Companion of :mod:`repro.telemetry.integrity`.  A corruption run records
three extra series (see :mod:`repro.core.manager`):

* ``quarantined_nodes`` — per-cycle count of quarantined candidates;
* ``trust_min`` — the lowest per-node trust score that cycle;
* ``meter_distrusted`` — 1.0 while the meter cross-check is rejecting
  the system meter.

These functions grade a defended run from those series plus the
simulator's ground-truth power trace:

* :func:`quarantine_seconds` — wall-clock with at least one node in
  quarantine (how long the controller ran on the conservative
  worst-case envelope);
* :func:`quarantine_node_seconds` — the node-seconds integral (depth ×
  duration of the quarantine);
* :func:`meter_distrust_seconds` — wall-clock spent rejecting the
  system meter in favour of the model estimate;
* :func:`estimate_error_w_under_corruption` — worst deviation between
  the power the controller acted on and the true cluster power, over
  the corrupted portion of the run.  This is the number the
  never-underestimate envelope bounds: for a defended run the *signed*
  variant must stay non-negative once quarantine engages.

Series conventions match :mod:`repro.metrics.power`: aligned 1-D
arrays, sample-and-hold episode accounting (an interval belongs to its
left sample).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.types import Seconds

__all__ = [
    "quarantine_seconds",
    "quarantine_node_seconds",
    "meter_distrust_seconds",
    "estimate_error_w_under_corruption",
]


def _validate_series(
    times: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Like :func:`repro.metrics.power._validate` but allows negatives.

    Trust/error series legitimately contain negative values (a signed
    estimate error below zero is exactly what the envelope guarantee
    forbids — the metric must be able to report it, not reject it).
    """
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape or t.ndim != 1:
        raise MetricError("times/values must be equal-length 1-D arrays")
    if len(t) == 0:
        raise MetricError("empty series")
    if np.any(np.diff(t) < 0):
        raise MetricError("times must be non-decreasing")
    if not np.all(np.isfinite(t)):
        raise MetricError("non-finite timestamps in series")
    return t, v


def quarantine_seconds(times: np.ndarray, quarantined: np.ndarray) -> Seconds:
    """Wall-clock seconds with at least one node in quarantine.

    ``quarantined`` is the recorded per-cycle quarantined-node count.
    Sample-and-hold: each inter-sample interval counts when its left
    sample has a positive count.  A single-sample trace has zero
    duration and therefore zero quarantine seconds.
    """
    t, q = _validate_series(times, quarantined)
    if np.any(q < 0):
        raise MetricError("quarantined counts must be non-negative")
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    return float(dt[q[:-1] > 0.0].sum())


def quarantine_node_seconds(times: np.ndarray, quarantined: np.ndarray) -> float:
    """Node-seconds spent in quarantine: ``∫ count(t) dt``, sample-and-hold.

    Distinguishes a long shallow quarantine (one flaky node) from a
    short deep one (a whole rack's agents stuck): both may have equal
    :func:`quarantine_seconds` but very different node-seconds.
    """
    t, q = _validate_series(times, quarantined)
    if np.any(q < 0):
        raise MetricError("quarantined counts must be non-negative")
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    return float((q[:-1] * dt).sum())


def meter_distrust_seconds(times: np.ndarray, distrusted: np.ndarray) -> Seconds:
    """Wall-clock seconds the meter cross-check rejected the system meter.

    ``distrusted`` is the recorded 0/1 ``meter_distrusted`` series.
    Sample-and-hold like the other episode metrics.
    """
    t, d = _validate_series(times, distrusted)
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    return float(dt[d[:-1] > 0.0].sum())


def estimate_error_w_under_corruption(
    times: np.ndarray,
    acted_on_w: np.ndarray,
    true_w: np.ndarray,
    corrupted: np.ndarray | None = None,
    signed: bool = False,
) -> float:
    """Worst estimate error, watts, over the corrupted span of the run.

    ``acted_on_w`` is the power series the controller classified against
    (the recorded ``power`` series); ``true_w`` is the simulator's
    ground-truth power; ``corrupted`` optionally restricts the
    comparison to cycles where corruption was active (1.0 entries), with
    ``None`` comparing the whole run.

    With ``signed=False`` (default) returns ``max |acted_on − true|`` —
    how far off the controller's view ever was.  With ``signed=True``
    returns ``min (acted_on − true)`` — the worst *under*-estimate; a
    defended run's conservative envelope is graded by this staying
    above the meter-noise floor (never acting on less power than is
    really flowing).
    """
    t, a = _validate_series(times, acted_on_w)
    v = np.asarray(true_w, dtype=np.float64)
    if v.shape != a.shape:
        raise MetricError("true-power series misaligned with acted-on trace")
    if not np.all(np.isfinite(a)) or not np.all(np.isfinite(v)):
        raise MetricError("non-finite power in estimate-error series")
    if corrupted is None:
        mask = np.ones(len(t), dtype=bool)
    else:
        c = np.asarray(corrupted, dtype=np.float64)
        if c.shape != t.shape:
            raise MetricError("corrupted series misaligned with power trace")
        mask = c > 0.0
    if not mask.any():
        raise MetricError("no corrupted samples to grade")
    err = a[mask] - v[mask]
    if signed:
        return float(err.min())
    return float(np.abs(err).max())
