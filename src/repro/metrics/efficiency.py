"""Survey metrics from §I.B: E×Dⁿ, FLOPS/W, PUE, TCO.

The paper reviews these as the established power/energy metrics that
motivate its new ΔP×T (they "focus on the energy efficiency … but neglect
the effect of power overload").  The library ships them so experiment
reports can show both families side by side.
"""

from __future__ import annotations

from repro.errors import MetricError
from repro.types import Joules, Seconds, Watts

__all__ = [
    "energy_delay_product",
    "flops_per_watt",
    "power_usage_effectiveness",
    "total_cost_of_ownership",
]


def energy_delay_product(energy_j: Joules, delay_s: Seconds, n: int = 1) -> float:
    """``E × Dⁿ`` (Penzes & Martin): energy-performance trade-off.

    Args:
        energy_j: Energy consumed, joules.
        delay_s: Execution time, seconds.
        n: Delay exponent (n=1 classic EDP, n=2 ED²P, …).
    """
    if energy_j < 0:
        raise MetricError("energy must be non-negative")
    if delay_s <= 0:
        raise MetricError("delay must be positive")
    if n < 0:
        raise MetricError("exponent must be non-negative")
    return energy_j * delay_s**n


def flops_per_watt(flops: float, average_power_w: Watts) -> float:
    """``FLOPS/W`` (the Green500 measure).

    Args:
        flops: Sustained floating-point operations per second.
        average_power_w: Average power over the measurement, watts.
    """
    if flops < 0:
        raise MetricError("flops must be non-negative")
    if average_power_w <= 0:
        raise MetricError("power must be positive")
    return flops / average_power_w


def power_usage_effectiveness(
    total_facility_power_w: Watts, it_equipment_power_w: Watts
) -> float:
    """``PUE`` (The Green Grid): facility power over IT power, ≥ 1.

    A PUE of 1.7 matches the paper's LLNL example (0.7 W of cooling per
    1.0 W of computing).
    """
    if it_equipment_power_w <= 0:
        raise MetricError("IT power must be positive")
    if total_facility_power_w < it_equipment_power_w:
        raise MetricError("facility power cannot be below IT power")
    return total_facility_power_w / it_equipment_power_w


def total_cost_of_ownership(
    construction_cost: float,
    energy_kwh: float,
    price_per_kwh: float,
    maintenance_cost: float = 0.0,
) -> float:
    """A simple ``TCO`` estimator: construction + energy + maintenance.

    Units are whatever currency the inputs use; the energy term is
    ``energy_kwh × price_per_kwh``.
    """
    if min(construction_cost, energy_kwh, price_per_kwh, maintenance_cost) < 0:
        raise MetricError("cost components must be non-negative")
    return construction_cost + energy_kwh * price_per_kwh + maintenance_cost
