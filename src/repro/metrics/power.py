"""Power-trajectory metrics: P_max and the paper's ΔP×T (§V.C).

``ΔP×T`` — the *accumulative effect of overspending* — is the paper's
novel metric::

    ΔP×T = ∫_{P>P_th} (P(t) − P_th) dt  /  ∫ P(t) dt

the dark-grey over-threshold area of Figure 4 over the total grey area:
the fraction of all generated heat attributable to running above the
provision threshold.  It jointly penalises *how far* and *for how long*
the budget was overspent, which neither P_max nor time-over-threshold
capture alone.

Integration uses the trapezoidal rule over the recorded ``(t, P)``
series.  The clamped excess ``max(P − P_th, 0)`` is computed *before*
integrating each trapezoid, with the threshold-crossing point
interpolated so a series that dips briefly below threshold between two
samples is not over-charged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.types import Watts

__all__ = [
    "peak_power",
    "average_power",
    "energy_joules",
    "accumulated_overspend",
    "overspend_energy_joules",
    "time_fraction_above",
]


def _validate(times: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape or t.ndim != 1:
        raise MetricError("times/values must be equal-length 1-D arrays")
    if len(t) == 0:
        raise MetricError("empty power trace")
    if np.any(np.diff(t) < 0):
        raise MetricError("times must be non-decreasing")
    if np.any(v < 0):
        raise MetricError("negative power in trace")
    return t, v


def peak_power(times: np.ndarray, values: np.ndarray) -> float:
    """``P_max``: the maximum of the trace, watts."""
    _, v = _validate(times, values)
    return float(v.max())


def average_power(times: np.ndarray, values: np.ndarray) -> float:
    """Time-weighted mean power, watts (plain mean for a single point)."""
    t, v = _validate(times, values)
    if len(t) == 1 or t[-1] == t[0]:
        return float(v.mean())
    return energy_joules(t, v) / float(t[-1] - t[0])


def energy_joules(times: np.ndarray, values: np.ndarray) -> float:
    """``∫ P dt`` by the trapezoidal rule, joules."""
    t, v = _validate(times, values)
    if len(t) < 2:
        raise MetricError("need at least two samples to integrate")
    return float(np.trapezoid(v, t))


def overspend_energy_joules(
    times: np.ndarray, values: np.ndarray, threshold_w: Watts
) -> float:
    """``∫ max(P − P_th, 0) dt`` with crossing interpolation, joules.

    Each sampling interval is integrated exactly for the piecewise-linear
    interpolant of the trace: if the segment crosses the threshold, the
    crossing time splits it and only the above-threshold part counts.
    """
    t, v = _validate(times, values)
    if threshold_w < 0:
        raise MetricError("threshold must be non-negative")
    if len(t) < 2:
        raise MetricError("need at least two samples to integrate")
    excess = v - threshold_w
    e0, e1 = excess[:-1], excess[1:]
    dt = np.diff(t)

    both_above = (e0 >= 0) & (e1 >= 0)
    both_below = (e0 <= 0) & (e1 <= 0)
    crossing = ~(both_above | both_below)

    area = np.zeros_like(dt)
    area[both_above] = 0.5 * (e0[both_above] + e1[both_above]) * dt[both_above]
    # Crossing segments: the above-threshold part is a triangle.
    if np.any(crossing):
        ec0 = e0[crossing]
        ec1 = e1[crossing]
        dtc = dt[crossing]
        # Fraction of the segment spent above threshold and its peak excess.
        upward = ec1 > 0  # rose through the threshold
        peak = np.where(upward, ec1, ec0)
        frac = peak / (np.abs(ec0) + np.abs(ec1))
        area[crossing] = 0.5 * peak * frac * dtc
    return float(area.sum())


def accumulated_overspend(
    times: np.ndarray, values: np.ndarray, threshold_w: Watts
) -> float:
    """The paper's ΔP×T metric (dimensionless, in [0, 1))."""
    total = energy_joules(times, values)
    if total <= 0:
        raise MetricError("total energy must be positive for ΔP×T")
    return overspend_energy_joules(times, values, threshold_w) / total


def time_fraction_above(
    times: np.ndarray, values: np.ndarray, threshold_w: Watts
) -> float:
    """Fraction of the trace's wall-clock spent above ``threshold_w``.

    Sample-and-hold approximation: each inter-sample interval is counted
    by its left sample (sufficient for diagnostics; ΔP×T is the precise
    metric).
    """
    t, v = _validate(times, values)
    if len(t) < 2:
        raise MetricError("need at least two samples")
    dt = np.diff(t)
    span = float(t[-1] - t[0])
    if span <= 0:
        raise MetricError("trace has zero duration")
    return float(dt[v[:-1] > threshold_w].sum() / span)
