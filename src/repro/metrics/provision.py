"""Power-delivery metrics: capacity shortfall and branch overload.

Companion of :mod:`repro.provision`.  A provision-attached run records
two extra series (see :mod:`repro.core.manager`):

* ``capacity_w`` — the surviving delivery capacity each cycle (design
  capacity minus lost feeds, PDU derates and operator cap orders);
* ``branch_over_w`` — the summed watts by which branch circuits exceed
  their surviving ratings that cycle (0.0 while every breaker is
  comfortable).

These functions grade a run from those series plus the power trace:

* :func:`capacity_shortfall_w_seconds` — ``∫ max(0, P − C) dt``, the
  over-capacity power-time integral.  This is the delivery-side analogue
  of the paper's ``ΔP×T`` with the *surviving* capacity as the
  threshold — the quantity upstream protection integrates before it
  opens;
* :func:`time_over_capacity` — wall-clock seconds spent above the
  surviving capacity;
* :func:`capacity_recovery_seconds` — time from the first over-capacity
  sample until draw first falls back under the recovery band (how long
  renegotiation plus the ladder took to chase a shrunken budget);
* :func:`branch_overload_w_seconds` — the ``∫ branch_over dt``
  integral (watt-seconds of local breaker abuse, summed over branches).

Series conventions match :mod:`repro.metrics.power`: aligned 1-D
arrays, sample-and-hold episode accounting (an interval belongs to its
left sample).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.types import Seconds

__all__ = [
    "capacity_shortfall_w_seconds",
    "time_over_capacity",
    "capacity_recovery_seconds",
    "branch_overload_w_seconds",
]


def _validate_series(
    times: np.ndarray, values: np.ndarray, name: str
) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape or t.ndim != 1:
        raise MetricError(f"times/{name} must be equal-length 1-D arrays")
    if len(t) == 0:
        raise MetricError(f"empty {name} series")
    if np.any(np.diff(t) < 0):
        raise MetricError("times must be non-decreasing")
    if not np.all(np.isfinite(t)):
        raise MetricError("non-finite timestamps in series")
    if not np.all(np.isfinite(v)):
        raise MetricError(f"non-finite values in {name} series")
    if np.any(v < 0.0):
        raise MetricError(f"{name} series must be non-negative")
    return t, v


def _aligned_capacity(
    t: np.ndarray, capacity_w: np.ndarray
) -> np.ndarray:
    c = np.asarray(capacity_w, dtype=np.float64)
    if c.shape != t.shape:
        raise MetricError("capacity series misaligned with power trace")
    if not np.all(np.isfinite(c)):
        raise MetricError("non-finite values in capacity series")
    return c


def capacity_shortfall_w_seconds(
    times: np.ndarray, power_w: np.ndarray, capacity_w: np.ndarray
) -> float:
    """``∫ max(0, P(t) − C(t)) dt`` in watt-seconds, sample-and-hold.

    Zero for a run that always fit inside the surviving delivery
    capacity; for a feed-loss run it is the energy drawn through a
    delivery path rated below it — what the benchmark contrasts between
    the defended and undefended arms.
    """
    t, p = _validate_series(times, power_w, "power")
    c = _aligned_capacity(t, capacity_w)
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    over = np.maximum(p[:-1] - c[:-1], 0.0)
    return float((over * dt).sum())


def time_over_capacity(
    times: np.ndarray, power_w: np.ndarray, capacity_w: np.ndarray
) -> Seconds:
    """Wall-clock seconds with draw above the surviving capacity."""
    t, p = _validate_series(times, power_w, "power")
    c = _aligned_capacity(t, capacity_w)
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    return float(dt[p[:-1] > c[:-1]].sum())


def capacity_recovery_seconds(
    times: np.ndarray,
    power_w: np.ndarray,
    capacity_w: np.ndarray,
    recover_fraction: float = 0.95,
) -> Seconds | None:
    """Seconds from first over-capacity sample to first recovered one.

    "Recovered" means draw at or below ``recover_fraction`` of the
    then-current capacity, matching the emergency ladder's de-escalation
    band.  Returns ``None`` when the run never exceeded capacity, and
    ``inf`` when it exceeded capacity but never recovered — distinct
    outcomes a gate must treat differently.
    """
    if not 0.0 < recover_fraction <= 1.0:
        raise MetricError("recover_fraction must lie in (0, 1]")
    t, p = _validate_series(times, power_w, "power")
    c = _aligned_capacity(t, capacity_w)
    over = p > c
    if not over.any():
        return None
    start = int(np.argmax(over))
    recovered = np.flatnonzero(p[start:] <= recover_fraction * c[start:])
    if len(recovered) == 0:
        return float("inf")
    return float(t[start + recovered[0]] - t[start])


def branch_overload_w_seconds(
    times: np.ndarray, branch_over_w: np.ndarray
) -> float:
    """``∫ branch_over(t) dt``: watt-seconds of local breaker abuse.

    ``branch_over_w`` is the recorded per-cycle sum of branch excesses;
    the integral distinguishes a brief deep overload from sustained
    simmering just above a rating — the latter is what actually trips
    thermal breakers.
    """
    t, b = _validate_series(times, branch_over_w, "branch_over")
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    return float((b[:-1] * dt).sum())
