"""Per-run metric bundles and baseline-normalised comparisons.

:class:`RunMetrics` evaluates every §V.C metric for one experiment run
(a power trace + the finished jobs + the overspend threshold);
:func:`compare_runs` produces the normalised view the paper's Figures 6
and 7 plot — capped values divided by the unmanaged baseline's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MetricError
from repro.types import Watts
from repro.metrics.performance import (
    count_performance_lossless_jobs,
    performance_metric,
)
from repro.metrics.power import (
    accumulated_overspend,
    average_power,
    energy_joules,
    peak_power,
)
from repro.workload.job import Job, JobState

__all__ = ["RunMetrics", "RunComparison", "compare_runs"]


@dataclass(frozen=True)
class RunMetrics:
    """All §V.C metrics of one run.

    Attributes:
        label: Run label ("uncapped", "mpc", …).
        performance: ``Performance(cap)`` (1.0 = lossless).
        cplj: Count of performance-lossless jobs.
        finished_jobs: Number of finished jobs (CPLJ's denominator).
        p_max_w: Observed peak power, watts.
        avg_power_w: Time-weighted average power, watts.
        energy_j: Total energy over the run, joules.
        overspend: ΔP×T against the provision threshold.
        threshold_w: The ``P_th`` used for ΔP×T, watts.
    """

    label: str
    performance: float
    cplj: int
    finished_jobs: int
    p_max_w: float
    avg_power_w: float
    energy_j: float
    overspend: float
    threshold_w: Watts

    @property
    def cplj_fraction(self) -> float:
        """CPLJ as a fraction of finished jobs."""
        if self.finished_jobs == 0:
            raise MetricError("no finished jobs")
        return self.cplj / self.finished_jobs

    @classmethod
    def evaluate(
        cls,
        label: str,
        times: np.ndarray,
        power_w: np.ndarray,
        jobs: Sequence[Job],
        threshold_w: Watts,
    ) -> "RunMetrics":
        """Evaluate every metric from raw run artifacts."""
        finished = [j for j in jobs if j.state is JobState.FINISHED]
        return cls(
            label=label,
            performance=performance_metric(finished),
            cplj=count_performance_lossless_jobs(finished),
            finished_jobs=len(finished),
            p_max_w=peak_power(times, power_w),
            avg_power_w=average_power(times, power_w),
            energy_j=energy_joules(times, power_w),
            overspend=accumulated_overspend(times, power_w, threshold_w),
            threshold_w=threshold_w,
        )


@dataclass(frozen=True)
class RunComparison:
    """A capped run normalised against an unmanaged baseline.

    ``*_ratio`` fields are capped/baseline (1.0 = unchanged);
    ``overspend_reduction`` is the fractional *decrease* of ΔP×T
    (0.73 reproduces the paper's "MPC reduced ΔP×T … by 73%").
    """

    capped: RunMetrics
    baseline: RunMetrics
    p_max_ratio: float
    energy_ratio: float
    overspend_ratio: float
    overspend_reduction: float
    performance: float
    cplj_fraction: float


def compare_runs(capped: RunMetrics, baseline: RunMetrics) -> RunComparison:
    """Normalise a capped run against its unmanaged baseline.

    Raises:
        MetricError: if the runs used different ΔP×T thresholds (the
            comparison would be meaningless).
    """
    if abs(capped.threshold_w - baseline.threshold_w) > 1e-9 * max(
        capped.threshold_w, 1.0
    ):
        raise MetricError("runs evaluated against different thresholds")
    if baseline.p_max_w <= 0 or baseline.energy_j <= 0:
        raise MetricError("degenerate baseline")
    if baseline.overspend > 0:
        ratio = capped.overspend / baseline.overspend
    else:
        ratio = 1.0 if capped.overspend == 0 else float("inf")
    return RunComparison(
        capped=capped,
        baseline=baseline,
        p_max_ratio=capped.p_max_w / baseline.p_max_w,
        energy_ratio=capped.energy_j / baseline.energy_j,
        overspend_ratio=ratio,
        overspend_reduction=1.0 - ratio,
        performance=capped.performance,
        cplj_fraction=capped.cplj_fraction,
    )
