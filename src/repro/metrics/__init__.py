"""Metric library: the paper's four evaluation metrics plus the related-
work metrics its §I.B surveys.

Paper metrics (§V.C):

* :func:`~repro.metrics.performance.performance_metric` —
  ``Performance(cap) = (1/J) Σ T_j / T_cap,j`` over finished jobs;
* :func:`~repro.metrics.performance.count_performance_lossless_jobs` —
  CPLJ;
* :func:`~repro.metrics.power.peak_power` — ``P_max``;
* :func:`~repro.metrics.power.accumulated_overspend` — ``ΔP×T``, the
  paper's new metric (ratio of over-threshold power-time integral to the
  total power-time integral).

Survey metrics (§I.B, for completeness of the library):
``E×Dⁿ``, ``FLOPS/W`` (Green500), ``PUE``, and a TCO estimator.

Robustness metrics (:mod:`repro.metrics.faults`, for fault-injection
runs): cap-violation seconds, time-to-cap-restoration and the
degraded-sensing share of the overspend.  Telemetry-integrity metrics
(:mod:`repro.metrics.integrity`, for sensor-corruption runs):
quarantine exposure, meter-distrust time and worst estimate error under
corruption.  Power-delivery metrics (:mod:`repro.metrics.provision`,
for provision-attached runs): capacity-shortfall ``ΔP×T`` against the
*surviving* capacity, time over capacity, recovery time and the
branch-overload integral.

:mod:`repro.metrics.summary` bundles everything into per-run
:class:`~repro.metrics.summary.RunMetrics` and baseline-normalised
comparisons, which are what the figure harnesses print.
"""

from repro.metrics.efficiency import (
    energy_delay_product,
    flops_per_watt,
    power_usage_effectiveness,
    total_cost_of_ownership,
)
from repro.metrics.faults import (
    cap_violation_seconds,
    controller_downtime_seconds,
    degraded_overspend,
    failover_count,
    recovery_divergence_w,
    time_to_cap_restoration,
    violation_episodes,
)
from repro.metrics.integrity import (
    estimate_error_w_under_corruption,
    meter_distrust_seconds,
    quarantine_node_seconds,
    quarantine_seconds,
)
from repro.metrics.performance import (
    count_performance_lossless_jobs,
    mean_slowdown,
    performance_metric,
    per_application_performance,
)
from repro.metrics.provision import (
    branch_overload_w_seconds,
    capacity_recovery_seconds,
    capacity_shortfall_w_seconds,
    time_over_capacity,
)
from repro.metrics.power import (
    accumulated_overspend,
    average_power,
    energy_joules,
    peak_power,
    time_fraction_above,
)
from repro.metrics.summary import RunComparison, RunMetrics, compare_runs

__all__ = [
    "RunComparison",
    "RunMetrics",
    "accumulated_overspend",
    "average_power",
    "branch_overload_w_seconds",
    "cap_violation_seconds",
    "capacity_recovery_seconds",
    "capacity_shortfall_w_seconds",
    "compare_runs",
    "controller_downtime_seconds",
    "count_performance_lossless_jobs",
    "degraded_overspend",
    "estimate_error_w_under_corruption",
    "failover_count",
    "energy_delay_product",
    "energy_joules",
    "flops_per_watt",
    "mean_slowdown",
    "meter_distrust_seconds",
    "peak_power",
    "quarantine_node_seconds",
    "quarantine_seconds",
    "per_application_performance",
    "performance_metric",
    "power_usage_effectiveness",
    "recovery_divergence_w",
    "time_fraction_above",
    "time_over_capacity",
    "time_to_cap_restoration",
    "total_cost_of_ownership",
    "violation_episodes",
]
