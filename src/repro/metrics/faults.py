"""Robustness metrics: cap violations and recovery under faults.

The paper's metrics (§V.C) grade a controller with perfect sensing.
Under injected faults two additional questions matter:

* **how long was the cap actually violated?** —
  :func:`cap_violation_seconds` (wall-clock above ``P_H``) and
  :func:`violation_episodes` / :func:`time_to_cap_restoration` (how long
  the controller needed to drive power back under the cap once it was
  breached, worst case over the run);
* **how much of the overspend happened while flying blind?** —
  :func:`degraded_overspend` attributes the ΔP×T-style over-threshold
  energy to the cycles the manager itself flagged as degraded sensing
  (meter outage or forced-red blackout), as a fraction of total energy.

All functions use the same recorded series conventions as
:mod:`repro.metrics.power`: aligned 1-D ``(t, P)`` arrays.  Episode
accounting is sample-and-hold (an interval belongs to its left sample),
consistent with :func:`repro.metrics.power.time_fraction_above`; ΔP×T
itself remains the precise trapezoidal metric.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.types import Watts
from repro.metrics.power import _validate, energy_joules

__all__ = [
    "cap_violation_seconds",
    "violation_episodes",
    "time_to_cap_restoration",
    "degraded_overspend",
    "controller_downtime_seconds",
    "failover_count",
    "recovery_divergence_w",
]


def cap_violation_seconds(
    times: np.ndarray, values: np.ndarray, threshold_w: Watts
) -> float:
    """Total wall-clock seconds spent above ``threshold_w``.

    Sample-and-hold: each inter-sample interval counts as violated when
    its left sample is above the threshold.  A single-sample trace has
    zero duration and therefore zero violation seconds.
    """
    t, v = _validate(times, values)
    if threshold_w < 0:
        raise MetricError("threshold must be non-negative")
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    return float(dt[v[:-1] > threshold_w].sum())


def violation_episodes(
    times: np.ndarray, values: np.ndarray, threshold_w: Watts
) -> list[tuple[float, float]]:
    """Contiguous cap-violation episodes as ``(start, end)`` pairs.

    An episode starts at the first sample above the threshold and ends
    at the first subsequent sample at or below it (sample-and-hold: the
    violated interval extends to the restoring sample's time).  An
    episode still open at the end of the trace ends at the last sample.
    """
    t, v = _validate(times, values)
    if threshold_w < 0:
        raise MetricError("threshold must be non-negative")
    above = v > threshold_w
    episodes: list[tuple[float, float]] = []
    start: float | None = None
    for k in range(len(t)):
        if above[k] and start is None:
            start = float(t[k])
        elif not above[k] and start is not None:
            episodes.append((start, float(t[k])))
            start = None
    if start is not None:
        episodes.append((start, float(t[-1])))
    return episodes


def time_to_cap_restoration(
    times: np.ndarray, values: np.ndarray, threshold_w: Watts
) -> float:
    """Worst-case seconds from cap breach to restoration, 0 if never breached.

    The maximum duration over all :func:`violation_episodes` — how long
    the controller needed, in the worst case, to drive power back under
    the cap after losing it.
    """
    episodes = violation_episodes(times, values, threshold_w)
    if not episodes:
        return 0.0
    return float(max(end - start for start, end in episodes))


def degraded_overspend(
    times: np.ndarray,
    values: np.ndarray,
    threshold_w: Watts,
    degraded: np.ndarray,
) -> float:
    """ΔP×T-style overspend attributable to degraded-sensing cycles.

    ``degraded`` is the manager's per-cycle degraded-sensing flag series
    (1.0 when the cycle ran on a meter-outage estimate or was forced red
    by a telemetry blackout), aligned with ``times``.  Returns::

        ∫_{P>P_th, degraded} (P(t) − P_th) dt  /  ∫ P(t) dt

    with sample-and-hold attribution of each interval to its left
    sample, so the value is directly comparable to (and bounded by, up
    to discretisation) the run's total ΔP×T.
    """
    t, v = _validate(times, values)
    d = np.asarray(degraded, dtype=np.float64)
    if d.shape != t.shape:
        raise MetricError("degraded series misaligned with power trace")
    if threshold_w < 0:
        raise MetricError("threshold must be non-negative")
    if len(t) < 2:
        raise MetricError("need at least two samples to integrate")
    total = energy_joules(t, v)
    if total <= 0:
        raise MetricError("total energy must be positive for ΔP×T")
    dt = np.diff(t)
    excess = np.maximum(v[:-1] - threshold_w, 0.0)
    attributed = float((excess * dt)[d[:-1] > 0.0].sum())
    return attributed / total


# ----------------------------------------------------------------------
# Controller availability (repro.ha runs)
# ----------------------------------------------------------------------
def controller_downtime_seconds(
    times: np.ndarray, controlled: np.ndarray
) -> float:
    """Wall-clock seconds the machine ran with no power manager acting.

    ``controlled`` is the HA run's per-cycle flag series (1.0 when a
    manager completed the cycle, 0.0 for crash/downtime cycles), aligned
    with ``times``.  Sample-and-hold like the other episode metrics: an
    interval belongs to its left sample.
    """
    t, c = _validate(times, controlled)
    if len(t) < 2:
        return 0.0
    dt = np.diff(t)
    return float(dt[c[:-1] <= 0.0].sum())


def failover_count(controlled: np.ndarray) -> int:
    """Takeovers completed: down→up transitions in the controlled series.

    A trace that *starts* controlled contributes nothing for its start;
    every recovery from a downtime episode counts once.  (The HA layer's
    own :class:`~repro.ha.failover.HaStats` reports the same number from
    the inside; this recomputes it from the recorded series so results
    can be audited without the controller object.)
    """
    c = np.asarray(controlled, dtype=np.float64)
    if c.ndim != 1:
        raise MetricError("controlled series must be 1-D")
    if len(c) < 2:
        return 0
    up = c > 0.0
    return int(np.count_nonzero(~up[:-1] & up[1:]))


def recovery_divergence_w(
    times: np.ndarray,
    values: np.ndarray,
    reference: np.ndarray,
    after_time: float | None = None,
) -> float:
    """Worst post-recovery deviation from an uncrashed reference, watts.

    Compares the crashed-and-recovered run's power trace against a
    reference run of the identical seeded world with no controller
    crashes, and returns ``max |P − P_ref|`` over samples at or after
    ``after_time`` (the takeover instant; ``None`` compares the whole
    trace).  Zero means the journal restored the controller onto the
    exact pre-crash trajectory; a persistent gap means recovery lost
    control state the reference still had.
    """
    t, v = _validate(times, values)
    r = np.asarray(reference, dtype=np.float64)
    if r.shape != v.shape:
        raise MetricError("reference series misaligned with power trace")
    mask = np.ones(len(t), dtype=bool) if after_time is None else t >= after_time
    if not mask.any():
        raise MetricError("no samples at or after the recovery time")
    return float(np.abs(v[mask] - r[mask]).max())
