"""The per-run fault injector: one object, one cycle-synchronous clock.

:class:`FaultInjector` assembles the four fault models of a
:class:`~repro.faults.scenario.FaultScenario` over an experiment's
:class:`~repro.sim.random.RandomSource` and exposes exactly the queries
the hardened consumers ask each control cycle:

* the **manager** calls :meth:`begin_cycle` first (advancing the meter
  and crash processes), then :meth:`meter_available` /
  :meth:`perturb_meter`;
* the **collector** calls :meth:`telemetry_drop_mask` once per sweep;
* the **actuator** calls :meth:`command_outcomes` for each batch of
  outgoing DVFS commands (including re-issues — a retry can be lost
  again).

Because every model draws from its own named substream
(``faults.telemetry``, ``faults.meter``, ``faults.actuation``,
``faults.crash``), the schedule is reproducible from the root seed and
creating an injector never perturbs workload or policy randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.corruption import CorruptionScenario, SensorCorruptionModel
from repro.faults.models import (
    ActuationFaultModel,
    ControllerCrashModel,
    MeterFaultModel,
    NodeCrashModel,
    TelemetryFaultModel,
)
from repro.faults.scenario import FaultScenario
from repro.obs.facade import Observability, resolve_obs
from repro.sim.random import RandomSource

__all__ = ["FaultInjector", "FaultStats"]


@dataclass(frozen=True)
class FaultStats:
    """What the injector (and its consumers) did to one run.

    Attributes:
        dropped_samples: Telemetry samples lost (dropout + offline).
        meter_outages: Distinct meter outage bursts.
        meter_outage_cycles: Cycles spent with the meter down.
        node_crashes: Monitoring-plane crash events.
        offline_node_cycles: Σ over cycles of offline node count.
        commands_lost: DVFS commands that never landed on first issue.
        commands_retried: Re-issued commands that eventually landed.
        commands_abandoned: Commands dropped after exhausting retries.
        forced_red_cycles: Cycles the fail-safe ladder forced to red
            because of a candidate-set telemetry blackout.
        estimated_power_cycles: Cycles the manager ran on the Formula (1)
            fallback estimate instead of a metered reading.
        corrupted_samples: Node samples altered by the sensor-corruption
            models (:mod:`repro.faults.corruption`).
        corrupted_meter_readings: System-meter readings altered by the
            byzantine meter model.
        corrupt_samples_rejected: Fresh samples the telemetry-integrity
            pipeline rejected outright (hard validation failures).
        quarantine_entries: Node quarantine entry events.
        quarantined_node_cycles: Σ over cycles of the quarantined node
            count.
        meter_distrusted_cycles: Cycles run with the system meter
            distrusted by the integrity monitor.
        meter_clamped_readings: Meter readings the physical zero-watt
            clamp had to correct (noise drew the reading negative).
    """

    dropped_samples: int
    meter_outages: int
    meter_outage_cycles: int
    node_crashes: int
    offline_node_cycles: int
    commands_lost: int
    commands_retried: int
    commands_abandoned: int
    forced_red_cycles: int
    estimated_power_cycles: int
    corrupted_samples: int = 0
    corrupted_meter_readings: int = 0
    corrupt_samples_rejected: int = 0
    quarantine_entries: int = 0
    quarantined_node_cycles: int = 0
    meter_distrusted_cycles: int = 0
    meter_clamped_readings: int = 0


class FaultInjector:
    """Runtime fault processes for one experiment run.

    Args:
        scenario: The fault rates to realise.
        rng: The run's root random source (substreams are spawned from
            it by name).
        num_nodes: Cluster size (for the crash model).
        obs: Observability facade; trips the flight recorder at fault
            onset (meter outage start, node crash) and mirrors the fault
            accounting as collected metric series.
        corruption: Optional sensor-corruption scenario
            (:mod:`repro.faults.corruption`); when enabled the injector
            also owns a :class:`SensorCorruptionModel` on the
            ``faults.corruption`` substream, advanced by the same cycle
            clock, and exposes :meth:`corrupt_telemetry` for the
            collector.  :meth:`perturb_meter` then applies the byzantine
            meter error after the additive noise.
    """

    def __init__(
        self,
        scenario: FaultScenario,
        rng: RandomSource,
        num_nodes: int,
        obs: Observability | None = None,
        corruption: CorruptionScenario | None = None,
    ) -> None:
        self.scenario = scenario
        self._telemetry = TelemetryFaultModel(
            rng.stream("faults.telemetry"), scenario.telemetry_dropout
        )
        self._meter = MeterFaultModel(
            rng.stream("faults.meter"),
            scenario.meter_outage_rate,
            scenario.meter_recovery_rate,
            scenario.meter_noise_fraction,
        )
        self._actuation = ActuationFaultModel(
            rng.stream("faults.actuation"),
            scenario.command_loss,
            scenario.command_delay,
            scenario.command_delay_cycles,
        )
        self._crash = NodeCrashModel(
            rng.stream("faults.crash"),
            num_nodes,
            scenario.node_crash_rate,
            scenario.node_recovery_rate,
        )
        self._controller = ControllerCrashModel(
            rng.stream("faults.controller"), scenario.controller_crash_rate
        )
        self._corruption: SensorCorruptionModel | None = None
        if corruption is not None and corruption.enabled:
            self._corruption = SensorCorruptionModel(
                corruption, rng.stream("faults.corruption"), num_nodes
            )
        self._cycle = -1
        self._last_now: float | None = None
        self._meter_up = True
        self._online = self._crash.online
        self._controller_crash_now = False
        self._obs = resolve_obs(obs)
        self._trips_on = self._obs.flight.enabled
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Mirror the fault accounting as collected metric series."""
        obs = self._obs
        if not obs.metrics_on:
            return
        reg = obs.metrics
        reg.counter_func(
            "repro_meter_outages_total",
            "Distinct meter outage bursts",
            lambda: float(self._meter.outages),
        )
        reg.counter_func(
            "repro_meter_outage_cycles_total",
            "Cycles spent with the meter down",
            lambda: float(self._meter.outage_cycles),
        )
        reg.counter_func(
            "repro_node_crashes_total",
            "Monitoring-plane crash events",
            lambda: float(self._crash.crashes),
        )
        reg.counter_func(
            "repro_offline_node_cycles_total",
            "Sum over cycles of the offline node count",
            lambda: float(self._crash.offline_node_cycles),
        )
        reg.counter_func(
            "repro_telemetry_dropout_samples_total",
            "Telemetry samples lost to i.i.d. dropout (excludes offline)",
            lambda: float(self._telemetry.dropped_samples),
        )
        # Corruption counters only exist when corruption is configured,
        # so plain fault runs keep their exact metric surface.
        if self._corruption is not None:
            reg.counter_func(
                "repro_corrupted_samples_total",
                "Node samples altered by the sensor-corruption models",
                lambda: float(self.corrupted_samples),
            )
            reg.counter_func(
                "repro_corrupted_meter_readings_total",
                "System-meter readings altered by the byzantine meter model",
                lambda: float(self.corrupted_meter_readings),
            )

    # ------------------------------------------------------------------
    # The cycle clock
    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Index of the current control cycle (-1 before the first)."""
        return self._cycle

    def begin_cycle(self, now: float) -> None:
        """Advance every burst process one control cycle.

        Must be called before any other query of the cycle.  Calling it
        again with a non-advancing ``now`` is a no-op, so a
        high-availability harness that advances the clock before
        dispatching to the active manager composes with a manager that
        also calls it — the fault processes still step exactly once per
        cycle.
        """
        if self._last_now is not None and now <= self._last_now:
            return
        self._last_now = float(now)
        self._cycle += 1
        meter_was_up = self._meter_up
        crashes_before = self._crash.crashes
        self._meter_up = self._meter.step()
        self._online = self._crash.step()
        self._controller_crash_now = self._controller.step()
        if self._corruption is not None:
            self._corruption.begin_cycle()
        if self._trips_on:
            if meter_was_up and not self._meter_up:
                self._obs.trip("meter_outage", now)
            if self._crash.crashes > crashes_before:
                self._obs.trip("node_crash", now)

    def _require_cycle(self) -> None:
        if self._cycle < 0:
            raise FaultInjectionError(
                "fault injector queried before the first begin_cycle()"
            )

    # ------------------------------------------------------------------
    # Queries (one consumer each)
    # ------------------------------------------------------------------
    def meter_available(self) -> bool:
        """Whether the system meter produces a reading this cycle."""
        self._require_cycle()
        return self._meter_up

    def perturb_meter(self, reading_w: float) -> float:
        """Additive sensor noise — then any byzantine meter error — on
        an available meter reading."""
        self._require_cycle()
        reading = self._meter.perturb(reading_w)
        if self._corruption is not None:
            reading = self._corruption.corrupt_meter(reading)
        return reading

    def corrupt_telemetry(
        self,
        node_ids: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
    ) -> np.ndarray:
        """Corrupt a sweep's freshly sampled values **in place**.

        Called by the collector on the raw sample arrays before its
        dropout substitution (a dropped sample never reaches the wire,
        corrupted or not, and the cache only ever stores what the wire
        delivered).  Returns the mask of altered rows.
        """
        self._require_cycle()
        if self._corruption is None:
            return np.zeros(len(node_ids), dtype=bool)
        return self._corruption.corrupt_arrays(
            node_ids, cpu_util, mem_frac, nic_frac
        )

    def telemetry_drop_mask(self, node_ids: np.ndarray) -> np.ndarray:
        """Which monitored nodes lose their sample this cycle.

        A node's sample is lost either by i.i.d. dropout or because the
        node's monitoring plane is down.
        """
        self._require_cycle()
        ids = np.asarray(node_ids, dtype=np.int64)
        return self._telemetry.dropped_mask(len(ids)) | ~self._online[ids]

    def command_outcomes(
        self, node_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Classify a batch of outgoing DVFS commands.

        Returns:
            ``(lost, delayed)`` masks aligned with ``node_ids``.
            Commands to offline nodes are always lost.
        """
        self._require_cycle()
        ids = np.asarray(node_ids, dtype=np.int64)
        lost, delayed = self._actuation.classify(len(ids))
        offline = ~self._online[ids]
        lost |= offline
        delayed &= ~offline
        return lost, delayed

    @property
    def command_delay_cycles(self) -> int:
        """Lateness of delayed commands, cycles."""
        return self._actuation.delay_cycles

    def node_online(self, node_ids: np.ndarray) -> np.ndarray:
        """Availability mask for the given nodes this cycle."""
        self._require_cycle()
        return self._online[np.asarray(node_ids, dtype=np.int64)]

    def controller_crash_event(self) -> bool:
        """Whether the active controller crashes this cycle.

        Consumed by the :class:`~repro.ha.failover.HaController`; crash
        events drawn while no controller is active are simply ignored
        there (nothing is running that could die).
        """
        self._require_cycle()
        return self._controller_crash_now

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def dropped_samples(self) -> int:
        """Telemetry samples lost to i.i.d. dropout (excludes offline)."""
        return self._telemetry.dropped_samples

    @property
    def meter_outage_cycles(self) -> int:
        """Cycles spent with the meter down so far."""
        return self._meter.outage_cycles

    @property
    def meter_outages(self) -> int:
        """Distinct meter outage bursts so far."""
        return self._meter.outages

    @property
    def node_crashes(self) -> int:
        """Monitoring-plane crash events so far."""
        return self._crash.crashes

    @property
    def controller_crashes(self) -> int:
        """Controller crash events drawn so far (active or not)."""
        return self._controller.crashes

    @property
    def offline_node_cycles(self) -> int:
        """Σ over cycles of the offline node count."""
        return self._crash.offline_node_cycles

    @property
    def corruption_model(self) -> SensorCorruptionModel | None:
        """The sensor-corruption model (None when corruption is off)."""
        return self._corruption

    @property
    def corrupted_samples(self) -> int:
        """Node samples altered by the corruption models so far."""
        return 0 if self._corruption is None else self._corruption.corrupted_samples

    @property
    def corrupted_meter_readings(self) -> int:
        """System-meter readings altered by the byzantine model so far."""
        if self._corruption is None:
            return 0
        return self._corruption.corrupted_meter_readings
