"""Fault injection and degraded-mode control configuration.

The paper's architecture (Figure 1, §III.A) assumes the system meter,
every profiling agent and every DVFS command work on every control
cycle; its own motivation (§I.A) is that large systems fail constantly.
This package closes that gap: deterministic, seeded fault models for the
*monitoring plane* — telemetry dropout, meter outage and noise, command
loss and delay, per-node monitoring crashes — plus the configuration of
the manager's degraded-mode fail-safe ladder.

* :class:`~repro.faults.scenario.FaultScenario` — frozen description of
  the failure rates of one run (``FaultScenario.none()`` is the paper's
  fault-free setting and changes nothing, bit for bit);
* :mod:`repro.faults.models` — the seeded stochastic processes;
* :class:`~repro.faults.injector.FaultInjector` — the per-run object
  the manager, collector and actuator query each cycle, plus
  :class:`~repro.faults.injector.FaultStats` accounting;
* :class:`~repro.faults.degraded.DegradedModeConfig` — thresholds of
  the fail-safe ladder (stale-age bound, blackout detection);
* :mod:`repro.faults.corruption` — sensor-corruption models: telemetry
  that keeps arriving but is wrong (stuck-at, drift, gain error,
  spikes, garbage, byzantine meter), defended by
  :mod:`repro.telemetry.integrity`.
"""

from repro.faults.corruption import CorruptionScenario, SensorCorruptionModel
from repro.faults.degraded import DegradedModeConfig
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.models import (
    ActuationFaultModel,
    ControllerCrashModel,
    MeterFaultModel,
    NodeCrashModel,
    TelemetryFaultModel,
)
from repro.faults.scenario import FaultScenario

__all__ = [
    "ActuationFaultModel",
    "ControllerCrashModel",
    "CorruptionScenario",
    "DegradedModeConfig",
    "FaultInjector",
    "FaultScenario",
    "FaultStats",
    "MeterFaultModel",
    "NodeCrashModel",
    "SensorCorruptionModel",
    "TelemetryFaultModel",
]
