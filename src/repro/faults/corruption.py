"""Sensor-corruption fault models: telemetry that lies.

PR 1's fault family (:mod:`repro.faults.models`) covers *missing* data —
dropped samples, dark meters, crashed agents.  This module covers the
nastier failure mode the paper's Algorithm 1 silently trusts away:
telemetry that keeps arriving but is **wrong**.  A stuck utilization
sensor or a drifting meter under-estimates cluster power, holds the
controller out of red, and lets the real cap be breached without a
single dropped sample to warn anyone.

A :class:`CorruptionScenario` is the frozen, validated description of
which corruption processes run and at what severity — the exact
analogue of :class:`~repro.faults.scenario.FaultScenario`, and
composable with it (a run can drop samples *and* corrupt the survivors).
The runtime state lives in :class:`SensorCorruptionModel`, which draws
from the dedicated ``faults.corruption`` substream so enabling
corruption never perturbs workload, policy, or other fault schedules.

Modelled corruptions (per-node, on the float utilization fields only —
reported DVFS levels stay in range so the power model's domain checks
are exercised by the validator, not crashed by the generator):

* **stuck-at-last** — the sensor freezes at its value from the onset
  cycle and repeats it forever;
* **stuck-at-constant** — the sensor reports a fixed constant (a stuck
  ADC reading 0 is the classic silent under-estimate);
* **additive drift** — a slow signed ramp, the calibration-loss model;
* **multiplicative gain error** — a constant scale factor;
* **transient spikes** — occasional large additive excursions;
* **garbage** — NaN / negative nonsense (a wedged agent's stale DMA);
* **byzantine meter** — the *system* wattmeter itself reports
  ``gain * true + bias``, fooling the green/yellow/red classification
  directly rather than through Formula (1);
* **stuck meter** — the wattmeter freezes at its onset-cycle reading
  (a constant, plausible number: the hardest lie to notice);
* **drifting meter** — the wattmeter's gain decays a little every
  cycle, the calibration-loss model applied at system level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.errors import PRESET_HINT, FaultInjectionError

__all__ = ["CorruptionScenario", "SensorCorruptionModel"]

_STUCK_MODES = ("last", "constant")


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class CorruptionScenario:
    """Severity of every modelled sensor-corruption process.

    All ``*_fraction`` knobs are the fraction of monitored nodes whose
    sensors suffer that corruption (the affected subsets are drawn once,
    deterministically, from the ``faults.corruption`` substream); all
    rates are per affected node per control cycle.

    Attributes:
        stuck_fraction: Fraction of nodes with a stuck utilization
            sensor.
        stuck_mode: ``"last"`` (freeze at the onset-cycle value) or
            ``"constant"`` (report ``stuck_constant`` forever).
        stuck_constant: The constant a ``"constant"``-mode stuck sensor
            reports (utilization units, normally in [0, 1]).
        drift_fraction: Fraction of nodes whose sensors drift.
        drift_per_cycle: Signed additive drift per cycle in utilization
            units (negative drift under-reports — the dangerous case).
        gain_fraction: Fraction of nodes with a gain error.
        gain: Multiplicative factor those sensors apply (< 1
            under-reports).
        spike_fraction: Fraction of nodes subject to transient spikes.
        spike_rate: Per affected node, per-cycle spike probability.
        spike_magnitude: Additive size of a spike in utilization units
            (sign drawn per event).
        garbage_fraction: Fraction of nodes subject to garbage samples.
        garbage_rate: Per affected node, per-cycle garbage probability
            (the sample becomes NaN or a negative value, alternating).
        meter_gain: Multiplicative error of the byzantine system meter
            (1.0 = honest).
        meter_bias_w: Additive error of the byzantine system meter in
            watts (0 = honest).
        meter_stuck: Whether the system meter freezes at its first
            post-onset reading and repeats it forever.
        meter_drift_per_cycle: Signed per-cycle decay of the meter's
            gain (negative under-reports more every cycle; applied on
            top of ``meter_gain``, clamped at a gain of 0).
        onset_cycle: Control cycle at which every corruption process
            switches on (before it all sensors are honest).
    """

    stuck_fraction: float = 0.0
    stuck_mode: str = "last"
    stuck_constant: float = 0.0
    drift_fraction: float = 0.0
    drift_per_cycle: float = 0.0
    gain_fraction: float = 0.0
    gain: float = 1.0
    spike_fraction: float = 0.0
    spike_rate: float = 0.0
    spike_magnitude: float = 0.5
    garbage_fraction: float = 0.0
    garbage_rate: float = 0.0
    meter_gain: float = 1.0
    meter_bias_w: float = 0.0
    meter_stuck: bool = False
    meter_drift_per_cycle: float = 0.0
    onset_cycle: int = 0

    def __post_init__(self) -> None:
        _check_fraction("stuck_fraction", self.stuck_fraction)
        _check_fraction("drift_fraction", self.drift_fraction)
        _check_fraction("gain_fraction", self.gain_fraction)
        _check_fraction("spike_fraction", self.spike_fraction)
        _check_fraction("spike_rate", self.spike_rate)
        _check_fraction("garbage_fraction", self.garbage_fraction)
        _check_fraction("garbage_rate", self.garbage_rate)
        if self.stuck_mode not in _STUCK_MODES:
            raise FaultInjectionError(
                f"stuck_mode must be one of {', '.join(_STUCK_MODES)}; "
                f"got {self.stuck_mode!r}"
            )
        if not np.isfinite(self.stuck_constant):
            raise FaultInjectionError("stuck_constant must be finite")
        if not np.isfinite(self.drift_per_cycle):
            raise FaultInjectionError("drift_per_cycle must be finite")
        if self.gain < 0.0 or not np.isfinite(self.gain):
            raise FaultInjectionError("gain must be finite and non-negative")
        if self.spike_magnitude < 0.0 or not np.isfinite(self.spike_magnitude):
            raise FaultInjectionError(
                "spike_magnitude must be finite and non-negative"
            )
        if self.meter_gain < 0.0 or not np.isfinite(self.meter_gain):
            raise FaultInjectionError("meter_gain must be finite and non-negative")
        if not np.isfinite(self.meter_bias_w):
            raise FaultInjectionError("meter_bias_w must be finite")
        if not np.isfinite(self.meter_drift_per_cycle):
            raise FaultInjectionError("meter_drift_per_cycle must be finite")
        if self.onset_cycle < 0:
            raise FaultInjectionError("onset_cycle must be >= 0")
        if self.spike_fraction > 0.0 and self.spike_rate <= 0.0:
            raise FaultInjectionError(
                "spike_fraction > 0 but spike_rate is 0 "
                "(spiky nodes would never spike)"
            )
        if self.garbage_fraction > 0.0 and self.garbage_rate <= 0.0:
            raise FaultInjectionError(
                "garbage_fraction > 0 but garbage_rate is 0 "
                "(garbage nodes would never emit garbage)"
            )

    @property
    def enabled(self) -> bool:
        """Whether any corruption process is active."""
        gain_err = self.gain_fraction > 0.0 and abs(self.gain - 1.0) > 0.0
        drift = self.drift_fraction > 0.0 and abs(self.drift_per_cycle) > 0.0
        meter = (
            abs(self.meter_gain - 1.0) > 0.0
            or abs(self.meter_bias_w) > 0.0
            or self.meter_stuck
            or abs(self.meter_drift_per_cycle) > 0.0
        )
        return (
            self.stuck_fraction > 0.0
            or drift
            or gain_err
            or self.spike_fraction > 0.0
            or self.garbage_fraction > 0.0
            or meter
        )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def none(cls, **overrides: object) -> "CorruptionScenario":
        """Every sensor honest (the paper's implicit assumption)."""
        return replace(cls(), **overrides)  # type: ignore[arg-type]

    @classmethod
    def stuck_at(cls, **overrides: object) -> "CorruptionScenario":
        """Sensors latch: a tenth of the fleet's utilization sensors
        stuck at zero, and the system wattmeter frozen at its onset
        reading — the classic silent under-estimate, at both levels."""
        base = cls(
            stuck_fraction=0.10,
            stuck_mode="constant",
            stuck_constant=0.0,
            meter_stuck=True,
        )
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def drift(cls, **overrides: object) -> "CorruptionScenario":
        """Calibration loss: a fifth of the fleet's sensors drifting
        downward, and the system wattmeter's gain decaying 0.2% per
        cycle — everything under-reports a little more every cycle."""
        base = cls(
            drift_fraction=0.20,
            drift_per_cycle=-0.002,
            meter_drift_per_cycle=-0.002,
        )
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def gain_error(cls, **overrides: object) -> "CorruptionScenario":
        """A fifth of the fleet reading 40% low — a miscalibrated
        sensor batch."""
        base = cls(gain_fraction=0.20, gain=0.6)
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def spikes(cls, **overrides: object) -> "CorruptionScenario":
        """Transient electrical spikes on a tenth of the fleet."""
        base = cls(spike_fraction=0.10, spike_rate=0.05, spike_magnitude=0.8)
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def garbage(cls, **overrides: object) -> "CorruptionScenario":
        """NaN / negative garbage from a twentieth of the fleet."""
        base = cls(garbage_fraction=0.05, garbage_rate=0.20)
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def byzantine_meter(cls, **overrides: object) -> "CorruptionScenario":
        """The system wattmeter reads 25% low — the one corruption that
        fools the green/yellow/red classification directly."""
        base = cls(meter_gain=0.75)
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def preset_names(cls) -> tuple[str, ...]:
        """Names accepted by :meth:`preset`, sorted."""
        return tuple(sorted(_PRESETS))

    @classmethod
    def preset(cls, name: str, **overrides: object) -> "CorruptionScenario":
        """Look up a named preset, with a friendly error on a typo.

        Raises:
            FaultInjectionError: for an unknown preset name, listing the
                available presets instead of surfacing a bare KeyError.
        """
        try:
            factory = _PRESETS[name]
        except KeyError:
            raise FaultInjectionError(
                f"unknown corruption preset {name!r}; available "
                f"presets: {', '.join(cls.preset_names())} "
                f"({PRESET_HINT})"
            ) from None
        return factory(**overrides)


#: Registry behind :meth:`CorruptionScenario.preset` (and the CLI
#: ``--corruption`` choices) — add new presets here so every consumer
#: sees them.
_PRESETS: dict[str, Callable[..., CorruptionScenario]] = {
    "none": CorruptionScenario.none,
    "stuck-at": CorruptionScenario.stuck_at,
    "drift": CorruptionScenario.drift,
    "gain-error": CorruptionScenario.gain_error,
    "spikes": CorruptionScenario.spikes,
    "garbage": CorruptionScenario.garbage,
    "byzantine-meter": CorruptionScenario.byzantine_meter,
}


class SensorCorruptionModel:
    """Runtime corruption processes for one experiment run.

    The affected node subsets are drawn once at construction (disjoint
    draws per corruption family over the same substream), so the set of
    lying sensors is a pure function of ``(root seed, scenario)``.
    Per-cycle randomness (spike timing, garbage timing, spike signs)
    comes from the same substream, advanced only for active processes.

    Args:
        scenario: The corruption severities to realise.
        rng: The model's dedicated random substream
            (``faults.corruption``).
        num_nodes: Cluster size.
    """

    def __init__(
        self,
        scenario: CorruptionScenario,
        rng: np.random.Generator,
        num_nodes: int,
    ) -> None:
        if num_nodes < 1:
            raise FaultInjectionError("num_nodes must be >= 1")
        self.scenario = scenario
        self._rng = rng
        self._num_nodes = int(num_nodes)
        self._cycle = -1
        self._corrupted_samples = 0
        self._corrupted_meter_readings = 0
        self._stuck_nodes = self._draw_nodes(scenario.stuck_fraction)
        self._drift_nodes = self._draw_nodes(scenario.drift_fraction)
        self._gain_nodes = self._draw_nodes(scenario.gain_fraction)
        self._spike_nodes = self._draw_nodes(scenario.spike_fraction)
        self._garbage_nodes = self._draw_nodes(scenario.garbage_fraction)
        # stuck-at-last latches: NaN until the sensor freezes.
        self._stuck_cpu = np.full(self._num_nodes, np.nan)
        self._stuck_mem = np.full(self._num_nodes, np.nan)
        self._stuck_nic = np.full(self._num_nodes, np.nan)
        self._stuck_meter_w = np.nan
        self._garbage_flip = False

    def _draw_nodes(self, fraction: float) -> np.ndarray:
        """Boolean membership mask for one corruption family."""
        mask = np.zeros(self._num_nodes, dtype=bool)
        count = int(round(fraction * self._num_nodes))
        if fraction > 0.0:
            count = max(count, 1)
        if count > 0:
            chosen = self._rng.choice(self._num_nodes, size=count, replace=False)
            mask[chosen] = True
        return mask

    # ------------------------------------------------------------------
    # The cycle clock
    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Index of the current control cycle (-1 before the first)."""
        return self._cycle

    @property
    def active(self) -> bool:
        """Whether the onset cycle has been reached."""
        return self._cycle >= self.scenario.onset_cycle

    def begin_cycle(self) -> None:
        """Advance the corruption clock one control cycle."""
        self._cycle += 1

    # ------------------------------------------------------------------
    # Corruption application
    # ------------------------------------------------------------------
    @property
    def corrupted_samples(self) -> int:
        """Total node samples corrupted so far."""
        return self._corrupted_samples

    @property
    def corrupted_meter_readings(self) -> int:
        """Total system-meter readings corrupted so far."""
        return self._corrupted_meter_readings

    def corrupt_arrays(
        self,
        node_ids: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
    ) -> np.ndarray:
        """Corrupt a telemetry sweep **in place**.

        Args:
            node_ids: Monitored node ids, aligned with the value arrays.
            cpu_util: Reported CPU utilizations (mutated).
            mem_frac: Reported memory-access fractions (mutated).
            nic_frac: Reported NIC utilizations (mutated).

        Returns:
            Boolean mask (aligned with ``node_ids``) of rows whose
            values were altered this cycle.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        touched = np.zeros(len(ids), dtype=bool)
        if not self.active or len(ids) == 0:
            return touched
        sc = self.scenario
        cycles_on = self._cycle - sc.onset_cycle
        # Gain error first: a miscalibrated sensor scales the true value.
        gmask = self._gain_nodes[ids]
        if gmask.any():
            for values in (cpu_util, mem_frac, nic_frac):
                values[gmask] *= sc.gain
            touched |= gmask
        # Additive drift: grows with cycles since onset.
        dmask = self._drift_nodes[ids]
        if dmask.any():
            offset = sc.drift_per_cycle * float(cycles_on + 1)
            for values in (cpu_util, mem_frac, nic_frac):
                values[dmask] += offset
            touched |= dmask
        # Transient spikes: per-node per-cycle events with random sign.
        smask = self._spike_nodes[ids]
        if smask.any() and sc.spike_rate > 0.0:
            events = smask & (self._rng.random(len(ids)) < sc.spike_rate)
            if events.any():
                signs = np.where(
                    self._rng.random(int(events.sum())) < 0.5, -1.0, 1.0
                )
                cpu_util[events] += signs * sc.spike_magnitude
                touched |= events
        # Garbage: NaN / negative nonsense, alternating per event batch.
        bmask = self._garbage_nodes[ids]
        if bmask.any() and sc.garbage_rate > 0.0:
            events = bmask & (self._rng.random(len(ids)) < sc.garbage_rate)
            if events.any():
                junk = np.nan if self._garbage_flip else -1.0
                self._garbage_flip = not self._garbage_flip
                for values in (cpu_util, mem_frac, nic_frac):
                    values[events] = junk
                touched |= events
        # Stuck-at last: freeze every stuck sensor at its first
        # post-onset value (after the other corruptions, as a real stuck
        # ADC would latch whatever it last digitised).
        tmask = self._stuck_nodes[ids]
        if tmask.any():
            if sc.stuck_mode == "constant":
                for values in (cpu_util, mem_frac, nic_frac):
                    values[tmask] = sc.stuck_constant
            else:
                stuck_ids = ids[tmask]
                latch = np.isnan(self._stuck_cpu[stuck_ids])
                if latch.any():
                    fresh = stuck_ids[latch]
                    self._stuck_cpu[fresh] = cpu_util[tmask][latch]
                    self._stuck_mem[fresh] = mem_frac[tmask][latch]
                    self._stuck_nic[fresh] = nic_frac[tmask][latch]
                cpu_util[tmask] = self._stuck_cpu[stuck_ids]
                mem_frac[tmask] = self._stuck_mem[stuck_ids]
                nic_frac[tmask] = self._stuck_nic[stuck_ids]
            touched |= tmask
        self._corrupted_samples += int(touched.sum())
        return touched

    def corrupt_meter(self, reading_w: float) -> float:
        """Byzantine system-meter error on an available reading.

        A stuck meter latches the first post-onset reading (after any
        gain/bias error — a real meter latches what it displays).
        Clamped at zero like every other meter path — even a lying
        wattmeter reports a physical (non-negative) number.
        """
        sc = self.scenario
        if not self.active:
            return reading_w
        gain = sc.meter_gain + sc.meter_drift_per_cycle * float(
            self._cycle - sc.onset_cycle
        )
        gain = max(0.0, gain)
        biased = abs(gain - 1.0) > 0.0 or abs(sc.meter_bias_w) > 0.0
        if not biased and not sc.meter_stuck:
            return reading_w
        self._corrupted_meter_readings += 1
        corrupted = max(0.0, reading_w * gain + sc.meter_bias_w)
        if sc.meter_stuck:
            if np.isnan(self._stuck_meter_w):
                self._stuck_meter_w = corrupted
            return self._stuck_meter_w
        return corrupted
