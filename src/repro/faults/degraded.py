"""Configuration of the manager's degraded-mode fail-safe ladder.

When the monitoring plane misbehaves, the power manager steps down a
ladder of increasingly conservative behaviours instead of acting on bad
data (each rung documented in ``docs/robustness.md``):

1. **Meter outage** → run the cycle on the Formula (1) estimated
   aggregate (§III.B) anchored to the last metered reading, freeze
   threshold learning, and allow no upgrades while estimating.
2. **Stale telemetry** → a node whose sample is older than
   ``max_stale_age_s`` is never upgraded (its true operating point is
   unknown; raising its frequency could overshoot the cap).
3. **Candidate-set blackout** → if telemetry coverage stays below
   ``blackout_coverage`` for ``blackout_cycles`` consecutive cycles, the
   cycle is treated as **red** regardless of the metered state: with the
   candidate set dark, the safe assumption is the worst one.

These are control-behaviour knobs, not fault rates — they stay fixed
while scenarios sweep — and with a healthy monitoring plane none of the
rungs ever triggers, so the ladder is exactly the paper's Algorithm 1 in
the fault-free limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DegradedModeConfig"]


@dataclass(frozen=True)
class DegradedModeConfig:
    """Thresholds of the fail-safe ladder.

    Attributes:
        max_stale_age_s: Maximum telemetry age (seconds) at which a
            node's data still counts as fresh enough to justify an
            upgrade.  The default tolerates a couple of dropped samples
            at the paper's τ = 1 s before declaring a node stale.
        blackout_coverage: Coverage fraction below which a cycle counts
            toward a candidate-set blackout.
        blackout_cycles: Consecutive low-coverage cycles before the
            ladder forces red.
    """

    max_stale_age_s: float = 3.0
    blackout_coverage: float = 0.5
    blackout_cycles: int = 5

    def __post_init__(self) -> None:
        if self.max_stale_age_s <= 0.0:
            raise ConfigurationError("max_stale_age_s must be positive")
        if not 0.0 <= self.blackout_coverage <= 1.0:
            raise ConfigurationError("blackout_coverage must lie in [0, 1]")
        if self.blackout_cycles < 1:
            raise ConfigurationError("blackout_cycles must be >= 1")
